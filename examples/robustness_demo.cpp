// Fault-injection demo: the same median query under the full adversary
// catalog (sim/adversary.hpp).  Part one re-creates the classic oblivious
// message-loss sweep through ObliviousAdversary — installing it on a
// failure-free network is exactly the old FailureModel construction, fan-out
// sizing included.  Part two turns the adaptive strategies of arXiv
// 2502.15320 loose on the filtered pipeline: accuracy and served fraction
// degrade gracefully with the budget, and the quality report says exactly
// how much traffic the adversary touched.
//
//   build/examples/robustness_demo
#include <cstdio>

#include "analysis/rank_stats.hpp"
#include "analysis/theory_bounds.hpp"
#include "core/adversarial.hpp"
#include "core/approx_quantile.hpp"
#include "sim/adversary.hpp"
#include "workload/distributions.hpp"
#include "workload/tiebreak.hpp"

namespace {

struct Scored {
  double served;
  double accurate;
  double first_output;
};

Scored score(const gq::RankScale& scale, const std::vector<gq::Key>& outputs,
             const std::vector<bool>& valid, double eps) {
  std::size_t accurate = 0, served = 0;
  for (std::size_t v = 0; v < outputs.size(); ++v) {
    if (!valid[v]) continue;
    ++served;
    accurate += scale.within_eps(outputs[v], 0.5, eps) ? 1 : 0;
  }
  const double n = static_cast<double>(outputs.size());
  return {100.0 * static_cast<double>(served) / n,
          served ? 100.0 * static_cast<double>(accurate) /
                       static_cast<double>(served)
                 : 0.0,
          outputs[0].value};
}

}  // namespace

int main() {
  constexpr std::uint32_t kNodes = 8192;
  const auto values = gq::generate_values(
      gq::Distribution::kGaussian, kNodes, /*seed=*/3);
  const gq::RankScale scale(gq::make_keys(values));

  // -- part one: oblivious loss through the adversary interface ------------
  std::printf("median query under oblivious message loss (n = %u, "
              "eps = 0.1)\n\n",
              kNodes);
  std::printf("%-6s | %-10s | %-8s | %-9s | %-9s | %s\n", "loss", "pulls/it",
              "rounds", "served", "accurate", "median estimate @node0");
  std::printf("-------|------------|----------|-----------|-----------|------"
              "---------------\n");

  for (const double mu : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    gq::ObliviousAdversary oblivious(mu > 0.0 ? gq::FailureModel::uniform(mu)
                                              : gq::FailureModel{});
    gq::Network net(kNodes, 77);  // failure-free; the model is absorbed
    net.set_adversary(&oblivious);
    gq::ApproxQuantileParams params;
    params.phi = 0.5;
    params.eps = 0.1;
    params.robust_coverage_rounds = 14;
    const auto r = gq::approx_quantile(net, values, params);
    const Scored s = score(scale, r.outputs, r.valid, 0.1);
    std::printf("%4.0f%%  | %10u | %8llu | %8.2f%% | %8.2f%% | %.3f\n",
                100 * mu, gq::robust_pull_count(mu, 6.0),
                static_cast<unsigned long long>(r.rounds), s.served,
                s.accurate, s.first_output);
  }

  // -- part two: adaptive strategies vs the filtered pipeline --------------
  constexpr std::uint32_t kBudget = kNodes / 32;
  gq::GreedyTargetedAdversary greedy(kBudget, 1e9);
  gq::EclipseAdversary eclipse(0, kBudget);
  gq::BudgetBurstAdversary burst(kBudget, 8, 3);
  gq::AdversaryStrategy* strategies[] = {nullptr, &greedy, &eclipse, &burst};

  std::printf("\nadaptive adversaries vs adversarial_quantile "
              "(budget = %u = n/32, eps = 0.1)\n\n",
              kBudget);
  std::printf("%-12s | %-8s | %-3s | %-9s | %-9s | %-9s | %s\n", "strategy",
              "rounds", "ok", "served", "accurate", "exposure",
              "touched msgs");
  std::printf("-------------|----------|-----|-----------|-----------|"
              "-----------|--------------\n");
  for (gq::AdversaryStrategy* strategy : strategies) {
    gq::Network net(kNodes, 77);
    if (strategy != nullptr) net.set_adversary(strategy);
    gq::AdversarialQuantileParams params;
    params.phi = 0.5;
    params.eps = 0.1;
    const auto r = gq::adversarial_quantile(net, values, params);
    const Scored s = score(scale, r.outputs, r.valid, 0.1);
    const auto touched = r.quality.messages_dropped +
                         r.quality.messages_corrupted +
                         r.quality.messages_delayed;
    std::printf("%-12s | %8llu | %-3s | %8.2f%% | %8.2f%% | %8.2f%% | %llu\n",
                strategy ? strategy->name() : "(none)",
                static_cast<unsigned long long>(r.rounds),
                r.quality.ok() ? "yes" : "NO", s.served, s.accurate,
                100.0 * r.quality.corruption_exposure,
                static_cast<unsigned long long>(touched));
  }

  std::printf("\nTrue median: %.3f.  The filtered schedule never grows: a "
              "budget-bounded adversary moves served fraction and exposure, "
              "not rounds.\n",
              scale.exact_quantile(0.5).value);
  return 0;
}
