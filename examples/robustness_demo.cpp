// Failure-injection demo: the same median query under increasingly hostile
// message-loss rates, showing Theorem 1.4 in action — accuracy holds, only
// the constant-factor fan-out grows, and stragglers get covered by a few
// extra rounds.
//
//   build/examples/robustness_demo
#include <cstdio>

#include "analysis/rank_stats.hpp"
#include "analysis/theory_bounds.hpp"
#include "core/approx_quantile.hpp"
#include "workload/distributions.hpp"
#include "workload/tiebreak.hpp"

int main() {
  constexpr std::uint32_t kNodes = 8192;
  const auto values = gq::generate_values(
      gq::Distribution::kGaussian, kNodes, /*seed=*/3);
  const gq::RankScale scale(gq::make_keys(values));

  std::printf("median query under message loss (n = %u, eps = 0.1)\n\n",
              kNodes);
  std::printf("%-6s | %-10s | %-8s | %-9s | %-9s | %s\n", "loss", "pulls/it",
              "rounds", "served", "accurate", "median estimate @node0");
  std::printf("-------|------------|----------|-----------|-----------|------"
              "---------------\n");

  for (const double mu : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    gq::Network net(kNodes, 77,
                    mu > 0.0 ? gq::FailureModel::uniform(mu)
                             : gq::FailureModel{});
    gq::ApproxQuantileParams params;
    params.phi = 0.5;
    params.eps = 0.1;
    params.robust_coverage_rounds = 14;
    const auto r = gq::approx_quantile(net, values, params);

    std::size_t accurate = 0, served = 0;
    for (std::uint32_t v = 0; v < kNodes; ++v) {
      if (!r.valid[v]) continue;
      ++served;
      accurate += scale.within_eps(r.outputs[v], 0.5, 0.1) ? 1 : 0;
    }
    std::printf("%4.0f%%  | %10u | %8llu | %8.2f%% | %8.2f%% | %.3f\n",
                100 * mu, gq::robust_pull_count(mu, 6.0),
                static_cast<unsigned long long>(r.rounds),
                100.0 * static_cast<double>(served) / kNodes,
                served ? 100.0 * static_cast<double>(accurate) / served : 0.0,
                r.outputs[0].value);
  }

  std::printf("\nTrue median: %.3f.  Note rounds grow only with the "
              "1/(1-mu) log(1/(1-mu)) fan-out, never with n.\n",
              scale.exact_quantile(0.5).value);
  return 0;
}
