// The Theorem 1.3 construction, hands-on: two inputs that differ only on a
// Theta(eps n)-sized fringe of extreme values, yet whose phi-quantiles
// differ by 2 eps n ranks.  A node that has not (transitively) heard from
// the fringe cannot answer an eps-approximate query for both inputs — so
// the time to spread that information lower-bounds EVERY gossip algorithm.
//
// The closing section swaps the information-theoretic adversary for an
// operational one (sim/adversary.hpp): a greedy payload-corrupting strategy
// against the plain tournament pipeline vs the filtered adversarial
// pipeline of arXiv 2502.15320, same seed, same budget.
//
//   build/examples/adversarial_lower_bound
#include <cmath>
#include <cstdio>

#include "analysis/rank_stats.hpp"
#include "analysis/theory_bounds.hpp"
#include "core/adversarial.hpp"
#include "core/approx_quantile.hpp"
#include "core/lower_bound.hpp"
#include "sim/adversary.hpp"
#include "workload/scenario.hpp"
#include "workload/tiebreak.hpp"

int main() {
  constexpr std::uint32_t kNodes = 1 << 15;
  const double eps = 0.01;
  const auto pair = gq::make_adversarial_pair(kNodes, eps, /*seed=*/5);

  std::printf("adversarial pair (n = %u, eps = %.2f):\n", kNodes, eps);
  std::printf("  scenario A holds {1..n}, scenario B holds {1+%zu..n+%zu};\n",
              pair.shift, pair.shift);
  std::printf("  only %zu of %u nodes can tell them apart initially.\n\n",
              pair.informative.size() -
                  static_cast<std::size_t>(std::count(
                      pair.informative.begin(), pair.informative.end(),
                      false)),
              kNodes);

  // How long does the distinguishing information take to reach everyone,
  // even with the most generous spreading (push AND pull, unbounded
  // messages)?
  gq::Network spread_net(kNodes, 11);
  const auto spread =
      gq::simulate_information_spread(spread_net, pair.informative);
  std::printf("information spread (push+pull, unbounded messages):\n");
  for (std::size_t r = 0; r < spread.informed_counts.size(); ++r) {
    std::printf("  round %2zu: %8llu informed (%.2f%%)\n", r + 1,
                static_cast<unsigned long long>(spread.informed_counts[r]),
                100.0 * static_cast<double>(spread.informed_counts[r]) /
                    kNodes);
  }
  std::printf("  -> all informed after %llu rounds; Theorem 1.3 bound: "
              "max(0.5 lglg n, log4(8/eps)) = %.2f\n\n",
              static_cast<unsigned long long>(spread.rounds_to_all),
              gq::lower_bound_rounds(eps, kNodes));

  // And the two scenarios really do force different answers: the median
  // value under A vs B differs by 2 eps n ranks of A's scale.
  const gq::RankScale scale_a(gq::make_keys(pair.scenario_a));
  gq::Network net_a(kNodes, 13), net_b(kNodes, 13);
  gq::ApproxQuantileParams params;
  params.phi = 0.5;
  params.eps = 0.05;  // a realistic query on both inputs
  const auto ra = gq::approx_quantile(net_a, pair.scenario_a, params);
  const auto rb = gq::approx_quantile(net_b, pair.scenario_b, params);
  std::printf("median query on both scenarios (same protocol seed):\n");
  std::printf("  scenario A: node 0 answers %.0f\n", ra.outputs[0].value);
  std::printf("  scenario B: node 0 answers %.0f (shift of the whole value "
              "set = %zu)\n",
              rb.outputs[0].value, pair.shift);
  std::printf(
      "  An algorithm stopping before the information spreads would answer "
      "identically in both worlds\n  and be wrong (by rank) in one of them "
      "with probability 1/2 — that is the lower bound.\n\n");

  // From information-theoretic to operational: scattered payload corruption
  // (budget n/32 node-messages per round, injecting a value far above the
  // data range).  The legacy pipelines cannot even express payload
  // corruption — kCorrupt is a no-op below the adversarial fault layer — so
  // the ablation runs inside the filtered framework: filter_group = 1 is
  // the unfiltered tournament (each sample trusted as-is, so one corrupted
  // pull poisons a node's state and the poison spreads through later
  // pulls), filter_group = 3 is the 2502.15320 defence (every sample the
  // median of a pull group, so the adversary must corrupt a group majority
  // to move anything — a quadratically rarer event when the corruption is
  // scattered).
  const gq::RankScale scale(gq::make_keys(pair.scenario_a));
  gq::ScatterCorruptAdversary scatter(kNodes / 32, 1e9);
  std::printf("scattered payload corruption vs sample filtering "
              "(budget = n/32, inject = 1e9):\n");
  for (const std::uint32_t g : {1u, 3u}) {
    gq::Network net(kNodes, 17);
    net.set_adversary(&scatter);
    gq::AdversarialQuantileParams aq;
    aq.phi = 0.5;
    aq.eps = 0.05;
    aq.filter_group = g;
    const auto r = gq::adversarial_quantile(net, pair.scenario_a, aq);
    std::size_t accurate = 0, served = 0;
    for (std::uint32_t v = 0; v < kNodes; ++v) {
      if (!r.valid[v]) continue;
      ++served;
      accurate += scale.within_eps(r.outputs[v], 0.5, 0.05) ? 1 : 0;
    }
    std::printf("  filter_group = %u (%s): served %.2f%%, accurate %.2f%%, "
                "corrupted msgs = %llu\n",
                g, g == 1 ? "unfiltered" : "filtered",
                100.0 * static_cast<double>(served) / kNodes,
                served ? 100.0 * static_cast<double>(accurate) /
                             static_cast<double>(served)
                       : 0.0,
                static_cast<unsigned long long>(r.quality.messages_corrupted));
  }
  std::printf("  Filtering is the whole defence: the same budget that drags "
              "unfiltered samples is\n  absorbed once each sample is a "
              "pull-group median.\n");
  return 0;
}
