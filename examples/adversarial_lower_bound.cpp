// The Theorem 1.3 construction, hands-on: two inputs that differ only on a
// Theta(eps n)-sized fringe of extreme values, yet whose phi-quantiles
// differ by 2 eps n ranks.  A node that has not (transitively) heard from
// the fringe cannot answer an eps-approximate query for both inputs — so
// the time to spread that information lower-bounds EVERY gossip algorithm.
//
//   build/examples/adversarial_lower_bound
#include <cmath>
#include <cstdio>

#include "analysis/rank_stats.hpp"
#include "analysis/theory_bounds.hpp"
#include "core/approx_quantile.hpp"
#include "core/lower_bound.hpp"
#include "workload/scenario.hpp"
#include "workload/tiebreak.hpp"

int main() {
  constexpr std::uint32_t kNodes = 1 << 15;
  const double eps = 0.01;
  const auto pair = gq::make_adversarial_pair(kNodes, eps, /*seed=*/5);

  std::printf("adversarial pair (n = %u, eps = %.2f):\n", kNodes, eps);
  std::printf("  scenario A holds {1..n}, scenario B holds {1+%zu..n+%zu};\n",
              pair.shift, pair.shift);
  std::printf("  only %zu of %u nodes can tell them apart initially.\n\n",
              pair.informative.size() -
                  static_cast<std::size_t>(std::count(
                      pair.informative.begin(), pair.informative.end(),
                      false)),
              kNodes);

  // How long does the distinguishing information take to reach everyone,
  // even with the most generous spreading (push AND pull, unbounded
  // messages)?
  gq::Network spread_net(kNodes, 11);
  const auto spread =
      gq::simulate_information_spread(spread_net, pair.informative);
  std::printf("information spread (push+pull, unbounded messages):\n");
  for (std::size_t r = 0; r < spread.informed_counts.size(); ++r) {
    std::printf("  round %2zu: %8llu informed (%.2f%%)\n", r + 1,
                static_cast<unsigned long long>(spread.informed_counts[r]),
                100.0 * static_cast<double>(spread.informed_counts[r]) /
                    kNodes);
  }
  std::printf("  -> all informed after %llu rounds; Theorem 1.3 bound: "
              "max(0.5 lglg n, log4(8/eps)) = %.2f\n\n",
              static_cast<unsigned long long>(spread.rounds_to_all),
              gq::lower_bound_rounds(eps, kNodes));

  // And the two scenarios really do force different answers: the median
  // value under A vs B differs by 2 eps n ranks of A's scale.
  const gq::RankScale scale_a(gq::make_keys(pair.scenario_a));
  gq::Network net_a(kNodes, 13), net_b(kNodes, 13);
  gq::ApproxQuantileParams params;
  params.phi = 0.5;
  params.eps = 0.05;  // a realistic query on both inputs
  const auto ra = gq::approx_quantile(net_a, pair.scenario_a, params);
  const auto rb = gq::approx_quantile(net_b, pair.scenario_b, params);
  std::printf("median query on both scenarios (same protocol seed):\n");
  std::printf("  scenario A: node 0 answers %.0f\n", ra.outputs[0].value);
  std::printf("  scenario B: node 0 answers %.0f (shift of the whole value "
              "set = %zu)\n",
              rb.outputs[0].value, pair.shift);
  std::printf(
      "  An algorithm stopping before the information spreads would answer "
      "identically in both worlds\n  and be wrong (by rank) in one of them "
      "with probability 1/2 — that is the lower bound.\n");
  return 0;
}
