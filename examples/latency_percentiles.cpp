// Distributed latency-percentile monitoring: a fleet of servers each holds
// its latest request latency; the fleet agrees on p50/p95/p99 without a
// metrics aggregator.  Compares the approximate pipeline against the exact
// algorithm and the KDG03 baseline on rounds and traffic.
//
//   build/examples/latency_percentiles
#include <cstdio>

#include "analysis/rank_stats.hpp"
#include "baselines/kdg03_quantile.hpp"
#include "core/approx_quantile.hpp"
#include "core/exact_quantile.hpp"
#include "workload/scenario.hpp"
#include "workload/tiebreak.hpp"

int main() {
  constexpr std::uint32_t kServers = 16384;
  const auto latencies = gq::make_latency_trace(kServers, /*seed=*/11);
  const gq::RankScale scale(gq::make_keys(latencies));

  std::printf("latency fleet: %u servers (log-normal body, Pareto tail)\n\n",
              kServers);
  std::printf("%-6s | %-12s | %-12s | %-10s | %s\n", "pctl", "approx (ms)",
              "exact (ms)", "truth (ms)", "rounds approx/exact/kdg03");
  std::printf("-------|--------------|--------------|------------|-----------"
              "---------------\n");

  for (const double phi : {0.5, 0.95, 0.99}) {
    gq::Network net_a(kServers, 100 + static_cast<std::uint64_t>(phi * 100));
    gq::ApproxQuantileParams ap;
    ap.phi = phi;
    ap.eps = 0.08;  // above eps_tournament_floor(16384) ~= 0.079
    const auto approx = gq::approx_quantile(net_a, latencies, ap);

    gq::Network net_e(kServers, 200 + static_cast<std::uint64_t>(phi * 100));
    gq::ExactQuantileParams ep;
    ep.phi = phi;
    const auto exact = gq::exact_quantile(net_e, latencies, ep);

    gq::Network net_k(kServers, 300 + static_cast<std::uint64_t>(phi * 100));
    gq::Kdg03Params kp;
    kp.phi = phi;
    const auto base = gq::kdg03_exact_quantile(net_k, latencies, kp);

    std::printf("p%-5.0f | %12.2f | %12.2f | %10.2f | %llu / %llu / %llu\n",
                100 * phi, approx.outputs[0].value, exact.answer.value,
                scale.exact_quantile(phi).value,
                static_cast<unsigned long long>(approx.rounds),
                static_cast<unsigned long long>(exact.rounds),
                static_cast<unsigned long long>(base.rounds));
  }

  std::printf(
      "\nTakeaway: the approximate pipeline answers in tens of rounds and "
      "is RANK-accurate (within eps*n ranks) —\nbut on a heavy tail a few "
      "ranks can span a large value gap (see p99), so tail SLOs should use "
      "the exact\nalgorithm, which still beats the classic KDG03 selection "
      "on rounds at the median.\n");
  return 0;
}
