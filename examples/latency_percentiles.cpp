// Distributed latency-percentile monitoring on the streaming service layer:
// a fleet of servers continuously ingests request latencies into bounded
// per-node summaries, and a long-lived QuantileService session answers
// p50/p90/p99/p999 on demand — no metrics aggregator, no re-setup per
// query.  A second ingest wave then advances the epoch and the same warm
// session re-answers, showing the tail drift.
//
// All four percentiles ride ONE kMultiQuantile query: the shared-schedule
// batch pipeline superimposes every target's tournament over a single
// gossip run, so the sweep costs about one target's rounds instead of four.
//
//   build/examples/latency_percentiles
#include <cstdio>
#include <span>
#include <vector>

#include "service/quantile_service.hpp"
#include "workload/scenario.hpp"

namespace {

constexpr double kPercentiles[] = {0.5, 0.9, 0.99, 0.999};

// One monitoring sweep: all four percentiles batched into one shared
// gossip run.
void report(gq::QuantileService& fleet, const char* phase) {
  gq::QueryRequest request;
  request.kind = gq::QueryKind::kMultiQuantile;
  request.phis.assign(std::begin(kPercentiles), std::end(kPercentiles));
  request.eps = 0.08;  // above eps_tournament_floor(16384) ~= 0.079
  const gq::QueryReply reply = fleet.query(request);

  std::printf("%s (epoch %llu, one shared run of %llu rounds):\n", phase,
              static_cast<unsigned long long>(reply.epoch),
              static_cast<unsigned long long>(reply.rounds));
  std::printf("  %-6s | %s\n", "pctl", "latency (ms)");
  for (std::size_t i = 0; i < reply.multi_values.size(); ++i) {
    std::printf("  p%-5.4g | %12.2f\n", 100 * kPercentiles[i],
                reply.multi_values[i]);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  constexpr std::uint32_t kServers = 16384;
  constexpr std::size_t kRequestsPerServer = 32;

  // The resample policy makes the service track the *union* latency stream
  // (every request weighs equally), not one representative per server.
  gq::ServiceConfig cfg;
  cfg.seed = 11;
  cfg.sketch_k = 256;
  cfg.instance_policy = gq::InstancePolicy::kGlobalResample;

  gq::QuantileService fleet(kServers, cfg);
  std::printf("latency fleet: %u servers x %zu requests "
              "(log-normal body, Pareto tail)\n\n",
              kServers, kRequestsPerServer);

  // Wave 1: every server streams its request latencies into its summary.
  const auto wave1 =
      gq::make_latency_trace(kServers * kRequestsPerServer, /*seed=*/11);
  for (std::uint32_t s = 0; s < kServers; ++s) {
    fleet.ingest(s, std::span<const double>(wave1).subspan(
                        s * kRequestsPerServer, kRequestsPerServer));
  }
  report(fleet, "steady state");

  // Wave 2: a latency regression rolls out — the same trace shape shifted
  // 1.5x slower lands on every server.  The next query seals a new epoch;
  // the warm session extends its interned table instead of re-sorting.
  const auto wave2 =
      gq::make_latency_trace(kServers * kRequestsPerServer, /*seed=*/23);
  for (std::uint32_t s = 0; s < kServers; ++s) {
    for (std::size_t r = 0; r < kRequestsPerServer; ++r) {
      fleet.ingest(s, 1.5 * wave2[s * kRequestsPerServer + r]);
    }
  }
  report(fleet, "after slow rollout");

  const gq::ServiceStats stats = fleet.stats();
  std::printf(
      "service: %llu values ingested, max %zu items held per node "
      "(bounded sketches),\n%llu queries over %llu epochs, session "
      "rebuilt %llu time(s) and extended %llu time(s).\n\n",
      static_cast<unsigned long long>(stats.ingested), stats.max_node_items,
      static_cast<unsigned long long>(stats.queries),
      static_cast<unsigned long long>(stats.epoch),
      static_cast<unsigned long long>(stats.session_rebuilds),
      static_cast<unsigned long long>(stats.session_extends));

  std::printf(
      "Takeaway: the service keeps per-server state bounded while the warm "
      "gossip session answers\na whole percentile sweep in one shared run "
      "of tens of rounds; tail percentiles (p99/p999)\nmove with the "
      "rollout because the resample policy weighs every request, not every "
      "server,\nequally.\n");
  return 0;
}
