// The paper's motivating scenario (Section 1): a sensor network monitoring
// temperature wants the top and bottom 10% quantiles so each node can tell
// whether it needs special attention — without any coordinator, and even
// though individual radios fail.
//
//   build/examples/sensor_network
#include <cstdio>

#include "analysis/rank_stats.hpp"
#include "core/approx_quantile.hpp"
#include "core/own_rank.hpp"
#include "workload/scenario.hpp"
#include "workload/tiebreak.hpp"

int main() {
  constexpr std::uint32_t kSensors = 16384;
  // A quarter of the field sits on a hot spot (~80C); the rest reads ~20C.
  // (The 0.9-quantile then sits inside the hot mode with margin > eps; for
  // thresholds sharper than eps, use exact_quantile instead.)
  const auto readings = gq::make_sensor_field(kSensors, 0.25, /*seed=*/7);

  // Every radio drops its message 20% of the time.
  gq::Network net(kSensors, /*seed=*/2026,
                  gq::FailureModel::uniform(0.2));

  gq::ApproxQuantileParams params;
  params.eps = 0.08;  // above eps_tournament_floor(16384) ~= 0.079

  params.phi = 0.9;
  const auto q90 = gq::approx_quantile(net, readings, params);
  params.phi = 0.1;
  const auto q10 = gq::approx_quantile(net, readings, params);

  std::printf("sensor field: %u nodes, 20%% message loss\n", kSensors);
  std::printf("  90%%-quantile estimate at node 0: %.1f C  (rounds: %llu, "
              "served: %zu/%u)\n",
              q90.outputs[0].value,
              static_cast<unsigned long long>(q90.rounds),
              q90.served_nodes(), kSensors);
  std::printf("  10%%-quantile estimate at node 0: %.1f C  (rounds: %llu, "
              "served: %zu/%u)\n",
              q10.outputs[0].value,
              static_cast<unsigned long long>(q10.rounds),
              q10.served_nodes(), kSensors);

  // Each node classifies itself against ITS OWN learned thresholds — no
  // central collection step anywhere.
  std::size_t hot = 0, cold = 0, unserved = 0;
  for (std::uint32_t v = 0; v < kSensors; ++v) {
    if (!q90.valid[v] || !q10.valid[v]) {
      ++unserved;
      continue;
    }
    if (readings[v] >= q90.outputs[v].value) ++hot;
    if (readings[v] <= q10.outputs[v].value) ++cold;
  }
  std::printf("  self-classified: %zu flagged hot (>= own p90 estimate), "
              "%zu flagged cold (<= own p10 estimate), %zu unserved\n",
              hot, cold, unserved);

  // Ground truth from the omniscient rank scale (not available to nodes).
  const gq::RankScale scale(gq::make_keys(readings));
  std::printf("  ground truth thresholds: p90 = %.1f C, p10 = %.1f C\n",
              scale.exact_quantile(0.9).value,
              scale.exact_quantile(0.1).value);

  // Corollary 1.5: every node can also estimate its own percentile.
  gq::OwnRankParams orp;
  orp.eps = 0.4;
  const auto ranks = gq::own_rank(net, readings, orp);
  std::printf("  own-rank demo: node 0 reads %.1f C and estimates its "
              "percentile at %.0f%% (truth: %.0f%%)\n",
              readings[0], 100.0 * ranks.estimates[0],
              100.0 * scale.quantile_of(gq::make_keys(readings)[0]));
  return 0;
}
