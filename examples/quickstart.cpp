// Quickstart: compute an approximate and an exact quantile over a simulated
// gossip network in ~30 lines, then the same computation on the parallel
// engine — a one-line switch of the executor type.
//
//   build/quickstart
#include <cstdio>

#include "core/approx_quantile.hpp"
#include "core/exact_quantile.hpp"
#include "engine/engine.hpp"
#include "engine/pipelines.hpp"
#include "workload/distributions.hpp"

int main() {
  // 4096 nodes, each holding one value (here: a random permutation of
  // 1..4096 so ranks are easy to read).
  constexpr std::uint32_t kNodes = 4096;
  const auto values = gq::generate_values(
      gq::Distribution::kUniformPermutation, kNodes, /*seed=*/1);

  // A Network is a synchronous uniform-gossip simulator; all randomness
  // derives from the seed, so runs are reproducible.
  gq::Network net(kNodes, /*seed=*/42);

  // Approximate: every node learns a value whose rank is within
  // (phi +- eps) * n after O(log log n + log 1/eps) rounds.
  gq::ApproxQuantileParams approx;
  approx.phi = 0.25;  // the first quartile
  approx.eps = 0.15;  // rank slack
  const auto a = gq::approx_quantile(net, values, approx);
  std::printf("approximate quartile: node 0 holds %.0f (target rank %.0f, "
              "window [%0.f, %0.f])\n",
              a.outputs[0].value, approx.phi * kNodes,
              (approx.phi - approx.eps) * kNodes,
              (approx.phi + approx.eps) * kNodes);
  std::printf("  rounds: %llu   phase-1 iters: %zu   phase-2 iters: %zu\n",
              static_cast<unsigned long long>(a.rounds),
              a.phase1_iterations, a.phase2_iterations);

  // Exact: every node learns THE value of rank ceil(phi * n), in O(log n)
  // rounds (Theorem 1.1).
  gq::ExactQuantileParams exact;
  exact.phi = 0.9;
  const auto e = gq::exact_quantile(net, values, exact);
  std::printf("exact 0.9-quantile: %.0f (rank %u of %u)\n", e.answer.value,
              static_cast<unsigned>(0.9 * kNodes), kNodes);
  std::printf("  rounds: %llu   bracketing iterations: %zu\n",
              static_cast<unsigned long long>(e.rounds), e.iterations);

  std::printf("total gossip rounds this session: %llu\n",
              static_cast<unsigned long long>(net.metrics().rounds));

  // Engine path: the same pipeline on the sharded parallel engine.  The
  // only change is the executor type — every gq:: call below is the same
  // overload set, and the results (values, rounds, Metrics) are
  // bit-identical to a Network with the same seed at any thread count.
  gq::Engine engine(kNodes, /*seed=*/42);  // was: gq::Network net(kNodes, 42)
  const auto ae = gq::approx_quantile(engine, values, approx);
  std::printf("engine approximate quartile: node 0 holds %.0f after %llu "
              "rounds (%u threads)\n",
              ae.outputs[0].value, static_cast<unsigned long long>(ae.rounds),
              engine.threads());
  return 0;
}
