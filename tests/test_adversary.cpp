// Differential and property tests for the adversarial fault-injection layer
// (sim/adversary.hpp) and the adversarially-robust quantile/mean pipelines
// (core/adversarial_pipeline.hpp, arXiv 2502.15320).
//
// The differential half pins the new pipelines bit-identical between the
// sequential Network and the parallel Engine at 1/2/8 threads, across
// adversary strategies (greedy-targeted, eclipse, budget-burst) and budget
// levels, including the QualityReport and the adversary tallies in Metrics.
// It also pins the two boundary identities of the layer itself:
//   * budget = 0 strategies are transcript-identical to running with no
//     adversary installed at all;
//   * ObliviousAdversary(fm) is transcript-identical to constructing the
//     executor with fm — the FailureModel-as-special-case requirement —
//     on the legacy robust pipelines AND the new adversarial ones.
//
// The property half pins graceful degradation (accuracy and served fraction
// under bounded budgets, exposure accounting) and the FailureModel::custom
// construction-time bound check.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "analysis/rank_stats.hpp"
#include "core/adversarial.hpp"
#include "core/approx_quantile.hpp"
#include "core/exact_quantile.hpp"
#include "core/result.hpp"
#include "engine/engine.hpp"
#include "engine/pipelines.hpp"
#include "sim/adversary.hpp"
#include "sim/network.hpp"
#include "workload/distributions.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

constexpr unsigned kThreadCounts[] = {1, 2, 8};

// Small shards so every thread count exercises multi-shard merging and a
// trimmed final shard (the n below are not multiples of 192).
EngineConfig config_for(unsigned threads) {
  return EngineConfig{.threads = threads, .shard_size = 192};
}

void expect_same_quantile(const AdversarialQuantileResult& a,
                          const AdversarialQuantileResult& b,
                          const char* what) {
  EXPECT_EQ(a.outputs, b.outputs) << what;
  EXPECT_EQ(a.valid, b.valid) << what;
  EXPECT_EQ(a.phase1_iterations, b.phase1_iterations) << what;
  EXPECT_EQ(a.phase2_iterations, b.phase2_iterations) << what;
  EXPECT_EQ(a.rounds, b.rounds) << what;
  EXPECT_EQ(a.quality, b.quality) << what;
}

void expect_same_mean(const AdversarialMeanResult& a,
                      const AdversarialMeanResult& b, const char* what) {
  EXPECT_EQ(a.estimates, b.estimates) << what;
  EXPECT_EQ(a.valid, b.valid) << what;
  EXPECT_EQ(a.rounds, b.rounds) << what;
  EXPECT_EQ(a.quality, b.quality) << what;
}

// ---- differential: strategies x budgets x threads -------------------------

TEST(AdversaryDifferential, QuantileMatchesAcrossStrategiesAndBudgets) {
  constexpr std::uint32_t kN = 1537;  // odd, not a multiple of the shard size
  constexpr std::uint64_t kSeed = 907;
  const auto values = generate_values(Distribution::kUniformReal, kN, 83);
  AdversarialQuantileParams params;
  params.phi = 0.5;
  params.eps = 0.1;

  const std::uint32_t budgets[] = {1, kN / 64, kN / 8};
  for (const std::uint32_t budget : budgets) {
    GreedyTargetedAdversary greedy(budget, 1e6);
    EclipseAdversary eclipse(17, budget);
    BudgetBurstAdversary burst(budget, 8, 3, 2, 5);
    ScatterCorruptAdversary scatter(budget, -1e6, 3);
    AdversaryStrategy* strategies[] = {&greedy, &eclipse, &burst, &scatter};
    for (AdversaryStrategy* strategy : strategies) {
      Network net(kN, kSeed);
      net.set_adversary(strategy);
      const auto seq = adversarial_quantile(net, values, params);

      for (unsigned threads : kThreadCounts) {
        Engine engine(kN, kSeed, FailureModel{}, config_for(threads));
        engine.set_adversary(strategy);
        const auto par = adversarial_quantile(engine, values, params);
        const std::string what = std::string(strategy->name()) +
                                 " budget=" + std::to_string(budget) +
                                 " threads=" + std::to_string(threads);
        expect_same_quantile(par, seq, what.c_str());
        EXPECT_EQ(engine.metrics(), net.metrics()) << what;
      }
    }
  }
}

TEST(AdversaryDifferential, MeanMatchesAcrossStrategiesAndBudgets) {
  constexpr std::uint32_t kN = 1031;
  constexpr std::uint64_t kSeed = 911;
  const auto values = generate_values(Distribution::kGaussian, kN, 89);
  AdversarialMeanParams params;

  const std::uint32_t budgets[] = {1, kN / 64, kN / 8};
  for (const std::uint32_t budget : budgets) {
    GreedyTargetedAdversary greedy(budget, 1e6);
    EclipseAdversary eclipse(5, budget);
    BudgetBurstAdversary burst(budget, 8, 3, 2, 7);
    AdversaryStrategy* strategies[] = {&greedy, &eclipse, &burst};
    for (AdversaryStrategy* strategy : strategies) {
      Network net(kN, kSeed);
      net.set_adversary(strategy);
      const auto seq = adversarial_mean(net, values, params);

      for (unsigned threads : kThreadCounts) {
        Engine engine(kN, kSeed, FailureModel{}, config_for(threads));
        engine.set_adversary(strategy);
        const auto par = adversarial_mean(engine, values, params);
        const std::string what = std::string(strategy->name()) +
                                 " budget=" + std::to_string(budget) +
                                 " threads=" + std::to_string(threads);
        expect_same_mean(par, seq, what.c_str());
        EXPECT_EQ(engine.metrics(), net.metrics()) << what;
      }
    }
  }
}

// Adversarial pipelines must also compose with an oblivious failure model
// UNDER an adaptive adversary — both fault sources active at once.
TEST(AdversaryDifferential, QuantileMatchesWithFailuresAndAdversary) {
  constexpr std::uint32_t kN = 1283;
  constexpr std::uint64_t kSeed = 919;
  const auto values = generate_values(Distribution::kExponential, kN, 97);
  const FailureModel fm = FailureModel::uniform(0.2);
  AdversarialQuantileParams params;
  params.phi = 0.25;
  params.eps = 0.12;

  EclipseAdversary eclipse(100, kN / 32);
  Network net(kN, kSeed, fm);
  net.set_adversary(&eclipse);
  const auto seq = adversarial_quantile(net, values, params);

  for (unsigned threads : kThreadCounts) {
    Engine engine(kN, kSeed, fm, config_for(threads));
    engine.set_adversary(&eclipse);
    const auto par = adversarial_quantile(engine, values, params);
    expect_same_quantile(par, seq, "failures+eclipse");
    EXPECT_EQ(engine.metrics(), net.metrics()) << "threads=" << threads;
  }
}

// The legacy approx pipeline sees an adaptive adversary through node_fails:
// faultless() is false, so it routes through the robust tournament branch
// even with no FailureModel installed.  Pin the convergent differential.
TEST(AdversaryDifferential, LegacyApproxPipelineUnderAdversaryMatches) {
  constexpr std::uint32_t kN = 2048;
  constexpr std::uint64_t kSeed = 631;
  const auto values = generate_values(Distribution::kExponential, kN, 67);

  EclipseAdversary eclipse(64, kN / 32);
  ApproxQuantileParams params;
  params.phi = 0.5;
  params.eps = 0.2;  // above eps_tournament_floor(2048) ~ 0.157: no fallback
  Network net(kN, kSeed);
  net.set_adversary(&eclipse);
  const auto seq = approx_quantile(net, values, params);

  for (unsigned threads : kThreadCounts) {
    Engine engine(kN, kSeed, FailureModel{}, config_for(threads));
    engine.set_adversary(&eclipse);
    const auto par = approx_quantile(engine, values, params);
    EXPECT_EQ(par.outputs, seq.outputs) << "threads=" << threads;
    EXPECT_EQ(par.valid, seq.valid) << "threads=" << threads;
    EXPECT_EQ(par.rounds, seq.rounds) << "threads=" << threads;
    EXPECT_EQ(engine.metrics(), net.metrics()) << "threads=" << threads;
  }
}

// The exact pipeline cannot survive message loss — its push-sum counting is
// exact by construction, so adversarial drops surface as a typed abort
// rather than a wrong answer.  The abort must be the same kind, after the
// same transcript, on both executors (the scatter delivery sections see the
// adversary through node_fails too).
TEST(AdversaryDifferential, ExactPipelineAbortsIdenticallyUnderAdversary) {
  constexpr std::uint32_t kN = 2048;
  constexpr std::uint64_t kSeed = 631;
  const auto values = generate_values(Distribution::kExponential, kN, 67);

  EclipseAdversary eclipse(64, kN / 32);
  ExactQuantileParams params;
  params.phi = 0.5;
  Network net(kN, kSeed);
  net.set_adversary(&eclipse);
  ExactPipelineError::Kind seq_kind{};
  try {
    (void)exact_quantile(net, values, params);
    GTEST_SKIP() << "exact pipeline converged under this adversary";
  } catch (const ExactPipelineError& e) {
    seq_kind = e.kind();
  }

  for (unsigned threads : kThreadCounts) {
    Engine engine(kN, kSeed, FailureModel{}, config_for(threads));
    engine.set_adversary(&eclipse);
    try {
      (void)exact_quantile(engine, values, params);
      ADD_FAILURE() << "engine converged where sequential aborted, threads="
                    << threads;
    } catch (const ExactPipelineError& e) {
      EXPECT_EQ(e.kind(), seq_kind) << "threads=" << threads;
    }
    EXPECT_EQ(engine.metrics(), net.metrics()) << "threads=" << threads;
  }
}

// ---- boundary: budget = 0 == no adversary ---------------------------------

TEST(AdversaryBoundary, BudgetZeroIsTranscriptIdenticalToNoAdversary) {
  constexpr std::uint32_t kN = 1021;
  constexpr std::uint64_t kSeed = 929;
  const auto values = generate_values(Distribution::kUniformReal, kN, 101);
  AdversarialQuantileParams qparams;
  AdversarialMeanParams mparams;

  Network clean_q(kN, kSeed);
  const auto base_q = adversarial_quantile(clean_q, values, qparams);
  Network clean_m(kN, kSeed);
  const auto base_m = adversarial_mean(clean_m, values, mparams);
  EXPECT_EQ(base_q.quality.corruption_exposure, 0.0);
  EXPECT_TRUE(base_q.quality.ok());
  EXPECT_EQ(base_q.served_nodes(), kN);

  GreedyTargetedAdversary greedy(0, 1e6);
  EclipseAdversary eclipse(3, 0);
  BudgetBurstAdversary burst(0, 4, 2);
  ScatterCorruptAdversary scatter(0, 1e6);
  AdversaryStrategy* strategies[] = {&greedy, &eclipse, &burst, &scatter};
  for (AdversaryStrategy* strategy : strategies) {
    Network net_q(kN, kSeed);
    net_q.set_adversary(strategy);
    expect_same_quantile(adversarial_quantile(net_q, values, qparams), base_q,
                         strategy->name());
    EXPECT_EQ(net_q.metrics(), clean_q.metrics()) << strategy->name();

    Network net_m(kN, kSeed);
    net_m.set_adversary(strategy);
    expect_same_mean(adversarial_mean(net_m, values, mparams), base_m,
                     strategy->name());

    for (unsigned threads : kThreadCounts) {
      Engine engine(kN, kSeed, FailureModel{}, config_for(threads));
      engine.set_adversary(strategy);
      expect_same_quantile(adversarial_quantile(engine, values, qparams),
                           base_q, strategy->name());
      EXPECT_EQ(engine.metrics(), clean_q.metrics())
          << strategy->name() << " threads=" << threads;
    }
  }
}

// ---- boundary: FailureModel is the oblivious special case -----------------

TEST(AdversaryBoundary, ObliviousAdversaryReproducesFailureModelExactly) {
  constexpr std::uint32_t kN = 1535;
  constexpr std::uint64_t kSeed = 937;
  const auto values = generate_values(Distribution::kUniformReal, kN, 103);
  const FailureModel fm = FailureModel::uniform(0.3);

  // Legacy robust pipeline: model-constructed reference.
  ApproxQuantileParams aparams;
  aparams.phi = 0.3;
  aparams.eps = 0.15;
  Network model_net(kN, kSeed, fm);
  const auto model_run = approx_quantile(model_net, values, aparams);

  // Same pipeline on a failure-free executor with the oblivious adversary:
  // the model is absorbed at install time, so sizing, coins, transcript and
  // Metrics must match bit for bit.
  ObliviousAdversary oblivious(fm);
  EXPECT_EQ(oblivious.oblivious_model()->max_probability(),
            fm.max_probability());
  Network adv_net(kN, kSeed);
  adv_net.set_adversary(&oblivious);
  EXPECT_EQ(adv_net.failures().max_probability(), fm.max_probability());
  const auto adv_run = approx_quantile(adv_net, values, aparams);
  EXPECT_EQ(adv_run.outputs, model_run.outputs);
  EXPECT_EQ(adv_run.valid, model_run.valid);
  EXPECT_EQ(adv_run.rounds, model_run.rounds);
  EXPECT_EQ(adv_net.metrics(), model_net.metrics());

  for (unsigned threads : kThreadCounts) {
    Engine engine(kN, kSeed, FailureModel{}, config_for(threads));
    engine.set_adversary(&oblivious);
    const auto par = approx_quantile(engine, values, aparams);
    EXPECT_EQ(par.outputs, model_run.outputs) << "threads=" << threads;
    EXPECT_EQ(par.valid, model_run.valid) << "threads=" << threads;
    EXPECT_EQ(par.rounds, model_run.rounds) << "threads=" << threads;
    EXPECT_EQ(engine.metrics(), model_net.metrics()) << "threads=" << threads;
  }

  // The adversarial pipeline sees the absorbed model as failed operations,
  // never as adversary faults — same identity there.
  AdversarialQuantileParams qparams;
  Network model_net2(kN, kSeed, fm);
  const auto model_q = adversarial_quantile(model_net2, values, qparams);
  Network adv_net2(kN, kSeed);
  adv_net2.set_adversary(&oblivious);
  const auto adv_q = adversarial_quantile(adv_net2, values, qparams);
  expect_same_quantile(adv_q, model_q, "adversarial pipeline oblivious");
  EXPECT_EQ(adv_q.quality.messages_dropped, 0u);
  EXPECT_GT(adv_q.quality.failed_operations, 0u);
  EXPECT_EQ(adv_net2.metrics(), model_net2.metrics());
}

// ---- ExactPipelineError parity under adversarial pressure -----------------

// Heavy oblivious noise plus an eclipse adversary makes the small-n exact
// endgame mis-count and abort.  The abort must be the same typed
// ExactPipelineError kind on both executors at every thread count.  The
// (deterministic) seed scan keeps the test robust to parameter drift: any
// seed that aborts sequentially must abort identically on the engine.
TEST(AdversaryErrors, ExactPipelineErrorKindsMatchOnBothExecutors) {
  constexpr std::uint32_t kN = 1024;
  const auto values = generate_values(Distribution::kGaussian, kN, 61);
  const FailureModel fm = FailureModel::uniform(0.3);

  ApproxQuantileParams params;
  params.phi = 0.5;
  params.eps = 0.05;  // below eps_tournament_floor(1024): exact fallback

  int aborts_found = 0;
  for (std::uint64_t seed = 601; seed < 641 && aborts_found < 2; ++seed) {
    EclipseAdversary eclipse(0, kN / 16);
    Network net(kN, seed, fm);
    net.set_adversary(&eclipse);
    ExactPipelineError::Kind seq_kind{};
    try {
      (void)approx_quantile(net, values, params);
      continue;  // this seed converged; try the next
    } catch (const ExactPipelineError& e) {
      seq_kind = e.kind();
    }
    ++aborts_found;
    for (unsigned threads : kThreadCounts) {
      Engine engine(kN, seed, fm, config_for(threads));
      engine.set_adversary(&eclipse);
      try {
        (void)approx_quantile(engine, values, params);
        ADD_FAILURE() << "engine converged where sequential aborted, seed="
                      << seed << " threads=" << threads;
      } catch (const ExactPipelineError& e) {
        EXPECT_EQ(e.kind(), seq_kind)
            << "seed=" << seed << " threads=" << threads;
      }
      EXPECT_EQ(engine.metrics(), net.metrics())
          << "seed=" << seed << " threads=" << threads;
    }
  }
  EXPECT_GE(aborts_found, 1)
      << "no abort scenario found in the seed range; tighten the adversary";
}

// ---- properties: graceful degradation -------------------------------------

TEST(AdversaryProperties, FilteredQuantileStaysAccurateUnderSmallBudget) {
  constexpr std::uint32_t kN = 4096;
  constexpr std::uint64_t kSeed = 941;
  const auto values = generate_values(Distribution::kUniformReal, kN, 107);
  const auto keys = make_keys(values);
  const RankScale scale(keys);

  AdversarialQuantileParams params;
  params.phi = 0.5;
  params.eps = 0.1;

  GreedyTargetedAdversary greedy(kN / 64, -1e9);
  Network net(kN, kSeed);
  net.set_adversary(&greedy);
  const auto result = adversarial_quantile(net, values, params);

  // The adversary hijacks at most budget nodes' channels per round; the
  // rest of the network must still land in the eps window.
  EXPECT_GE(result.quality.served_fraction, 0.95);
  EXPECT_TRUE(result.quality.ok());
  std::vector<Key> served;
  for (std::uint32_t v = 0; v < kN; ++v) {
    if (result.valid[v]) served.push_back(result.outputs[v]);
  }
  const auto summary =
      evaluate_outputs(scale, served, params.phi, params.eps);
  EXPECT_GE(summary.frac_within_eps, 0.85)
      << "max_abs_error=" << summary.max_abs_error;

  // Exposure accounting: the adversary touched traffic (corruptions), and
  // the tally is bounded by its budget times the rounds it saw.
  EXPECT_GT(result.quality.messages_corrupted, 0u);
  EXPECT_LE(result.quality.messages_corrupted,
            static_cast<std::uint64_t>(kN / 64) * result.rounds);
  EXPECT_GT(result.quality.corruption_exposure, 0.0);
  EXPECT_LT(result.quality.corruption_exposure, 0.1);
}

TEST(AdversaryProperties, MeanClipBoundsCorruptInfluence) {
  constexpr std::uint32_t kN = 2048;
  constexpr std::uint64_t kSeed = 947;
  const auto values = generate_values(Distribution::kUniformReal, kN, 109);
  double true_mean = 0.0;
  for (const double x : values) true_mean += x;
  true_mean /= kN;

  AdversarialMeanParams params;

  // Fault-free baseline: every node close to the true mean.
  Network clean(kN, kSeed);
  const auto base = adversarial_mean(clean, values, params);
  EXPECT_EQ(base.served_nodes(), kN);
  for (std::uint32_t v = 0; v < kN; v += 97) {
    EXPECT_NEAR(base.estimates[v], true_mean, 0.2) << "v=" << v;
  }

  // A corrupting adversary injecting a value 9 orders of magnitude outside
  // the data range.  Nodes the adversary hijacked during the clip-bound
  // sub-runs have poisoned bounds and cannot be protected — the guarantee
  // is for everyone else: their clip interval for uniform [0,1) data is
  // ~[-0.25, 1.25], so even a fully hijacked mean-phase channel cannot push
  // their estimate past it, let alone to 1e9.
  GreedyTargetedAdversary greedy(kN / 64, 1e9);
  Network net(kN, kSeed);
  net.set_adversary(&greedy);
  const auto result = adversarial_mean(net, values, params);
  EXPECT_GE(result.quality.served_fraction, 0.9);
  std::vector<double> errors;
  for (std::uint32_t v = 0; v < kN; ++v) {
    if (!result.valid[v]) continue;
    errors.push_back(std::abs(result.estimates[v] - true_mean));
  }
  ASSERT_FALSE(errors.empty());
  std::sort(errors.begin(), errors.end());
  const double median_err = errors[errors.size() / 2];
  const double p90_err = errors[errors.size() * 9 / 10];
  std::size_t beyond_clip = 0;
  for (const double e : errors) {
    if (e > 1.5) ++beyond_clip;
  }
  EXPECT_LE(median_err, 0.2);
  EXPECT_LE(p90_err, 1.5) << "90th-percentile error escaped the clip cap";
  // Only clip-poisoned nodes can blow past the cap, and the per-round
  // budget bounds how many of those there can be.
  EXPECT_LE(beyond_clip, errors.size() / 10)
      << beyond_clip << " of " << errors.size() << " estimates unclipped";
}

TEST(AdversaryProperties, EclipseDegradesOnlyTheEclipsedNodes) {
  constexpr std::uint32_t kN = 2048;
  constexpr std::uint64_t kSeed = 953;
  const auto values = generate_values(Distribution::kGaussian, kN, 113);

  AdversarialQuantileParams params;
  params.min_served_fraction = 0.99;  // make degradation observable

  constexpr std::uint32_t kFirst = 256;
  constexpr std::uint32_t kBudget = 128;
  EclipseAdversary eclipse(kFirst, kBudget);
  Network net(kN, kSeed);
  net.set_adversary(&eclipse);
  const auto result = adversarial_quantile(net, values, params);

  // Eclipsed nodes receive nothing: they cannot be served.
  for (std::uint32_t v = kFirst; v < kFirst + kBudget; ++v) {
    EXPECT_FALSE(result.valid[v]) << "v=" << v;
  }
  // Everyone else must be: an eclipse does not leak beyond its targets.
  for (std::uint32_t v = 0; v < kN; ++v) {
    if (v >= kFirst && v < kFirst + kBudget) continue;
    EXPECT_TRUE(result.valid[v]) << "v=" << v;
  }
  EXPECT_FALSE(result.quality.ok());  // 93.75% < 99% threshold
  EXPECT_GT(result.quality.messages_dropped, 0u);
}

// Delays actually deliver late rather than dropping: a burst adversary's
// transcript must differ from both the clean run and an equivalent-budget
// eclipse, and its tally must land in adversary_delayed only.
TEST(AdversaryProperties, BurstDelaysAreDelaysNotDrops) {
  constexpr std::uint32_t kN = 1024;
  constexpr std::uint64_t kSeed = 967;
  const auto values = generate_values(Distribution::kUniformReal, kN, 127);
  AdversarialQuantileParams params;

  BudgetBurstAdversary burst(kN / 8, 4, 2, 2, 11);
  Network net(kN, kSeed);
  net.set_adversary(&burst);
  const auto result = adversarial_quantile(net, values, params);
  EXPECT_GT(result.quality.messages_delayed, 0u);
  EXPECT_EQ(result.quality.messages_dropped, 0u);
  EXPECT_EQ(result.quality.messages_corrupted, 0u);
  // Delayed-but-delivered samples keep the network served.
  EXPECT_GE(result.quality.served_fraction, 0.99);
}

// ---- FailureModel::custom construction contract ---------------------------

TEST(FailureModelContract, CustomRejectsScheduleExceedingDeclaredBound) {
  // The footgun: a schedule whose values exceed the declared bound used to
  // silently starve the robust fan-out sizing.  Construction now probes a
  // fixed grid and throws.
  EXPECT_THROW(
      (void)FailureModel::custom(
          [](std::uint32_t, std::uint64_t) { return 0.9; }, 0.5),
      std::invalid_argument);
  EXPECT_THROW(
      (void)FailureModel::custom(
          [](std::uint32_t, std::uint64_t) { return -0.1; }, 0.5),
      std::invalid_argument);
  // Round-dependent violation inside the probe grid.
  EXPECT_THROW(
      (void)FailureModel::custom(
          [](std::uint32_t, std::uint64_t r) { return r > 100 ? 0.8 : 0.0; },
          0.5),
      std::invalid_argument);
  // A conforming schedule constructs fine and reports its bound.
  const FailureModel ok = FailureModel::custom(
      [](std::uint32_t v, std::uint64_t) { return v % 2 == 0 ? 0.25 : 0.0; },
      0.25);
  EXPECT_DOUBLE_EQ(ok.max_probability(), 0.25);
  EXPECT_FALSE(ok.never_fails());
}

}  // namespace
}  // namespace gq
