// Differential tests for the shared-schedule multi-quantile pipeline: the
// engine's q-lane kernels (engine/kernels.cpp) must produce bit-identical
// outputs, round counts, and Metrics to the sequential Network
// instantiation (core/multi_quantile.cpp) of the shared control flow in
// core/multi_pipeline.hpp — at 1, 2, and 8 threads, any gather block, and
// both intern thresholds.
#include <gtest/gtest.h>

#include <vector>

#include "core/multi_quantile.hpp"
#include "engine/engine.hpp"
#include "engine/pipelines.hpp"
#include "sim/network.hpp"
#include "workload/distributions.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

constexpr unsigned kThreadCounts[] = {1, 2, 8};

void expect_same(const MultiQuantileResult& par, const MultiQuantileResult& seq,
                 const char* label) {
  ASSERT_EQ(par.per_phi.size(), seq.per_phi.size()) << label;
  for (std::size_t i = 0; i < seq.per_phi.size(); ++i) {
    EXPECT_EQ(par.per_phi[i].outputs, seq.per_phi[i].outputs)
        << label << " target " << i;
    EXPECT_EQ(par.per_phi[i].valid, seq.per_phi[i].valid) << label;
    EXPECT_EQ(par.per_phi[i].phase1_iterations,
              seq.per_phi[i].phase1_iterations)
        << label;
    EXPECT_EQ(par.per_phi[i].phase2_iterations,
              seq.per_phi[i].phase2_iterations)
        << label;
    EXPECT_EQ(par.per_phi[i].rounds, seq.per_phi[i].rounds) << label;
  }
  EXPECT_EQ(par.rounds, seq.rounds) << label;
  EXPECT_EQ(par.shared_schedule, seq.shared_schedule) << label;
  EXPECT_EQ(par.unique_targets, seq.unique_targets) << label;
  EXPECT_TRUE(par.metrics == seq.metrics) << label;
}

TEST(EngineMulti, SharedScheduleMatchesNetwork) {
  constexpr std::uint32_t kN = 4096;
  constexpr std::uint64_t kSeed = 601;
  const auto values = generate_values(Distribution::kUniformReal, kN, 19);

  MultiQuantileParams params;
  params.phis = {0.5, 0.9, 0.99, 0.999};
  params.eps = 0.15;  // above eps_tournament_floor(4096) = 0.125

  Network net(kN, kSeed);
  const MultiQuantileResult seq = multi_quantile(net, values, params);
  ASSERT_TRUE(seq.shared_schedule);

  for (unsigned threads : kThreadCounts) {
    for (const std::uint32_t intern_min : {1u, 0u}) {
      Engine engine(kN, kSeed, FailureModel{},
                    EngineConfig{.threads = threads,
                                 .shard_size = 192,
                                 .intern_min_nodes = intern_min});
      const MultiQuantileResult par = multi_quantile(engine, values, params);
      expect_same(par, seq, "shared");
      EXPECT_EQ(engine.metrics(), net.metrics())
          << "threads=" << threads << " intern_min=" << intern_min;
    }
  }
}

TEST(EngineMulti, DuplicateTargetsMatchNetwork) {
  // Duplicated phis (deduped into lanes, mapped back per caller slot) and
  // a target set with an empty Phase-1 schedule (phi = 0.5 starts below
  // the 2-tournament threshold) must agree across executors too.
  constexpr std::uint32_t kN = 4096;
  constexpr std::uint64_t kSeed = 607;
  const auto values = generate_values(Distribution::kExponential, kN, 29);

  MultiQuantileParams params;
  params.phis = {0.5, 0.9, 0.5, 0.25, 0.9};
  params.eps = 0.15;

  Network net(kN, kSeed);
  const MultiQuantileResult seq = multi_quantile(net, values, params);
  ASSERT_TRUE(seq.shared_schedule);
  ASSERT_EQ(seq.unique_targets, 3u);

  for (unsigned threads : kThreadCounts) {
    Engine engine(kN, kSeed, FailureModel{},
                  EngineConfig{.threads = threads, .shard_size = 192,
                               .intern_min_nodes = 1});
    const MultiQuantileResult par = multi_quantile(engine, values, params);
    expect_same(par, seq, "duplicates");
    EXPECT_EQ(engine.metrics(), net.metrics()) << "threads=" << threads;
  }
}

TEST(EngineMulti, GatherBlockIsUnobservable) {
  constexpr std::uint32_t kN = 4096;
  constexpr std::uint64_t kSeed = 613;
  const auto values = generate_values(Distribution::kUniformReal, kN, 37);

  MultiQuantileParams params;
  params.phis = {0.1, 0.5, 0.9};
  params.eps = 0.15;

  Network net(kN, kSeed);
  const MultiQuantileResult seq = multi_quantile(net, values, params);

  for (const std::uint32_t block : {1u, 7u, 512u}) {
    Engine engine(kN, kSeed, FailureModel{},
                  EngineConfig{.threads = 2,
                               .shard_size = 192,
                               .gather_block = block,
                               .intern_min_nodes = 1});
    const MultiQuantileResult par = multi_quantile(engine, values, params);
    expect_same(par, seq, "block");
    EXPECT_EQ(engine.metrics(), net.metrics()) << "block=" << block;
  }
}

TEST(EngineMulti, RobustFallbackMatchesNetwork) {
  // Under a failure model the shared template routes both executors
  // through per-target robust pipelines; the differential guarantee must
  // hold there as well.
  constexpr std::uint32_t kN = 2048;
  constexpr std::uint64_t kSeed = 617;
  const auto values = generate_values(Distribution::kUniformReal, kN, 41);
  const FailureModel failures = FailureModel::uniform(0.1);

  MultiQuantileParams params;
  params.phis = {0.5, 0.9, 0.5};
  params.eps = 0.2;

  Network net(kN, kSeed, failures);
  const MultiQuantileResult seq = multi_quantile(net, values, params);
  ASSERT_FALSE(seq.shared_schedule);

  for (unsigned threads : kThreadCounts) {
    Engine engine(kN, kSeed, failures,
                  EngineConfig{.threads = threads, .shard_size = 192,
                               .intern_min_nodes = 1});
    const MultiQuantileResult par = multi_quantile(engine, values, params);
    expect_same(par, seq, "robust");
    EXPECT_EQ(engine.metrics(), net.metrics()) << "threads=" << threads;
  }
}

TEST(EngineMulti, SingleTargetSharedMatchesSingleTargetPipeline) {
  // On the engine too, a q = 1 shared run is bit-identical to the plain
  // approx_quantile pipeline (pinned separately from the Network twin).
  constexpr std::uint32_t kN = 4096;
  constexpr std::uint64_t kSeed = 619;
  const auto values = generate_values(Distribution::kUniformReal, kN, 43);

  Engine ref(kN, kSeed, FailureModel{},
             EngineConfig{.threads = 2, .shard_size = 192,
                          .intern_min_nodes = 1});
  ApproxQuantileParams ap;
  ap.phi = 0.9;
  ap.eps = 0.15;
  const ApproxQuantileResult one = approx_quantile(ref, values, ap);

  Engine engine(kN, kSeed, FailureModel{},
                EngineConfig{.threads = 2, .shard_size = 192,
                             .intern_min_nodes = 1});
  MultiQuantileParams params;
  params.phis = {0.9};
  params.eps = 0.15;
  const MultiQuantileResult r = multi_quantile(engine, values, params);
  ASSERT_TRUE(r.shared_schedule);
  EXPECT_EQ(r.per_phi[0].outputs, one.outputs);
  EXPECT_EQ(r.rounds, one.rounds);
  EXPECT_EQ(engine.metrics(), ref.metrics());
}

}  // namespace
}  // namespace gq
