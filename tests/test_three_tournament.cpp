#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "analysis/rank_stats.hpp"
#include "analysis/theory_bounds.hpp"
#include "core/three_tournament.hpp"
#include "workload/distributions.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

TEST(ThreeTournament, IterationsMatchScheduleAndRounds) {
  constexpr std::uint32_t kN = 2048;
  Network net(kN, 5);
  auto state =
      make_keys(generate_values(Distribution::kUniformPermutation, kN, 1));
  const auto outcome = three_tournament(net, state, 0.1, 15);
  EXPECT_EQ(outcome.iterations, outcome.schedule.iterations());
  EXPECT_LE(static_cast<double>(outcome.iterations),
            phase2_iteration_bound(0.1, kN) + 2.0);
  // 3 rounds per iteration plus K sampling rounds.
  EXPECT_EQ(net.metrics().rounds, 3 * outcome.iterations + 15);
}

class MedianConvergence
    : public ::testing::TestWithParam<std::tuple<Distribution, double>> {};

TEST_P(MedianConvergence, AllOutputsNearMedian) {
  const auto [dist, eps] = GetParam();
  constexpr std::uint32_t kN = 1 << 14;
  const auto keys = make_keys(generate_values(dist, kN, 7));
  const RankScale scale(keys);

  Network net(kN, 13);
  std::vector<Key> state(keys.begin(), keys.end());
  const auto outcome = three_tournament(net, state, eps, 15);

  const auto summary =
      evaluate_outputs(scale, outcome.outputs, 0.5, eps);
  EXPECT_GE(summary.frac_within_eps, 0.995)
      << "dist=" << to_string(dist) << " eps=" << eps
      << " max_err=" << summary.max_abs_error;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MedianConvergence,
    ::testing::Combine(::testing::Values(Distribution::kUniformPermutation,
                                         Distribution::kGaussian,
                                         Distribution::kZipf,
                                         Distribution::kDuplicateHeavy),
                       ::testing::Values(0.05, 0.1, 0.2)),
    [](const auto& info) {
      return to_string(std::get<0>(info.param)) + "_eps" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

TEST(ThreeTournament, EvenSampleSizeIsForcedOdd) {
  constexpr std::uint32_t kN = 512;
  Network net_even(kN, 3), net_odd(kN, 3);
  auto s1 =
      make_keys(generate_values(Distribution::kUniformPermutation, kN, 4));
  auto s2 = s1;
  const auto r_even = three_tournament(net_even, s1, 0.15, 14);
  const auto r_odd = three_tournament(net_odd, s2, 0.15, 15);
  // 14 is promoted to 15: identical transcripts.
  EXPECT_EQ(r_even.outputs, r_odd.outputs);
  EXPECT_EQ(net_even.metrics().rounds, net_odd.metrics().rounds);
}

TEST(ThreeTournament, LargerEpsTakesFewerIterations) {
  constexpr std::uint32_t kN = 4096;
  Network a(kN, 9), b(kN, 9);
  auto s1 =
      make_keys(generate_values(Distribution::kUniformPermutation, kN, 6));
  auto s2 = s1;
  const auto coarse = three_tournament(a, s1, 0.2, 15);
  const auto fine = three_tournament(b, s2, 0.02, 15);
  EXPECT_LT(coarse.iterations, fine.iterations);
}

TEST(ThreeTournament, SingleSampleFinalStepStillWorks) {
  // K = 1: every node outputs one sampled value; after convergence almost
  // all nodes hold median-window values anyway.
  constexpr std::uint32_t kN = 1 << 13;
  const auto keys =
      make_keys(generate_values(Distribution::kUniformReal, kN, 10));
  const RankScale scale(keys);
  Network net(kN, 21);
  std::vector<Key> state(keys.begin(), keys.end());
  const auto outcome = three_tournament(net, state, 0.1, 1);
  const auto summary = evaluate_outputs(scale, outcome.outputs, 0.5, 0.1);
  // With K=1 the residual ~n^(-1/3) tails leak straight into the outputs;
  // Lemma 2.17's amplification is what buys the last few percent.
  EXPECT_GE(summary.frac_within_eps, 0.90);
}

TEST(ThreeTournament, ConstantInputIsFixedPoint) {
  constexpr std::uint32_t kN = 256;
  Network net(kN, 2);
  const auto keys =
      make_keys(generate_values(Distribution::kConstant, kN, 1));
  std::vector<Key> state(keys.begin(), keys.end());
  const auto outcome = three_tournament(net, state, 0.1, 5);
  // All values share value 42; outputs must too.
  for (const Key& k : outcome.outputs) EXPECT_EQ(k.value, 42.0);
}

TEST(ThreeTournament, RejectsInvalidArguments) {
  Network net(64, 1);
  auto state =
      make_keys(generate_values(Distribution::kUniformPermutation, 64, 1));
  EXPECT_THROW((void)three_tournament(net, state, 0.0, 15),
               std::invalid_argument);
  EXPECT_THROW((void)three_tournament(net, state, 0.1, 0),
               std::invalid_argument);
  Network failing(64, 1, FailureModel::uniform(0.1));
  EXPECT_THROW((void)three_tournament(failing, state, 0.1, 15),
               std::invalid_argument);
}

}  // namespace
}  // namespace gq
