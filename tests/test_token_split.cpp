#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/token_split.hpp"
#include "workload/distributions.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

// Builds an instance where the first `valued` nodes hold distinct keys and
// the rest are valueless.
std::vector<Key> partial_instance(std::uint32_t n, std::uint32_t valued) {
  std::vector<Key> inst(n, Key::infinite());
  for (std::uint32_t v = 0; v < valued; ++v) {
    inst[v] = Key{static_cast<double>(v + 1), v, 0};
  }
  return inst;
}

TEST(TokenSplit, EveryValueGetsExactlyMultiplierCopies) {
  constexpr std::uint32_t kN = 1024;
  constexpr std::uint32_t kValued = 100;
  constexpr std::uint64_t kMult = 4;
  Network net(kN, 11);
  const auto inst = partial_instance(kN, kValued);
  const TokenSplitResult r = token_split_distribute(net, inst, kMult, 1u << 20);

  EXPECT_EQ(r.token_count, kMult * kValued);
  std::map<std::pair<double, std::uint32_t>, std::size_t> copies;
  std::size_t holders = 0;
  for (const Key& k : r.instance) {
    if (!k.is_finite()) continue;
    ++holders;
    ++copies[{k.value, k.id}];
  }
  // Every node holds at most one token, so holders == token count.
  EXPECT_EQ(holders, kMult * kValued);
  ASSERT_EQ(copies.size(), kValued);
  for (const auto& [vid, cnt] : copies) EXPECT_EQ(cnt, kMult);
}

TEST(TokenSplit, TagsAreFreshAndDistinct) {
  constexpr std::uint32_t kN = 512;
  Network net(kN, 3);
  const auto inst = partial_instance(kN, 50);
  const std::uint64_t base = 7ull << 32;
  const TokenSplitResult r = token_split_distribute(net, inst, 2, base);
  std::vector<std::uint64_t> tags;
  for (const Key& k : r.instance) {
    if (k.is_finite()) tags.push_back(k.tag);
  }
  std::sort(tags.begin(), tags.end());
  EXPECT_TRUE(std::adjacent_find(tags.begin(), tags.end()) == tags.end());
  for (auto t : tags) EXPECT_GE(t, base);
}

TEST(TokenSplit, MultiplierOneOnlyRedistributes) {
  constexpr std::uint32_t kN = 256;
  Network net(kN, 5);
  const auto inst = partial_instance(kN, 40);
  const TokenSplitResult r = token_split_distribute(net, inst, 1, 1u << 16);
  std::size_t holders = 0;
  for (const Key& k : r.instance) holders += k.is_finite() ? 1 : 0;
  EXPECT_EQ(holders, 40u);
}

TEST(TokenSplit, RoundsAreLogarithmic) {
  constexpr std::uint32_t kN = 1 << 13;
  Network net(kN, 7);
  const auto inst = partial_instance(kN, kN / 16);
  const TokenSplitResult r = token_split_distribute(net, inst, 8, 1u << 16);
  EXPECT_EQ(r.token_count, kN / 2);
  // lg(multiplier) split generations + scattering, all O(log n).
  EXPECT_LE(r.rounds, 60u);
}

TEST(TokenSplit, WorksUnderFailures) {
  constexpr std::uint32_t kN = 1024;
  Network net(kN, 13, FailureModel::uniform(0.4));
  const auto inst = partial_instance(kN, 64);
  const TokenSplitResult r = token_split_distribute(net, inst, 4, 1u << 16);
  std::map<std::pair<double, std::uint32_t>, std::size_t> copies;
  for (const Key& k : r.instance) {
    if (k.is_finite()) ++copies[{k.value, k.id}];
  }
  ASSERT_EQ(copies.size(), 64u);
  for (const auto& [vid, cnt] : copies) EXPECT_EQ(cnt, 4u);
}

TEST(TokenSplit, RejectsBadArguments) {
  constexpr std::uint32_t kN = 128;
  Network net(kN, 1);
  const auto inst = partial_instance(kN, 16);
  // Not a power of two.
  EXPECT_THROW((void)token_split_distribute(net, inst, 3, 0),
               std::invalid_argument);
  // Token count over the scattering capacity.
  EXPECT_THROW((void)token_split_distribute(net, inst, 16, 0),
               std::invalid_argument);
  // No valued nodes at all.
  const std::vector<Key> empty(kN, Key::infinite());
  EXPECT_THROW((void)token_split_distribute(net, empty, 2, 0),
               std::invalid_argument);
}

TEST(TokenSplit, ScatteringCapacityBoundaryIsExact) {
  // multiplier * finite <= 4n/5 + 1 is the admission rule: the largest
  // token count that fits must run, one more valued node must throw.
  constexpr std::uint32_t kN = 640;  // 4n/5 + 1 = 513
  constexpr std::uint64_t kMult = 8;
  Network ok_net(kN, 31);
  const auto ok_inst = partial_instance(kN, 64);  // 512 tokens
  const TokenSplitResult r = token_split_distribute(ok_net, ok_inst, kMult, 0);
  EXPECT_EQ(r.token_count, 512u);

  Network bad_net(kN, 31);
  const auto bad_inst = partial_instance(kN, 65);  // 520 tokens
  EXPECT_THROW((void)token_split_distribute(bad_net, bad_inst, kMult, 0),
               std::invalid_argument);
}

TEST(TokenSplit, SplittingConvergenceCapThrows) {
  // A failure probability this close to one stalls phase A past its
  // 64*log2(n) + 512 round cap; the run must fail loudly, not spin.
  constexpr std::uint32_t kN = 128;
  Network net(kN, 17, FailureModel::uniform(1.0 - 1e-9));
  const auto inst = partial_instance(kN, 8);
  EXPECT_THROW((void)token_split_distribute(net, inst, 4, 0),
               std::runtime_error);
}

TEST(TokenSplit, ScatteringConvergenceCapThrows) {
  // With multiplier 2, phase A is exactly one (failure-free) round; the 80
  // pushed halves then crowd some nodes, and failures switching on from
  // round 2 stall phase B against its 4x round cap.
  constexpr std::uint32_t kN = 128;
  const FailureModel fm = FailureModel::custom(
      [](std::uint32_t, std::uint64_t round) {
        return round >= 2 ? 1.0 - 1e-9 : 0.0;
      },
      1.0 - 1e-9);
  Network net(kN, 19, fm);
  const auto inst = partial_instance(kN, 40);
  EXPECT_THROW((void)token_split_distribute(net, inst, 2, 0),
               std::runtime_error);
}

TEST(TokenSplit, MessageBitsBillWeightAtMultiplierWidth) {
  // The weight field is billed at bit_width(multiplier), not a flat word:
  // key_bits(512) = 64 + 2*9 = 82, multiplier 4 adds 3 bits.
  constexpr std::uint32_t kN = 512;
  EXPECT_EQ(token_message_bits(kN, 4), key_bits(kN) + 3);
  EXPECT_EQ(token_message_bits(kN, 1), key_bits(kN) + 1);

  Network net(kN, 23);
  const auto inst = partial_instance(kN, 32);
  const Metrics before = net.metrics();
  const TokenSplitResult r = token_split_distribute(net, inst, 4, 0);
  const Metrics delta = net.metrics().since(before);
  EXPECT_EQ(delta.max_message_bits, token_message_bits(kN, 4));
  EXPECT_EQ(delta.message_bits, delta.messages * token_message_bits(kN, 4));
  EXPECT_GT(r.rounds, 0u);
}

TEST(TokenSplit, AccountsRoundsAndMessages) {
  constexpr std::uint32_t kN = 512;
  Network net(kN, 21);
  const auto inst = partial_instance(kN, 32);
  const Metrics before = net.metrics();
  const TokenSplitResult r = token_split_distribute(net, inst, 4, 0);
  const Metrics delta = net.metrics().since(before);
  EXPECT_EQ(delta.rounds, r.rounds);
  EXPECT_GT(delta.messages, 0u);
  // Splitting 32 tokens of weight 4 moves at least 32*(4-1) half-tokens...
  // actually exactly token_count - valued pushes in phase A plus scatter
  // pushes; at minimum the phase-A pushes happen.
  EXPECT_GE(delta.messages, r.token_count - 32);
}

}  // namespace
}  // namespace gq
