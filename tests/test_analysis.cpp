#include <gtest/gtest.h>

#include <cmath>

#include "analysis/rank_stats.hpp"
#include "analysis/recurrences.hpp"
#include "analysis/theory_bounds.hpp"
#include "workload/distributions.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

TEST(TwoTournamentSchedule, EmptyWhenAlreadyBelowTarget) {
  const auto s = two_tournament_schedule(0.2, 0.1);  // T = 0.4 > 0.2
  EXPECT_EQ(s.iterations(), 0u);
  ASSERT_EQ(s.h.size(), 1u);
  EXPECT_DOUBLE_EQ(s.h[0], 0.2);
}

TEST(TwoTournamentSchedule, SquaresUntilTarget) {
  const double eps = 0.1;
  const auto s = two_tournament_schedule(0.85, eps);
  ASSERT_GE(s.iterations(), 1u);
  const double target = 0.5 - eps;
  // All intermediate values follow h^2 exactly while delta == 1.
  for (std::size_t i = 0; i + 1 < s.iterations(); ++i) {
    EXPECT_DOUBLE_EQ(s.delta[i], 1.0);
    EXPECT_DOUBLE_EQ(s.h[i + 1], s.h[i] * s.h[i]);
    EXPECT_GT(s.h[i + 1], target);
  }
  // Truncated final iteration lands exactly on T.
  EXPECT_NEAR(s.h.back(), target, 1e-12);
  EXPECT_LE(s.delta.back(), 1.0);
}

TEST(TwoTournamentSchedule, FinalDeltaMatchesLemma24) {
  const double eps = 0.05;
  const auto s = two_tournament_schedule(1.0 - eps, eps);
  ASSERT_GE(s.iterations(), 2u);
  const double h = s.h[s.iterations() - 1];
  const double target = 0.5 - eps;
  const double expected_delta = (h - target) / (h - h * h);
  EXPECT_NEAR(s.delta.back(), expected_delta, 1e-12);
}

TEST(TwoTournamentSchedule, IterationCountWithinLemma22) {
  for (double eps : {0.2, 0.1, 0.05, 0.01, 0.001}) {
    const auto s = two_tournament_schedule(1.0 - eps, eps);
    EXPECT_LE(static_cast<double>(s.iterations()),
              phase1_iteration_bound(eps) + 1.0)
        << "eps=" << eps;
  }
}

TEST(ThreeTournamentSchedule, FollowsMedianMap) {
  const auto s = three_tournament_schedule(0.1, 1 << 16);
  ASSERT_GE(s.iterations(), 2u);
  for (std::size_t i = 0; i + 1 < s.l.size(); ++i) {
    EXPECT_DOUBLE_EQ(s.l[i + 1], median_map(s.l[i]));
  }
  const double target = std::pow(65536.0, -1.0 / 3.0);
  EXPECT_LE(s.l.back(), target);
  EXPECT_GT(s.l[s.l.size() - 2], target);
}

TEST(ThreeTournamentSchedule, IterationCountWithinLemma212) {
  for (double eps : {0.2, 0.1, 0.05, 0.01}) {
    for (std::uint32_t n : {1u << 10, 1u << 14, 1u << 20}) {
      const auto s = three_tournament_schedule(eps, n);
      EXPECT_LE(static_cast<double>(s.iterations()),
                phase2_iteration_bound(eps, n) + 2.0)
          << "eps=" << eps << " n=" << n;
    }
  }
}

TEST(MedianMap, FixedPointsAndMonotonicity) {
  EXPECT_DOUBLE_EQ(median_map(0.0), 0.0);
  EXPECT_DOUBLE_EQ(median_map(0.5), 0.5);
  EXPECT_DOUBLE_EQ(median_map(1.0), 1.0);
  EXPECT_LT(median_map(0.3), 0.3);   // below 1/2 contracts to 0
  EXPECT_GT(median_map(0.7), 0.7);   // above 1/2 expands to 1
}

TEST(TheoryBounds, LowerBoundGrowsWithBothParameters) {
  EXPECT_GT(lower_bound_rounds(0.01, 1 << 10),
            lower_bound_rounds(0.1, 1 << 10));
  EXPECT_GE(lower_bound_rounds(0.2, 1ull << 40),
            lower_bound_rounds(0.2, 1 << 10));
}

TEST(TheoryBounds, EpsFloorShrinksWithN) {
  EXPECT_GT(eps_tournament_floor(1 << 8), eps_tournament_floor(1 << 16));
  EXPECT_GT(eps_tournament_floor(1 << 16), eps_tournament_floor(1 << 24));
  EXPECT_LE(eps_tournament_floor(4), 0.25);
}

TEST(TheoryBounds, RobustPullCountGrowsWithMu) {
  const auto k0 = robust_pull_count(0.0, 4.0);
  const auto k5 = robust_pull_count(0.5, 4.0);
  const auto k9 = robust_pull_count(0.9, 4.0);
  EXPECT_GE(k0, 2u);
  EXPECT_GT(k5, k0);
  EXPECT_GT(k9, k5);
}

TEST(TheoryBounds, InvalidArgumentsThrow) {
  EXPECT_THROW((void)phase1_iteration_bound(0.0), std::invalid_argument);
  EXPECT_THROW((void)phase2_iteration_bound(0.6, 100),
               std::invalid_argument);
  EXPECT_THROW((void)robust_pull_count(1.0, 4.0), std::invalid_argument);
}

TEST(RankScale, RanksAndQuantiles) {
  const std::vector<double> xs = {30, 10, 20, 40, 50};
  const auto keys = make_keys(xs);
  const RankScale scale(keys);
  EXPECT_EQ(scale.size(), 5u);
  EXPECT_EQ(scale.rank(keys[1]), 1u);  // value 10
  EXPECT_EQ(scale.rank(keys[4]), 5u);  // value 50
  EXPECT_DOUBLE_EQ(scale.quantile_of(keys[2]), 0.4);  // value 20
  EXPECT_EQ(scale.key_at_rank(3).value, 30.0);
  EXPECT_EQ(scale.exact_quantile(0.5).value, 30.0);
  EXPECT_EQ(scale.exact_quantile(0.0).value, 10.0);
  EXPECT_EQ(scale.exact_quantile(1.0).value, 50.0);
}

TEST(RankScale, TargetRankClampsToValidRange) {
  const auto keys = make_keys(std::vector<double>{1, 2, 3, 4});
  const RankScale scale(keys);
  EXPECT_EQ(scale.target_rank(0.0), 1u);
  EXPECT_EQ(scale.target_rank(1.0), 4u);
  EXPECT_EQ(scale.target_rank(0.5), 2u);
}

TEST(RankScale, WithinEpsWindow) {
  const auto keys = make_keys(generate_values(
      Distribution::kUniformPermutation, 100, 3));
  const RankScale scale(keys);
  const Key& q40 = scale.key_at_rank(40);
  EXPECT_TRUE(scale.within_eps(q40, 0.5, 0.1));    // rank in [40, 60]
  EXPECT_FALSE(scale.within_eps(q40, 0.5, 0.05));  // rank in [45, 55]
  // Edge quantiles clamp to the valid rank range.
  EXPECT_TRUE(scale.within_eps(scale.key_at_rank(1), 0.0, 0.01));
  EXPECT_TRUE(scale.within_eps(scale.key_at_rank(100), 1.0, 0.01));
}

TEST(EvaluateOutputs, AggregatesCorrectly) {
  const auto keys = make_keys(generate_values(
      Distribution::kUniformPermutation, 100, 5));
  const RankScale scale(keys);
  // Outputs: 3 perfect medians and 1 gross outlier.
  std::vector<Key> outputs(3, scale.key_at_rank(50));
  outputs.push_back(scale.key_at_rank(95));
  const QuantileErrorSummary s = evaluate_outputs(scale, outputs, 0.5, 0.1);
  EXPECT_EQ(s.nodes, 4u);
  EXPECT_DOUBLE_EQ(s.frac_within_eps, 0.75);
  EXPECT_NEAR(s.max_abs_error, 0.45, 1e-12);
}

}  // namespace
}  // namespace gq
