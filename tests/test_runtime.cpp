#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "analysis/rank_stats.hpp"
#include "runtime/protocol.hpp"
#include "wire/codec.hpp"
#include "workload/distributions.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

// A trivial protocol that keeps the maximum payload it ever sees: the
// max-spreading process, used to test runtime mechanics.
class MaxProtocol final : public NodeProtocol {
 public:
  explicit MaxProtocol(const Key& initial) : state_(initial) {}
  [[nodiscard]] Key exposed() const override { return state_; }
  [[nodiscard]] bool wants_pull(std::uint64_t) const override { return true; }
  void deliver(std::uint64_t, const Key& payload) override {
    incoming_ = std::max(incoming_, payload);
    got_ = true;
  }
  void finish_round(std::uint64_t) override {
    if (got_) state_ = std::max(state_, incoming_);
    got_ = false;
    incoming_ = Key::neg_infinite();
  }
  [[nodiscard]] bool finished() const override { return false; }
  [[nodiscard]] const Key& state() const { return state_; }

 private:
  Key state_;
  Key incoming_ = Key::neg_infinite();
  bool got_ = false;
};

std::vector<std::unique_ptr<NodeProtocol>> make_max_protocols(
    std::span<const Key> keys) {
  std::vector<std::unique_ptr<NodeProtocol>> out;
  out.reserve(keys.size());
  for (const Key& k : keys) out.push_back(std::make_unique<MaxProtocol>(k));
  return out;
}

TEST(Runtime, SpreadsMaximumLikeTheAggPrimitive) {
  constexpr std::uint32_t kN = 1024;
  const auto keys =
      make_keys(generate_values(Distribution::kUniformReal, kN, 3));
  const Key truth = *std::max_element(keys.begin(), keys.end());

  Network net(kN, 7);
  auto protos = make_max_protocols(keys);
  const auto r =
      run_protocols(net, protos, 200, KeyCodec(kN).encoded_bits());
  EXPECT_EQ(r.rounds, 200u);  // MaxProtocol never finishes on its own
  for (const auto& p : protos) {
    EXPECT_EQ(static_cast<MaxProtocol*>(p.get())->state(), truth);
  }
}

TEST(Runtime, AccountsRoundsAndMessages) {
  constexpr std::uint32_t kN = 64;
  const auto keys =
      make_keys(generate_values(Distribution::kUniformPermutation, kN, 5));
  Network net(kN, 9);
  auto protos = make_max_protocols(keys);
  const std::uint64_t bits = KeyCodec(kN).encoded_bits();
  (void)run_protocols(net, protos, 10, bits);
  EXPECT_EQ(net.metrics().rounds, 10u);
  EXPECT_EQ(net.metrics().messages, 10u * kN);
  EXPECT_EQ(net.metrics().max_message_bits, bits);
}

TEST(Runtime, StopsWhenAllProtocolsFinish) {
  constexpr std::uint32_t kN = 256;
  const auto keys =
      make_keys(generate_values(Distribution::kUniformReal, kN, 11));
  Network net(kN, 13);
  std::vector<std::unique_ptr<NodeProtocol>> protos;
  for (const Key& k : keys) {
    protos.push_back(std::make_unique<MedianDynamicsProtocol>(k, 8));
  }
  const auto r =
      run_protocols(net, protos, 1000, KeyCodec(kN).encoded_bits());
  EXPECT_TRUE(r.all_finished);
  EXPECT_EQ(r.rounds, 16u);  // 8 iterations x 2 rounds, then all done
}

TEST(Runtime, MedianDynamicsConvergesToMedian) {
  constexpr std::uint32_t kN = 1 << 13;
  const auto keys =
      make_keys(generate_values(Distribution::kUniformReal, kN, 17));
  const RankScale scale(keys);

  Network net(kN, 19);
  std::vector<std::unique_ptr<NodeProtocol>> protos;
  const std::uint64_t iterations = 52;  // 4 log2 n
  for (const Key& k : keys) {
    protos.push_back(std::make_unique<MedianDynamicsProtocol>(k, iterations));
  }
  const auto r =
      run_protocols(net, protos, 10000, KeyCodec(kN).encoded_bits());
  ASSERT_TRUE(r.all_finished);

  std::vector<Key> outputs;
  outputs.reserve(kN);
  for (const auto& p : protos) {
    outputs.push_back(
        static_cast<MedianDynamicsProtocol*>(p.get())->state());
  }
  const auto s = evaluate_outputs(scale, outputs, 0.5, 0.05);
  EXPECT_GE(s.frac_within_eps, 0.95);
}

TEST(Runtime, MedianDynamicsToleratesFailures) {
  constexpr std::uint32_t kN = 4096;
  const auto keys =
      make_keys(generate_values(Distribution::kGaussian, kN, 23));
  const RankScale scale(keys);

  Network net(kN, 29, FailureModel::uniform(0.3));
  std::vector<std::unique_ptr<NodeProtocol>> protos;
  for (const Key& k : keys) {
    protos.push_back(std::make_unique<MedianDynamicsProtocol>(k, 96));
  }
  const auto r =
      run_protocols(net, protos, 10000, KeyCodec(kN).encoded_bits());
  ASSERT_TRUE(r.all_finished);
  std::vector<Key> outputs;
  for (const auto& p : protos) {
    outputs.push_back(
        static_cast<MedianDynamicsProtocol*>(p.get())->state());
  }
  const auto s = evaluate_outputs(scale, outputs, 0.5, 0.1);
  EXPECT_GE(s.frac_within_eps, 0.9);
}

TEST(Runtime, RejectsMismatchedSizes) {
  Network net(8, 1);
  std::vector<std::unique_ptr<NodeProtocol>> protos;  // empty
  EXPECT_THROW((void)run_protocols(net, protos, 10, 32),
               std::invalid_argument);
}

}  // namespace
}  // namespace gq
