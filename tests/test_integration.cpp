// Cross-module integration tests: full pipelines on realistic workloads.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "analysis/rank_stats.hpp"
#include "baselines/kdg03_quantile.hpp"
#include "core/approx_quantile.hpp"
#include "core/exact_quantile.hpp"
#include "core/own_rank.hpp"
#include "workload/scenario.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

TEST(Integration, SensorFieldHotQuantiles) {
  // The paper's motivating scenario: sensors computing the 10% and 90%
  // quantiles so each node can tell whether it needs special attention.
  constexpr std::uint32_t kN = 1 << 13;
  const auto readings = make_sensor_field(kN, 0.15, 5);
  const auto keys = make_keys(readings);
  const RankScale scale(keys);

  ApproxQuantileParams params;
  params.eps = 0.12;

  params.phi = 0.9;
  Network net_hi(kN, 3);
  const auto hi = approx_quantile(net_hi, readings, params);
  params.phi = 0.1;
  Network net_lo(kN, 4);
  const auto lo = approx_quantile(net_lo, readings, params);

  const auto s_hi = evaluate_outputs(scale, hi.outputs, 0.9, 0.12);
  const auto s_lo = evaluate_outputs(scale, lo.outputs, 0.1, 0.12);
  EXPECT_GE(s_hi.frac_within_eps, 0.99);
  EXPECT_GE(s_lo.frac_within_eps, 0.99);

  // Every node classifies itself; the hot sensors (readings near 80) must
  // land above the 90%-quantile estimate minus slack.
  std::size_t misclassified = 0;
  for (std::uint32_t v = 0; v < kN; ++v) {
    const bool is_hot = readings[v] > 50.0;
    const bool flagged = readings[v] >= hi.outputs[v].value;
    // Hot region is 15% of nodes; the 0.9-quantile splits it, so hot
    // nodes below the cut are fine — but a COLD node flagged as top-10% is
    // a real misclassification.
    if (!is_hot && flagged) ++misclassified;
  }
  EXPECT_LE(misclassified, kN / 50);
}

TEST(Integration, ExactMatchesKdg03OnSameInstance) {
  constexpr std::uint32_t kN = 1024;
  const auto trace = make_latency_trace(kN, 9);
  const auto keys = make_keys(trace);
  const RankScale scale(keys);

  for (double phi : {0.5, 0.95, 0.99}) {
    Network ours_net(kN, 11);
    ExactQuantileParams ep;
    ep.phi = phi;
    const auto ours = exact_quantile(ours_net, trace, ep);

    Network base_net(kN, 13);
    Kdg03Params kp;
    kp.phi = phi;
    const auto base = kdg03_exact_quantile(base_net, trace, kp);

    EXPECT_EQ(ours.answer.value, base.answer.value) << "phi=" << phi;
    EXPECT_EQ(ours.answer.value, scale.exact_quantile(phi).value);
  }
}

TEST(Integration, ApproxThenExactConsistency) {
  // The approximate answer's rank window must contain the exact answer.
  constexpr std::uint32_t kN = 1 << 13;
  const auto values = make_latency_trace(kN, 21);
  const auto keys = make_keys(values);
  const RankScale scale(keys);
  const double phi = 0.95, eps = 0.12;

  Network net_a(kN, 23);
  ApproxQuantileParams ap;
  ap.phi = phi;
  ap.eps = eps;
  const auto approx = approx_quantile(net_a, values, ap);

  Network net_e(kN, 25);
  ExactQuantileParams ep;
  ep.phi = phi;
  const auto exact = exact_quantile(net_e, values, ep);

  const double exact_q = scale.quantile_of(exact.answer);
  std::size_t consistent = 0;
  for (const Key& k : approx.outputs) {
    const double q = scale.quantile_of(k);
    consistent += (std::abs(q - exact_q) <= 2.0 * eps) ? 1 : 0;
  }
  EXPECT_GE(static_cast<double>(consistent) / kN, 0.99);
}

TEST(Integration, OwnRankAgreesWithExactQuantiles) {
  constexpr std::uint32_t kN = 1 << 13;
  const auto values = make_sensor_field(kN, 0.3, 31);
  const auto keys = make_keys(values);
  const RankScale scale(keys);

  Network net(kN, 33);
  OwnRankParams params;
  params.eps = 0.45;
  const auto r = own_rank(net, values, params);
  std::size_t ok = 0;
  for (std::uint32_t v = 0; v < kN; ++v) {
    ok += std::abs(r.estimates[v] - scale.quantile_of(keys[v])) <=
                  params.eps
              ? 1
              : 0;
  }
  EXPECT_GE(static_cast<double>(ok) / kN, 0.99);
}

TEST(Integration, MetricsComposeAcrossSequentialProtocols) {
  constexpr std::uint32_t kN = 1024;
  const auto values = make_latency_trace(kN, 41);
  Network net(kN, 43);

  ApproxQuantileParams ap;
  ap.phi = 0.5;
  ap.eps = 0.2;
  const auto r1 = approx_quantile(net, values, ap);
  const Metrics after_first = net.metrics();
  EXPECT_EQ(after_first.rounds, r1.rounds);

  ap.phi = 0.9;
  const auto r2 = approx_quantile(net, values, ap);
  EXPECT_EQ(net.metrics().rounds, r1.rounds + r2.rounds);
}

TEST(Integration, LargeScaleExactViaAutoStrategy) {
  constexpr std::uint32_t kN = 1 << 14;
  const auto values = make_latency_trace(kN, 51);
  const auto keys = make_keys(values);
  const RankScale scale(keys);

  Network net(kN, 53);
  ExactQuantileParams params;
  params.phi = 0.99;
  const auto r = exact_quantile(net, values, params);
  EXPECT_EQ(r.answer.value, scale.exact_quantile(0.99).value);
  // O(log n) with our constants: generously under 10000 rounds at n=2^14
  // (the KDG03 baseline needs more; see bench_exact_rounds).
  EXPECT_LE(r.rounds, 10000u);
}

}  // namespace
}  // namespace gq
