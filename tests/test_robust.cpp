#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "analysis/rank_stats.hpp"
#include "core/approx_quantile.hpp"
#include "core/robust.hpp"
#include "workload/distributions.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

std::size_t count_true(const std::vector<bool>& v) {
  return static_cast<std::size_t>(std::count(v.begin(), v.end(), true));
}

TEST(RobustTwoTournament, KeepsConstantFractionGood) {
  constexpr std::uint32_t kN = 4096;
  Network net(kN, 5, FailureModel::uniform(0.3));
  auto state =
      make_keys(generate_values(Distribution::kUniformReal, kN, 1));
  std::vector<bool> good(kN, true);
  const auto outcome = robust_two_tournament(net, state, good, 0.25, 0.15);
  EXPECT_GT(outcome.pulls_per_iteration, 2u);
  // Lemma 5.2: at least a constant fraction stays good (n/2 in the lemma;
  // assert n/3 to absorb constants).
  EXPECT_GE(count_true(good), kN / 3);
}

TEST(RobustTwoTournament, ZeroFailureMatchesPullFloor) {
  constexpr std::uint32_t kN = 512;
  Network net(kN, 7);  // no failures
  auto state =
      make_keys(generate_values(Distribution::kUniformReal, kN, 2));
  std::vector<bool> good(kN, true);
  const auto outcome = robust_two_tournament(net, state, good, 0.25, 0.15);
  // mu = 0: still needs >= 2 pulls but the fan-out collapses to a constant.
  EXPECT_GE(outcome.pulls_per_iteration, 2u);
  EXPECT_LE(outcome.pulls_per_iteration, 8u);
  EXPECT_EQ(count_true(good), kN);  // nothing fails, nobody turns bad
}

TEST(RobustThreeTournament, ProducesValidOutputs) {
  constexpr std::uint32_t kN = 4096;
  const auto keys =
      make_keys(generate_values(Distribution::kGaussian, kN, 3));
  const RankScale scale(keys);
  Network net(kN, 9, FailureModel::uniform(0.25));
  std::vector<Key> state(keys.begin(), keys.end());
  std::vector<bool> good(kN, true);
  const auto outcome = robust_three_tournament(net, state, good, 0.05, 15);
  const std::size_t valid = count_true(outcome.valid);
  EXPECT_GE(valid, kN / 3);
  // Valid outputs concentrate near the median.
  std::size_t ok = 0, total = 0;
  for (std::uint32_t v = 0; v < kN; ++v) {
    if (!outcome.valid[v]) continue;
    ++total;
    ok += scale.within_eps(outcome.outputs[v], 0.5, 0.2) ? 1 : 0;
  }
  EXPECT_GE(static_cast<double>(ok) / static_cast<double>(total), 0.95);
}

TEST(RobustCoverage, ServesAlmostEveryone) {
  constexpr std::uint32_t kN = 2048;
  Network net(kN, 11, FailureModel::uniform(0.2));
  // Half the nodes start served with a marker key.
  std::vector<Key> outputs(kN, Key::infinite());
  std::vector<bool> valid(kN, false);
  for (std::uint32_t v = 0; v < kN; v += 2) {
    outputs[v] = Key{1.0, 1, 0};
    valid[v] = true;
  }
  const std::uint64_t used = robust_coverage(net, outputs, valid, 12);
  EXPECT_LE(used, 12u);
  // Theorem 1.4 tail: all but ~n/2^t nodes; t=12 leaves about n/4096 < 4
  // expected, assert a loose 1%.
  EXPECT_GE(count_true(valid), kN - kN / 100);
  for (std::uint32_t v = 0; v < kN; ++v) {
    if (valid[v]) {
      EXPECT_EQ(outputs[v].value, 1.0);
    }
  }
}

TEST(RobustCoverage, StopsEarlyWhenAllServed) {
  constexpr std::uint32_t kN = 128;
  Network net(kN, 13);
  std::vector<Key> outputs(kN, Key{2.0, 0, 0});
  std::vector<bool> valid(kN, true);
  const std::uint64_t used = robust_coverage(net, outputs, valid, 50);
  EXPECT_EQ(used, 0u);
}

class RobustPipeline : public ::testing::TestWithParam<double /*mu*/> {};

TEST_P(RobustPipeline, ApproxQuantileUnderFailures) {
  const double mu = GetParam();
  constexpr std::uint32_t kN = 1 << 13;
  const double eps = 0.12;
  const auto values = generate_values(Distribution::kUniformReal, kN, 7);
  const auto keys = make_keys(values);
  const RankScale scale(keys);

  Network net(kN, 101, FailureModel::uniform(mu));
  ApproxQuantileParams params;
  params.phi = 0.25;
  params.eps = eps;
  params.robust_coverage_rounds = 14;
  const auto r = approx_quantile(net, values, params);

  // Theorem 1.4: all but ~n/2^t nodes served.
  EXPECT_GE(r.served_nodes(), kN - kN / 64) << "mu=" << mu;
  std::size_t ok = 0, total = 0;
  for (std::uint32_t v = 0; v < kN; ++v) {
    if (!r.valid[v]) continue;
    ++total;
    ok += scale.within_eps(r.outputs[v], 0.25, eps) ? 1 : 0;
  }
  EXPECT_GE(static_cast<double>(ok) / static_cast<double>(total), 0.97)
      << "mu=" << mu;
}

INSTANTIATE_TEST_SUITE_P(MuSweep, RobustPipeline,
                         ::testing::Values(0.1, 0.3, 0.5),
                         [](const auto& info) {
                           return "mu" + std::to_string(static_cast<int>(
                                             info.param * 100));
                         });

TEST(RobustPipeline, RoundsGrowWithMu) {
  constexpr std::uint32_t kN = 2048;
  const auto values = generate_values(Distribution::kUniformReal, kN, 9);
  ApproxQuantileParams params;
  params.phi = 0.5;
  params.eps = 0.15;

  Network calm(kN, 55);
  Network stormy(kN, 55, FailureModel::uniform(0.5));
  const auto r_calm = approx_quantile(calm, values, params);
  const auto r_stormy = approx_quantile(stormy, values, params);
  // The robust variant pays a constant-factor fan-out, not an asymptotic
  // penalty.
  EXPECT_GT(r_stormy.rounds, r_calm.rounds);
  EXPECT_LT(r_stormy.rounds, 40 * r_calm.rounds);
}

}  // namespace
}  // namespace gq
