#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "analysis/rank_stats.hpp"
#include "analysis/theory_bounds.hpp"
#include "core/two_tournament.hpp"
#include "workload/distributions.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

// Fraction of `state` whose ORIGINAL quantile exceeds phi + eps (the H set).
double high_fraction(const RankScale& scale, std::span<const Key> state,
                     double phi, double eps) {
  std::size_t h = 0;
  for (const Key& k : state) {
    if (scale.quantile_of(k) > phi + eps) ++h;
  }
  return static_cast<double>(h) / static_cast<double>(state.size());
}

double low_fraction(const RankScale& scale, std::span<const Key> state,
                    double phi, double eps) {
  std::size_t l = 0;
  for (const Key& k : state) {
    if (scale.quantile_of(k) < phi - eps) ++l;
  }
  return static_cast<double>(l) / static_cast<double>(state.size());
}

TEST(TournamentSide, PicksDominantTail) {
  // phi = 0.25: 70% of mass lies above phi+eps -> suppress the high side.
  EXPECT_EQ(tournament_side(0.25, 0.05).first,
            TournamentSide::kSuppressHigh);
  // phi = 0.9: low side dominates.
  EXPECT_EQ(tournament_side(0.9, 0.05).first, TournamentSide::kSuppressLow);
  // Symmetric median target: high side by tie-break (h0 == l0).
  EXPECT_EQ(tournament_side(0.5, 0.1).first, TournamentSide::kSuppressHigh);
}

TEST(TournamentSide, InitialFractionClamped) {
  const auto [side, start] = tournament_side(0.02, 0.1);
  EXPECT_EQ(side, TournamentSide::kSuppressHigh);
  EXPECT_DOUBLE_EQ(start, 1.0 - 0.12);
  const auto [side2, start2] = tournament_side(1.0, 0.1);
  EXPECT_EQ(side2, TournamentSide::kSuppressLow);
  EXPECT_DOUBLE_EQ(start2, 0.9);
}

TEST(TwoTournament, IterationsMatchSchedule) {
  constexpr std::uint32_t kN = 2048;
  Network net(kN, 5);
  auto state =
      make_keys(generate_values(Distribution::kUniformPermutation, kN, 1));
  const double phi = 0.25, eps = 0.1;
  const auto outcome = two_tournament(net, state, phi, eps);
  EXPECT_EQ(outcome.iterations, outcome.schedule.iterations());
  EXPECT_LE(static_cast<double>(outcome.iterations),
            phase1_iteration_bound(eps) + 1.0);
  // Two rounds per iteration.
  EXPECT_EQ(net.metrics().rounds, 2 * outcome.iterations);
}

TEST(TwoTournament, DrivesHighFractionToTarget) {
  constexpr std::uint32_t kN = 1 << 14;
  const double phi = 0.25, eps = 0.1;
  const auto keys =
      make_keys(generate_values(Distribution::kUniformReal, kN, 3));
  const RankScale scale(keys);

  Network net(kN, 11);
  std::vector<Key> state(keys.begin(), keys.end());
  two_tournament(net, state, phi, eps);

  // Lemma 2.6: |H_t|/n in T +- eps/2 with T = 1/2 - eps; allow eps slop.
  const double h = high_fraction(scale, state, phi, eps);
  EXPECT_NEAR(h, 0.5 - eps, eps);
  // Lemma 2.10: the middle band survives with |M_t|/n >= 7eps/4 (allow
  // slack down to eps).
  const double m = 1.0 - h - low_fraction(scale, state, phi, eps);
  EXPECT_GE(m, eps);
}

TEST(TwoTournament, ShiftsTargetWindowOntoMedian) {
  // Lemma 2.11: after Phase I, every quantile of the NEW configuration in
  // [1/2 - eps/4, 1/2 + eps/4] is a value from the original
  // [phi - eps, phi + eps] window.
  constexpr std::uint32_t kN = 1 << 14;
  const double phi = 0.3, eps = 0.08;
  const auto keys =
      make_keys(generate_values(Distribution::kGaussian, kN, 17));
  const RankScale scale(keys);

  Network net(kN, 23);
  std::vector<Key> state(keys.begin(), keys.end());
  two_tournament(net, state, phi, eps);

  const RankScale after(state);
  for (double q : {0.5 - eps / 4.0, 0.5, 0.5 + eps / 4.0}) {
    const Key& mid = after.exact_quantile(q);
    EXPECT_TRUE(scale.within_eps(mid, phi, eps))
        << "new-config quantile " << q << " maps to original quantile "
        << scale.quantile_of(mid);
  }
}

TEST(TwoTournament, LowSideSymmetric) {
  constexpr std::uint32_t kN = 1 << 13;
  const double phi = 0.85, eps = 0.1;
  const auto keys =
      make_keys(generate_values(Distribution::kExponential, kN, 29));
  const RankScale scale(keys);

  Network net(kN, 31);
  std::vector<Key> state(keys.begin(), keys.end());
  const auto outcome = two_tournament(net, state, phi, eps);
  EXPECT_EQ(outcome.side, TournamentSide::kSuppressLow);
  EXPECT_NEAR(low_fraction(scale, state, phi, eps), 0.5 - eps, eps);
}

TEST(TwoTournament, ObserverSeesEveryIteration) {
  constexpr std::uint32_t kN = 512;
  Network net(kN, 7);
  auto state =
      make_keys(generate_values(Distribution::kUniformPermutation, kN, 2));
  std::vector<std::size_t> seen;
  const auto outcome = two_tournament(
      net, state, 0.25, 0.15, true,
      [&](std::size_t iter, std::span<const Key> s) {
        seen.push_back(iter);
        EXPECT_EQ(s.size(), kN);
      });
  ASSERT_EQ(seen.size(), outcome.iterations);
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i + 1);
}

TEST(TwoTournament, TruncationAblationOvershoots) {
  // Without the delta coin the final iteration squares h all the way past
  // the target, leaving fewer high-side survivors than the truncated run.
  constexpr std::uint32_t kN = 1 << 14;
  const double phi = 0.25, eps = 0.1;
  const auto keys =
      make_keys(generate_values(Distribution::kUniformReal, kN, 41));
  const RankScale scale(keys);

  Network net_trunc(kN, 43), net_plain(kN, 43);
  std::vector<Key> s_trunc(keys.begin(), keys.end());
  std::vector<Key> s_plain(keys.begin(), keys.end());
  two_tournament(net_trunc, s_trunc, phi, eps, true);
  two_tournament(net_plain, s_plain, phi, eps, false);

  const double h_trunc = high_fraction(scale, s_trunc, phi, eps);
  const double h_plain = high_fraction(scale, s_plain, phi, eps);
  EXPECT_LT(h_plain, h_trunc);
  EXPECT_LT(h_plain, 0.5 - 1.5 * eps);  // overshoot past T
}

TEST(TwoTournament, NoIterationsWhenTargetIsMedianish) {
  // phi = 0.5, large eps: h0 = 1/2 - eps <= T, schedule empty.
  constexpr std::uint32_t kN = 256;
  Network net(kN, 3);
  auto state =
      make_keys(generate_values(Distribution::kUniformPermutation, kN, 9));
  const auto before = state;
  const auto outcome = two_tournament(net, state, 0.5, 0.2);
  EXPECT_EQ(outcome.iterations, 0u);
  EXPECT_EQ(state, before);
  EXPECT_EQ(net.metrics().rounds, 0u);
}

TEST(TwoTournament, RejectsInvalidArguments) {
  Network net(64, 1);
  auto state =
      make_keys(generate_values(Distribution::kUniformPermutation, 64, 1));
  EXPECT_THROW((void)two_tournament(net, state, -0.1, 0.1),
               std::invalid_argument);
  EXPECT_THROW((void)two_tournament(net, state, 0.5, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)two_tournament(net, state, 0.5, 0.5),
               std::invalid_argument);
  std::vector<Key> short_state(32);
  EXPECT_THROW((void)two_tournament(net, short_state, 0.5, 0.1),
               std::invalid_argument);
}

TEST(TwoTournament, RefusesFailureModel) {
  Network net(64, 1, FailureModel::uniform(0.2));
  auto state =
      make_keys(generate_values(Distribution::kUniformPermutation, 64, 1));
  EXPECT_THROW((void)two_tournament(net, state, 0.25, 0.1),
               std::invalid_argument);
}

}  // namespace
}  // namespace gq
