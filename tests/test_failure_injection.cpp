// Adversarial failure schedules beyond the uniform model: bursts, targeted
// nodes and round-dependent probabilities.  The substrates must degrade
// gracefully (mass conservation, eventual convergence), matching the
// pre-determined p_{v,i} model of Section 5.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "agg/push_sum.hpp"
#include "agg/rank_count.hpp"
#include "agg/spread.hpp"
#include "analysis/rank_stats.hpp"
#include "core/approx_quantile.hpp"
#include "workload/distributions.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

FailureModel burst(std::uint64_t from, std::uint64_t to, double p) {
  return FailureModel::custom(
      [from, to, p](std::uint32_t, std::uint64_t round) {
        return (round >= from && round <= to) ? p : 0.0;
      },
      p);
}

TEST(FailureInjection, BurstRoundsActuallyFail) {
  constexpr std::uint32_t kN = 256;
  Network net(kN, 3, burst(3, 5, 0.9));
  for (int r = 1; r <= 8; ++r) {
    const auto peers = net.pull_round(16);
    const auto failed = static_cast<double>(
        std::count(peers.begin(), peers.end(), Network::kNoPeer));
    if (r >= 3 && r <= 5) {
      EXPECT_GE(failed / kN, 0.8) << "round " << r;
    } else {
      EXPECT_EQ(failed, 0.0) << "round " << r;
    }
  }
}

TEST(FailureInjection, PushSumConservesMassThroughBurst) {
  constexpr std::uint32_t kN = 512;
  Network net(kN, 5, burst(10, 40, 0.95));
  const auto xs = generate_values(Distribution::kExponential, kN, 7);
  const double truth =
      std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(kN);
  // Generous round budget: the burst stalls diffusion for 30 rounds.
  const auto r = push_sum_average(net, xs, 220);
  for (double e : r.estimates) EXPECT_NEAR(e, truth, 1e-4);
}

TEST(FailureInjection, SpreadSurvivesTotalBlackout) {
  // Everything fails for 20 straight rounds mid-spread; convergence must
  // still happen afterwards.
  constexpr std::uint32_t kN = 1024;
  Network net(kN, 9, burst(5, 24, 0.99));
  const auto keys =
      make_keys(generate_values(Distribution::kUniformReal, kN, 11));
  const Key truth = *std::max_element(keys.begin(), keys.end());
  const auto r = spread_max(net, keys, 400);
  EXPECT_TRUE(r.converged);
  for (const Key& k : r.values) EXPECT_EQ(k, truth);
}

TEST(FailureInjection, CountingExactDespiteTargetedNodes) {
  // A third of the nodes (including all holders of 'true') are unreliable.
  constexpr std::uint32_t kN = 300;
  std::vector<double> probs(kN, 0.0);
  std::vector<bool> indicator(kN, false);
  for (std::uint32_t v = 0; v < kN / 3; ++v) {
    probs[v] = 0.6;
    indicator[v] = true;
  }
  Network net(kN, 13, FailureModel::per_node(probs));
  const auto r = gossip_count(net, indicator);
  for (auto c : r.counts) EXPECT_EQ(c, kN / 3);
}

TEST(FailureInjection, RobustApproxWithHeterogeneousNodes) {
  // Half the network is flaky (50% loss), half is perfect: accuracy must
  // hold for the nodes that are served.
  constexpr std::uint32_t kN = 4096;
  std::vector<double> probs(kN, 0.0);
  for (std::uint32_t v = 0; v < kN; v += 2) probs[v] = 0.5;
  const auto values = generate_values(Distribution::kUniformReal, kN, 17);
  const RankScale scale(make_keys(values));

  Network net(kN, 19, FailureModel::per_node(probs));
  ApproxQuantileParams params;
  params.phi = 0.75;
  params.eps = 0.15;
  const auto r = approx_quantile(net, values, params);
  EXPECT_GE(r.served_nodes(), kN - kN / 32);
  std::size_t ok = 0, total = 0;
  for (std::uint32_t v = 0; v < kN; ++v) {
    if (!r.valid[v]) continue;
    ++total;
    ok += scale.within_eps(r.outputs[v], 0.75, 0.15) ? 1 : 0;
  }
  EXPECT_GE(static_cast<double>(ok) / static_cast<double>(total), 0.97);
}

TEST(FailureInjection, LateRoundFailuresOnlyDelayConvergence) {
  // Failure probability grows with the round index (battery exhaustion):
  // early progress is clean, the tail drags but converges.
  constexpr std::uint32_t kN = 512;
  const FailureModel fm = FailureModel::custom(
      [](std::uint32_t, std::uint64_t round) {
        return std::min(0.8, static_cast<double>(round) / 100.0);
      },
      0.8);
  Network net(kN, 23, fm);
  const auto keys =
      make_keys(generate_values(Distribution::kGaussian, kN, 29));
  const Key truth = *std::min_element(keys.begin(), keys.end());
  const auto r = spread_min(net, keys, 600);
  EXPECT_TRUE(r.converged);
  for (const Key& k : r.values) EXPECT_EQ(k, truth);
}

}  // namespace
}  // namespace gq
