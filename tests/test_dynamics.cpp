// Tests for the dynamics baselines: the Doerr et al. median rule and the
// frugal streaming adaptation.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "analysis/rank_stats.hpp"
#include "baselines/frugal.hpp"
#include "baselines/median_rule.hpp"
#include "workload/distributions.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

TEST(MedianRule, ConvergesToMedianNeighbourhood) {
  constexpr std::uint32_t kN = 1 << 13;
  const auto values = generate_values(Distribution::kUniformReal, kN, 3);
  const auto keys = make_keys(values);
  const RankScale scale(keys);

  Network net(kN, 7);
  MedianRuleParams params;  // default 4 log2 n iterations
  const auto r = median_rule(net, values, params);
  EXPECT_EQ(r.rounds, 2 * r.iterations);

  const auto summary = evaluate_outputs(scale, r.outputs, 0.5, 0.05);
  EXPECT_GE(summary.frac_within_eps, 0.95);
}

TEST(MedianRule, CannotTargetGeneralQuantiles) {
  // The rule always drifts to the median: run it and verify the 0.9
  // quantile is NOT what it produces (this is exactly the gap the paper's
  // Phase I closes).
  constexpr std::uint32_t kN = 4096;
  const auto values =
      generate_values(Distribution::kUniformPermutation, kN, 5);
  const auto keys = make_keys(values);
  const RankScale scale(keys);

  Network net(kN, 9);
  const auto r = median_rule(net, values, MedianRuleParams{});
  const auto at_p90 = evaluate_outputs(scale, r.outputs, 0.9, 0.1);
  EXPECT_LE(at_p90.frac_within_eps, 0.05);
}

TEST(MedianRule, MoreIterationsTightenConcentration) {
  constexpr std::uint32_t kN = 4096;
  const auto values = generate_values(Distribution::kGaussian, kN, 11);
  const auto keys = make_keys(values);
  const RankScale scale(keys);

  Network a(kN, 13), b(kN, 13);
  MedianRuleParams few;
  few.iterations = 4;
  MedianRuleParams many;
  many.iterations = 48;
  const auto r_few = median_rule(a, values, few);
  const auto r_many = median_rule(b, values, many);
  const auto s_few = evaluate_outputs(scale, r_few.outputs, 0.5, 0.05);
  const auto s_many = evaluate_outputs(scale, r_many.outputs, 0.5, 0.05);
  EXPECT_GT(s_many.frac_within_eps, s_few.frac_within_eps);
}

TEST(MedianRule, ToleratesFailures) {
  constexpr std::uint32_t kN = 4096;
  const auto values = generate_values(Distribution::kUniformReal, kN, 17);
  const auto keys = make_keys(values);
  const RankScale scale(keys);
  Network net(kN, 19, FailureModel::uniform(0.3));
  MedianRuleParams params;
  params.iterations = 96;  // failures slow mixing; give it extra time
  const auto r = median_rule(net, values, params);
  const auto summary = evaluate_outputs(scale, r.outputs, 0.5, 0.1);
  EXPECT_GE(summary.frac_within_eps, 0.9);
}

TEST(Frugal, WalksTowardsTargetQuantile) {
  constexpr std::uint32_t kN = 1 << 13;
  const auto values = generate_values(Distribution::kUniformReal, kN, 23);
  const auto keys = make_keys(values);
  const RankScale scale(keys);

  Network net(kN, 29);
  FrugalParams params;
  params.phi = 0.8;
  params.rounds = 2048;
  const auto r = frugal_quantile(net, values, params);
  ASSERT_EQ(r.estimates.size(), kN);

  // Estimates are scalars, not input values: judge by rank of the estimate.
  std::size_t ok = 0;
  for (const double est : r.estimates) {
    const Key probe{est, std::numeric_limits<std::uint32_t>::max(),
                    std::numeric_limits<std::uint64_t>::max()};
    const double q = scale.quantile_of(probe);
    ok += std::abs(q - 0.8) <= 0.15 ? 1 : 0;
  }
  EXPECT_GE(static_cast<double>(ok) / kN, 0.8);
}

TEST(Frugal, NeedsManyMoreRoundsThanTournaments) {
  // With a tournament-like round budget the walk has not mixed: most nodes
  // are still far from the target.  This is the bench_dynamics story in
  // unit-test form.
  constexpr std::uint32_t kN = 1 << 13;
  const auto values = generate_values(Distribution::kGaussian, kN, 31);
  const auto keys = make_keys(values);
  const RankScale scale(keys);

  Network net(kN, 37);
  FrugalParams params;
  params.phi = 0.9;
  params.rounds = 40;  // what the tournament pipeline needs end-to-end
  const auto r = frugal_quantile(net, values, params);
  std::size_t ok = 0;
  for (const double est : r.estimates) {
    const Key probe{est, std::numeric_limits<std::uint32_t>::max(),
                    std::numeric_limits<std::uint64_t>::max()};
    ok += std::abs(scale.quantile_of(probe) - 0.9) <= 0.1 ? 1 : 0;
  }
  EXPECT_LE(static_cast<double>(ok) / kN, 0.5);
}

TEST(Frugal, ExplicitStepIsRespected) {
  constexpr std::uint32_t kN = 512;
  const auto values =
      generate_values(Distribution::kUniformPermutation, kN, 41);
  Network net(kN, 43);
  FrugalParams params;
  params.phi = 0.5;
  params.rounds = 100;
  params.step = 4.0;
  const auto r = frugal_quantile(net, values, params);
  // Every estimate stays on the own-value + multiple-of-step lattice.
  for (std::uint32_t v = 0; v < kN; ++v) {
    const double delta = r.estimates[v] - values[v];
    EXPECT_NEAR(std::remainder(delta, 4.0), 0.0, 1e-9);
  }
}

TEST(Frugal, RejectsInvalidParams) {
  Network net(64, 1);
  const auto values =
      generate_values(Distribution::kUniformPermutation, 64, 1);
  FrugalParams params;
  params.phi = -0.1;
  EXPECT_THROW((void)frugal_quantile(net, values, params),
               std::invalid_argument);
  params.phi = 0.5;
  params.step = -1.0;
  EXPECT_THROW((void)frugal_quantile(net, values, params),
               std::invalid_argument);
}

}  // namespace
}  // namespace gq
