#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/failure_model.hpp"
#include "sim/key.hpp"
#include "sim/network.hpp"
#include "sim/trace.hpp"

namespace gq {
namespace {

TEST(Key, OrderingIsLexicographic) {
  const Key a{1.0, 0, 0};
  const Key b{1.0, 1, 0};
  const Key c{1.0, 1, 5};
  const Key d{2.0, 0, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(c, d);
  EXPECT_TRUE(b.same_value(c));
  EXPECT_FALSE(a.same_value(b));
}

TEST(Key, InfiniteSentinelsBracketEverything) {
  const Key mid{1e300, 4000000000u, 9};
  EXPECT_LT(mid, Key::infinite());
  EXPECT_LT(Key::neg_infinite(), mid);
  EXPECT_FALSE(Key::infinite().is_finite());
  EXPECT_FALSE(Key::neg_infinite().is_finite());
  EXPECT_TRUE(mid.is_finite());
}

TEST(KeyBits, GrowsLogarithmically) {
  EXPECT_EQ(key_bits(2), 64u + 2u);
  EXPECT_EQ(key_bits(1024), 64u + 20u);
  EXPECT_LT(key_bits(1u << 20), 64u + 2 * 21u + 1);
}

TEST(Network, RejectsTrivialSizes) {
  EXPECT_THROW(Network(0, 1), std::invalid_argument);
  EXPECT_THROW(Network(1, 1), std::invalid_argument);
  EXPECT_NO_THROW(Network(2, 1));
}

TEST(Network, RoundCounterAdvances) {
  Network net(8, 1);
  EXPECT_EQ(net.round(), 0u);
  EXPECT_EQ(net.begin_round(), 1u);
  EXPECT_EQ(net.begin_round(), 2u);
  EXPECT_EQ(net.metrics().rounds, 2u);
}

TEST(Network, SamplePeerNeverReturnsSelf) {
  Network net(16, 99);
  for (int r = 0; r < 50; ++r) {
    net.begin_round();
    for (std::uint32_t v = 0; v < net.size(); ++v) {
      SplitMix64 s = net.node_stream(v);
      for (int i = 0; i < 4; ++i) {
        const std::uint32_t p = net.sample_peer(v, s);
        EXPECT_NE(p, v);
        EXPECT_LT(p, net.size());
      }
    }
  }
}

TEST(Network, PeerSamplingIsUniformOverOthers) {
  constexpr std::uint32_t kN = 8;
  Network net(kN, 5);
  std::vector<int> counts(kN, 0);
  constexpr int kRounds = 40000;
  for (int r = 0; r < kRounds; ++r) {
    net.begin_round();
    SplitMix64 s = net.node_stream(0);
    ++counts[net.sample_peer(0, s)];
  }
  EXPECT_EQ(counts[0], 0);  // never self
  const double expected = static_cast<double>(kRounds) / (kN - 1);
  for (std::uint32_t v = 1; v < kN; ++v) {
    EXPECT_NEAR(counts[v], expected, 5.0 * std::sqrt(expected));
  }
}

TEST(Network, SameSeedSameTranscript) {
  const auto transcript = [](std::uint64_t seed) {
    Network net(32, seed);
    std::vector<std::uint32_t> t;
    for (int r = 0; r < 20; ++r) {
      auto peers = net.pull_round(16);
      t.insert(t.end(), peers.begin(), peers.end());
    }
    return t;
  };
  EXPECT_EQ(transcript(7), transcript(7));
  EXPECT_NE(transcript(7), transcript(8));
}

TEST(Network, NodeRandomnessIndependentOfQueryOrder) {
  Network a(16, 3), b(16, 3);
  a.begin_round();
  b.begin_round();
  // Query in opposite orders; per-node draws must agree.
  std::vector<std::uint32_t> fwd(16), bwd(16);
  for (std::uint32_t v = 0; v < 16; ++v) {
    SplitMix64 s = a.node_stream(v);
    fwd[v] = a.sample_peer(v, s);
  }
  for (int v = 15; v >= 0; --v) {
    SplitMix64 s = b.node_stream(static_cast<std::uint32_t>(v));
    bwd[v] = b.sample_peer(static_cast<std::uint32_t>(v), s);
  }
  EXPECT_EQ(fwd, bwd);
}

TEST(Network, PullRoundAccountsMessages) {
  Network net(10, 2);
  const auto peers = net.pull_round(24);
  EXPECT_EQ(peers.size(), 10u);
  EXPECT_EQ(net.metrics().messages, 10u);
  EXPECT_EQ(net.metrics().message_bits, 240u);
  EXPECT_EQ(net.metrics().max_message_bits, 24u);
  EXPECT_EQ(net.metrics().failed_operations, 0u);
}

TEST(Network, DefaultMessageBitsIsLogarithmic) {
  Network small(16, 1), big(1 << 20, 1);
  EXPECT_EQ(small.default_message_bits(), 2 * 4u);
  EXPECT_EQ(big.default_message_bits(), 2 * 20u);
}

TEST(FailureModel, NeverFailsByDefault) {
  const FailureModel fm;
  EXPECT_TRUE(fm.never_fails());
  EXPECT_EQ(fm.probability(3, 17), 0.0);
  EXPECT_EQ(fm.max_probability(), 0.0);
}

TEST(FailureModel, UniformRateIsObserved) {
  Network net(64, 77, FailureModel::uniform(0.3));
  std::uint64_t failures = 0, total = 0;
  for (int r = 0; r < 300; ++r) {
    const auto peers = net.pull_round(16);
    for (auto p : peers) {
      ++total;
      failures += (p == Network::kNoPeer) ? 1 : 0;
    }
  }
  const double rate = static_cast<double>(failures) / total;
  EXPECT_NEAR(rate, 0.3, 0.02);
  EXPECT_EQ(net.metrics().failed_operations, failures);
}

TEST(FailureModel, PerNodeProbabilities) {
  FailureModel fm = FailureModel::per_node({0.0, 0.9});
  EXPECT_DOUBLE_EQ(fm.probability(0, 5), 0.0);
  EXPECT_DOUBLE_EQ(fm.probability(1, 5), 0.9);
  EXPECT_DOUBLE_EQ(fm.probability(2, 5), 0.0);  // out of range: safe
  EXPECT_DOUBLE_EQ(fm.max_probability(), 0.9);
}

TEST(FailureModel, CustomSchedule) {
  FailureModel fm = FailureModel::custom(
      [](std::uint32_t v, std::uint64_t r) {
        return (v == 0 && r < 10) ? 0.5 : 0.0;
      },
      0.5);
  EXPECT_DOUBLE_EQ(fm.probability(0, 3), 0.5);
  EXPECT_DOUBLE_EQ(fm.probability(0, 10), 0.0);
  EXPECT_DOUBLE_EQ(fm.probability(1, 3), 0.0);
}

TEST(FailureModel, RejectsInvalidProbabilities) {
  EXPECT_THROW((void)FailureModel::uniform(1.0), std::invalid_argument);
  EXPECT_THROW((void)FailureModel::uniform(-0.1), std::invalid_argument);
  EXPECT_THROW((void)FailureModel::per_node({0.2, 1.5}),
               std::invalid_argument);
}

TEST(Metrics, SinceReportsPhaseLocalMaximum) {
  // A phase whose largest message is smaller than the run-global maximum
  // must report its own maximum, not the global one.
  Metrics m;
  m.record_messages(5, 64);
  const Metrics snapshot = m;
  m.record_messages(3, 16);
  const Metrics d = m.since(snapshot);
  EXPECT_EQ(d.messages, 3u);
  EXPECT_EQ(d.message_bits, 48u);
  EXPECT_EQ(d.max_message_bits, 16u);  // not the global 64
  EXPECT_EQ(m.max_message_bits, 64u);
  // An empty phase has no largest message.
  EXPECT_EQ(m.since(m).max_message_bits, 0u);
}

TEST(Metrics, BulkRecordMatchesRepeatedSingles) {
  Metrics bulk, singles;
  bulk.record_messages(1000, 24);
  bulk.record_messages(7, 80);
  for (int i = 0; i < 1000; ++i) singles.record_message(24);
  for (int i = 0; i < 7; ++i) singles.record_message(80);
  EXPECT_EQ(bulk, singles);
}

TEST(Metrics, MergeCombinesShardAccumulators) {
  Metrics a, b;
  a.record_messages(10, 32);
  a.failed_operations = 2;
  b.record_messages(5, 32);
  b.record_messages(4, 128);
  b.failed_operations = 1;

  Metrics combined;
  combined.record_messages(15, 32);
  combined.record_messages(4, 128);
  combined.failed_operations = 3;

  Metrics merged = a;
  merged.merge(b);
  EXPECT_EQ(merged, combined);

  // Merge order must not matter (the engine merges in shard order, but the
  // totals are order-independent sums and maxes).
  Metrics reversed = b;
  reversed.merge(a);
  EXPECT_EQ(reversed, combined);
}

TEST(Network, BulkRecordMessagesAccountsAllTraffic) {
  Network net(8, 3);
  net.begin_round();
  net.record_messages(1000000, 16);  // O(#sizes), not O(count)
  EXPECT_EQ(net.metrics().messages, 1000000u);
  EXPECT_EQ(net.metrics().message_bits, 16000000u);
  EXPECT_EQ(net.metrics().max_message_bits, 16u);
}

TEST(TraceRecorder, CsvQuotesRfc4180) {
  TraceRecorder trace;
  trace.record("plain", 1, 0.5);
  trace.record("comma,series", 2, 1.0);
  trace.record("say \"what\"", 3, 2.0);
  trace.record("line\nbreak", 4, 3.0);
  const std::string csv = trace.to_csv();
  // Plain names pass through unquoted; anything holding a comma, quote, or
  // newline is wrapped in quotes with internal quotes doubled (RFC 4180),
  // so a naive split-on-comma consumer fails loudly instead of silently
  // mis-parsing shifted columns.
  EXPECT_NE(csv.find("plain,1,"), std::string::npos);
  EXPECT_NE(csv.find("\"comma,series\",2,"), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"what\"\"\",3,"), std::string::npos);
  EXPECT_NE(csv.find("\"line\nbreak\",4,"), std::string::npos);
  EXPECT_EQ(csv.find("comma,series,2"), std::string::npos);
}

TEST(Metrics, SinceComputesDeltas) {
  Metrics a;
  a.rounds = 10;
  a.messages = 100;
  a.message_bits = 1600;
  Metrics b = a;
  b.rounds = 25;
  b.messages = 180;
  b.message_bits = 2800;
  const Metrics d = b.since(a);
  EXPECT_EQ(d.rounds, 15u);
  EXPECT_EQ(d.messages, 80u);
  EXPECT_EQ(d.message_bits, 1200u);
}

}  // namespace
}  // namespace gq
