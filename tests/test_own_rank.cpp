#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "analysis/rank_stats.hpp"
#include "core/own_rank.hpp"
#include "workload/distributions.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

TEST(OwnRank, EveryNodeWithinEps) {
  constexpr std::uint32_t kN = 1 << 14;
  const double eps = 0.4;  // inner runs use eps/4 = 0.1 >= floor(16384)
  const auto values = generate_values(Distribution::kUniformReal, kN, 3);
  const auto keys = make_keys(values);
  const RankScale scale(keys);

  Network net(kN, 7);
  OwnRankParams params;
  params.eps = eps;
  const auto r = own_rank(net, values, params);

  ASSERT_EQ(r.estimates.size(), kN);
  EXPECT_EQ(r.quantile_runs, 4u);  // ceil(1/(eps/2)) - 1 = 4
  std::size_t ok = 0;
  for (std::uint32_t v = 0; v < kN; ++v) {
    const double truth = scale.quantile_of(keys[v]);
    ok += std::abs(r.estimates[v] - truth) <= eps ? 1 : 0;
  }
  EXPECT_GE(static_cast<double>(ok) / kN, 0.99);
}

TEST(OwnRank, SkewedDistribution) {
  constexpr std::uint32_t kN = 1 << 14;
  const double eps = 0.4;
  const auto values = generate_values(Distribution::kExponential, kN, 5);
  const auto keys = make_keys(values);
  const RankScale scale(keys);

  Network net(kN, 11);
  OwnRankParams params;
  params.eps = eps;
  const auto r = own_rank(net, values, params);
  std::size_t ok = 0;
  for (std::uint32_t v = 0; v < kN; ++v) {
    ok += std::abs(r.estimates[v] - scale.quantile_of(keys[v])) <= eps ? 1
                                                                       : 0;
  }
  EXPECT_GE(static_cast<double>(ok) / kN, 0.99);
}

TEST(OwnRank, ExtremeNodesKnowTheirPlace) {
  constexpr std::uint32_t kN = 1 << 13;
  const auto values =
      generate_values(Distribution::kUniformPermutation, kN, 9);
  Network net(kN, 13);
  OwnRankParams params;
  params.eps = 0.4;
  const auto r = own_rank(net, values, params);
  // The node holding value 1 (global minimum) and the one holding n.
  for (std::uint32_t v = 0; v < kN; ++v) {
    if (values[v] == 1.0) {
      EXPECT_LE(r.estimates[v], 0.45);
    }
    if (values[v] == static_cast<double>(kN)) {
      EXPECT_GE(r.estimates[v], 0.55);
    }
  }
}

TEST(OwnRank, RoundsScaleWithRunCount) {
  constexpr std::uint32_t kN = 4096;
  const auto values = generate_values(Distribution::kGaussian, kN, 15);
  Network coarse_net(kN, 17), fine_net(kN, 17);
  OwnRankParams coarse;
  coarse.eps = 0.45;
  OwnRankParams fine;
  fine.eps = 0.48;  // nearly the same accuracy, slightly more runs
  const auto rc = own_rank(coarse_net, values, coarse);
  const auto rf = own_rank(fine_net, values, fine);
  EXPECT_EQ(rc.rounds, coarse_net.metrics().rounds);
  EXPECT_GE(rc.quantile_runs, rf.quantile_runs);
}

TEST(OwnRank, RejectsInvalidEps) {
  Network net(64, 1);
  const auto values =
      generate_values(Distribution::kUniformPermutation, 64, 1);
  OwnRankParams params;
  params.eps = 0.0;
  EXPECT_THROW((void)own_rank(net, values, params), std::invalid_argument);
  params.eps = 0.6;
  EXPECT_THROW((void)own_rank(net, values, params), std::invalid_argument);
}

}  // namespace
}  // namespace gq
