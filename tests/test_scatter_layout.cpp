// ScatterLayout geometry boundary cases.  The layout is a pure function of
// (n, shard_size): these tests pin the edges — n close to UINT32_MAX (the
// arithmetic must not wrap 32 bits), the kMaxPartitions cap, and shard
// sizes that do not divide n — via the engine-free for_geometry factory.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "engine/scatter.hpp"

namespace gq {
namespace {

// Number of sender shards for a given geometry, as Engine computes it.
std::size_t rows_for(std::uint32_t n, std::uint32_t shard_size) {
  return (static_cast<std::size_t>(n) + shard_size - 1) / shard_size;
}

// Partitions must tile [0, n) contiguously, and partition_of must agree
// with the ranges.
void expect_tiles(const ScatterLayout& layout) {
  std::uint32_t expected_first = 0;
  for (std::size_t p = 0; p < layout.partitions; ++p) {
    const auto [first, last] = layout.partition_range(p);
    EXPECT_EQ(first, expected_first) << "partition " << p;
    EXPECT_LT(first, last) << "partition " << p << " must be non-empty";
    EXPECT_EQ(layout.partition_of(first), p);
    EXPECT_EQ(layout.partition_of(last - 1), p);
    expected_first = last;
  }
  EXPECT_EQ(expected_first, layout.n) << "partitions must cover [0, n)";
}

TEST(ScatterLayout, NearUint32MaxDoesNotWrap) {
  const std::uint32_t n = std::numeric_limits<std::uint32_t>::max();
  const std::uint32_t shard_size = 1u << 30;
  const ScatterLayout layout =
      ScatterLayout::for_geometry(n, shard_size, rows_for(n, shard_size));
  EXPECT_EQ(layout.rows, 4u);
  // ceil(n / kMaxPartitions) = 2^26 exactly; all 64 partitions survive.
  EXPECT_EQ(layout.partition_shift, 26u);
  EXPECT_EQ(layout.partitions, ScatterLayout::kMaxPartitions);
  expect_tiles(layout);
  // The last partition's range must clamp to n, not wrap past zero.
  const auto [first, last] = layout.partition_range(layout.partitions - 1);
  EXPECT_LT(first, last);
  EXPECT_EQ(last, n);
  EXPECT_EQ(layout.partition_of(n - 1), layout.partitions - 1);
}

TEST(ScatterLayout, CapsPartitionsAtKMaxPartitions) {
  const std::uint32_t n = 1u << 20;
  const std::uint32_t shard_size = 1024;  // 1024 rows >> kMaxPartitions
  const ScatterLayout layout =
      ScatterLayout::for_geometry(n, shard_size, rows_for(n, shard_size));
  EXPECT_EQ(layout.rows, 1024u);
  EXPECT_EQ(layout.partitions, ScatterLayout::kMaxPartitions);
  EXPECT_EQ(layout.partition_shift, 14u);  // ceil(2^20 / 64) = 2^14
  expect_tiles(layout);
}

TEST(ScatterLayout, NonDividingShardSize) {
  const std::uint32_t n = 1000;
  const std::uint32_t shard_size = 192;  // 6 shards, last one ragged
  const ScatterLayout layout =
      ScatterLayout::for_geometry(n, shard_size, rows_for(n, shard_size));
  EXPECT_EQ(layout.rows, 6u);
  expect_tiles(layout);
  // Senders of the ragged final shard must land in the final row.
  EXPECT_EQ(layout.row_of(n - 1), layout.rows - 1);
  EXPECT_EQ(layout.row_of(5 * 192), 5u);
}

// Below the minimum partition width everything collapses into a single
// delivery partition covering [0, n) — never zero, never empty.
TEST(ScatterLayout, SmallNCollapsesToOnePartition) {
  const std::uint32_t n = 65;
  const std::uint32_t shard_size = 1;  // extreme: one sender per row
  const ScatterLayout layout =
      ScatterLayout::for_geometry(n, shard_size, rows_for(n, shard_size));
  EXPECT_EQ(layout.rows, 65u);
  EXPECT_EQ(layout.partition_shift, ScatterLayout::kMinPartitionShift);
  EXPECT_EQ(layout.partitions, 1u);
  expect_tiles(layout);
}

// Width rounding leaves a one-node tail partition at n = 2 * 4096 + 1; the
// trim must keep it (it holds node 8192) and nothing past it.
TEST(ScatterLayout, SingleNodeTailPartition) {
  const std::uint32_t n = 8193;
  const std::uint32_t shard_size = 4096;
  const ScatterLayout layout =
      ScatterLayout::for_geometry(n, shard_size, rows_for(n, shard_size));
  EXPECT_EQ(layout.rows, 3u);
  EXPECT_EQ(layout.partitions, 3u);
  expect_tiles(layout);
  const auto [first, last] = layout.partition_range(layout.partitions - 1);
  EXPECT_EQ(first, 8192u);
  EXPECT_EQ(last - first, 1u);
}

}  // namespace
}  // namespace gq
