#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sketch/compactor.hpp"
#include "sketch/kll.hpp"
#include "workload/distributions.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

std::vector<Key> sequential_keys(std::size_t n) {
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i) xs[i] = static_cast<double>(i + 1);
  return make_keys(xs);
}

TEST(Compactor, AddKeepsSortedOrder) {
  CompactingBuffer buf(8);
  const auto keys = sequential_keys(5);
  for (auto it = keys.rbegin(); it != keys.rend(); ++it) buf.add(*it);
  EXPECT_TRUE(std::is_sorted(buf.items().begin(), buf.items().end()));
  EXPECT_EQ(buf.size(), 5u);
  EXPECT_EQ(buf.weight(), 1u);
}

TEST(Compactor, MergeWithoutOverflowKeepsEverything) {
  CompactingBuffer a(8), b(8);
  const auto keys = sequential_keys(8);
  for (int i = 0; i < 4; ++i) a.add(keys[i]);
  for (int i = 4; i < 8; ++i) b.add(keys[i]);
  const CompactingBuffer m = CompactingBuffer::merged(a, b, false);
  EXPECT_EQ(m.size(), 8u);
  EXPECT_EQ(m.weight(), 1u);
  EXPECT_EQ(m.total_weight(), 8u);
}

TEST(Compactor, OverflowCompactsAndDoublesWeight) {
  CompactingBuffer a(4), b(4);
  const auto keys = sequential_keys(8);
  for (int i = 0; i < 4; ++i) a.add(keys[i]);
  for (int i = 4; i < 8; ++i) b.add(keys[i]);
  const CompactingBuffer even = CompactingBuffer::merged(a, b, false);
  EXPECT_EQ(even.size(), 4u);
  EXPECT_EQ(even.weight(), 2u);
  EXPECT_EQ(even.total_weight(), 8u);  // mass preserved
  // Even 0-based positions of {1..8} are {1,3,5,7}.
  EXPECT_EQ(even.items()[0].value, 1.0);
  EXPECT_EQ(even.items()[3].value, 7.0);
  const CompactingBuffer odd = CompactingBuffer::merged(a, b, true);
  EXPECT_EQ(odd.items()[0].value, 2.0);
  EXPECT_EQ(odd.items()[3].value, 8.0);
}

TEST(Compactor, RankErrorBoundedByLemmaA3) {
  // One compaction may shift any weighted rank by at most the
  // pre-compaction weight.
  CompactingBuffer a(6), b(6);
  const auto keys = sequential_keys(12);
  for (int i = 0; i < 6; ++i) a.add(keys[i]);
  for (int i = 6; i < 12; ++i) b.add(keys[i]);
  const CompactingBuffer m = CompactingBuffer::merged(a, b, false);
  for (const Key& q : keys) {
    const auto true_rank = static_cast<std::uint64_t>(q.value);
    const std::uint64_t est = m.weighted_rank(q);
    EXPECT_LE(est > true_rank ? est - true_rank : true_rank - est, 1u)
        << "query " << q.value;
  }
}

TEST(Compactor, MergedRequiresEqualWeights) {
  CompactingBuffer a(2), b(2), c(2);
  const auto keys = sequential_keys(6);
  a.add(keys[0]);
  a.add(keys[1]);
  b.add(keys[2]);
  b.add(keys[3]);
  const CompactingBuffer heavy = CompactingBuffer::merged(a, b, false);
  c.add(keys[4]);
  EXPECT_EQ(heavy.weight(), 2u);
  EXPECT_THROW((void)CompactingBuffer::merged(heavy, c, false),
               std::invalid_argument);
}

TEST(Compactor, QuantileNearestRank) {
  CompactingBuffer buf(8);
  const auto keys = sequential_keys(5);
  for (const Key& k : keys) buf.add(k);
  EXPECT_EQ(buf.quantile(0.5).value, 3.0);
  EXPECT_EQ(buf.quantile(0.0).value, 1.0);
  EXPECT_EQ(buf.quantile(1.0).value, 5.0);
}

TEST(Kll, RejectsTinyK) {
  EXPECT_THROW(KllSketch(4), std::invalid_argument);
}

TEST(Kll, ExactForSmallStreams) {
  KllSketch sk(64);
  const auto keys = sequential_keys(50);
  for (const Key& k : keys) sk.insert(k);
  EXPECT_EQ(sk.count(), 50u);
  for (const Key& q : keys) {
    EXPECT_EQ(sk.rank(q), static_cast<std::uint64_t>(q.value));
  }
}

TEST(Kll, SpaceStaysNearK) {
  KllSketch sk(64);
  const auto keys = sequential_keys(100000);
  for (const Key& k : keys) sk.insert(k);
  EXPECT_LE(sk.space(), 64u * 5);  // O(k) across all levels
}

class KllErrorTest : public ::testing::TestWithParam<Distribution> {};

TEST_P(KllErrorTest, RankErrorIsSmall) {
  constexpr std::size_t kN = 50000;
  const auto xs = generate_values(GetParam(), kN, 77);
  const auto keys = make_keys(xs);
  KllSketch sk(256, 5);
  for (const Key& k : keys) sk.insert(k);

  std::vector<Key> sorted(keys.begin(), keys.end());
  std::sort(sorted.begin(), sorted.end());
  double max_rel_err = 0.0;
  for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const auto idx = static_cast<std::size_t>(q * (kN - 1));
    const Key& query = sorted[idx];
    const double est = static_cast<double>(sk.rank(query));
    const double truth = static_cast<double>(idx + 1);
    max_rel_err =
        std::max(max_rel_err, std::abs(est - truth) / static_cast<double>(kN));
  }
  // Standard KLL guarantee is O(1/k); allow 3/k here.
  EXPECT_LE(max_rel_err, 3.0 / 256);
}

INSTANTIATE_TEST_SUITE_P(Distributions, KllErrorTest,
                         ::testing::Values(Distribution::kUniformReal,
                                           Distribution::kGaussian,
                                           Distribution::kExponential,
                                           Distribution::kZipf),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

TEST(Kll, MergePreservesCountAndAccuracy) {
  constexpr std::size_t kN = 20000;
  const auto keys = sequential_keys(kN);
  KllSketch left(128, 1), right(128, 2);
  for (std::size_t i = 0; i < kN; ++i) {
    (i % 2 == 0 ? left : right).insert(keys[i]);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), kN);
  const std::uint64_t mid = left.rank(keys[kN / 2 - 1]);
  EXPECT_NEAR(static_cast<double>(mid), kN / 2.0, kN * 3.0 / 128);
}

TEST(Kll, MergeRequiresSameK) {
  KllSketch a(64), b(128);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

// Builds kParts sketches over disjoint slices of `keys`, seeded by slice.
std::vector<KllSketch> sharded_sketches(const std::vector<Key>& keys,
                                        std::size_t parts, std::uint32_t k) {
  std::vector<KllSketch> shards;
  for (std::size_t p = 0; p < parts; ++p) {
    shards.emplace_back(k, 100 + p);
    for (std::size_t i = p; i < keys.size(); i += parts) {
      shards.back().insert(keys[i]);
    }
  }
  return shards;
}

TEST(Kll, MergeIsDeterministicForTheSameOrder) {
  constexpr std::size_t kN = 30000;
  const auto keys = sequential_keys(kN);
  std::vector<std::vector<std::uint64_t>> trials;
  for (int trial = 0; trial < 2; ++trial) {
    auto shards = sharded_sketches(keys, 6, 128);
    KllSketch acc = shards[0];
    for (std::size_t p = 1; p < shards.size(); ++p) acc.merge(shards[p]);
    trials.emplace_back();
    for (std::size_t i = 0; i < kN; i += 997) {
      trials.back().push_back(acc.rank(keys[i]));
    }
  }
  EXPECT_EQ(trials[0], trials[1]);  // bit-identical replay
}

TEST(Kll, KWayMergePreservesCountAndErrorBoundInAnyOrder) {
  constexpr std::size_t kN = 40000;
  constexpr std::uint32_t kK = 128;
  const auto xs = generate_values(Distribution::kGaussian, kN, 271);
  const auto keys = make_keys(xs);
  std::vector<Key> sorted(keys.begin(), keys.end());
  std::sort(sorted.begin(), sorted.end());

  // Three merge orders over the same 8 shard sketches: left fold, right
  // fold, and pairwise tournament tree.  Exact counts must be additive
  // under all of them, and every result must keep the O(1/k) rank error —
  // the bound survives arbitrary merge trees, not just insertion order.
  const auto check = [&](const KllSketch& sk, const char* order) {
    EXPECT_EQ(sk.count(), kN) << order;
    for (double q : {0.05, 0.25, 0.5, 0.75, 0.95}) {
      const auto idx = static_cast<std::size_t>(q * (kN - 1));
      const double est = static_cast<double>(sk.rank(sorted[idx]));
      const double truth = static_cast<double>(idx + 1);
      EXPECT_LE(std::abs(est - truth) / static_cast<double>(kN), 4.0 / kK)
          << order << " phi=" << q;
    }
  };

  {
    auto shards = sharded_sketches(keys, 8, kK);
    KllSketch acc = shards[0];
    for (std::size_t p = 1; p < shards.size(); ++p) acc.merge(shards[p]);
    check(acc, "left fold");
  }
  {
    auto shards = sharded_sketches(keys, 8, kK);
    KllSketch acc = shards[7];
    for (std::size_t p = 7; p-- > 0;) acc.merge(shards[p]);
    check(acc, "right fold");
  }
  {
    auto shards = sharded_sketches(keys, 8, kK);
    while (shards.size() > 1) {
      std::vector<KllSketch> next;
      for (std::size_t p = 0; p + 1 < shards.size(); p += 2) {
        KllSketch m = shards[p];
        m.merge(shards[p + 1]);
        next.push_back(std::move(m));
      }
      if (shards.size() % 2 == 1) next.push_back(std::move(shards.back()));
      shards = std::move(next);
    }
    check(shards[0], "tournament tree");
  }
}

TEST(Kll, CountIsAssociativeAcrossMergeGroupings) {
  constexpr std::size_t kN = 9000;
  const auto keys = sequential_keys(kN);
  const auto build = [&]() { return sharded_sketches(keys, 3, 64); };

  auto abc = build();
  KllSketch ab = abc[0];
  ab.merge(abc[1]);
  ab.merge(abc[2]);  // (a + b) + c

  auto abc2 = build();
  KllSketch bc = abc2[1];
  bc.merge(abc2[2]);
  KllSketch a_bc = abc2[0];
  a_bc.merge(bc);  // a + (b + c)

  EXPECT_EQ(ab.count(), kN);
  EXPECT_EQ(a_bc.count(), kN);
  EXPECT_EQ(ab.count(), a_bc.count());
}

TEST(Kll, QuantileMatchesRank) {
  constexpr std::size_t kN = 10000;
  const auto keys = sequential_keys(kN);
  KllSketch sk(256, 9);
  for (const Key& k : keys) sk.insert(k);
  for (double phi : {0.1, 0.5, 0.9}) {
    const Key q = sk.quantile(phi);
    EXPECT_NEAR(q.value / static_cast<double>(kN), phi, 3.0 / 256 + 0.001);
  }
}

TEST(Kll, MessageBitsScaleWithSpace) {
  KllSketch sk(64);
  const auto keys = sequential_keys(4000);
  for (const Key& k : keys) sk.insert(k);
  EXPECT_GE(sk.message_bits(4096), sk.space() * key_bits(4096));
}

TEST(Kll, EmptyQuantileThrows) {
  KllSketch sk(64);
  EXPECT_THROW((void)sk.quantile(0.5), std::invalid_argument);
}

}  // namespace
}  // namespace gq
