#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/key.hpp"
#include "util/rng.hpp"
#include "wire/bits.hpp"
#include "wire/codec.hpp"

namespace gq {
namespace {

TEST(Bits, FieldWidthMatchesLog2) {
  EXPECT_EQ(field_width(2), 1u);
  EXPECT_EQ(field_width(3), 2u);
  EXPECT_EQ(field_width(4), 2u);
  EXPECT_EQ(field_width(1024), 10u);
  EXPECT_EQ(field_width(1025), 11u);
}

TEST(Bits, WriteReadRoundTrip) {
  BitWriter w;
  w.write_bits(0b101, 3);
  w.write_bits(0xdeadbeefcafe, 48);
  w.write_bits(1, 1);
  BitReader r(w.bytes());
  EXPECT_EQ(r.read_bits(3), 0b101u);
  EXPECT_EQ(r.read_bits(48), 0xdeadbeefcafeull);
  EXPECT_EQ(r.read_bits(1), 1u);
  EXPECT_EQ(w.bit_count(), 52u);
}

TEST(Bits, DoubleRoundTripIncludingSpecials) {
  BitWriter w;
  const std::vector<double> values = {0.0, -0.0, 1.5, -3.25e300, 5e-324,
                                      std::numeric_limits<double>::infinity()};
  for (double v : values) w.write_double(v);
  BitReader r(w.bytes());
  for (double v : values) {
    const double back = r.read_double();
    EXPECT_EQ(std::memcmp(&back, &v, sizeof(v)), 0);
  }
}

TEST(Bits, UnalignedPatternsSurviveFuzz) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    BitWriter w;
    std::vector<std::pair<std::uint64_t, unsigned>> fields;
    for (int f = 0; f < 16; ++f) {
      const unsigned bits = 1 + static_cast<unsigned>(rand_index(rng, 64));
      const std::uint64_t value =
          rng() & (bits == 64 ? ~0ull : ((1ull << bits) - 1));
      fields.emplace_back(value, bits);
      w.write_bits(value, bits);
    }
    BitReader r(w.bytes());
    for (const auto& [value, bits] : fields) {
      EXPECT_EQ(r.read_bits(bits), value);
    }
  }
}

TEST(Bits, ReadPastEndThrows) {
  BitWriter w;
  w.write_bits(0xff, 8);
  BitReader r(w.bytes());
  (void)r.read_bits(8);
  EXPECT_THROW((void)r.read_bits(1), std::invalid_argument);
}

TEST(KeyCodecTest, RoundTripsFiniteKeys) {
  const std::uint32_t n = 1 << 14;
  const KeyCodec codec(n);
  Rng rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    Key k;
    k.value = rand_double(rng) * 1e6 - 5e5;
    k.id = static_cast<std::uint32_t>(rand_index(rng, n));
    const std::uint64_t iter = rand_index(rng, 64);
    const std::uint64_t node = rand_index(rng, n);
    k.tag = trial % 3 == 0 ? 0 : ((iter << 32) | node);
    BitWriter w;
    codec.encode(k, w);
    BitReader r(w.bytes());
    EXPECT_EQ(codec.decode(r), k);
  }
}

TEST(KeyCodecTest, RoundTripsSentinels) {
  const KeyCodec codec(256);
  BitWriter w;
  codec.encode(Key::infinite(), w);
  codec.encode(Key::neg_infinite(), w);
  BitReader r(w.bytes());
  EXPECT_EQ(codec.decode(r), Key::infinite());
  EXPECT_EQ(codec.decode(r), Key::neg_infinite());
}

TEST(KeyCodecTest, EncodedSizeIsLogarithmicAndWithinAccounting) {
  for (std::uint32_t n : {16u, 1024u, 1u << 20}) {
    const KeyCodec codec(n);
    // The wire key must fit the simulator's accounted key size plus the
    // (iteration, kind) overhead the accounting rolls into its constant.
    EXPECT_LE(codec.encoded_bits(), key_bits(n) + 10) << "n=" << n;
    // And it must actually grow logarithmically.
    EXPECT_LE(codec.encoded_bits(), 2 + 64 + 2 * field_width(n) + 8);
  }
}

TEST(KeyCodecTest, EncodeUsesExactlyDeclaredBits) {
  const std::uint32_t n = 4096;
  const KeyCodec codec(n);
  Key k{3.25, 17, (5ull << 32) | 99};
  BitWriter w;
  codec.encode(k, w);
  EXPECT_EQ(w.bit_count(), codec.encoded_bits());
}

TEST(KeyCodecTest, RejectsOutOfRangeIds) {
  const KeyCodec codec(64);
  Key k{1.0, 64, 0};  // id == n is out of range
  BitWriter w;
  EXPECT_THROW(codec.encode(k, w), std::invalid_argument);
}

TEST(PushSumCodecTest, RoundTrip) {
  const PushSumMessage m{123.456, 0.0078125};
  BitWriter w;
  PushSumCodec::encode(m, w);
  EXPECT_EQ(w.bit_count(), PushSumCodec::encoded_bits());
  BitReader r(w.bytes());
  const PushSumMessage back = PushSumCodec::decode(r);
  EXPECT_EQ(back.s, m.s);
  EXPECT_EQ(back.w, m.w);
}

TEST(TokenCodecTest, RoundTripAndSize) {
  const std::uint32_t n = 1 << 12;
  const TokenCodec codec(n);
  for (std::uint64_t weight : {1ull, 2ull, 64ull, 1ull << 40}) {
    TokenMessage t;
    t.key = Key{-7.5, 11, (2ull << 32) | 30};
    t.weight = weight;
    BitWriter w;
    codec.encode(t, w);
    EXPECT_EQ(w.bit_count(), codec.encoded_bits());
    BitReader r(w.bytes());
    const TokenMessage back = codec.decode(r);
    EXPECT_EQ(back.key, t.key);
    EXPECT_EQ(back.weight, t.weight);
  }
  // Token accounting in the simulator (key_bits + 64) dominates the wire
  // encoding (key wire bits + 6).
  EXPECT_LE(codec.encoded_bits(), key_bits(n) + 64);
}

TEST(TokenCodecTest, RejectsNonPowerOfTwoWeights) {
  const TokenCodec codec(256);
  TokenMessage t;
  t.key = Key{1.0, 0, 0};
  t.weight = 3;
  BitWriter w;
  EXPECT_THROW(codec.encode(t, w), std::invalid_argument);
}

TEST(PriorityCodecTest, RoundTripAndBudget) {
  const std::uint32_t n = 1 << 16;
  const PriorityCodec codec(n);
  PriorityMessage m;
  m.priority = 0x123456789abcdef1ull;
  m.key = Key{2.5, 1000, 0};
  BitWriter w;
  codec.encode(m, w);
  EXPECT_EQ(w.bit_count(), codec.encoded_bits());
  BitReader r(w.bytes());
  const PriorityMessage back = codec.decode(r);
  EXPECT_EQ(back.priority, m.priority);
  EXPECT_EQ(back.key, m.key);
  // Pivot accounting: 64 + key_bits.
  EXPECT_LE(codec.encoded_bits(), 64 + key_bits(n) + 10);
}

}  // namespace
}  // namespace gq
