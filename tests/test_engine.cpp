// Determinism tests for the sharded parallel engine: the engine must
// produce bit-identical transcripts, states, and Metrics to the sequential
// Network/runtime path for the same seed, at every thread count, with and
// without a failure model.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <vector>

#include "agg/rank_count.hpp"
#include "agg/spread.hpp"
#include "core/approx_quantile.hpp"
#include "core/exact_quantile.hpp"
#include "core/own_rank.hpp"
#include "core/pivot.hpp"
#include "core/token_split.hpp"
#include "engine/engine.hpp"
#include "engine/kernels.hpp"
#include "engine/pipelines.hpp"
#include "engine/runtime_adapter.hpp"
#include "engine/scatter.hpp"
#include "engine/thread_pool.hpp"
#include "runtime/protocol.hpp"
#include "sim/network.hpp"
#include "wire/codec.hpp"
#include "workload/distributions.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

constexpr unsigned kThreadCounts[] = {1, 2, 8};

// Small shards so every thread count exercises multi-shard merging.
EngineConfig config_for(unsigned threads) {
  return EngineConfig{.threads = threads, .shard_size = 192};
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (unsigned threads : kThreadCounts) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.threads(), threads);
    std::vector<std::atomic<int>> hits(257);
    pool.run(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    // The pool must be reusable across batches.
    pool.run(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 2);
    pool.run(0, [&](std::size_t) { FAIL() << "empty batch ran a task"; });
  }
}

TEST(ThreadPool, PropagatesTaskExceptionsAndStaysUsable) {
  for (unsigned threads : kThreadCounts) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.run(64,
                 [](std::size_t i) {
                   if (i == 13) throw std::runtime_error("boom");
                 }),
        std::runtime_error);
    // The pool must survive a throwing batch intact.
    std::atomic<int> ran{0};
    pool.run(64, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran.load(), 64);
  }
}

// Many more tasks than threads: the chunked claim loop must still execute
// every index exactly once, across batches of wildly different sizes
// (descriptor reuse between batches is where a stale-claim bug would bite).
TEST(ThreadPool, ChunkedClaimingCoversManyTasks) {
  for (unsigned threads : {2u, 8u}) {
    ThreadPool pool(threads);
    constexpr std::size_t kTasks = 100000;
    std::vector<std::atomic<std::uint8_t>> hits(kTasks);
    for (const std::size_t batch : {std::size_t{1}, kTasks, std::size_t{3},
                                    std::size_t{kTasks / 7}}) {
      for (auto& h : hits) h.store(0);
      pool.run(batch, [&](std::size_t i) { ++hits[i]; });
      for (std::size_t i = 0; i < kTasks; ++i) {
        ASSERT_EQ(hits[i].load(), i < batch ? 1 : 0)
            << "threads=" << threads << " batch=" << batch << " i=" << i;
      }
    }
  }
}

// Single-task batches exercise the opposite edge: one chunk, claimed by
// whichever thread gets there first, everyone else must pass through the
// barrier without touching anything.
TEST(ThreadPool, SingleTaskBatches) {
  ThreadPool pool(8);
  std::atomic<int> ran{0};
  for (int rep = 0; rep < 200; ++rep) {
    pool.run(1, [&](std::size_t i) {
      EXPECT_EQ(i, 0u);
      ++ran;
    });
  }
  EXPECT_EQ(ran.load(), 200);
}

// Exceptions under contention: several tasks of a large batch throw
// concurrently; exactly one exception must surface per run() and the pool
// must stay usable across many such batches.
TEST(ThreadPool, ExceptionStressUnderContention) {
  ThreadPool pool(8);
  for (int rep = 0; rep < 20; ++rep) {
    std::atomic<int> attempted{0};
    try {
      pool.run(5000, [&](std::size_t i) {
        ++attempted;
        if (i % 701 == 0) throw std::runtime_error("sporadic");
      });
      FAIL() << "batch with throwing tasks must rethrow";
    } catch (const std::runtime_error&) {
      // The barrier still holds: every index ran before run() returned.
      EXPECT_EQ(attempted.load(), 5000) << "rep=" << rep;
    }
  }
  std::atomic<int> ran{0};
  pool.run(1000, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 1000);
}

TEST(Engine, RejectsInvalidConfigurations) {
  EXPECT_THROW(Engine(1, 7), std::invalid_argument);
  EXPECT_THROW(Engine(16, 7, FailureModel{},
                      EngineConfig{.threads = 1, .shard_size = 0}),
               std::invalid_argument);
}

TEST(Engine, PullRoundTranscriptMatchesNetworkAtEveryThreadCount) {
  constexpr std::uint32_t kN = 1000;
  constexpr std::uint64_t kSeed = 41;
  for (const bool with_failures : {false, true}) {
    const FailureModel fm =
        with_failures ? FailureModel::uniform(0.25) : FailureModel{};
    Network net(kN, kSeed, fm);
    std::vector<std::vector<std::uint32_t>> expected;
    for (int r = 0; r < 12; ++r) expected.push_back(net.pull_round(32));

    for (unsigned threads : kThreadCounts) {
      Engine engine(kN, kSeed, fm, config_for(threads));
      for (int r = 0; r < 12; ++r) {
        EXPECT_EQ(engine.pull_round(32), expected[static_cast<size_t>(r)])
            << "threads=" << threads << " round=" << r
            << " failures=" << with_failures;
      }
      EXPECT_EQ(engine.metrics(), net.metrics())
          << "threads=" << threads << " failures=" << with_failures;
      EXPECT_EQ(engine.round(), net.round());
    }
  }
}

TEST(Engine, DefaultMessageBitsMatchesNetwork) {
  Network net(1 << 20, 1);
  Engine engine(1 << 20, 1, FailureModel{}, EngineConfig{.threads = 1});
  EXPECT_EQ(engine.default_message_bits(), net.default_message_bits());
}

std::vector<std::unique_ptr<NodeProtocol>> make_median_protocols(
    std::span<const Key> keys, std::uint64_t iterations) {
  std::vector<std::unique_ptr<NodeProtocol>> out;
  out.reserve(keys.size());
  for (const Key& k : keys) {
    out.push_back(std::make_unique<MedianDynamicsProtocol>(k, iterations));
  }
  return out;
}

std::vector<Key> protocol_states(
    std::span<const std::unique_ptr<NodeProtocol>> protos) {
  std::vector<Key> out;
  out.reserve(protos.size());
  for (const auto& p : protos) {
    out.push_back(static_cast<MedianDynamicsProtocol*>(p.get())->state());
  }
  return out;
}

TEST(EngineAdapter, BitIdenticalToSequentialRuntime) {
  constexpr std::uint32_t kN = 2048;
  constexpr std::uint64_t kSeed = 23;
  constexpr std::uint64_t kIterations = 20;
  const auto keys =
      make_keys(generate_values(Distribution::kUniformReal, kN, 3));
  const std::uint64_t bits = KeyCodec(kN).encoded_bits();

  for (const bool with_failures : {false, true}) {
    const FailureModel fm =
        with_failures ? FailureModel::uniform(0.3) : FailureModel{};

    Network net(kN, kSeed, fm);
    auto seq_protos = make_median_protocols(keys, kIterations);
    const RuntimeResult seq = run_protocols(net, seq_protos, 1000, bits);
    const std::vector<Key> seq_states = protocol_states(seq_protos);

    for (unsigned threads : kThreadCounts) {
      Engine engine(kN, kSeed, fm, config_for(threads));
      auto protos = make_median_protocols(keys, kIterations);
      const RuntimeResult par = run_protocols(engine, protos, 1000, bits);
      EXPECT_EQ(par.rounds, seq.rounds);
      EXPECT_EQ(par.all_finished, seq.all_finished);
      EXPECT_EQ(protocol_states(protos), seq_states)
          << "threads=" << threads << " failures=" << with_failures;
      EXPECT_EQ(engine.metrics(), net.metrics())
          << "threads=" << threads << " failures=" << with_failures;
    }
  }
}

TEST(EngineKernels, MedianDynamicsMatchesProtocolPath) {
  constexpr std::uint32_t kN = 2048;
  constexpr std::uint64_t kSeed = 57;
  constexpr std::uint64_t kIterations = 16;
  const auto keys =
      make_keys(generate_values(Distribution::kGaussian, kN, 5));
  const std::uint64_t bits = KeyCodec(kN).encoded_bits();

  // max_rounds both above and below 2*iterations (the odd cap ends on a
  // half iteration whose messages must still be accounted).
  for (const std::uint64_t max_rounds : {std::uint64_t{1000},
                                         std::uint64_t{2 * kIterations},
                                         std::uint64_t{21}}) {
    for (const bool with_failures : {false, true}) {
      const FailureModel fm =
          with_failures ? FailureModel::uniform(0.2) : FailureModel{};

      Network net(kN, kSeed, fm);
      auto protos = make_median_protocols(keys, kIterations);
      const RuntimeResult seq = run_protocols(net, protos, max_rounds, bits);
      const std::vector<Key> seq_states = protocol_states(protos);

      for (unsigned threads : kThreadCounts) {
        Engine engine(kN, kSeed, fm, config_for(threads));
        std::vector<Key> state(keys.begin(), keys.end());
        const RuntimeResult ker =
            median_dynamics(engine, state, kIterations, max_rounds, bits);
        EXPECT_EQ(ker.rounds, seq.rounds) << "max_rounds=" << max_rounds;
        EXPECT_EQ(ker.all_finished, seq.all_finished);
        EXPECT_EQ(state, seq_states)
            << "threads=" << threads << " failures=" << with_failures
            << " max_rounds=" << max_rounds;
        EXPECT_EQ(engine.metrics(), net.metrics())
            << "threads=" << threads << " failures=" << with_failures
            << " max_rounds=" << max_rounds;
      }
    }
  }
}

TEST(EngineKernels, TwoTournamentMatchesCore) {
  constexpr std::uint32_t kN = 4096;
  constexpr std::uint64_t kSeed = 101;
  const auto keys =
      make_keys(generate_values(Distribution::kUniformReal, kN, 7));

  for (const double phi : {0.5, 0.2}) {
    for (const bool truncate_last : {true, false}) {
      Network net(kN, kSeed);
      std::vector<Key> seq_state(keys.begin(), keys.end());
      const auto seq =
          two_tournament(net, seq_state, phi, 0.05, truncate_last);

      for (unsigned threads : kThreadCounts) {
        Engine engine(kN, kSeed, FailureModel{}, config_for(threads));
        std::vector<Key> state(keys.begin(), keys.end());
        const auto par =
            two_tournament(engine, state, phi, 0.05, truncate_last);
        EXPECT_EQ(par.iterations, seq.iterations);
        EXPECT_EQ(par.side, seq.side);
        EXPECT_EQ(state, seq_state)
            << "threads=" << threads << " phi=" << phi
            << " truncate_last=" << truncate_last;
        EXPECT_EQ(engine.metrics(), net.metrics()) << "threads=" << threads;
      }
    }
  }
}

TEST(EngineKernels, ThreeTournamentMatchesCore) {
  constexpr std::uint32_t kN = 4096;
  constexpr std::uint64_t kSeed = 103;
  const auto keys =
      make_keys(generate_values(Distribution::kUniformReal, kN, 11));

  Network net(kN, kSeed);
  std::vector<Key> seq_state(keys.begin(), keys.end());
  const auto seq = three_tournament(net, seq_state, 0.05);

  for (unsigned threads : kThreadCounts) {
    Engine engine(kN, kSeed, FailureModel{}, config_for(threads));
    std::vector<Key> state(keys.begin(), keys.end());
    const auto par = three_tournament(engine, state, 0.05);
    EXPECT_EQ(par.iterations, seq.iterations);
    EXPECT_EQ(state, seq_state) << "threads=" << threads;
    EXPECT_EQ(par.outputs, seq.outputs) << "threads=" << threads;
    EXPECT_EQ(engine.metrics(), net.metrics()) << "threads=" << threads;
  }
}

TEST(EngineKernels, TournamentsRejectFailureModels) {
  Engine engine(64, 1, FailureModel::uniform(0.1),
                EngineConfig{.threads = 1});
  std::vector<Key> state(64);
  EXPECT_THROW((void)two_tournament(engine, state, 0.5, 0.1),
               std::invalid_argument);
  EXPECT_THROW((void)three_tournament(engine, state, 0.1),
               std::invalid_argument);
}

// ---- scatter primitive ----------------------------------------------------

// Every destination must observe its payloads in ascending sender order —
// the sequential for-loop's order — at every thread count and shard size.
TEST(Scatter, DeliversInAscendingSenderOrder) {
  constexpr std::uint32_t kN = 997;
  for (unsigned threads : kThreadCounts) {
    for (const std::uint32_t shard_size : {37u, 192u, 1u << 14}) {
      Engine engine(kN, 3, FailureModel{},
                    EngineConfig{.threads = threads, .shard_size = shard_size});
      Scatter<std::uint64_t> scatter(engine);
      scatter.begin_round();
      // Node v sends its id to two destinations derived from v.
      engine.parallel_shards(
          [&](std::uint32_t begin, std::uint32_t end, Metrics&) {
            for (std::uint32_t v = begin; v < end; ++v) {
              scatter.send(v, (v * 7 + 3) % kN, v);
              scatter.send(v, (v * 5 + 11) % kN, v);
            }
          });
      std::vector<std::vector<std::uint64_t>> got(kN);
      scatter.deliver(engine, [&](std::uint32_t dest, std::uint64_t payload) {
        got[dest].push_back(payload);
      });

      std::vector<std::vector<std::uint64_t>> want(kN);
      for (std::uint32_t v = 0; v < kN; ++v) {
        want[(v * 7 + 3) % kN].push_back(v);
        want[(v * 5 + 11) % kN].push_back(v);
      }
      EXPECT_EQ(got, want) << "threads=" << threads
                           << " shard_size=" << shard_size;
    }
  }
}

TEST(Scatter, CombiningTotalsAreConfigurationIndependent) {
  constexpr std::uint32_t kN = 513;
  struct Add {
    void operator()(std::uint64_t& acc, std::uint64_t v) const { acc += v; }
  };
  std::vector<std::uint64_t> expected;
  for (unsigned threads : kThreadCounts) {
    for (const std::uint32_t shard_size : {64u, 1u << 14}) {
      Engine engine(kN, 5, FailureModel{},
                    EngineConfig{.threads = threads, .shard_size = shard_size});
      CombiningScatter<std::uint64_t, Add> scatter(engine);
      scatter.begin_round();
      // Bursts to one destination per sender: must pre-combine in the
      // mailbox, and totals must not depend on the configuration.
      engine.parallel_shards(
          [&](std::uint32_t begin, std::uint32_t end, Metrics&) {
            for (std::uint32_t v = begin; v < end; ++v) {
              for (int i = 0; i < 3; ++i) scatter.send(v, v % 17, v + 1);
              scatter.send(v, (v + 1) % kN, 1);
            }
          });
      std::vector<std::uint64_t> totals(kN, 0);
      scatter.deliver(engine, [&](std::uint32_t dest, std::uint64_t payload) {
        totals[dest] += payload;
      });
      if (expected.empty()) {
        expected = totals;
        std::uint64_t sum = 0;
        for (auto t : totals) sum += t;
        // 3*(v+1) per sender plus one unit to a neighbour.
        EXPECT_EQ(sum, 3ull * kN * (kN + 1) / 2 + kN);
      } else {
        EXPECT_EQ(totals, expected)
            << "threads=" << threads << " shard_size=" << shard_size;
      }
    }
  }
}

// ---- batched collectives --------------------------------------------------

TEST(EngineCollectives, SpreadMatchesCore) {
  constexpr std::uint32_t kN = 2000;
  constexpr std::uint64_t kSeed = 301;
  const auto keys =
      make_keys(generate_values(Distribution::kGaussian, kN, 13));

  for (const bool with_failures : {false, true}) {
    const FailureModel fm =
        with_failures ? FailureModel::uniform(0.3) : FailureModel{};
    Network net(kN, kSeed, fm);
    const SpreadResult seq_min = spread_min(net, keys);
    const SpreadResult seq_max = spread_max(net, keys);

    for (unsigned threads : kThreadCounts) {
      Engine engine(kN, kSeed, fm, config_for(threads));
      const SpreadResult par_min = spread_min(engine, keys);
      const SpreadResult par_max = spread_max(engine, keys);
      EXPECT_EQ(par_min.values, seq_min.values);
      EXPECT_EQ(par_min.rounds, seq_min.rounds);
      EXPECT_EQ(par_min.converged, seq_min.converged);
      EXPECT_EQ(par_max.values, seq_max.values);
      EXPECT_EQ(par_max.rounds, seq_max.rounds);
      EXPECT_EQ(par_max.converged, seq_max.converged);
      EXPECT_EQ(engine.metrics(), net.metrics())
          << "threads=" << threads << " failures=" << with_failures;
    }
  }
}

TEST(EngineCollectives, GossipCountMatchesCore) {
  constexpr std::uint32_t kN = 1500;
  constexpr std::uint64_t kSeed = 303;
  const auto keys =
      make_keys(generate_values(Distribution::kUniformReal, kN, 17));
  std::vector<bool> ind_a(kN), ind_b(kN), ind_c(kN);
  for (std::uint32_t v = 0; v < kN; ++v) {
    ind_a[v] = v % 3 == 0;
    ind_b[v] = v % 2 == 0;
    ind_c[v] = true;
  }

  for (const bool with_failures : {false, true}) {
    const FailureModel fm =
        with_failures ? FailureModel::uniform(0.25) : FailureModel{};
    Network net(kN, kSeed, fm);
    const CountResult seq_count = gossip_count(net, ind_a);
    const CountResult seq_rank = gossip_rank(net, keys, keys[kN / 2]);
    const TripleCountResult seq3 = gossip_count3(net, ind_a, ind_b, ind_c);

    for (unsigned threads : kThreadCounts) {
      Engine engine(kN, kSeed, fm, config_for(threads));
      const CountResult par_count = gossip_count(engine, ind_a);
      const CountResult par_rank = gossip_rank(engine, keys, keys[kN / 2]);
      const TripleCountResult par3 = gossip_count3(engine, ind_a, ind_b, ind_c);
      EXPECT_EQ(par_count.counts, seq_count.counts);
      EXPECT_EQ(par_count.rounds, seq_count.rounds);
      EXPECT_EQ(par_rank.counts, seq_rank.counts);
      EXPECT_EQ(par3.a, seq3.a);
      EXPECT_EQ(par3.b, seq3.b);
      EXPECT_EQ(par3.c, seq3.c);
      EXPECT_EQ(par3.rounds, seq3.rounds);
      EXPECT_EQ(engine.metrics(), net.metrics())
          << "threads=" << threads << " failures=" << with_failures;
    }
  }
}

TEST(EngineCollectives, PivotMatchesCore) {
  constexpr std::uint32_t kN = 1024;
  constexpr std::uint64_t kSeed = 307;
  const auto keys =
      make_keys(generate_values(Distribution::kZipf, kN, 19));
  std::vector<bool> candidate(kN);
  for (std::uint32_t v = 0; v < kN; ++v) candidate[v] = v % 5 != 0;

  for (const bool with_failures : {false, true}) {
    const FailureModel fm =
        with_failures ? FailureModel::uniform(0.2) : FailureModel{};
    Network net(kN, kSeed, fm);
    const PivotSample seq = sample_uniform_candidate(net, keys, candidate);

    for (unsigned threads : kThreadCounts) {
      Engine engine(kN, kSeed, fm, config_for(threads));
      const PivotSample par = sample_uniform_candidate(engine, keys, candidate);
      EXPECT_EQ(par.pivot, seq.pivot);
      EXPECT_EQ(par.rounds, seq.rounds);
      EXPECT_EQ(par.found, seq.found);
      EXPECT_EQ(engine.metrics(), net.metrics())
          << "threads=" << threads << " failures=" << with_failures;
    }
  }
}

TEST(EngineCollectives, TokenSplitMatchesCore) {
  constexpr std::uint32_t kN = 2048;
  constexpr std::uint64_t kSeed = 311;
  constexpr std::uint64_t kMult = 8;
  std::vector<Key> inst(kN, Key::infinite());
  for (std::uint32_t v = 0; v < kN / 16; ++v) {
    inst[v * 3] = Key{static_cast<double>(v + 1), v, 0};
  }

  for (const bool with_failures : {false, true}) {
    const FailureModel fm =
        with_failures ? FailureModel::uniform(0.35) : FailureModel{};
    Network net(kN, kSeed, fm);
    const TokenSplitResult seq =
        token_split_distribute(net, inst, kMult, 7ull << 32);

    for (unsigned threads : kThreadCounts) {
      Engine engine(kN, kSeed, fm, config_for(threads));
      const TokenSplitResult par =
          token_split_distribute(engine, inst, kMult, 7ull << 32);
      EXPECT_EQ(par.instance, seq.instance)
          << "threads=" << threads << " failures=" << with_failures;
      EXPECT_EQ(par.rounds, seq.rounds);
      EXPECT_EQ(par.token_count, seq.token_count);
      EXPECT_EQ(engine.metrics(), net.metrics())
          << "threads=" << threads << " failures=" << with_failures;
    }
  }
}

// ---- full pipelines -------------------------------------------------------

TEST(EnginePipelines, ApproxQuantileMatchesCore) {
  constexpr std::uint32_t kN = 4096;
  constexpr std::uint64_t kSeed = 401;
  const auto values = generate_values(Distribution::kUniformReal, kN, 23);

  for (const double phi : {0.5, 0.2}) {
    Network net(kN, kSeed);
    ApproxQuantileParams params;
    params.phi = phi;
    params.eps = 0.15;
    const ApproxQuantileResult seq = approx_quantile(net, values, params);

    for (unsigned threads : kThreadCounts) {
      // Both state representations (interned lanes with cross-kernel
      // session reuse at intern_min 1, pooled Key buffers at the default
      // threshold) must be unobservable at the pipeline level too.
      for (const std::uint32_t intern_min : {1u, 0u}) {
        Engine engine(kN, kSeed, FailureModel{},
                      EngineConfig{.threads = threads,
                                   .shard_size = 192,
                                   .intern_min_nodes = intern_min});
        const ApproxQuantileResult par =
            approx_quantile(engine, values, params);
        EXPECT_EQ(par.outputs, seq.outputs)
            << "threads=" << threads << " phi=" << phi
            << " intern_min=" << intern_min;
        EXPECT_EQ(par.valid, seq.valid);
        EXPECT_EQ(par.phase1_iterations, seq.phase1_iterations);
        EXPECT_EQ(par.phase2_iterations, seq.phase2_iterations);
        EXPECT_EQ(par.rounds, seq.rounds);
        EXPECT_EQ(par.used_exact_fallback, seq.used_exact_fallback);
        EXPECT_EQ(engine.metrics(), net.metrics())
            << "threads=" << threads << " phi=" << phi
            << " intern_min=" << intern_min;
      }
    }
  }
}

// The exact-fallback branch (eps below eps_tournament_floor) must route
// through the engine-native exact pipeline and still match bit for bit.
TEST(EnginePipelines, ApproxExactFallbackMatchesCore) {
  constexpr std::uint32_t kN = 1024;
  constexpr std::uint64_t kSeed = 403;
  const auto values = generate_values(Distribution::kGaussian, kN, 29);

  ApproxQuantileParams params;
  params.phi = 0.5;
  params.eps = 0.05;  // below eps_tournament_floor(1024) ~ 0.2
  Network net(kN, kSeed);
  const ApproxQuantileResult seq = approx_quantile(net, values, params);
  ASSERT_TRUE(seq.used_exact_fallback);

  for (unsigned threads : kThreadCounts) {
    Engine engine(kN, kSeed, FailureModel{}, config_for(threads));
    const ApproxQuantileResult par = approx_quantile(engine, values, params);
    EXPECT_TRUE(par.used_exact_fallback);
    EXPECT_EQ(par.outputs, seq.outputs) << "threads=" << threads;
    EXPECT_EQ(par.valid, seq.valid);
    EXPECT_EQ(par.rounds, seq.rounds);
    EXPECT_EQ(engine.metrics(), net.metrics()) << "threads=" << threads;
  }
}

TEST(EnginePipelines, ExactQuantileMatchesCore) {
  constexpr std::uint32_t kN = 4096;
  constexpr std::uint64_t kSeed = 409;
  const auto values = generate_values(Distribution::kExponential, kN, 31);

  for (const double phi : {0.5, 0.9}) {
    Network net(kN, kSeed);
    ExactQuantileParams params;
    params.phi = phi;
    const ExactQuantileResult seq = exact_quantile(net, values, params);

    for (unsigned threads : kThreadCounts) {
      Engine engine(kN, kSeed, FailureModel{}, config_for(threads));
      const ExactQuantileResult par = exact_quantile(engine, values, params);
      EXPECT_EQ(par.answer, seq.answer)
          << "threads=" << threads << " phi=" << phi;
      EXPECT_EQ(par.outputs, seq.outputs);
      EXPECT_EQ(par.valid, seq.valid);
      EXPECT_EQ(par.iterations, seq.iterations);
      EXPECT_EQ(par.endgame_phases, seq.endgame_phases);
      EXPECT_EQ(par.rounds, seq.rounds);
      EXPECT_EQ(engine.metrics(), net.metrics())
          << "threads=" << threads << " phi=" << phi;
    }
  }
}

// The duplication strategy exercises the scatter-based token split inside
// the full pipeline.
TEST(EnginePipelines, ExactDuplicationRouteMatchesCore) {
  constexpr std::uint32_t kN = 1 << 14;
  constexpr std::uint64_t kSeed = 419;
  const auto values = generate_values(Distribution::kUniformReal, kN, 37);

  Network net(kN, kSeed);
  ExactQuantileParams params;
  params.phi = 0.37;
  params.strategy = ExactStrategy::kPreferDuplication;
  const ExactQuantileResult seq = exact_quantile(net, values, params);
  ASSERT_GE(seq.iterations, 2u);

  for (unsigned threads : {1u, 8u}) {
    Engine engine(kN, kSeed, FailureModel{}, config_for(threads));
    const ExactQuantileResult par = exact_quantile(engine, values, params);
    EXPECT_EQ(par.answer, seq.answer) << "threads=" << threads;
    EXPECT_EQ(par.outputs, seq.outputs);
    EXPECT_EQ(par.iterations, seq.iterations);
    EXPECT_EQ(par.endgame_phases, seq.endgame_phases);
    EXPECT_EQ(par.rounds, seq.rounds);
    EXPECT_EQ(engine.metrics(), net.metrics()) << "threads=" << threads;
  }
}

TEST(EnginePipelines, OwnRankMatchesCore) {
  constexpr std::uint32_t kN = 1 << 14;
  constexpr std::uint64_t kSeed = 421;
  const auto values = generate_values(Distribution::kUniformReal, kN, 41);

  Network net(kN, kSeed);
  OwnRankParams params;
  params.eps = 0.45;
  const OwnRankResult seq = own_rank(net, values, params);

  for (unsigned threads : {1u, 8u}) {
    Engine engine(kN, kSeed, FailureModel{}, config_for(threads));
    const OwnRankResult par = own_rank(engine, values, params);
    EXPECT_EQ(par.estimates, seq.estimates) << "threads=" << threads;
    EXPECT_EQ(par.valid, seq.valid);
    EXPECT_EQ(par.quantile_runs, seq.quantile_runs);
    EXPECT_EQ(par.rounds, seq.rounds);
    EXPECT_EQ(engine.metrics(), net.metrics()) << "threads=" << threads;
  }
}

// Back-to-back pipelines on one Engine reuse the scatter arena, the pooled
// push-sum scratch, and the token store across calls; the reuse must be
// invisible — the second run must stay bit-identical to the second run of
// the same sequence on a sequential Network, at every thread count.
TEST(EnginePipelines, BackToBackRunsReuseArenaBitIdentically) {
  constexpr std::uint32_t kN = 2048;
  constexpr std::uint64_t kSeed = 431;
  const auto values = generate_values(Distribution::kUniformReal, kN, 43);

  ApproxQuantileParams ap;
  ap.phi = 0.3;
  ap.eps = 0.2;
  ExactQuantileParams ep;
  ep.phi = 0.62;
  ep.strategy = ExactStrategy::kPreferDuplication;

  Network net(kN, kSeed);
  const ApproxQuantileResult seq_a1 = approx_quantile(net, values, ap);
  const ExactQuantileResult seq_e1 = exact_quantile(net, values, ep);
  const ApproxQuantileResult seq_a2 = approx_quantile(net, values, ap);
  const ExactQuantileResult seq_e2 = exact_quantile(net, values, ep);

  for (unsigned threads : kThreadCounts) {
    Engine engine(kN, kSeed, FailureModel{}, config_for(threads));
    const std::uint64_t grows_before = engine.scatter_arena().grow_events();
    const ApproxQuantileResult a1 = approx_quantile(engine, values, ap);
    const ExactQuantileResult e1 = exact_quantile(engine, values, ep);
    const std::uint64_t grows_warm = engine.scatter_arena().grow_events();
    const ApproxQuantileResult a2 = approx_quantile(engine, values, ap);
    const ExactQuantileResult e2 = exact_quantile(engine, values, ep);

    EXPECT_EQ(a1.outputs, seq_a1.outputs) << "threads=" << threads;
    EXPECT_EQ(e1.outputs, seq_e1.outputs) << "threads=" << threads;
    EXPECT_EQ(a2.outputs, seq_a2.outputs) << "threads=" << threads;
    EXPECT_EQ(a2.rounds, seq_a2.rounds);
    EXPECT_EQ(e2.outputs, seq_e2.outputs) << "threads=" << threads;
    EXPECT_EQ(e2.answer, seq_e2.answer);
    EXPECT_EQ(e2.rounds, seq_e2.rounds);
    EXPECT_EQ(engine.metrics(), net.metrics()) << "threads=" << threads;
    // The first pair of runs warms the arena; reuse means the second pair
    // grows mailboxes far less (the randomness differs between runs, so a
    // handful of boxes may still see a new high-water mark).
    EXPECT_GT(grows_warm, grows_before);
    EXPECT_LE(engine.scatter_arena().grow_events() - grows_warm,
              (grows_warm - grows_before) / 4)
        << "threads=" << threads;
  }
}

// A Scatter constructed while another holds the engine's arena must fall
// back to private mailboxes and still deliver correctly.
TEST(Scatter, NestedScatterFallsBackToPrivateStorage) {
  constexpr std::uint32_t kN = 512;
  Engine engine(kN, 9, FailureModel{},
                EngineConfig{.threads = 2, .shard_size = 64});
  Scatter<std::uint64_t> outer(engine);
  Scatter<std::uint64_t> inner(engine);  // arena busy: private boxes
  outer.begin_round();
  inner.begin_round();
  engine.parallel_shards(
      [&](std::uint32_t begin, std::uint32_t end, Metrics&) {
        for (std::uint32_t v = begin; v < end; ++v) {
          outer.send(v, (v + 1) % kN, v);
          inner.send(v, (v + 2) % kN, v + 1000);
        }
      });
  std::vector<std::uint64_t> from_outer(kN, 0), from_inner(kN, 0);
  outer.deliver(engine, [&](std::uint32_t dest, std::uint64_t payload) {
    from_outer[dest] = payload;
  });
  inner.deliver(engine, [&](std::uint32_t dest, std::uint64_t payload) {
    from_inner[dest] = payload;
  });
  for (std::uint32_t v = 0; v < kN; ++v) {
    EXPECT_EQ(from_outer[(v + 1) % kN], v);
    EXPECT_EQ(from_inner[(v + 2) % kN], v + 1000);
  }
}

// Gather block size is a pure performance knob: every rewritten kernel's
// blocked-gather transcript (states, outcome structs, Metrics) must match
// the sequential Network path at every block size — degenerate one-node
// blocks, blocks that straddle shard boundaries, and blocks larger than
// any shard — at 1, 2, and 8 threads.
TEST(EngineKernels, GatherBlockSweepMatchesCoreForEveryKernel) {
  constexpr std::uint32_t kN = 3001;  // not a multiple of the shard size
  constexpr std::uint64_t kSeed = 131;
  const auto keys =
      make_keys(generate_values(Distribution::kUniformReal, kN, 47));

  Network net_two(kN, kSeed);
  std::vector<Key> seq_two_state(keys.begin(), keys.end());
  const auto seq_two = two_tournament(net_two, seq_two_state, 0.3, 0.1);

  Network net_three(kN, kSeed);
  std::vector<Key> seq_three_state(keys.begin(), keys.end());
  const auto seq_three = three_tournament(net_three, seq_three_state, 0.1);

  for (unsigned threads : kThreadCounts) {
    for (const std::uint32_t block : {1u, 7u, 64u, 1u << 20}) {
      // intern_min_nodes 1 forces the interned-rank lanes, the default
      // (kN < 2^16) the pooled Key buffers: both representations must
      // reproduce the sequential transcript at every block size.
      for (const std::uint32_t intern_min : {1u, 0u}) {
        EngineConfig cfg{.threads = threads,
                         .shard_size = 192,
                         .gather_block = block,
                         .intern_min_nodes = intern_min};
        {
          Engine engine(kN, kSeed, FailureModel{}, cfg);
          std::vector<Key> state(keys.begin(), keys.end());
          const auto par = two_tournament(engine, state, 0.3, 0.1);
          EXPECT_EQ(par.iterations, seq_two.iterations);
          EXPECT_EQ(state, seq_two_state)
              << "threads=" << threads << " block=" << block
              << " intern_min=" << intern_min;
          EXPECT_EQ(engine.metrics(), net_two.metrics())
              << "threads=" << threads << " block=" << block
              << " intern_min=" << intern_min;
        }
        {
          Engine engine(kN, kSeed, FailureModel{}, cfg);
          std::vector<Key> state(keys.begin(), keys.end());
          const auto par = three_tournament(engine, state, 0.1);
          EXPECT_EQ(par.iterations, seq_three.iterations);
          EXPECT_EQ(par.outputs, seq_three.outputs)
              << "threads=" << threads << " block=" << block
              << " intern_min=" << intern_min;
          EXPECT_EQ(state, seq_three_state)
              << "threads=" << threads << " block=" << block
              << " intern_min=" << intern_min;
          EXPECT_EQ(engine.metrics(), net_three.metrics())
              << "threads=" << threads << " block=" << block
              << " intern_min=" << intern_min;
        }
      }
    }
  }
}

// Same sweep for median dynamics under a failure model, where the blocked
// commit must handle kNoPeer picks (failed pulls) in both gather slots.
// 3 iterations run the short-run Key-buffer representation, 8 the interned
// lanes (see the threshold in median_dynamics); both must reproduce the
// sequential protocol path exactly.
TEST(EngineKernels, MedianDynamicsBlockSweepUnderFailures) {
  constexpr std::uint32_t kN = 2048;
  constexpr std::uint64_t kSeed = 137;
  const auto keys =
      make_keys(generate_values(Distribution::kGaussian, kN, 51));
  const std::uint64_t bits = KeyCodec(kN).encoded_bits();
  const FailureModel fm = FailureModel::uniform(0.25);

  for (const std::uint64_t iterations : {std::uint64_t{3},
                                         std::uint64_t{8}}) {
    Network net(kN, kSeed, fm);
    auto protos = make_median_protocols(keys, iterations);
    const RuntimeResult seq = run_protocols(net, protos, 1000, bits);
    const std::vector<Key> seq_states = protocol_states(protos);

    for (unsigned threads : kThreadCounts) {
      for (const std::uint32_t block : {3u, 256u}) {
        // intern_min_nodes = 1 lets the iteration count alone choose the
        // representation here: 3 iterations run Key buffers, 8 the lanes.
        Engine engine(kN, kSeed, fm,
                      EngineConfig{.threads = threads,
                                   .shard_size = 192,
                                   .gather_block = block,
                                   .intern_min_nodes = 1});
        std::vector<Key> state(keys.begin(), keys.end());
        const RuntimeResult ker =
            median_dynamics(engine, state, iterations, 1000, bits);
        EXPECT_EQ(ker.rounds, seq.rounds);
        EXPECT_EQ(state, seq_states) << "threads=" << threads
                                     << " block=" << block
                                     << " iterations=" << iterations;
        EXPECT_EQ(engine.metrics(), net.metrics())
            << "threads=" << threads << " block=" << block
            << " iterations=" << iterations;
      }
    }
  }
}

// Oversized final sampling (K above the kernels' stack-buffer bound, 64)
// routes the per-shard pick/sample slices through the pooled wide lanes —
// for both state representations — and must stay bit-identical.
TEST(EngineKernels, ThreeTournamentOversizedFinalSampleMatchesCore) {
  constexpr std::uint32_t kN = 1024;
  constexpr std::uint64_t kSeed = 151;
  constexpr std::uint32_t kBigK = 101;
  const auto keys =
      make_keys(generate_values(Distribution::kUniformReal, kN, 61));

  Network net(kN, kSeed);
  std::vector<Key> seq_state(keys.begin(), keys.end());
  const auto seq = three_tournament(net, seq_state, 0.1, kBigK);

  for (unsigned threads : {1u, 8u}) {
    for (const std::uint32_t intern_min : {1u, 0u}) {
      Engine engine(kN, kSeed, FailureModel{},
                    EngineConfig{.threads = threads,
                                 .shard_size = 192,
                                 .intern_min_nodes = intern_min});
      std::vector<Key> state(keys.begin(), keys.end());
      const auto par = three_tournament(engine, state, 0.1, kBigK);
      EXPECT_EQ(par.outputs, seq.outputs)
          << "threads=" << threads << " intern_min=" << intern_min;
      EXPECT_EQ(state, seq_state)
          << "threads=" << threads << " intern_min=" << intern_min;
      EXPECT_EQ(engine.metrics(), net.metrics())
          << "threads=" << threads << " intern_min=" << intern_min;
    }
  }
}

// Consecutive kernels on one engine share an interned-lane session; the
// reuse check is an exact compare pass, so mutating the state vector
// between calls — even to a key outside the interned table — must trigger
// a re-intern, never serve stale lanes.
TEST(EngineKernels, InternedSessionDetectsStateMutationBetweenCalls) {
  constexpr std::uint32_t kN = 1024;
  constexpr std::uint64_t kSeed = 139;
  const auto keys =
      make_keys(generate_values(Distribution::kUniformReal, kN, 53));
  const Key foreign{-123.25, 99999, 7};  // not in the original key set

  Network net(kN, kSeed);
  std::vector<Key> seq_state(keys.begin(), keys.end());
  (void)two_tournament(net, seq_state, 0.4, 0.1);
  seq_state[17] = foreign;
  const auto seq_out = three_tournament(net, seq_state, 0.1);

  for (unsigned threads : kThreadCounts) {
    // intern_min_nodes = 1 forces the interned lanes (the session under
    // test) at this small n.
    Engine engine(kN, kSeed, FailureModel{},
                  EngineConfig{.threads = threads,
                               .shard_size = 192,
                               .intern_min_nodes = 1});
    std::vector<Key> state(keys.begin(), keys.end());
    (void)two_tournament(engine, state, 0.4, 0.1);
    state[17] = foreign;  // invalidate the session behind the engine's back
    const auto par_out = three_tournament(engine, state, 0.1);
    EXPECT_EQ(par_out.outputs, seq_out.outputs) << "threads=" << threads;
    EXPECT_EQ(state, seq_state) << "threads=" << threads;
    EXPECT_EQ(engine.metrics(), net.metrics()) << "threads=" << threads;
  }
}

// Opt-in worker pinning is a placement policy, never an observable one:
// results and Metrics must be bit-identical with and without it, and a
// pinned engine must work on any machine (pinning failures degrade to a
// warning, not an error).
TEST(Engine, PinWorkersIsObservableNeutral) {
  constexpr std::uint32_t kN = 1500;
  constexpr std::uint64_t kSeed = 149;
  const auto keys =
      make_keys(generate_values(Distribution::kUniformReal, kN, 59));

  Network net(kN, kSeed);
  std::vector<Key> seq_state(keys.begin(), keys.end());
  (void)two_tournament(net, seq_state, 0.5, 0.1);

  for (unsigned threads : kThreadCounts) {
    Engine engine(kN, kSeed, FailureModel{},
                  EngineConfig{.threads = threads,
                               .shard_size = 192,
                               .pin_workers = true});
    std::vector<Key> state(keys.begin(), keys.end());
    (void)two_tournament(engine, state, 0.5, 0.1);
    EXPECT_EQ(state, seq_state) << "threads=" << threads;
    EXPECT_EQ(engine.metrics(), net.metrics()) << "threads=" << threads;
  }
}

// Thread count and shard size are pure performance knobs: sweeping both
// must not change a single bit of the result.
TEST(Engine, ShardSizeIsNotObservable) {
  constexpr std::uint32_t kN = 777;
  Engine coarse(kN, 5, FailureModel::uniform(0.1),
                EngineConfig{.threads = 2, .shard_size = 1u << 14});
  Engine fine(kN, 5, FailureModel::uniform(0.1),
              EngineConfig{.threads = 2, .shard_size = 33});
  for (int r = 0; r < 6; ++r) {
    EXPECT_EQ(coarse.pull_round(24), fine.pull_round(24));
  }
  EXPECT_EQ(coarse.metrics(), fine.metrics());
}

}  // namespace
}  // namespace gq
