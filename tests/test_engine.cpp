// Determinism tests for the sharded parallel engine: the engine must
// produce bit-identical transcripts, states, and Metrics to the sequential
// Network/runtime path for the same seed, at every thread count, with and
// without a failure model.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <vector>

#include "engine/engine.hpp"
#include "engine/kernels.hpp"
#include "engine/runtime_adapter.hpp"
#include "engine/thread_pool.hpp"
#include "runtime/protocol.hpp"
#include "sim/network.hpp"
#include "wire/codec.hpp"
#include "workload/distributions.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

constexpr unsigned kThreadCounts[] = {1, 2, 8};

// Small shards so every thread count exercises multi-shard merging.
EngineConfig config_for(unsigned threads) {
  return EngineConfig{.threads = threads, .shard_size = 192};
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (unsigned threads : kThreadCounts) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.threads(), threads);
    std::vector<std::atomic<int>> hits(257);
    pool.run(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    // The pool must be reusable across batches.
    pool.run(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 2);
    pool.run(0, [&](std::size_t) { FAIL() << "empty batch ran a task"; });
  }
}

TEST(ThreadPool, PropagatesTaskExceptionsAndStaysUsable) {
  for (unsigned threads : kThreadCounts) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.run(64,
                 [](std::size_t i) {
                   if (i == 13) throw std::runtime_error("boom");
                 }),
        std::runtime_error);
    // The pool must survive a throwing batch intact.
    std::atomic<int> ran{0};
    pool.run(64, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran.load(), 64);
  }
}

TEST(Engine, RejectsInvalidConfigurations) {
  EXPECT_THROW(Engine(1, 7), std::invalid_argument);
  EXPECT_THROW(Engine(16, 7, FailureModel{},
                      EngineConfig{.threads = 1, .shard_size = 0}),
               std::invalid_argument);
}

TEST(Engine, PullRoundTranscriptMatchesNetworkAtEveryThreadCount) {
  constexpr std::uint32_t kN = 1000;
  constexpr std::uint64_t kSeed = 41;
  for (const bool with_failures : {false, true}) {
    const FailureModel fm =
        with_failures ? FailureModel::uniform(0.25) : FailureModel{};
    Network net(kN, kSeed, fm);
    std::vector<std::vector<std::uint32_t>> expected;
    for (int r = 0; r < 12; ++r) expected.push_back(net.pull_round(32));

    for (unsigned threads : kThreadCounts) {
      Engine engine(kN, kSeed, fm, config_for(threads));
      for (int r = 0; r < 12; ++r) {
        EXPECT_EQ(engine.pull_round(32), expected[static_cast<size_t>(r)])
            << "threads=" << threads << " round=" << r
            << " failures=" << with_failures;
      }
      EXPECT_EQ(engine.metrics(), net.metrics())
          << "threads=" << threads << " failures=" << with_failures;
      EXPECT_EQ(engine.round(), net.round());
    }
  }
}

TEST(Engine, DefaultMessageBitsMatchesNetwork) {
  Network net(1 << 20, 1);
  Engine engine(1 << 20, 1, FailureModel{}, EngineConfig{.threads = 1});
  EXPECT_EQ(engine.default_message_bits(), net.default_message_bits());
}

std::vector<std::unique_ptr<NodeProtocol>> make_median_protocols(
    std::span<const Key> keys, std::uint64_t iterations) {
  std::vector<std::unique_ptr<NodeProtocol>> out;
  out.reserve(keys.size());
  for (const Key& k : keys) {
    out.push_back(std::make_unique<MedianDynamicsProtocol>(k, iterations));
  }
  return out;
}

std::vector<Key> protocol_states(
    std::span<const std::unique_ptr<NodeProtocol>> protos) {
  std::vector<Key> out;
  out.reserve(protos.size());
  for (const auto& p : protos) {
    out.push_back(static_cast<MedianDynamicsProtocol*>(p.get())->state());
  }
  return out;
}

TEST(EngineAdapter, BitIdenticalToSequentialRuntime) {
  constexpr std::uint32_t kN = 2048;
  constexpr std::uint64_t kSeed = 23;
  constexpr std::uint64_t kIterations = 20;
  const auto keys =
      make_keys(generate_values(Distribution::kUniformReal, kN, 3));
  const std::uint64_t bits = KeyCodec(kN).encoded_bits();

  for (const bool with_failures : {false, true}) {
    const FailureModel fm =
        with_failures ? FailureModel::uniform(0.3) : FailureModel{};

    Network net(kN, kSeed, fm);
    auto seq_protos = make_median_protocols(keys, kIterations);
    const RuntimeResult seq = run_protocols(net, seq_protos, 1000, bits);
    const std::vector<Key> seq_states = protocol_states(seq_protos);

    for (unsigned threads : kThreadCounts) {
      Engine engine(kN, kSeed, fm, config_for(threads));
      auto protos = make_median_protocols(keys, kIterations);
      const RuntimeResult par = run_protocols(engine, protos, 1000, bits);
      EXPECT_EQ(par.rounds, seq.rounds);
      EXPECT_EQ(par.all_finished, seq.all_finished);
      EXPECT_EQ(protocol_states(protos), seq_states)
          << "threads=" << threads << " failures=" << with_failures;
      EXPECT_EQ(engine.metrics(), net.metrics())
          << "threads=" << threads << " failures=" << with_failures;
    }
  }
}

TEST(EngineKernels, MedianDynamicsMatchesProtocolPath) {
  constexpr std::uint32_t kN = 2048;
  constexpr std::uint64_t kSeed = 57;
  constexpr std::uint64_t kIterations = 16;
  const auto keys =
      make_keys(generate_values(Distribution::kGaussian, kN, 5));
  const std::uint64_t bits = KeyCodec(kN).encoded_bits();

  // max_rounds both above and below 2*iterations (the odd cap ends on a
  // half iteration whose messages must still be accounted).
  for (const std::uint64_t max_rounds : {std::uint64_t{1000},
                                         std::uint64_t{2 * kIterations},
                                         std::uint64_t{21}}) {
    for (const bool with_failures : {false, true}) {
      const FailureModel fm =
          with_failures ? FailureModel::uniform(0.2) : FailureModel{};

      Network net(kN, kSeed, fm);
      auto protos = make_median_protocols(keys, kIterations);
      const RuntimeResult seq = run_protocols(net, protos, max_rounds, bits);
      const std::vector<Key> seq_states = protocol_states(protos);

      for (unsigned threads : kThreadCounts) {
        Engine engine(kN, kSeed, fm, config_for(threads));
        std::vector<Key> state(keys.begin(), keys.end());
        const RuntimeResult ker =
            median_dynamics(engine, state, kIterations, max_rounds, bits);
        EXPECT_EQ(ker.rounds, seq.rounds) << "max_rounds=" << max_rounds;
        EXPECT_EQ(ker.all_finished, seq.all_finished);
        EXPECT_EQ(state, seq_states)
            << "threads=" << threads << " failures=" << with_failures
            << " max_rounds=" << max_rounds;
        EXPECT_EQ(engine.metrics(), net.metrics())
            << "threads=" << threads << " failures=" << with_failures
            << " max_rounds=" << max_rounds;
      }
    }
  }
}

TEST(EngineKernels, TwoTournamentMatchesCore) {
  constexpr std::uint32_t kN = 4096;
  constexpr std::uint64_t kSeed = 101;
  const auto keys =
      make_keys(generate_values(Distribution::kUniformReal, kN, 7));

  for (const double phi : {0.5, 0.2}) {
    for (const bool truncate_last : {true, false}) {
      Network net(kN, kSeed);
      std::vector<Key> seq_state(keys.begin(), keys.end());
      const auto seq =
          two_tournament(net, seq_state, phi, 0.05, truncate_last);

      for (unsigned threads : kThreadCounts) {
        Engine engine(kN, kSeed, FailureModel{}, config_for(threads));
        std::vector<Key> state(keys.begin(), keys.end());
        const auto par =
            two_tournament(engine, state, phi, 0.05, truncate_last);
        EXPECT_EQ(par.iterations, seq.iterations);
        EXPECT_EQ(par.side, seq.side);
        EXPECT_EQ(state, seq_state)
            << "threads=" << threads << " phi=" << phi
            << " truncate_last=" << truncate_last;
        EXPECT_EQ(engine.metrics(), net.metrics()) << "threads=" << threads;
      }
    }
  }
}

TEST(EngineKernels, ThreeTournamentMatchesCore) {
  constexpr std::uint32_t kN = 4096;
  constexpr std::uint64_t kSeed = 103;
  const auto keys =
      make_keys(generate_values(Distribution::kUniformReal, kN, 11));

  Network net(kN, kSeed);
  std::vector<Key> seq_state(keys.begin(), keys.end());
  const auto seq = three_tournament(net, seq_state, 0.05);

  for (unsigned threads : kThreadCounts) {
    Engine engine(kN, kSeed, FailureModel{}, config_for(threads));
    std::vector<Key> state(keys.begin(), keys.end());
    const auto par = three_tournament(engine, state, 0.05);
    EXPECT_EQ(par.iterations, seq.iterations);
    EXPECT_EQ(state, seq_state) << "threads=" << threads;
    EXPECT_EQ(par.outputs, seq.outputs) << "threads=" << threads;
    EXPECT_EQ(engine.metrics(), net.metrics()) << "threads=" << threads;
  }
}

TEST(EngineKernels, TournamentsRejectFailureModels) {
  Engine engine(64, 1, FailureModel::uniform(0.1),
                EngineConfig{.threads = 1});
  std::vector<Key> state(64);
  EXPECT_THROW((void)two_tournament(engine, state, 0.5, 0.1),
               std::invalid_argument);
  EXPECT_THROW((void)three_tournament(engine, state, 0.1),
               std::invalid_argument);
}

// Thread count and shard size are pure performance knobs: sweeping both
// must not change a single bit of the result.
TEST(Engine, ShardSizeIsNotObservable) {
  constexpr std::uint32_t kN = 777;
  Engine coarse(kN, 5, FailureModel::uniform(0.1),
                EngineConfig{.threads = 2, .shard_size = 1u << 14});
  Engine fine(kN, 5, FailureModel::uniform(0.1),
              EngineConfig{.threads = 2, .shard_size = 33});
  for (int r = 0; r < 6; ++r) {
    EXPECT_EQ(coarse.pull_round(24), fine.pull_round(24));
  }
  EXPECT_EQ(coarse.metrics(), fine.metrics());
}

}  // namespace
}  // namespace gq
