// Property-based tests: invariants that must hold for any input, phi, eps
// and seed.  Parameterized sweeps stand in for a fuzzing harness.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "analysis/rank_stats.hpp"
#include "analysis/theory_bounds.hpp"
#include "core/approx_quantile.hpp"
#include "core/exact_quantile.hpp"
#include "util/rng.hpp"
#include "workload/distributions.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

// Comparison-based protocols commute with strictly increasing transforms:
// running on f(x) with the same seed yields f(output).
TEST(Properties, ApproxCommutesWithMonotoneTransform) {
  constexpr std::uint32_t kN = 2048;
  const auto values =
      generate_values(Distribution::kUniformPermutation, kN, 7);
  std::vector<double> transformed(values.size());
  // Affine map with exact binary representation: no FP reordering.
  std::transform(values.begin(), values.end(), transformed.begin(),
                 [](double x) { return 2.0 * x + 10.0; });

  ApproxQuantileParams params;
  params.phi = 0.3;
  params.eps = 0.15;
  Network a(kN, 9), b(kN, 9);
  const auto r_orig = approx_quantile(a, values, params);
  const auto r_tran = approx_quantile(b, transformed, params);
  ASSERT_EQ(r_orig.outputs.size(), r_tran.outputs.size());
  for (std::uint32_t v = 0; v < kN; ++v) {
    EXPECT_EQ(r_tran.outputs[v].value, 2.0 * r_orig.outputs[v].value + 10.0);
    EXPECT_EQ(r_tran.outputs[v].id, r_orig.outputs[v].id);
  }
}

TEST(Properties, ExactCommutesWithMonotoneTransform) {
  constexpr std::uint32_t kN = 512;
  const auto values =
      generate_values(Distribution::kUniformPermutation, kN, 11);
  std::vector<double> transformed(values.size());
  std::transform(values.begin(), values.end(), transformed.begin(),
                 [](double x) { return 0.5 * x - 3.0; });
  ExactQuantileParams params;
  params.phi = 0.7;
  Network a(kN, 13), b(kN, 13);
  const auto r_orig = exact_quantile(a, values, params);
  const auto r_tran = exact_quantile(b, transformed, params);
  EXPECT_EQ(r_tran.answer.value, 0.5 * r_orig.answer.value - 3.0);
}

// The exact answer is a property of the value multiset, not of which node
// holds which value.
TEST(Properties, ExactAnswerInvariantUnderNodeReassignment) {
  constexpr std::uint32_t kN = 512;
  auto values = generate_values(Distribution::kGaussian, kN, 17);
  ExactQuantileParams params;
  params.phi = 0.25;

  Network a(kN, 19);
  const auto r1 = exact_quantile(a, values, params);

  // Rotate the assignment: node v now holds the value of node v+37.
  std::rotate(values.begin(), values.begin() + 37, values.end());
  Network b(kN, 19);
  const auto r2 = exact_quantile(b, values, params);
  EXPECT_EQ(r1.answer.value, r2.answer.value);
}

// phi = 0 and phi = 1 are min/max selections for any distribution.
class ExtremesAreMinMax : public ::testing::TestWithParam<Distribution> {};

TEST_P(ExtremesAreMinMax, MinAndMax) {
  constexpr std::uint32_t kN = 256;
  const auto values = generate_values(GetParam(), kN, 23);
  const double lo = *std::min_element(values.begin(), values.end());
  const double hi = *std::max_element(values.begin(), values.end());

  ExactQuantileParams params;
  params.phi = 0.0;
  Network a(kN, 29);
  EXPECT_EQ(exact_quantile(a, values, params).answer.value, lo);
  params.phi = 1.0;
  Network b(kN, 31);
  EXPECT_EQ(exact_quantile(b, values, params).answer.value, hi);
}

INSTANTIATE_TEST_SUITE_P(Distributions, ExtremesAreMinMax,
                         ::testing::Values(Distribution::kUniformReal,
                                           Distribution::kZipf,
                                           Distribution::kBimodal,
                                           Distribution::kClustered),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

// Randomized configuration fuzz: any (phi, eps, seed) above the floor must
// keep nearly every node inside the eps window.
TEST(Properties, RandomConfigurationsStayWithinWindow) {
  constexpr std::uint32_t kN = 4096;
  const double floor_eps = eps_tournament_floor(kN);
  Rng rng(12345);
  for (int trial = 0; trial < 12; ++trial) {
    const double phi = rand_double(rng);
    const double eps = floor_eps + rand_double(rng) * (0.3 - floor_eps);
    const auto dist =
        all_distributions()[rand_index(rng, all_distributions().size())];
    const auto values = generate_values(dist, kN, 1000 + trial);
    const auto keys = make_keys(values);
    const RankScale scale(keys);

    Network net(kN, 2000 + trial);
    ApproxQuantileParams params;
    params.phi = phi;
    params.eps = eps;
    const auto r = approx_quantile(net, values, params);
    const auto summary = evaluate_outputs(scale, r.outputs, phi, eps);
    EXPECT_GE(summary.frac_within_eps, 0.99)
        << "trial=" << trial << " dist=" << to_string(dist)
        << " phi=" << phi << " eps=" << eps;
  }
}

// Exact computation across many seeds: the w.h.p. guarantee plus
// verification-retry must give 100% success.
TEST(Properties, ExactIsAlwaysExactAcrossSeeds) {
  constexpr std::uint32_t kN = 512;
  const auto values = generate_values(Distribution::kUniformReal, kN, 3);
  const auto keys = make_keys(values);
  const RankScale scale(keys);
  ExactQuantileParams params;
  params.phi = 0.5;
  const Key truth = scale.exact_quantile(0.5);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Network net(kN, seed);
    const auto r = exact_quantile(net, values, params);
    EXPECT_EQ(r.answer.value, truth.value) << "seed=" << seed;
  }
}

// Approximate outputs must always be actual input values (the protocol
// only ever copies values, never fabricates them).
TEST(Properties, OutputsAreAlwaysInputMembers) {
  constexpr std::uint32_t kN = 2048;
  for (auto dist : {Distribution::kClustered, Distribution::kConstant,
                    Distribution::kSortedAscending}) {
    const auto values = generate_values(dist, kN, 41);
    const auto keys = make_keys(values);
    std::vector<Key> sorted(keys.begin(), keys.end());
    std::sort(sorted.begin(), sorted.end());

    Network net(kN, 47);
    ApproxQuantileParams params;
    params.phi = 0.6;
    params.eps = 0.15;
    const auto r = approx_quantile(net, values, params);
    for (const Key& k : r.outputs) {
      EXPECT_TRUE(std::binary_search(sorted.begin(), sorted.end(), k))
          << to_string(dist);
    }
  }
}

// Rank windows clamp correctly at the boundaries: a phi=0 query's outputs
// must be among the eps*n smallest values.
TEST(Properties, BoundaryQuantileStaysInBottomWindow) {
  constexpr std::uint32_t kN = 4096;
  const double eps = 0.13;
  const auto values = generate_values(Distribution::kExponential, kN, 53);
  const auto keys = make_keys(values);
  const RankScale scale(keys);

  Network net(kN, 59);
  ApproxQuantileParams params;
  params.phi = 0.0;
  params.eps = eps;
  const auto r = approx_quantile(net, values, params);
  std::size_t ok = 0;
  for (const Key& k : r.outputs) {
    ok += (static_cast<double>(scale.rank(k)) <= (eps * kN) + 1) ? 1 : 0;
  }
  EXPECT_GE(static_cast<double>(ok) / kN, 0.99);
}

}  // namespace
}  // namespace gq
