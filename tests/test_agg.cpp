#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "agg/push_sum.hpp"
#include "agg/rank_count.hpp"
#include "agg/spread.hpp"
#include "workload/distributions.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

TEST(PushSum, ConvergesToAverage) {
  constexpr std::uint32_t kN = 256;
  Network net(kN, 17);
  const auto xs = generate_values(Distribution::kUniformReal, kN, 1);
  const double truth =
      std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(kN);
  const PushSumResult r = push_sum_average(net, xs);
  for (double e : r.estimates) EXPECT_NEAR(e, truth, 1e-3);
}

TEST(PushSum, SumScalesAverage) {
  constexpr std::uint32_t kN = 128;
  Network net(kN, 3);
  std::vector<double> xs(kN, 2.5);
  const PushSumResult r = push_sum_sum(net, xs);
  for (double e : r.estimates) EXPECT_NEAR(e, 2.5 * kN, 1e-6);
}

TEST(PushSum, MassIsConservedUnderFailures) {
  constexpr std::uint32_t kN = 200;
  Network net(kN, 23, FailureModel::uniform(0.4));
  const auto xs = generate_values(Distribution::kGaussian, kN, 2);
  const double truth =
      std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(kN);
  const PushSumResult r = push_sum_average(net, xs);
  for (double e : r.estimates) EXPECT_NEAR(e, truth, 1e-2);
}

TEST(PushSum, ExactRoundsGiveTighterError) {
  constexpr std::uint32_t kN = 512;
  const auto xs = generate_values(Distribution::kExponential, kN, 5);
  const double truth =
      std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(kN);

  Network coarse(kN, 9), fine(kN, 9);
  const auto r_coarse =
      push_sum_average(coarse, xs, push_sum_rounds_default(coarse));
  const auto r_fine =
      push_sum_average(fine, xs, push_sum_rounds_for_exact(fine));
  double err_coarse = 0.0, err_fine = 0.0;
  for (std::uint32_t v = 0; v < kN; ++v) {
    err_coarse = std::max(err_coarse, std::abs(r_coarse.estimates[v] - truth));
    err_fine = std::max(err_fine, std::abs(r_fine.estimates[v] - truth));
  }
  EXPECT_LT(err_fine, err_coarse + 1e-12);
  EXPECT_LT(err_fine, 1e-6);
}

TEST(PushSum, MultiDimensionalAgreesWithScalar) {
  constexpr std::uint32_t kN = 128;
  const auto a = generate_values(Distribution::kUniformReal, kN, 1);
  const auto b = generate_values(Distribution::kExponential, kN, 2);
  std::vector<std::array<double, 3>> x(kN);
  for (std::uint32_t v = 0; v < kN; ++v) x[v] = {a[v], b[v], 1.0};

  Network net(kN, 31);
  const auto multi = push_sum_average_multi<3>(
      net, std::span<const std::array<double, 3>>(x), 200);

  const double avg_a =
      std::accumulate(a.begin(), a.end(), 0.0) / static_cast<double>(kN);
  const double avg_b =
      std::accumulate(b.begin(), b.end(), 0.0) / static_cast<double>(kN);
  for (std::uint32_t v = 0; v < kN; ++v) {
    EXPECT_NEAR(multi.estimates[v][0], avg_a, 1e-6);
    EXPECT_NEAR(multi.estimates[v][1], avg_b, 1e-6);
    EXPECT_NEAR(multi.estimates[v][2], 1.0, 1e-6);
  }
}

TEST(Spread, MaxReachesEveryNode) {
  constexpr std::uint32_t kN = 512;
  Network net(kN, 7);
  const auto keys = make_keys(generate_values(
      Distribution::kUniformPermutation, kN, 4));
  const Key truth = *std::max_element(keys.begin(), keys.end());
  const SpreadResult r = spread_max(net, keys);
  EXPECT_TRUE(r.converged);
  for (const Key& k : r.values) EXPECT_EQ(k, truth);
}

TEST(Spread, MinReachesEveryNode) {
  constexpr std::uint32_t kN = 512;
  Network net(kN, 7);
  const auto keys = make_keys(generate_values(
      Distribution::kGaussian, kN, 4));
  const Key truth = *std::min_element(keys.begin(), keys.end());
  const SpreadResult r = spread_min(net, keys);
  EXPECT_TRUE(r.converged);
  for (const Key& k : r.values) EXPECT_EQ(k, truth);
}

TEST(Spread, RoundsAreLogarithmic) {
  // O(log n) w.h.p.: allow a generous constant but reject linear behaviour.
  for (std::uint32_t n : {64u, 256u, 1024u, 4096u}) {
    Network net(n, 13);
    const auto keys =
        make_keys(generate_values(Distribution::kUniformReal, n, 6));
    const SpreadResult r = spread_max(net, keys);
    EXPECT_TRUE(r.converged);
    EXPECT_LE(r.rounds, 6.0 * std::log2(static_cast<double>(n)) + 10.0)
        << "n=" << n;
  }
}

TEST(Spread, SurvivesFailures) {
  constexpr std::uint32_t kN = 256;
  Network net(kN, 19, FailureModel::uniform(0.5));
  const auto keys =
      make_keys(generate_values(Distribution::kUniformReal, kN, 8));
  const Key truth = *std::max_element(keys.begin(), keys.end());
  const SpreadResult r = spread_max(net, keys);
  EXPECT_TRUE(r.converged);
  for (const Key& k : r.values) EXPECT_EQ(k, truth);
}

TEST(Spread, ZeroRoundsWhenAlreadyUniform) {
  constexpr std::uint32_t kN = 16;
  Network net(kN, 1);
  const std::vector<Key> keys(kN, Key{1.0, 3, 0});
  const SpreadResult r = spread_max(net, keys);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.rounds, 0u);
}

TEST(GossipCount, ExactOnAllNodes) {
  constexpr std::uint32_t kN = 300;
  Network net(kN, 29);
  std::vector<bool> indicator(kN, false);
  for (std::uint32_t v = 0; v < kN; v += 3) indicator[v] = true;
  const std::uint64_t truth = (kN + 2) / 3;
  const CountResult r = gossip_count(net, indicator);
  for (auto c : r.counts) EXPECT_EQ(c, truth);
}

TEST(GossipCount, ZeroAndFullCounts) {
  constexpr std::uint32_t kN = 64;
  Network net(kN, 31);
  const CountResult zero = gossip_count(net, std::vector<bool>(kN, false));
  const CountResult full = gossip_count(net, std::vector<bool>(kN, true));
  for (auto c : zero.counts) EXPECT_EQ(c, 0u);
  for (auto c : full.counts) EXPECT_EQ(c, kN);
}

TEST(GossipRank, MatchesOfflineRank) {
  constexpr std::uint32_t kN = 200;
  const auto keys =
      make_keys(generate_values(Distribution::kUniformPermutation, kN, 10));
  std::vector<Key> sorted(keys.begin(), keys.end());
  std::sort(sorted.begin(), sorted.end());
  for (std::uint64_t target : {1ull, 50ull, 200ull}) {
    Network net(kN, 37 + target);
    const CountResult r = gossip_rank(net, keys, sorted[target - 1]);
    for (auto c : r.counts) EXPECT_EQ(c, target);
  }
}

TEST(GossipRank, ExactUnderFailures) {
  constexpr std::uint32_t kN = 150;
  Network net(kN, 41, FailureModel::uniform(0.3));
  const auto keys =
      make_keys(generate_values(Distribution::kZipf, kN, 12));
  std::vector<Key> sorted(keys.begin(), keys.end());
  std::sort(sorted.begin(), sorted.end());
  const CountResult r = gossip_rank(net, keys, sorted[74]);
  for (auto c : r.counts) EXPECT_EQ(c, 75u);
}

TEST(GossipCount3, ThreeExactCountsInOneRun) {
  constexpr std::uint32_t kN = 220;
  Network net(kN, 43);
  std::vector<bool> a(kN, false), b(kN, false), c(kN, false);
  for (std::uint32_t v = 0; v < kN; ++v) {
    a[v] = v < 20;
    b[v] = v % 2 == 0;
    c[v] = true;
  }
  const TripleCountResult r = gossip_count3(net, a, b, c);
  for (std::uint32_t v = 0; v < kN; ++v) {
    EXPECT_EQ(r.a[v], 20u);
    EXPECT_EQ(r.b[v], kN / 2);
    EXPECT_EQ(r.c[v], kN);
  }
}

TEST(Agg, InputSizeMismatchThrows) {
  Network net(8, 1);
  const std::vector<double> wrong(7, 1.0);
  EXPECT_THROW((void)push_sum_average(net, wrong), std::invalid_argument);
  EXPECT_THROW((void)gossip_count(net, std::vector<bool>(9, true)),
               std::invalid_argument);
}

}  // namespace
}  // namespace gq
