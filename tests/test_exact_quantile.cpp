#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "analysis/rank_stats.hpp"
#include "core/exact_quantile.hpp"
#include "workload/distributions.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

class ExactSweep
    : public ::testing::TestWithParam<
          std::tuple<Distribution, double /*phi*/, std::uint32_t /*n*/>> {};

TEST_P(ExactSweep, AnswerIsExact) {
  const auto [dist, phi, n] = GetParam();
  const auto values = generate_values(dist, n, 211);
  const auto keys = make_keys(values);
  const RankScale scale(keys);
  const Key truth = scale.exact_quantile(phi);

  Network net(n, 97 + n);
  ExactQuantileParams params;
  params.phi = phi;
  const auto r = exact_quantile(net, values, params);

  EXPECT_EQ(r.answer.value, truth.value)
      << "dist=" << to_string(dist) << " phi=" << phi << " n=" << n;
  EXPECT_EQ(r.answer.id, truth.id);
  ASSERT_EQ(r.outputs.size(), n);
  for (const Key& k : r.outputs) {
    EXPECT_EQ(k.value, truth.value);
    EXPECT_EQ(k.id, truth.id);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ExactSweep,
    ::testing::Combine(::testing::Values(Distribution::kUniformPermutation,
                                         Distribution::kGaussian,
                                         Distribution::kDuplicateHeavy,
                                         Distribution::kZipf),
                       ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0),
                       ::testing::Values(64u, 256u, 1024u)),
    [](const auto& info) {
      return to_string(std::get<0>(info.param)) + "_phi" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100)) +
             "_n" + std::to_string(std::get<2>(info.param));
    });

TEST(ExactQuantile, ConstantInputResolvesTieByNodeId) {
  // All values are 42; the phi-quantile is the key with the (k-1)-th id.
  constexpr std::uint32_t kN = 256;
  const auto values = generate_values(Distribution::kConstant, kN, 1);
  Network net(kN, 5);
  ExactQuantileParams params;
  params.phi = 0.5;
  const auto r = exact_quantile(net, values, params);
  EXPECT_EQ(r.answer.value, 42.0);
  EXPECT_EQ(r.answer.id, 127u);  // rank 128, id 127
}

TEST(ExactQuantile, TinyNetworks) {
  for (std::uint32_t n : {2u, 3u, 5u, 8u}) {
    const auto values =
        generate_values(Distribution::kUniformPermutation, n, 17);
    const auto keys = make_keys(values);
    const RankScale scale(keys);
    for (double phi : {0.0, 0.5, 1.0}) {
      Network net(n, 1000 + n);
      ExactQuantileParams params;
      params.phi = phi;
      const auto r = exact_quantile(net, values, params);
      EXPECT_EQ(r.answer.value, scale.exact_quantile(phi).value)
          << "n=" << n << " phi=" << phi;
    }
  }
}

TEST(ExactQuantile, DuplicationStrategyIsExactAtScale) {
  // n = 2^14 engages the paper's token-duplication route when forced.
  constexpr std::uint32_t kN = 1 << 14;
  const auto values = generate_values(Distribution::kUniformReal, kN, 37);
  const auto keys = make_keys(values);
  const RankScale scale(keys);

  Network net(kN, 71);
  ExactQuantileParams params;
  params.phi = 0.37;
  params.strategy = ExactStrategy::kPreferDuplication;
  const auto r = exact_quantile(net, values, params);
  EXPECT_EQ(r.answer.value, scale.exact_quantile(0.37).value);
  EXPECT_GE(r.iterations, 2u);  // duplication route actually iterated
}

TEST(ExactQuantile, EndgameStrategyIsExact) {
  constexpr std::uint32_t kN = 4096;
  const auto values = generate_values(Distribution::kExponential, kN, 41);
  const auto keys = make_keys(values);
  const RankScale scale(keys);

  Network net(kN, 73);
  ExactQuantileParams params;
  params.phi = 0.9;
  params.strategy = ExactStrategy::kPreferEndgame;
  const auto r = exact_quantile(net, values, params);
  EXPECT_EQ(r.answer.value, scale.exact_quantile(0.9).value);
  EXPECT_GE(r.endgame_phases, 1u);
}

TEST(ExactQuantile, StrategiesAgree) {
  constexpr std::uint32_t kN = 2048;
  const auto values = generate_values(Distribution::kBimodal, kN, 43);
  for (auto strategy :
       {ExactStrategy::kAuto, ExactStrategy::kPreferEndgame}) {
    Network net(kN, 75);
    ExactQuantileParams params;
    params.phi = 0.5;
    params.strategy = strategy;
    const auto r = exact_quantile(net, values, params);
    const RankScale scale(make_keys(values));
    EXPECT_EQ(r.answer.value, scale.exact_quantile(0.5).value);
  }
}

TEST(ExactQuantile, SurvivesFailureModel) {
  constexpr std::uint32_t kN = 512;
  const auto values =
      generate_values(Distribution::kUniformPermutation, kN, 47);
  const auto keys = make_keys(values);
  const RankScale scale(keys);

  Network net(kN, 79, FailureModel::uniform(0.3));
  ExactQuantileParams params;
  params.phi = 0.5;
  const auto r = exact_quantile(net, values, params);
  EXPECT_EQ(r.answer.value, scale.exact_quantile(0.5).value);
}

TEST(ExactQuantile, DeterministicPerSeed) {
  constexpr std::uint32_t kN = 512;
  const auto values = generate_values(Distribution::kGaussian, kN, 53);
  ExactQuantileParams params;
  params.phi = 0.25;
  Network a(kN, 81), b(kN, 81);
  const auto ra = exact_quantile(a, values, params);
  const auto rb = exact_quantile(b, values, params);
  EXPECT_EQ(ra.answer, rb.answer);
  EXPECT_EQ(ra.rounds, rb.rounds);
}

TEST(ExactQuantile, RoundsRecordedInMetrics) {
  constexpr std::uint32_t kN = 512;
  const auto values = generate_values(Distribution::kUniformReal, kN, 59);
  Network net(kN, 83);
  ExactQuantileParams params;
  params.phi = 0.5;
  const auto r = exact_quantile(net, values, params);
  EXPECT_EQ(r.rounds, net.metrics().rounds);
  EXPECT_GT(r.rounds, 0u);
}

TEST(ExactQuantile, RejectsInvalidPhi) {
  Network net(64, 1);
  const auto values =
      generate_values(Distribution::kUniformPermutation, 64, 1);
  ExactQuantileParams params;
  params.phi = -0.01;
  EXPECT_THROW((void)exact_quantile(net, values, params),
               std::invalid_argument);
  params.phi = 1.01;
  EXPECT_THROW((void)exact_quantile(net, values, params),
               std::invalid_argument);
}

}  // namespace
}  // namespace gq
