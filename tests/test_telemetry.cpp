// The telemetry layer's two hard invariants (src/telemetry/telemetry.hpp):
//
//   * observational only — enabling telemetry changes no transcript, round
//     count, or reply bit, for approx/exact/robust pipelines and warm
//     service sessions, at 1, 2, and 8 threads;
//   * recording is sane — spans are balanced and name-resolvable, worker
//     counters populate exactly when enabled, full rings drop (and count)
//     new events instead of corrupting old ones, and the exporters emit
//     well-formed artifacts from whatever was recorded.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "engine/pipelines.hpp"
#include "service/quantile_service.hpp"
#include "sim/failure_model.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"
#include "workload/distributions.hpp"

namespace gq {
namespace {

constexpr unsigned kThreadCounts[] = {1, 2, 8};

// Every test starts and ends with telemetry off and the rings empty, so
// test order cannot leak recorded state across cases (the registry itself
// is process-global by design).
class Telemetry : public ::testing::Test {
 protected:
  void SetUp() override {
    telemetry::disable();
    telemetry::reset();
  }
  void TearDown() override {
    telemetry::disable();
    telemetry::reset();
  }
};

EngineConfig engine_config(unsigned threads) {
  return EngineConfig{.threads = threads, .shard_size = 96};
}

ServiceConfig service_config(unsigned threads) {
  ServiceConfig cfg;
  cfg.seed = 2024;
  cfg.sketch_k = 64;
  cfg.engine.threads = threads;
  cfg.engine.shard_size = 96;
  return cfg;
}

void ingest_fixture(QuantileService& service, std::uint32_t nodes,
                    std::size_t per_node, std::uint64_t seed) {
  const auto values =
      generate_values(Distribution::kUniformReal, nodes * per_node, seed);
  for (std::uint32_t v = 0; v < nodes; ++v) {
    for (std::size_t i = 0; i < per_node; ++i) {
      service.ingest(v, values[v * per_node + i]);
    }
  }
}

// Transcript fingerprints of one approx, one exact, and one robust
// (failure-model) pipeline run, all from fixed seeds.  Telemetry on or off
// must produce the same struct bit for bit.
struct Fingerprint {
  std::uint64_t approx_hash = 0;
  std::uint64_t approx_rounds = 0;
  std::uint64_t exact_hash = 0;
  std::uint64_t exact_rounds = 0;
  std::uint64_t robust_hash = 0;
  std::uint64_t robust_rounds = 0;
  std::uint64_t robust_served = 0;

  bool operator==(const Fingerprint&) const = default;
};

Fingerprint run_pipelines(unsigned threads) {
  constexpr std::uint32_t kN = 600;
  const auto values = generate_values(Distribution::kUniformReal, kN, 17);
  Fingerprint fp;
  {
    Engine engine(kN, 991, FailureModel{}, engine_config(threads));
    ApproxQuantileParams params;
    params.phi = 0.5;
    params.eps = 0.15;
    const ApproxQuantileResult r = approx_quantile(engine, values, params);
    fp.approx_hash = transcript_hash(r.outputs, r.valid);
    fp.approx_rounds = r.rounds;
  }
  {
    Engine engine(kN, 992, FailureModel{}, engine_config(threads));
    ExactQuantileParams params;
    params.phi = 0.5;
    const ExactQuantileResult r = exact_quantile(engine, values, params);
    fp.exact_hash = transcript_hash(r.outputs, r.valid);
    fp.exact_rounds = r.rounds;
  }
  {
    Engine engine(kN, 993, FailureModel::uniform(0.05),
                  engine_config(threads));
    ApproxQuantileParams params;
    params.phi = 0.5;
    params.eps = 0.15;
    const ApproxQuantileResult r = approx_quantile(engine, values, params);
    fp.robust_hash = transcript_hash(r.outputs, r.valid);
    fp.robust_rounds = r.rounds;
    fp.robust_served = r.served_nodes();
  }
  return fp;
}

// ---- invariant 1: telemetry is observational only -------------------------

TEST_F(Telemetry, PipelinesBitIdenticalEnabledVsDisabled) {
  for (unsigned threads : kThreadCounts) {
    telemetry::disable();
    const Fingerprint off = run_pipelines(threads);

    telemetry::enable();
    const Fingerprint on = run_pipelines(threads);
    telemetry::disable();

    EXPECT_TRUE(on == off) << "threads=" << threads;

    // And the fingerprints are thread-count invariant either way, so the
    // three runs above pin one transcript, not three.
    const Fingerprint base = run_pipelines(kThreadCounts[0]);
    EXPECT_TRUE(off == base) << "threads=" << threads;
  }
}

TEST_F(Telemetry, WarmServiceRepliesUnchangedByTelemetry) {
  constexpr std::uint32_t kNodes = 500;
  QueryRequest request;
  request.kind = QueryKind::kQuantile;
  request.phi = 0.5;
  request.eps = 0.2;

  for (unsigned threads : kThreadCounts) {
    const auto replies = [&](bool with_telemetry) {
      if (with_telemetry) {
        telemetry::enable();
      } else {
        telemetry::disable();
      }
      QuantileService service(kNodes, service_config(threads));
      ingest_fixture(service, kNodes, 12, 7);
      std::vector<QueryReply> out;
      for (int q = 0; q < 3; ++q) out.push_back(service.query(request));
      telemetry::disable();
      return out;
    };
    const std::vector<QueryReply> off = replies(false);
    const std::vector<QueryReply> on = replies(true);
    ASSERT_EQ(on.size(), off.size());
    for (std::size_t i = 0; i < on.size(); ++i) {
      EXPECT_EQ(on[i].answer, off[i].answer) << "threads=" << threads;
      EXPECT_EQ(on[i].value, off[i].value);
      EXPECT_EQ(on[i].seed, off[i].seed);
      EXPECT_EQ(on[i].epoch, off[i].epoch);
      EXPECT_EQ(on[i].rounds, off[i].rounds);
      EXPECT_EQ(on[i].served, off[i].served);
      EXPECT_EQ(on[i].transcript_hash, off[i].transcript_hash);
    }
  }
}

// ---- invariant 2: recording itself is sane --------------------------------

TEST_F(Telemetry, DisabledRecordsNothing) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  const std::size_t pools_before = telemetry::pool_samples().size();

  (void)run_pipelines(2);
  QuantileService service(200, service_config(1));
  ingest_fixture(service, 200, 8, 3);
  QueryRequest request;
  request.kind = QueryKind::kQuantile;
  (void)service.query(request);

  EXPECT_TRUE(telemetry::snapshot().empty());
  EXPECT_EQ(service.query_latency(QueryKind::kQuantile).total(), 0u);
  // Pools created while disabled retire with all-zero worker counters.
  const auto pools = telemetry::pool_samples();
  ASSERT_GT(pools.size(), pools_before);
  for (std::size_t p = pools_before; p < pools.size(); ++p) {
    for (const auto& w : pools[p].workers) {
      EXPECT_EQ(w.busy_ns, 0u);
      EXPECT_EQ(w.chunks, 0u);
      EXPECT_EQ(w.batches, 0u);
    }
  }
}

TEST_F(Telemetry, EnabledRecordsBalancedResolvableSpans) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  telemetry::enable();
  (void)run_pipelines(2);
  telemetry::disable();

  const std::vector<telemetry::SpanEvent> events = telemetry::snapshot();
  const std::vector<std::string> names = telemetry::span_names();
  ASSERT_FALSE(events.empty());
  std::set<std::string> seen;
  for (const auto& e : events) {
    ASSERT_LT(e.id, names.size());
    EXPECT_LE(e.start_ns, e.end_ns);
    EXPECT_GT(e.start_ns, 0u);
    seen.insert(names[e.id]);
  }
  // The flagship phases of all three instrumented layers show up.
  EXPECT_TRUE(seen.count("pipeline/approx_quantile"));
  EXPECT_TRUE(seen.count("pipeline/exact_quantile"));
  EXPECT_TRUE(seen.count("engine/parallel_shards"));
  EXPECT_TRUE(seen.count("exact/iteration"));
  EXPECT_TRUE(seen.count("robust/two_iteration"));
}

TEST_F(Telemetry, SpanInterningIsIdempotent) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  const telemetry::SpanId a = telemetry::register_span("test/interned_name");
  const telemetry::SpanId b = telemetry::register_span("test/interned_name");
  EXPECT_EQ(a, b);
  const auto names = telemetry::span_names();
  ASSERT_LT(a, names.size());
  EXPECT_EQ(names[a], "test/interned_name");
}

TEST_F(Telemetry, PoolCountersPopulateWhenEnabled) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  const std::size_t pools_before = telemetry::pool_samples().size();
  telemetry::enable();
  {
    constexpr std::uint32_t kN = 600;
    const auto values = generate_values(Distribution::kUniformReal, kN, 17);
    Engine engine(kN, 991, FailureModel{}, engine_config(2));
    ApproxQuantileParams params;
    params.eps = 0.15;
    (void)approx_quantile(engine, values, params);
  }  // engine destroyed: its pool retires with a final counter snapshot
  telemetry::disable();

  const auto pools = telemetry::pool_samples();
  ASSERT_GT(pools.size(), pools_before);
  bool busy_worker_found = false;
  for (std::size_t p = pools_before; p < pools.size(); ++p) {
    EXPECT_TRUE(pools[p].retired);
    EXPECT_GT(pools[p].wall_ns, 0u);
    for (const auto& w : pools[p].workers) {
      if (w.busy_ns > 0 && w.chunks > 0 && w.batches > 0) {
        busy_worker_found = true;
      }
    }
  }
  EXPECT_TRUE(busy_worker_found);
}

TEST_F(Telemetry, FullRingDropsNewEventsAndCountsThem) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  telemetry::Config tiny;
  tiny.ring_capacity = 8;
  telemetry::enable(tiny);
  // A fresh thread gets a fresh ring at the tiny capacity; the first 8
  // spans land, the remaining 32 are dropped and counted.
  std::thread([] {
    const telemetry::SpanId id = telemetry::register_span("test/drop_probe");
    for (int i = 0; i < 40; ++i) telemetry::Span span(id);
  }).join();
  telemetry::enable();  // restore the default capacity for later threads
  telemetry::disable();

  const telemetry::SpanId probe = telemetry::register_span("test/drop_probe");
  std::size_t recorded = 0;
  for (const auto& e : telemetry::snapshot()) recorded += (e.id == probe);
  EXPECT_EQ(recorded, 8u);
  EXPECT_EQ(telemetry::dropped_events(), 32u);
}

// ---- exporters ------------------------------------------------------------

TEST_F(Telemetry, ExportersEmitWellFormedArtifacts) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  telemetry::enable();
  (void)run_pipelines(2);
  telemetry::disable();

  const auto slurp = [](const std::string& path) {
    std::string out;
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return out;
    char buf[4096];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
      out.append(buf, got);
    }
    std::fclose(f);
    return out;
  };

  const std::string trace_path = "/tmp/gq_test_trace.json";
  const std::string jsonl_path = "/tmp/gq_test_trace.jsonl";
  ASSERT_TRUE(telemetry::write_chrome_trace(trace_path));
  ASSERT_TRUE(telemetry::write_jsonl(jsonl_path));

  const std::string trace = slurp(trace_path);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("pipeline/approx_quantile"), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);
  const std::string jsonl = slurp(jsonl_path);
  EXPECT_NE(jsonl.find("pipeline/exact_quantile"), std::string::npos);
  std::remove(trace_path.c_str());
  std::remove(jsonl_path.c_str());

  const std::string prom = telemetry::prometheus_text();
  EXPECT_NE(prom.find("gq_phase_count"), std::string::npos);
  EXPECT_NE(prom.find("gq_phase_duration_seconds"), std::string::npos);
  EXPECT_NE(prom.find("gq_worker_busy_seconds_total"), std::string::npos);
  EXPECT_FALSE(telemetry::phase_summary().empty());
  EXPECT_FALSE(telemetry::utilization_summary().empty());
}

TEST_F(Telemetry, ServiceLatencyHistogramsPopulateWhenEnabled) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  telemetry::enable();
  QuantileService service(300, service_config(1));
  ingest_fixture(service, 300, 8, 3);
  QueryRequest request;
  request.kind = QueryKind::kQuantile;
  (void)service.query(request);
  request.kind = QueryKind::kRank;
  request.value = 0.5;
  (void)service.query(request);
  (void)service.query(request);
  telemetry::disable();

  EXPECT_EQ(service.query_latency(QueryKind::kQuantile).total(), 1u);
  EXPECT_EQ(service.query_latency(QueryKind::kRank).total(), 2u);
  EXPECT_EQ(service.query_latency(QueryKind::kCdf).total(), 0u);
  const std::string summary = service.latency_summary();
  EXPECT_NE(summary.find("quantile"), std::string::npos);
  EXPECT_NE(summary.find("p99"), std::string::npos);
  const std::string prom = service.prometheus_text();
  EXPECT_NE(prom.find("gq_service_queries_total"), std::string::npos);
  EXPECT_NE(prom.find("gq_service_query_seconds"), std::string::npos);
}

}  // namespace
}  // namespace gq
