#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "analysis/rank_stats.hpp"
#include "analysis/theory_bounds.hpp"
#include "core/approx_quantile.hpp"
#include "workload/distributions.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

class ApproxSweep : public ::testing::TestWithParam<
                        std::tuple<Distribution, double /*phi*/>> {};

TEST_P(ApproxSweep, EveryNodeWithinEps) {
  const auto [dist, phi] = GetParam();
  constexpr std::uint32_t kN = 1 << 13;
  const double eps = 0.12;  // above eps_tournament_floor(8192) ~= 0.1
  ASSERT_GE(eps, eps_tournament_floor(kN));

  const auto values = generate_values(dist, kN, 101);
  const auto keys = make_keys(values);
  const RankScale scale(keys);

  Network net(kN, 73);
  ApproxQuantileParams params;
  params.phi = phi;
  params.eps = eps;
  const auto r = approx_quantile(net, values, params);

  EXPECT_FALSE(r.used_exact_fallback);
  EXPECT_EQ(r.outputs.size(), kN);
  EXPECT_EQ(r.served_nodes(), kN);
  const auto summary = evaluate_outputs(scale, r.outputs, phi, eps);
  EXPECT_GE(summary.frac_within_eps, 0.995)
      << "dist=" << to_string(dist) << " phi=" << phi
      << " max_err=" << summary.max_abs_error;
  // Nothing should be grossly wrong even in the sub-per-mille tail.
  EXPECT_LE(summary.max_abs_error, 3.0 * eps);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ApproxSweep,
    ::testing::Combine(::testing::Values(Distribution::kUniformPermutation,
                                         Distribution::kGaussian,
                                         Distribution::kExponential,
                                         Distribution::kZipf,
                                         Distribution::kBimodal,
                                         Distribution::kDuplicateHeavy),
                       ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9,
                                         1.0)),
    [](const auto& info) {
      return to_string(std::get<0>(info.param)) + "_phi" +
             std::to_string(
                 static_cast<int>(std::get<1>(info.param) * 100));
    });

TEST(ApproxQuantile, RoundsAreDoublyLogarithmicish) {
  // Rounds must stay within the analytic iteration bounds (3 rounds per
  // tournament iteration plus the final sampling).
  for (std::uint32_t n : {1u << 12, 1u << 14, 1u << 16}) {
    const double eps = 0.15;
    Network net(n, 7);
    const auto values =
        generate_values(Distribution::kUniformReal, n, 11);
    ApproxQuantileParams params;
    params.phi = 0.3;
    params.eps = eps;
    const auto r = approx_quantile(net, values, params);
    const double bound = 2.0 * phase1_iteration_bound(eps) +
                         3.0 * phase2_iteration_bound(eps / 4.0, n) +
                         params.final_sample_size + 4.0;
    EXPECT_LE(static_cast<double>(r.rounds), bound) << "n=" << n;
    EXPECT_EQ(r.rounds, net.metrics().rounds);
  }
}

TEST(ApproxQuantile, TinyEpsFallsBackToExact) {
  constexpr std::uint32_t kN = 1024;
  const auto values =
      generate_values(Distribution::kUniformPermutation, kN, 5);
  const auto keys = make_keys(values);
  const RankScale scale(keys);

  Network net(kN, 9);
  ApproxQuantileParams params;
  params.phi = 0.5;
  params.eps = 1e-4;  // far below the floor
  const auto r = approx_quantile(net, values, params);
  EXPECT_TRUE(r.used_exact_fallback);
  const Key truth = scale.exact_quantile(0.5);
  for (const Key& k : r.outputs) {
    EXPECT_EQ(k.value, truth.value);
    EXPECT_EQ(k.id, truth.id);
  }
}

TEST(ApproxQuantile, ForceTournamentSkipsFallback) {
  constexpr std::uint32_t kN = 1024;
  const auto values =
      generate_values(Distribution::kUniformPermutation, kN, 5);
  Network net(kN, 9);
  ApproxQuantileParams params;
  params.phi = 0.5;
  params.eps = 0.05;  // below floor(1024) ~ 0.2
  params.force_tournament = true;
  const auto r = approx_quantile(net, values, params);
  EXPECT_FALSE(r.used_exact_fallback);
  // The run completes with the tournament round budget even when accuracy
  // is no longer guaranteed.
  EXPECT_LE(r.rounds, 200u);
}

TEST(ApproxQuantile, DeterministicPerSeed) {
  constexpr std::uint32_t kN = 2048;
  const auto values = generate_values(Distribution::kGaussian, kN, 31);
  ApproxQuantileParams params;
  params.phi = 0.75;
  params.eps = 0.15;

  Network a(kN, 55), b(kN, 55);
  const auto ra = approx_quantile(a, values, params);
  const auto rb = approx_quantile(b, values, params);
  EXPECT_EQ(ra.outputs, rb.outputs);
  EXPECT_EQ(ra.rounds, rb.rounds);
  // Different seeds give different transcripts (message-level divergence is
  // asserted in test_sim); outputs may still legitimately coincide, so no
  // inequality is asserted here.
}

TEST(ApproxQuantile, OutputsAreInputValues) {
  constexpr std::uint32_t kN = 4096;
  const auto values = generate_values(Distribution::kClustered, kN, 3);
  const auto keys = make_keys(values);
  const RankScale scale(keys);
  Network net(kN, 77);
  ApproxQuantileParams params;
  params.phi = 0.5;
  params.eps = 0.15;
  const auto r = approx_quantile(net, values, params);
  for (const Key& k : r.outputs) {
    // Every output is one of the original keys (rank lookup must find it).
    EXPECT_EQ(scale.key_at_rank(scale.rank(k)), k);
  }
}

TEST(ApproxQuantile, RejectsInvalidParams) {
  Network net(64, 1);
  const auto values =
      generate_values(Distribution::kUniformPermutation, 64, 1);
  ApproxQuantileParams params;
  params.phi = 1.5;
  EXPECT_THROW((void)approx_quantile(net, values, params),
               std::invalid_argument);
  params.phi = 0.5;
  params.eps = 0.0;
  EXPECT_THROW((void)approx_quantile(net, values, params),
               std::invalid_argument);
  params.eps = 0.7;
  EXPECT_THROW((void)approx_quantile(net, values, params),
               std::invalid_argument);
}

TEST(ApproxQuantile, MetricsAccountAllTraffic) {
  constexpr std::uint32_t kN = 1024;
  Network net(kN, 3);
  const auto values =
      generate_values(Distribution::kUniformReal, kN, 8);
  ApproxQuantileParams params;
  params.phi = 0.25;
  params.eps = 0.2;
  const auto r = approx_quantile(net, values, params);
  const Metrics& m = net.metrics();
  EXPECT_EQ(m.rounds, r.rounds);
  // At most one message per node per round in the failure-free tournaments.
  EXPECT_LE(m.messages, m.rounds * kN);
  EXPECT_GT(m.messages, 0u);
  // All tournament messages fit the O(log n) budget.
  EXPECT_LE(m.max_message_bits, key_bits(kN));
}

}  // namespace
}  // namespace gq
