#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <limits>
#include <vector>

#include "analysis/rank_stats.hpp"
#include "analysis/theory_bounds.hpp"
#include "core/approx_quantile.hpp"
#include "core/multi_quantile.hpp"
#include "sim/trace.hpp"
#include "workload/distributions.hpp"
#include "workload/scenario.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

TEST(MultiQuantile, AllTargetsWithinEps) {
  constexpr std::uint32_t kN = 1 << 13;
  const auto values = make_latency_trace(kN, 3);
  const auto keys = make_keys(values);
  const RankScale scale(keys);

  Network net(kN, 5);
  MultiQuantileParams params;
  params.phis = {0.25, 0.5, 0.75, 0.9};
  params.eps = 0.12;
  const auto r = multi_quantile(net, values, params);
  ASSERT_EQ(r.per_phi.size(), 4u);
  EXPECT_TRUE(r.shared_schedule);
  for (std::size_t i = 0; i < params.phis.size(); ++i) {
    const auto s = evaluate_outputs(scale, r.per_phi[i].outputs,
                                    params.phis[i], params.eps);
    EXPECT_GE(s.frac_within_eps, 0.99) << "phi=" << params.phis[i];
  }
}

TEST(MultiQuantile, SharedScheduleCostsOnePipeline) {
  // The tentpole invariant: all q targets ride ONE tournament schedule, so
  // the batch costs max-of-schedules rounds — every per-target result
  // reports the shared total, and the whole run stays within ~1.3x of a
  // single-target pipeline instead of ~q x.  eps must clear
  // eps_tournament_floor(kN) (~0.099 at 8192) or the batch routes to the
  // exact fallback instead of the shared schedule.
  constexpr std::uint32_t kN = 8192;
  const auto values = generate_values(Distribution::kUniformReal, kN, 7);
  MultiQuantileParams params;
  params.phis = {0.5, 0.9, 0.99, 0.999};
  params.eps = 0.1;
  ASSERT_GE(params.eps, eps_tournament_floor(kN));

  Network net(kN, 9);
  const auto r = multi_quantile(net, values, params);
  EXPECT_TRUE(r.shared_schedule);
  EXPECT_EQ(r.unique_targets, 4u);
  EXPECT_EQ(r.rounds, net.metrics().rounds);
  EXPECT_EQ(r.metrics.rounds, r.rounds);
  for (const auto& run : r.per_phi) EXPECT_EQ(run.rounds, r.rounds);

  // Single-target reference: the most expensive target alone.
  std::uint64_t single_max = 0;
  std::uint64_t independent_sum = 0;
  ApproxQuantileParams ap;
  ap.eps = params.eps;
  for (const double phi : params.phis) {
    Network ref(kN, 9);
    ap.phi = phi;
    const auto one = approx_quantile(ref, values, ap);
    single_max = std::max(single_max, one.rounds);
    independent_sum += one.rounds;
  }
  EXPECT_LE(static_cast<double>(r.rounds),
            1.3 * static_cast<double>(single_max));
  EXPECT_LT(r.rounds, independent_sum / 2);
}

TEST(MultiQuantile, SingleTargetMatchesApproxQuantile) {
  // q = 1 shared run is bit-identical to the single-target pipeline: same
  // outputs, same rounds, same Metrics.
  constexpr std::uint32_t kN = 2048;
  const auto values = generate_values(Distribution::kExponential, kN, 21);

  Network ref(kN, 23);
  ApproxQuantileParams ap;
  ap.phi = 0.9;
  ap.eps = 0.2;
  const auto one = approx_quantile(ref, values, ap);

  Network net(kN, 23);
  MultiQuantileParams params;
  params.phis = {0.9};
  params.eps = 0.2;
  const auto r = multi_quantile(net, values, params);
  ASSERT_TRUE(r.shared_schedule);
  EXPECT_EQ(r.per_phi[0].outputs, one.outputs);
  EXPECT_EQ(r.per_phi[0].phase1_iterations, one.phase1_iterations);
  EXPECT_EQ(r.per_phi[0].phase2_iterations, one.phase2_iterations);
  EXPECT_EQ(r.rounds, one.rounds);
  EXPECT_TRUE(net.metrics() == ref.metrics());
}

TEST(MultiQuantile, DuplicateTargetsCostNoExtraRoundsOrBits) {
  // Duplicated phis dedupe into one lane: same transcript (rounds AND
  // bits) as the deduped target list, results mapped back per caller slot.
  constexpr std::uint32_t kN = 2048;
  const auto values = generate_values(Distribution::kUniformReal, kN, 31);
  MultiQuantileParams dup;
  dup.phis = {0.5, 0.9, 0.5, 0.9, 0.9};
  dup.eps = 0.2;
  MultiQuantileParams ded;
  ded.phis = {0.5, 0.9};
  ded.eps = 0.2;

  Network net_dup(kN, 33);
  const auto rd = multi_quantile(net_dup, values, dup);
  Network net_ded(kN, 33);
  const auto rr = multi_quantile(net_ded, values, ded);

  EXPECT_EQ(rd.unique_targets, 2u);
  EXPECT_EQ(rd.rounds, rr.rounds);
  EXPECT_TRUE(net_dup.metrics() == net_ded.metrics());
  EXPECT_TRUE(rd.metrics == rr.metrics);
  EXPECT_EQ(rd.per_phi[0].outputs, rr.per_phi[0].outputs);
  EXPECT_EQ(rd.per_phi[1].outputs, rr.per_phi[1].outputs);
  EXPECT_EQ(rd.per_phi[2].outputs, rr.per_phi[0].outputs);
  EXPECT_EQ(rd.per_phi[3].outputs, rr.per_phi[1].outputs);
  EXPECT_EQ(rd.per_phi[4].outputs, rr.per_phi[1].outputs);
}

TEST(MultiQuantile, MetricsCarryTheFullBatchCost) {
  // The result's merged Metrics equals the network's own accounting of the
  // run — messages and bits, not just rounds.
  constexpr std::uint32_t kN = 2048;
  const auto values = generate_values(Distribution::kUniformReal, kN, 41);
  Network net(kN, 43);
  MultiQuantileParams params;
  params.phis = {0.25, 0.75};
  params.eps = 0.2;
  const auto r = multi_quantile(net, values, params);
  EXPECT_TRUE(r.metrics == net.metrics());
  EXPECT_GT(r.metrics.messages, 0u);
  EXPECT_GT(r.metrics.message_bits, 0u);
}

TEST(MultiQuantile, FallsBackToPerTargetRunsUnderFailures) {
  // A failure model routes through deduped per-target robust pipelines;
  // duplicated targets still cost nothing extra.
  constexpr std::uint32_t kN = 2048;
  const auto values = generate_values(Distribution::kUniformReal, kN, 51);
  FailureModel failures = FailureModel::uniform(0.1);
  MultiQuantileParams params;
  params.phis = {0.5, 0.9, 0.5};
  params.eps = 0.2;

  Network net(kN, 53, failures);
  const auto r = multi_quantile(net, values, params);
  EXPECT_FALSE(r.shared_schedule);
  EXPECT_EQ(r.unique_targets, 2u);
  EXPECT_EQ(r.rounds, net.metrics().rounds);
  EXPECT_TRUE(r.metrics == net.metrics());

  Network ded(kN, 53, failures);
  MultiQuantileParams ded_params = params;
  ded_params.phis = {0.5, 0.9};
  const auto rr = multi_quantile(ded, values, ded_params);
  EXPECT_EQ(r.rounds, rr.rounds);
  EXPECT_EQ(r.per_phi[2].outputs, rr.per_phi[0].outputs);
}

TEST(MultiQuantile, FallsBackToExactBelowEpsFloor) {
  constexpr std::uint32_t kN = 512;
  const auto values =
      generate_values(Distribution::kUniformPermutation, kN, 61);
  Network net(kN, 63);
  MultiQuantileParams params;
  params.phis = {0.5};
  params.eps = eps_tournament_floor(kN) / 2.0;
  const auto r = multi_quantile(net, values, params);
  EXPECT_FALSE(r.shared_schedule);
  EXPECT_TRUE(r.per_phi[0].used_exact_fallback);
}

TEST(MultiQuantile, OutputsAreMonotoneAcrossTargetsPerNode) {
  // For a fixed node, the values learned for increasing phis must be
  // non-decreasing up to the eps windows: check with a 2*eps margin in
  // rank space.
  constexpr std::uint32_t kN = 1 << 13;
  const auto values = generate_values(Distribution::kExponential, kN, 11);
  const auto keys = make_keys(values);
  const RankScale scale(keys);

  Network net(kN, 13);
  MultiQuantileParams params;
  params.phis = {0.2, 0.5, 0.8};
  params.eps = 0.1;
  const auto r = multi_quantile(net, values, params);
  std::size_t violations = 0;
  for (std::uint32_t v = 0; v < kN; ++v) {
    for (std::size_t i = 0; i + 1 < params.phis.size(); ++i) {
      const double qa = scale.quantile_of(r.per_phi[i].outputs[v]);
      const double qb = scale.quantile_of(r.per_phi[i + 1].outputs[v]);
      if (qb < qa - 2 * params.eps) ++violations;
    }
  }
  EXPECT_EQ(violations, 0u);
}

TEST(MultiQuantile, ValueAccessor) {
  constexpr std::uint32_t kN = 1024;
  const auto values =
      generate_values(Distribution::kUniformPermutation, kN, 17);
  Network net(kN, 19);
  MultiQuantileParams params;
  params.phis = {0.5};
  params.eps = 0.25;
  const auto r = multi_quantile(net, values, params);
  EXPECT_EQ(r.value(0, 3), r.per_phi[0].outputs[3].value);
  EXPECT_THROW((void)r.value(1, 0), std::out_of_range);
}

TEST(MultiQuantile, RejectsBadTargets) {
  Network net(64, 1);
  const auto values =
      generate_values(Distribution::kUniformPermutation, 64, 1);
  MultiQuantileParams params;
  EXPECT_THROW((void)multi_quantile(net, values, params),
               std::invalid_argument);  // empty phis
  params.phis = {0.5, 1.2};
  EXPECT_THROW((void)multi_quantile(net, values, params),
               std::invalid_argument);
}

TEST(MultiQuantile, RejectsNonFiniteTargets) {
  // NaN compares false against both range bounds, so the GQ_REQUIRE range
  // check must still fire — pinned here so a refactor to e.g.
  // !(phi < 0.0 || phi > 1.0) cannot silently admit NaN.
  Network net(64, 1);
  const auto values =
      generate_values(Distribution::kUniformPermutation, 64, 1);
  MultiQuantileParams params;
  params.phis = {0.5, std::numeric_limits<double>::quiet_NaN()};
  EXPECT_THROW((void)multi_quantile(net, values, params),
               std::invalid_argument);
  params.phis = {std::numeric_limits<double>::infinity()};
  EXPECT_THROW((void)multi_quantile(net, values, params),
               std::invalid_argument);
  params.phis = {-std::numeric_limits<double>::infinity()};
  EXPECT_THROW((void)multi_quantile(net, values, params),
               std::invalid_argument);
  // Rejected before any rounds ran.
  EXPECT_EQ(net.metrics().rounds, 0u);
}

TEST(Trace, RecordsAndFiltersSeries) {
  TraceRecorder rec;
  rec.record("a", 1, 0.5);
  rec.record("b", 1, 1.5);
  rec.record("a", 2, 0.25);
  EXPECT_EQ(rec.size(), 3u);
  const auto a = rec.series("a");
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[1].round, 2u);
  EXPECT_EQ(a[1].value, 0.25);
  EXPECT_TRUE(rec.series("missing").empty());
}

TEST(Trace, CsvRoundTrip) {
  TraceRecorder rec;
  rec.record("tail", 3, 0.125);
  const std::string csv = rec.to_csv();
  EXPECT_EQ(csv, "series,round,value\ntail,3,0.125\n");
}

TEST(Trace, WriteCsvToDisk) {
  TraceRecorder rec;
  rec.record("x", 1, 2.0);
  const std::string path = "/tmp/gq_trace_test.csv";
  ASSERT_TRUE(rec.write_csv(path));
  std::ifstream f(path);
  std::string header;
  std::getline(f, header);
  EXPECT_EQ(header, "series,round,value");
}

}  // namespace
}  // namespace gq
