#include <gtest/gtest.h>

#include <fstream>
#include <vector>

#include "analysis/rank_stats.hpp"
#include "core/multi_quantile.hpp"
#include "sim/trace.hpp"
#include "workload/distributions.hpp"
#include "workload/scenario.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

TEST(MultiQuantile, AllTargetsWithinEps) {
  constexpr std::uint32_t kN = 1 << 13;
  const auto values = make_latency_trace(kN, 3);
  const auto keys = make_keys(values);
  const RankScale scale(keys);

  Network net(kN, 5);
  MultiQuantileParams params;
  params.phis = {0.25, 0.5, 0.75, 0.9};
  params.eps = 0.12;
  const auto r = multi_quantile(net, values, params);
  ASSERT_EQ(r.per_phi.size(), 4u);
  for (std::size_t i = 0; i < params.phis.size(); ++i) {
    const auto s = evaluate_outputs(scale, r.per_phi[i].outputs,
                                    params.phis[i], params.eps);
    EXPECT_GE(s.frac_within_eps, 0.99) << "phi=" << params.phis[i];
  }
}

TEST(MultiQuantile, RoundsAreSumOfRuns) {
  constexpr std::uint32_t kN = 4096;
  const auto values = generate_values(Distribution::kUniformReal, kN, 7);
  Network net(kN, 9);
  MultiQuantileParams params;
  params.phis = {0.1, 0.5, 0.9};
  params.eps = 0.15;
  const auto r = multi_quantile(net, values, params);
  std::uint64_t sum = 0;
  for (const auto& run : r.per_phi) sum += run.rounds;
  EXPECT_EQ(r.rounds, sum);
  EXPECT_EQ(r.rounds, net.metrics().rounds);
}

TEST(MultiQuantile, OutputsAreMonotoneAcrossTargetsPerNode) {
  // For a fixed node, the values learned for increasing phis must be
  // non-decreasing up to the eps windows: check with a 2*eps margin in
  // rank space.
  constexpr std::uint32_t kN = 1 << 13;
  const auto values = generate_values(Distribution::kExponential, kN, 11);
  const auto keys = make_keys(values);
  const RankScale scale(keys);

  Network net(kN, 13);
  MultiQuantileParams params;
  params.phis = {0.2, 0.5, 0.8};
  params.eps = 0.1;
  const auto r = multi_quantile(net, values, params);
  std::size_t violations = 0;
  for (std::uint32_t v = 0; v < kN; ++v) {
    for (std::size_t i = 0; i + 1 < params.phis.size(); ++i) {
      const double qa = scale.quantile_of(r.per_phi[i].outputs[v]);
      const double qb = scale.quantile_of(r.per_phi[i + 1].outputs[v]);
      if (qb < qa - 2 * params.eps) ++violations;
    }
  }
  EXPECT_EQ(violations, 0u);
}

TEST(MultiQuantile, ValueAccessor) {
  constexpr std::uint32_t kN = 1024;
  const auto values =
      generate_values(Distribution::kUniformPermutation, kN, 17);
  Network net(kN, 19);
  MultiQuantileParams params;
  params.phis = {0.5};
  params.eps = 0.25;
  const auto r = multi_quantile(net, values, params);
  EXPECT_EQ(r.value(0, 3), r.per_phi[0].outputs[3].value);
  EXPECT_THROW((void)r.value(1, 0), std::out_of_range);
}

TEST(MultiQuantile, RejectsBadTargets) {
  Network net(64, 1);
  const auto values =
      generate_values(Distribution::kUniformPermutation, 64, 1);
  MultiQuantileParams params;
  EXPECT_THROW((void)multi_quantile(net, values, params),
               std::invalid_argument);  // empty phis
  params.phis = {0.5, 1.2};
  EXPECT_THROW((void)multi_quantile(net, values, params),
               std::invalid_argument);
}

TEST(Trace, RecordsAndFiltersSeries) {
  TraceRecorder rec;
  rec.record("a", 1, 0.5);
  rec.record("b", 1, 1.5);
  rec.record("a", 2, 0.25);
  EXPECT_EQ(rec.size(), 3u);
  const auto a = rec.series("a");
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[1].round, 2u);
  EXPECT_EQ(a[1].value, 0.25);
  EXPECT_TRUE(rec.series("missing").empty());
}

TEST(Trace, CsvRoundTrip) {
  TraceRecorder rec;
  rec.record("tail", 3, 0.125);
  const std::string csv = rec.to_csv();
  EXPECT_EQ(csv, "series,round,value\ntail,3,0.125\n");
}

TEST(Trace, WriteCsvToDisk) {
  TraceRecorder rec;
  rec.record("x", 1, 2.0);
  const std::string path = "/tmp/gq_trace_test.csv";
  ASSERT_TRUE(rec.write_csv(path));
  std::ifstream f(path);
  std::string header;
  std::getline(f, header);
  EXPECT_EQ(header, "series,round,value");
}

}  // namespace
}  // namespace gq
