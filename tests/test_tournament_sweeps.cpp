// Parameterized sweeps over eps for both tournament phases: schedule
// execution, accuracy, and cost all at once.  Complements the targeted
// tests in test_two_tournament / test_three_tournament.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/rank_stats.hpp"
#include "analysis/theory_bounds.hpp"
#include "core/approx_quantile.hpp"
#include "core/three_tournament.hpp"
#include "core/two_tournament.hpp"
#include "workload/distributions.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

class EpsSweep : public ::testing::TestWithParam<double> {};

TEST_P(EpsSweep, PhaseOneTailLandsOnTarget) {
  const double eps = GetParam();
  constexpr std::uint32_t kN = 1 << 14;
  const double phi = 0.3;
  const auto keys =
      make_keys(generate_values(Distribution::kUniformReal, kN, 1234));
  const RankScale scale(keys);

  Network net(kN, 4321);
  std::vector<Key> state(keys.begin(), keys.end());
  const auto outcome = two_tournament(net, state, phi, eps);

  std::size_t high = 0;
  for (const Key& k : state) {
    if (scale.quantile_of(k) > phi + eps) ++high;
  }
  const double measured = static_cast<double>(high) / kN;
  EXPECT_NEAR(measured, 0.5 - eps, eps) << "eps=" << eps;
  EXPECT_LE(static_cast<double>(outcome.iterations),
            phase1_iteration_bound(eps) + 1.0);
}

TEST_P(EpsSweep, PhaseTwoOutputsNearMedian) {
  const double eps = GetParam();
  constexpr std::uint32_t kN = 1 << 14;
  const auto keys =
      make_keys(generate_values(Distribution::kExponential, kN, 2345));
  const RankScale scale(keys);

  Network net(kN, 5432);
  std::vector<Key> state(keys.begin(), keys.end());
  const auto outcome = three_tournament(net, state, eps, 15);
  const auto s = evaluate_outputs(scale, outcome.outputs, 0.5, eps);
  EXPECT_GE(s.frac_within_eps, 0.99) << "eps=" << eps;
  EXPECT_LE(static_cast<double>(outcome.iterations),
            phase2_iteration_bound(eps, kN) + 2.0);
}

TEST_P(EpsSweep, PipelineCostMatchesIterationBudget) {
  const double eps = GetParam();
  constexpr std::uint32_t kN = 1 << 14;
  if (eps < eps_tournament_floor(kN)) GTEST_SKIP() << "below floor";
  const auto values = generate_values(Distribution::kGaussian, kN, 3456);

  Network net(kN, 6543);
  ApproxQuantileParams params;
  params.phi = 0.4;
  params.eps = eps;
  const auto r = approx_quantile(net, values, params);
  // 2 rounds per phase-1 iteration, 3 per phase-2, K final samples.
  const std::uint64_t expected = 2 * r.phase1_iterations +
                                 3 * r.phase2_iterations +
                                 (params.final_sample_size | 1u);
  EXPECT_EQ(r.rounds, expected) << "eps=" << eps;
}

INSTANTIATE_TEST_SUITE_P(Eps, EpsSweep,
                         ::testing::Values(0.08, 0.1, 0.125, 0.15, 0.2, 0.25,
                                           0.3, 0.4),
                         [](const auto& info) {
                           return "eps" + std::to_string(static_cast<int>(
                                              info.param * 1000));
                         });

class PhiSweepApprox : public ::testing::TestWithParam<int> {};

TEST_P(PhiSweepApprox, DensePhiGridAllWithinWindow) {
  const double phi = GetParam() / 16.0;
  constexpr std::uint32_t kN = 1 << 13;
  const double eps = 0.12;
  const auto values = generate_values(Distribution::kZipf, kN, 7890);
  const auto keys = make_keys(values);
  const RankScale scale(keys);

  Network net(kN, 8000 + GetParam());
  ApproxQuantileParams params;
  params.phi = phi;
  params.eps = eps;
  const auto r = approx_quantile(net, values, params);
  const auto s = evaluate_outputs(scale, r.outputs, phi, eps);
  EXPECT_GE(s.frac_within_eps, 0.99) << "phi=" << phi;
}

INSTANTIATE_TEST_SUITE_P(Grid, PhiSweepApprox, ::testing::Range(0, 17),
                         [](const auto& info) {
                           return "phi" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace gq
