// Differential and property tests for the engine-native robust
// (failure-model) pipelines of Section 5.1 / Theorem 1.4.
//
// The differential half pins the engine kernels — robust_two_tournament,
// robust_three_tournament, robust_coverage — and the full pipelines
// (approx_quantile under a FailureModel, exact_quantile under failures,
// the exact-fallback branch) bit-identical to the sequential core/robust.cpp
// path: same states, same carried good vectors, same served sets, same
// round counts and Metrics, at 1, 2, and 8 threads, for odd and even n,
// across mu in {0, 0.1, 0.5, 0.9}.
//
// The property half pins Theorem 1.4's shape: the coverage tail leaves at
// most ~n/2^t nodes unserved after t extra rounds, and a node that turns
// bad never re-enters the good set.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/approx_quantile.hpp"
#include "core/exact_quantile.hpp"
#include "core/own_rank.hpp"
#include "core/robust.hpp"
#include "engine/engine.hpp"
#include "engine/kernels.hpp"
#include "engine/pipelines.hpp"
#include "sim/network.hpp"
#include "workload/distributions.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

constexpr unsigned kThreadCounts[] = {1, 2, 8};

// Small shards so every thread count exercises multi-shard merging and a
// trimmed final shard (the n below are not multiples of 192).
EngineConfig config_for(unsigned threads) {
  return EngineConfig{.threads = threads, .shard_size = 192};
}

// A failure model that never fires but is not `never_fails()`: routes the
// pipelines through the robust variants with mu = 0, the degenerate corner
// of Section 5.1 (constant fan-out, nobody ever turns bad).
FailureModel zero_probability_failures() {
  return FailureModel::custom(
      [](std::uint32_t, std::uint64_t) { return 0.0; }, 0.0);
}

std::size_t count_true(const std::vector<bool>& v) {
  return static_cast<std::size_t>(std::count(v.begin(), v.end(), true));
}

// good2 never serves a node that good1 had already expelled.
bool subset_of(const std::vector<bool>& good2,
               const std::vector<bool>& good1) {
  for (std::size_t v = 0; v < good2.size(); ++v) {
    if (good2[v] && !good1[v]) return false;
  }
  return true;
}

// ---- differential: kernels ------------------------------------------------

TEST(EngineRobustKernels, TwoTournamentMatchesCore) {
  constexpr std::uint64_t kSeed = 601;
  for (const std::uint32_t n : {1023u, 1024u}) {  // odd and even
    const auto keys =
        make_keys(generate_values(Distribution::kUniformReal, n, 47));
    for (const double mu : {0.0, 0.1, 0.5, 0.9}) {
      const FailureModel fm =
          mu > 0.0 ? FailureModel::uniform(mu) : zero_probability_failures();

      Network net(n, kSeed, fm);
      std::vector<Key> seq_state(keys.begin(), keys.end());
      std::vector<bool> seq_good(n, true);
      const auto seq =
          robust_two_tournament(net, seq_state, seq_good, 0.25, 0.15);

      for (unsigned threads : kThreadCounts) {
        Engine engine(n, kSeed, fm, config_for(threads));
        std::vector<Key> state(keys.begin(), keys.end());
        std::vector<bool> good(n, true);
        const auto par =
            robust_two_tournament(engine, state, good, 0.25, 0.15);
        EXPECT_EQ(par.iterations, seq.iterations)
            << "threads=" << threads << " mu=" << mu << " n=" << n;
        EXPECT_EQ(par.side, seq.side);
        EXPECT_EQ(par.pulls_per_iteration, seq.pulls_per_iteration);
        EXPECT_EQ(state, seq_state)
            << "threads=" << threads << " mu=" << mu << " n=" << n;
        EXPECT_EQ(good, seq_good)
            << "threads=" << threads << " mu=" << mu << " n=" << n;
        EXPECT_EQ(engine.metrics(), net.metrics())
            << "threads=" << threads << " mu=" << mu << " n=" << n;
      }
    }
  }
}

// The good vector is protocol state carried across phases: run Phase I and
// Phase II back to back with the SAME carried vector, as approx_quantile
// does, and require the engine to reproduce every intermediate.
TEST(EngineRobustKernels, ThreeTournamentCarriesGoodAcrossPhases) {
  constexpr std::uint32_t kN = 2047;
  constexpr std::uint64_t kSeed = 607;
  const auto keys =
      make_keys(generate_values(Distribution::kGaussian, kN, 53));
  const FailureModel fm = FailureModel::uniform(0.3);

  Network net(kN, kSeed, fm);
  std::vector<Key> seq_state(keys.begin(), keys.end());
  std::vector<bool> seq_good(kN, true);
  const auto seq_p1 =
      robust_two_tournament(net, seq_state, seq_good, 0.4, 0.2);
  const std::vector<bool> seq_good_after_p1 = seq_good;
  const auto seq_p2 =
      robust_three_tournament(net, seq_state, seq_good, 0.05, 15);

  for (unsigned threads : kThreadCounts) {
    Engine engine(kN, kSeed, fm, config_for(threads));
    std::vector<Key> state(keys.begin(), keys.end());
    std::vector<bool> good(kN, true);
    const auto p1 = robust_two_tournament(engine, state, good, 0.4, 0.2);
    EXPECT_EQ(p1.iterations, seq_p1.iterations);
    EXPECT_EQ(good, seq_good_after_p1) << "threads=" << threads;
    const auto p2 = robust_three_tournament(engine, state, good, 0.05, 15);
    EXPECT_EQ(p2.iterations, seq_p2.iterations);
    EXPECT_EQ(p2.pulls_per_iteration, seq_p2.pulls_per_iteration);
    EXPECT_EQ(p2.outputs, seq_p2.outputs) << "threads=" << threads;
    EXPECT_EQ(p2.valid, seq_p2.valid) << "threads=" << threads;
    EXPECT_EQ(state, seq_state) << "threads=" << threads;
    EXPECT_EQ(good, seq_good) << "threads=" << threads;
    EXPECT_EQ(engine.metrics(), net.metrics()) << "threads=" << threads;
  }
}

TEST(EngineRobustKernels, CoverageMatchesCore) {
  constexpr std::uint32_t kN = 2048;
  constexpr std::uint64_t kSeed = 613;
  const FailureModel fm = FailureModel::uniform(0.2);

  // Half the nodes start served with distinct marker keys, so adopted
  // answers reveal exactly which served node was reached.
  std::vector<Key> seq_outputs(kN, Key::infinite());
  std::vector<bool> seq_valid(kN, false);
  for (std::uint32_t v = 0; v < kN; v += 2) {
    seq_outputs[v] = Key{static_cast<double>(v), v, 0};
    seq_valid[v] = true;
  }
  const std::vector<Key> init_outputs = seq_outputs;
  const std::vector<bool> init_valid = seq_valid;

  Network net(kN, kSeed, fm);
  const std::uint64_t seq_rounds =
      robust_coverage(net, seq_outputs, seq_valid, 12);

  for (unsigned threads : kThreadCounts) {
    Engine engine(kN, kSeed, fm, config_for(threads));
    std::vector<Key> outputs = init_outputs;
    std::vector<bool> valid = init_valid;
    const std::uint64_t rounds = robust_coverage(engine, outputs, valid, 12);
    EXPECT_EQ(rounds, seq_rounds) << "threads=" << threads;
    EXPECT_EQ(outputs, seq_outputs) << "threads=" << threads;
    EXPECT_EQ(valid, seq_valid) << "threads=" << threads;
    EXPECT_EQ(engine.metrics(), net.metrics()) << "threads=" << threads;
  }

  // All-served input: both executors must exit before consuming any round.
  Engine engine(kN, kSeed, fm, config_for(2));
  std::vector<Key> outputs(kN, Key{1.0, 1, 0});
  std::vector<bool> valid(kN, true);
  EXPECT_EQ(robust_coverage(engine, outputs, valid, 50), 0u);
  EXPECT_EQ(engine.metrics().rounds, 0u);
}

// ---- differential: full pipelines ----------------------------------------

class EngineRobustPipelines : public ::testing::TestWithParam<double> {};

TEST_P(EngineRobustPipelines, ApproxQuantileMatchesCore) {
  const double mu = GetParam();
  constexpr std::uint64_t kSeed = 617;
  // mu = 0.9 inflates every pull block by ~25x; a smaller n keeps the
  // sweep fast without losing the branch coverage.  The sweep mixes odd
  // and even n so shard trimming is exercised at the pipeline level too.
  const std::uint32_t n = mu >= 0.9 ? 1021 : (mu >= 0.5 ? 4095 : 4096);
  const auto values = generate_values(Distribution::kUniformReal, n, 59);
  const FailureModel fm =
      mu > 0.0 ? FailureModel::uniform(mu) : zero_probability_failures();

  ApproxQuantileParams params;
  params.phi = 0.3;
  // Stay above eps_tournament_floor(n) so the tournament route runs (the
  // fallback branch has its own differential below).
  params.eps = mu >= 0.9 ? 0.25 : 0.15;
  params.robust_coverage_rounds = 13;

  Network net(n, kSeed, fm);
  const ApproxQuantileResult seq = approx_quantile(net, values, params);
  ASSERT_FALSE(seq.used_exact_fallback);

  for (unsigned threads : kThreadCounts) {
    Engine engine(n, kSeed, fm, config_for(threads));
    const ApproxQuantileResult par = approx_quantile(engine, values, params);
    EXPECT_EQ(par.outputs, seq.outputs) << "threads=" << threads
                                        << " mu=" << mu;
    EXPECT_EQ(par.valid, seq.valid) << "threads=" << threads << " mu=" << mu;
    EXPECT_EQ(par.phase1_iterations, seq.phase1_iterations);
    EXPECT_EQ(par.phase2_iterations, seq.phase2_iterations);
    EXPECT_EQ(par.rounds, seq.rounds);
    EXPECT_EQ(par.served_nodes(), seq.served_nodes());
    EXPECT_EQ(engine.metrics(), net.metrics())
        << "threads=" << threads << " mu=" << mu;
  }
}

INSTANTIATE_TEST_SUITE_P(MuSweep, EngineRobustPipelines,
                         ::testing::Values(0.0, 0.1, 0.5, 0.9),
                         [](const auto& info) {
                           return "mu" + std::to_string(static_cast<int>(
                                             info.param * 100));
                         });

// eps below eps_tournament_floor under a failure model: the pipeline must
// route through the engine-native exact algorithm, whose inner approximate
// runs use the robust tournaments — still bit for bit.
TEST(EngineRobustPipelinesFallback, ExactFallbackUnderFailuresMatchesCore) {
  constexpr std::uint32_t kN = 1024;
  constexpr std::uint64_t kSeed = 619;
  const auto values = generate_values(Distribution::kGaussian, kN, 61);
  // mu is kept moderate: the count-based selection endgame of the exact
  // pipeline can mis-count under heavier failure noise at this small n and
  // aborts the run on BOTH executors — a sequential-path property, not an
  // engine one (e.g. mu = 0.3 with this input and seed 619).
  const FailureModel fm = FailureModel::uniform(0.25);

  ApproxQuantileParams params;
  params.phi = 0.5;
  params.eps = 0.05;  // below eps_tournament_floor(1024) ~ 0.2
  Network net(kN, kSeed, fm);
  const ApproxQuantileResult seq = approx_quantile(net, values, params);
  ASSERT_TRUE(seq.used_exact_fallback);

  for (unsigned threads : kThreadCounts) {
    Engine engine(kN, kSeed, fm, config_for(threads));
    const ApproxQuantileResult par = approx_quantile(engine, values, params);
    EXPECT_TRUE(par.used_exact_fallback);
    EXPECT_EQ(par.outputs, seq.outputs) << "threads=" << threads;
    EXPECT_EQ(par.valid, seq.valid) << "threads=" << threads;
    EXPECT_EQ(par.rounds, seq.rounds);
    EXPECT_EQ(engine.metrics(), net.metrics()) << "threads=" << threads;
  }
}

TEST(EngineRobustPipelinesFallback, ExactQuantileUnderFailuresMatchesCore) {
  constexpr std::uint32_t kN = 2048;
  constexpr std::uint64_t kSeed = 631;
  const auto values = generate_values(Distribution::kExponential, kN, 67);
  const FailureModel fm = FailureModel::uniform(0.35);

  ExactQuantileParams params;
  params.phi = 0.5;
  Network net(kN, kSeed, fm);
  const ExactQuantileResult seq = exact_quantile(net, values, params);

  for (unsigned threads : kThreadCounts) {
    Engine engine(kN, kSeed, fm, config_for(threads));
    const ExactQuantileResult par = exact_quantile(engine, values, params);
    EXPECT_EQ(par.answer, seq.answer) << "threads=" << threads;
    EXPECT_EQ(par.outputs, seq.outputs) << "threads=" << threads;
    EXPECT_EQ(par.valid, seq.valid) << "threads=" << threads;
    EXPECT_EQ(par.iterations, seq.iterations);
    EXPECT_EQ(par.endgame_phases, seq.endgame_phases);
    EXPECT_EQ(par.rounds, seq.rounds);
    EXPECT_EQ(engine.metrics(), net.metrics()) << "threads=" << threads;
  }
}

// own_rank composes approx runs and folds their valid masks into its own;
// under a failure model every inner run is a robust one and partially
// served runs must poison exactly the same estimates on both executors.
TEST(EngineRobustPipelinesFallback, OwnRankUnderFailuresMatchesCore) {
  constexpr std::uint32_t kN = 8191;
  constexpr std::uint64_t kSeed = 641;
  const auto values = generate_values(Distribution::kUniformReal, kN, 73);
  const FailureModel fm = FailureModel::uniform(0.2);

  OwnRankParams params;
  params.eps = 0.45;  // inner eps 0.1125 > eps_tournament_floor(8191) ~ 0.1
  Network net(kN, kSeed, fm);
  const OwnRankResult seq = own_rank(net, values, params);

  for (unsigned threads : {1u, 8u}) {
    Engine engine(kN, kSeed, fm, config_for(threads));
    const OwnRankResult par = own_rank(engine, values, params);
    EXPECT_EQ(par.estimates, seq.estimates) << "threads=" << threads;
    EXPECT_EQ(par.valid, seq.valid) << "threads=" << threads;
    EXPECT_EQ(par.quantile_runs, seq.quantile_runs);
    EXPECT_EQ(par.rounds, seq.rounds);
    EXPECT_EQ(engine.metrics(), net.metrics()) << "threads=" << threads;
  }
}

// Gather block size must be observable-neutral for the robust kernels too:
// the recorded-pick fan-out fold and the blocked coverage rounds must
// reproduce the sequential transcript at degenerate and oversized blocks.
TEST(EngineRobustKernels, GatherBlockSweepMatchesCore) {
  constexpr std::uint32_t kN = 1535;
  constexpr std::uint64_t kSeed = 647;
  const auto keys =
      make_keys(generate_values(Distribution::kUniformReal, kN, 79));
  const FailureModel fm = FailureModel::uniform(0.3);

  Network net(kN, kSeed, fm);
  std::vector<Key> seq_state(keys.begin(), keys.end());
  std::vector<bool> seq_good(kN, true);
  (void)robust_two_tournament(net, seq_state, seq_good, 0.4, 0.2);
  auto seq_p2 = robust_three_tournament(net, seq_state, seq_good, 0.1, 15);
  const std::uint64_t seq_rounds =
      robust_coverage(net, seq_p2.outputs, seq_p2.valid, 10);

  for (unsigned threads : {1u, 8u}) {
    for (const std::uint32_t block : {1u, 64u, 1u << 20}) {
      Engine engine(kN, kSeed, fm,
                    EngineConfig{.threads = threads,
                                 .shard_size = 192,
                                 .gather_block = block});
      std::vector<Key> state(keys.begin(), keys.end());
      std::vector<bool> good(kN, true);
      (void)robust_two_tournament(engine, state, good, 0.4, 0.2);
      auto p2 = robust_three_tournament(engine, state, good, 0.1, 15);
      const std::uint64_t rounds =
          robust_coverage(engine, p2.outputs, p2.valid, 10);
      EXPECT_EQ(rounds, seq_rounds)
          << "threads=" << threads << " block=" << block;
      EXPECT_EQ(p2.outputs, seq_p2.outputs)
          << "threads=" << threads << " block=" << block;
      EXPECT_EQ(p2.valid, seq_p2.valid)
          << "threads=" << threads << " block=" << block;
      EXPECT_EQ(state, seq_state)
          << "threads=" << threads << " block=" << block;
      EXPECT_EQ(good, seq_good)
          << "threads=" << threads << " block=" << block;
      EXPECT_EQ(engine.metrics(), net.metrics())
          << "threads=" << threads << " block=" << block;
    }
  }
}

// The small-n heavy-failure endgame abort is a typed, recoverable error:
// the scenario the ExactFallbackUnderFailuresMatchesCore comment documents
// (this input at mu = 0.3) makes the count-based selection endgame
// mis-count on BOTH executors.  Both must throw ExactPipelineError — not a
// bare runtime_error, not a wrong answer — and both must remain usable
// afterwards (the abort is a per-run property, not engine corruption).
TEST(EngineRobustPipelinesFallback, ExactEndgameAbortIsTypedOnBothExecutors) {
  constexpr std::uint32_t kN = 1024;
  constexpr std::uint64_t kSeed = 619;
  const auto values = generate_values(Distribution::kGaussian, kN, 61);
  const FailureModel fm = FailureModel::uniform(0.3);

  ApproxQuantileParams params;
  params.phi = 0.5;
  params.eps = 0.05;  // below eps_tournament_floor(1024): exact fallback

  ExactPipelineError::Kind seq_kind{};
  {
    Network net(kN, kSeed, fm);
    try {
      (void)approx_quantile(net, values, params);
      FAIL() << "sequential run was expected to abort";
    } catch (const ExactPipelineError& e) {
      seq_kind = e.kind();
    }
    // Recoverable: the same Network still executes rounds afterwards.
    const std::uint64_t before = net.metrics().rounds;
    (void)net.pull_round(32);
    EXPECT_EQ(net.metrics().rounds, before + 1);
  }

  for (unsigned threads : kThreadCounts) {
    Engine engine(kN, kSeed, fm, config_for(threads));
    try {
      (void)approx_quantile(engine, values, params);
      FAIL() << "engine run was expected to abort (threads=" << threads
             << ")";
    } catch (const ExactPipelineError& e) {
      EXPECT_EQ(e.kind(), seq_kind) << "threads=" << threads;
    }
    const std::uint64_t before = engine.metrics().rounds;
    (void)engine.pull_round(32);
    EXPECT_EQ(engine.metrics().rounds, before + 1);
  }

  // Back-compat: the typed error still lands in runtime_error catch sites.
  Network net(kN, kSeed, fm);
  EXPECT_THROW((void)approx_quantile(net, values, params),
               std::runtime_error);
}

// ---- properties -----------------------------------------------------------

// Theorem 1.4's coverage tail: starting half-served, t extra rounds leave
// at most ~n/2^t nodes unserved.  The implementation beats the allowance
// with slack (unserved nodes retry every round and the served set only
// grows), so a factor-2 envelope plus one node of integer slack per trial
// holds comfortably across seeds.
TEST(EngineRobustProperties, CoverageTailObeysTheorem14Bound) {
  constexpr std::uint32_t kN = 1 << 13;
  const FailureModel fm = FailureModel::uniform(0.2);
  for (const std::uint32_t t : {4u, 8u, 12u}) {
    std::uint64_t unserved_total = 0;
    constexpr std::uint64_t kTrials = 5;
    for (std::uint64_t trial = 0; trial < kTrials; ++trial) {
      Engine engine(kN, 700 + trial, fm, config_for(2));
      std::vector<Key> outputs(kN, Key::infinite());
      std::vector<bool> valid(kN, false);
      for (std::uint32_t v = 0; v < kN; v += 2) {
        outputs[v] = Key{1.0, 1, 0};
        valid[v] = true;
      }
      (void)robust_coverage(engine, outputs, valid, t);
      unserved_total += kN - count_true(valid);
      // A served node must actually hold a served node's answer.
      for (std::uint32_t v = 0; v < kN; ++v) {
        if (valid[v]) ASSERT_EQ(outputs[v].value, 1.0);
      }
    }
    EXPECT_LE(unserved_total, kTrials * (2 * (kN >> t) + 1)) << "t=" << t;
  }
}

// Lemma 5.2's one-way door: once a node turns bad it never re-enters the
// good set — across iterations, across phases, and into the served set.
TEST(EngineRobustProperties, BadNodesNeverReenterGoodSet) {
  constexpr std::uint32_t kN = 4096;
  const auto keys =
      make_keys(generate_values(Distribution::kUniformReal, kN, 71));
  for (const std::uint64_t seed : {801u, 802u, 803u}) {
    Engine engine(kN, seed, FailureModel::uniform(0.4), config_for(2));
    std::vector<Key> state(keys.begin(), keys.end());
    std::vector<bool> good(kN, true);

    (void)robust_two_tournament(engine, state, good, 0.5, 0.2);
    const std::vector<bool> after_p1 = good;
    EXPECT_GE(count_true(after_p1), kN / 3);  // Lemma 5.2 constant fraction

    const auto p2 = robust_three_tournament(engine, state, good, 0.05, 15);
    EXPECT_TRUE(subset_of(good, after_p1)) << "seed=" << seed;
    // Only nodes still good at the final step can produce an output.
    EXPECT_TRUE(subset_of(p2.valid, good)) << "seed=" << seed;

    // A third phase on the carried vector keeps shrinking monotonically.
    std::vector<bool> before = good;
    (void)robust_two_tournament(engine, state, good, 0.5, 0.2);
    EXPECT_TRUE(subset_of(good, before)) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace gq
