// The resilience stack end to end: crash-churn node-lifecycle faults
// (sim/adversary.hpp), the deterministic retry/escalation supervisor
// (core/supervisor.hpp), and the service layer's graceful degradation +
// circuit breaker (service/quantile_service.hpp).
//
// The differential half extends the repo's bit-identical contract to the
// new layer: crash-churn runs, supervisor RunReports, and degraded service
// replies are pinned equal between the sequential Network and the parallel
// Engine at 1/2/8 threads, Metrics (crash tallies included) and warm/cold
// sessions alike.  The invisibility half pins the other direction: with
// zero faults the supervisor and the breaker leave no trace in any
// transcript.  The degradation half forces failure and asserts the service
// answers from the epoch summary — within its stated error bound — instead
// of throwing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/adversarial.hpp"
#include "core/exact_quantile.hpp"
#include "core/supervisor.hpp"
#include "engine/engine.hpp"
#include "engine/pipelines.hpp"
#include "service/quantile_service.hpp"
#include "sim/adversary.hpp"
#include "sim/network.hpp"
#include "sim/streams.hpp"
#include "workload/distributions.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

constexpr unsigned kThreadCounts[] = {1, 2, 8};

EngineConfig config_for(unsigned threads) {
  return EngineConfig{.threads = threads, .shard_size = 192};
}

void expect_same_quantile(const AdversarialQuantileResult& a,
                          const AdversarialQuantileResult& b,
                          const std::string& what) {
  EXPECT_EQ(a.outputs, b.outputs) << what;
  EXPECT_EQ(a.valid, b.valid) << what;
  EXPECT_EQ(a.rounds, b.rounds) << what;
  EXPECT_EQ(a.quality, b.quality) << what;
}

// ---- crash-churn differential --------------------------------------------

TEST(CrashChurn, DifferentialAcrossConfigsAndThreads) {
  constexpr std::uint32_t kN = 1283;
  constexpr std::uint64_t kSeed = 907;
  const auto values = generate_values(Distribution::kUniformReal, kN, 83);
  AdversarialQuantileParams params;
  params.phi = 0.5;
  params.eps = 0.1;

  const CrashChurnAdversary::Config configs[] = {
      {.crashes = kN / 16, .first_round = 1, .crash_window = 48,
       .down_rounds = 12, .strategy_seed = 5},   // churn with recovery
      {.crashes = kN / 32, .first_round = 4, .crash_window = 64,
       .down_rounds = 0, .strategy_seed = 9},    // permanent crashes
  };
  for (const auto& config : configs) {
    CrashChurnAdversary crash(config);
    Network net(kN, kSeed);
    net.set_adversary(&crash);
    const auto seq = adversarial_quantile(net, values, params);
    EXPECT_GT(net.metrics().adversary_crashed, 0u);
    if (config.down_rounds > 0) {
      EXPECT_GT(net.metrics().adversary_recovered, 0u);
    }

    for (unsigned threads : kThreadCounts) {
      Engine engine(kN, kSeed, FailureModel{}, config_for(threads));
      engine.set_adversary(&crash);
      const auto par = adversarial_quantile(engine, values, params);
      const std::string what = "down_rounds=" +
                               std::to_string(config.down_rounds) +
                               " threads=" + std::to_string(threads);
      expect_same_quantile(par, seq, what);
      EXPECT_EQ(engine.metrics(), net.metrics()) << what;
    }
  }
}

TEST(CrashChurn, PinnedScheduleExcludesDownNodesFromServing) {
  constexpr std::uint32_t kN = 1031;
  const auto values = generate_values(Distribution::kGaussian, kN, 89);
  // Node 3 dies in round 1 and never comes back; node 10 bounces briefly.
  CrashChurnAdversary crash(std::vector<CrashEvent>{
      {.node = 3, .crash_round = 1, .recover_round = kNoRecovery},
      {.node = 10, .crash_round = 2, .recover_round = 6},
  });
  Network net(kN, 911);
  net.set_adversary(&crash);
  AdversarialQuantileParams params;
  params.eps = 0.1;
  const auto r = adversarial_quantile(net, values, params);
  EXPECT_FALSE(r.valid[3]);  // down at the end: cannot be served
  EXPECT_LT(r.quality.served_fraction, 1.0);
  EXPECT_GT(net.metrics().adversary_crashed, 0u);
  EXPECT_EQ(net.metrics().adversary_recovered, 1u);
}

TEST(CrashChurn, ZeroCrashStrategyIsTranscriptInvisible) {
  constexpr std::uint32_t kN = 769;
  constexpr std::uint64_t kSeed = 31;
  const auto values = generate_values(Distribution::kUniformReal, kN, 7);
  AdversarialQuantileParams params;
  params.eps = 0.15;

  Network plain(kN, kSeed);
  const auto bare = adversarial_quantile(plain, values, params);

  CrashChurnAdversary none(CrashChurnAdversary::Config{.crashes = 0});
  Network with(kN, kSeed);
  with.set_adversary(&none);
  const auto observed = adversarial_quantile(with, values, params);
  expect_same_quantile(observed, bare, "zero-crash adversary");
  EXPECT_EQ(with.metrics(), plain.metrics());
}

// ---- supervisor unit behaviour -------------------------------------------

TEST(Supervisor, AttemptSeedsAndPlansAreDeterministic) {
  EXPECT_EQ(streams::attempt_seed(1234, 0), 1234u);  // attempt 0 IS the run
  EXPECT_NE(streams::attempt_seed(1234, 1), 1234u);
  EXPECT_NE(streams::attempt_seed(1234, 1), streams::attempt_seed(1234, 2));
  EXPECT_EQ(streams::attempt_seed(1234, 3), streams::attempt_seed(1234, 3));

  SupervisorPolicy policy;
  const AttemptPlan first = plan_attempt(policy, 77, 0);
  EXPECT_EQ(first.seed, 77u);
  EXPECT_DOUBLE_EQ(first.eps_scale, 1.0);
  EXPECT_EQ(first.fanout_boost, 0u);
  EXPECT_FALSE(first.robust_promoted);

  const AttemptPlan second = plan_attempt(policy, 77, 2);
  EXPECT_DOUBLE_EQ(second.eps_scale, policy.eps_growth * policy.eps_growth);
  EXPECT_EQ(second.fanout_boost, 2 * policy.fanout_step);
  EXPECT_TRUE(second.robust_promoted);
}

TEST(Supervisor, RecordsTypedErrorsQualityFailuresAndSuccess) {
  SupervisorPolicy policy;
  policy.max_attempts = 3;
  auto run = [](const AttemptPlan& plan) {
    if (plan.attempt == 0) {
      ExactPipelineError::Context context;
      context.seed = plan.seed;
      context.round = 7;
      context.n = 64;
      context.phase = "bracketing";
      throw ExactPipelineError(ExactPipelineError::Kind::kBracketingEmptied,
                               "forced", context);
    }
    AttemptVerdict verdict;
    verdict.served_fraction = plan.attempt == 1 ? 0.2 : 1.0;
    verdict.rounds = plan.attempt == 1 ? 5 : 9;
    return std::pair(static_cast<int>(plan.attempt), verdict);
  };
  const SupervisedRun<int> out = supervise<int>(policy, 1234, run);
  ASSERT_TRUE(out.report.ok);
  ASSERT_TRUE(out.result.has_value());
  EXPECT_EQ(*out.result, 2);
  ASSERT_EQ(out.report.attempts.size(), 3u);
  EXPECT_EQ(out.report.retries(), 2u);
  EXPECT_EQ(out.report.total_rounds(), 14u);

  const AttemptRecord& aborted = out.report.attempts[0];
  EXPECT_EQ(aborted.status, AttemptStatus::kPipelineError);
  EXPECT_TRUE(aborted.typed_error);
  EXPECT_EQ(aborted.error_kind, ExactPipelineError::Kind::kBracketingEmptied);
  EXPECT_NE(aborted.error_what.find("bracketing-emptied"), std::string::npos);
  EXPECT_NE(aborted.error_what.find("round=7"), std::string::npos);
  EXPECT_EQ(aborted.seed, 1234u);

  EXPECT_EQ(out.report.attempts[1].status,
            AttemptStatus::kQualityBelowThreshold);
  EXPECT_EQ(out.report.attempts[1].seed, streams::attempt_seed(1234, 1));
  EXPECT_EQ(out.report.attempts[2].status, AttemptStatus::kOk);
}

TEST(Supervisor, DeadlineExhaustsTheBudget) {
  SupervisorPolicy policy;
  policy.max_attempts = 2;
  policy.max_rounds = 4;
  const SupervisedRun<int> out =
      supervise<int>(policy, 9, [](const AttemptPlan&) {
        AttemptVerdict verdict;
        verdict.rounds = 10;
        return std::pair(0, verdict);
      });
  EXPECT_FALSE(out.report.ok);
  EXPECT_FALSE(out.result.has_value());
  ASSERT_EQ(out.report.attempts.size(), 2u);
  for (const AttemptRecord& record : out.report.attempts) {
    EXPECT_EQ(record.status, AttemptStatus::kDeadlineExceeded);
  }
}

TEST(ExactPipelineErrorContext, FormatsAndExposesTheAbortSite) {
  ExactPipelineError::Context context;
  context.seed = 77;
  context.round = 123;
  context.n = 1024;
  context.phase = "selection_endgame";
  const ExactPipelineError error(ExactPipelineError::Kind::kEndgameStalled,
                                 "no progress", context);
  EXPECT_EQ(error.kind(), ExactPipelineError::Kind::kEndgameStalled);
  EXPECT_EQ(error.context(), context);
  const std::string what = error.what();
  EXPECT_NE(what.find("endgame-stalled"), std::string::npos);
  EXPECT_NE(what.find("phase=selection_endgame"), std::string::npos);
  EXPECT_NE(what.find("round=123"), std::string::npos);
  EXPECT_NE(what.find("n=1024"), std::string::npos);
  EXPECT_NE(what.find("seed=77"), std::string::npos);
  EXPECT_NE(what.find("no progress"), std::string::npos);
}

// ---- supervisor over the real pipelines ----------------------------------

TEST(Supervisor, ZeroFaultSupervisedRunIsBitIdenticalToBarePipeline) {
  constexpr std::uint32_t kN = 700;
  constexpr std::uint64_t kSeed = 4242;
  const auto values = generate_values(Distribution::kUniformReal, kN, 11);
  const auto keys = make_keys(values);
  AdversarialQuantileParams params;
  params.eps = 0.15;

  Network bare(kN, kSeed);
  const auto plain = adversarial_quantile_keys(bare, keys, params);

  Network supervised_net(kN, kSeed);
  const auto seq = supervised_adversarial_quantile_keys(
      supervised_net, keys, params, SupervisorPolicy{});
  ASSERT_TRUE(seq.report.ok);
  ASSERT_TRUE(seq.result.has_value());
  EXPECT_EQ(seq.report.attempts.size(), 1u);  // first try accepted
  expect_same_quantile(*seq.result, plain, "supervised vs bare");
  EXPECT_EQ(supervised_net.metrics(), bare.metrics());

  for (unsigned threads : kThreadCounts) {
    Engine engine(kN, kSeed, FailureModel{}, config_for(threads));
    const auto par = supervised_adversarial_quantile_keys(
        engine, keys, params, SupervisorPolicy{});
    ASSERT_TRUE(par.report.ok);
    expect_same_quantile(*par.result, plain,
                         "threads=" + std::to_string(threads));
    EXPECT_EQ(par.report, seq.report);
    EXPECT_EQ(engine.metrics(), bare.metrics());
  }
}

TEST(Supervisor, ExhaustedRunReportPinnedAcrossExecutorsAndThreads) {
  constexpr std::uint32_t kN = 1283;
  constexpr std::uint64_t kSeed = 907;
  const auto values = generate_values(Distribution::kUniformReal, kN, 83);
  const auto keys = make_keys(values);
  AdversarialQuantileParams params;
  params.eps = 0.1;
  SupervisorPolicy policy;
  policy.max_attempts = 2;
  // Permanent crashes keep served fraction below this unattainable bar, so
  // every attempt fails on quality and the budget exhausts — the RunReport
  // (statuses, per-attempt served fractions, rounds, seeds) must still be
  // identical across executors and thread counts.
  policy.min_served_fraction = 0.999;
  CrashChurnAdversary::Config config{.crashes = kN / 16, .first_round = 1,
                                     .crash_window = 32, .down_rounds = 0,
                                     .strategy_seed = 3};

  CrashChurnAdversary seq_crash(config);
  Network net(kN, kSeed);
  net.set_adversary(&seq_crash);
  const auto seq =
      supervised_adversarial_quantile_keys(net, keys, params, policy);
  EXPECT_FALSE(seq.report.ok);
  EXPECT_FALSE(seq.result.has_value());
  ASSERT_EQ(seq.report.attempts.size(), 2u);
  for (const AttemptRecord& record : seq.report.attempts) {
    EXPECT_EQ(record.status, AttemptStatus::kQualityBelowThreshold);
    EXPECT_LT(record.served_fraction, 0.999);
  }

  for (unsigned threads : kThreadCounts) {
    CrashChurnAdversary par_crash(config);
    Engine engine(kN, kSeed, FailureModel{}, config_for(threads));
    engine.set_adversary(&par_crash);
    const auto par =
        supervised_adversarial_quantile_keys(engine, keys, params, policy);
    EXPECT_EQ(par.report, seq.report) << "threads=" << threads;
    EXPECT_EQ(engine.metrics(), net.metrics()) << "threads=" << threads;
  }
}

// ---- service degradation --------------------------------------------------

ServiceConfig resilient_config(unsigned threads) {
  ServiceConfig cfg;
  cfg.seed = 2024;
  cfg.sketch_k = 64;
  cfg.engine.threads = threads;
  cfg.engine.shard_size = 96;
  return cfg;
}

void ingest_fixture(QuantileService& service, std::uint32_t nodes,
                    std::size_t per_node, std::uint64_t seed) {
  const auto values =
      generate_values(Distribution::kUniformReal, nodes * per_node, seed);
  for (std::uint32_t v = 0; v < nodes; ++v) {
    for (std::size_t i = 0; i < per_node; ++i) {
      service.ingest(v, values[v * per_node + i]);
    }
  }
}

TEST(ServiceResilience, ForcedExhaustionServesDegradedWithinBound) {
  constexpr std::uint32_t kNodes = 48;
  ServiceConfig cfg = resilient_config(2);
  cfg.supervisor.max_attempts = 2;
  cfg.supervisor.min_served_fraction = 1.5;  // unattainable: always exhausts
  cfg.breaker.open_after = 0;                // isolate the degraded path
  QuantileService service(kNodes, cfg);
  ingest_fixture(service, kNodes, 5, 17);

  QueryRequest request;
  request.kind = QueryKind::kQuantile;
  request.phi = 0.25;
  const QueryReply reply = service.query(request);
  EXPECT_EQ(reply.quality, AnswerQuality::kDegraded);
  EXPECT_EQ(reply.attempts, 2u);
  EXPECT_EQ(reply.served, 0u);
  EXPECT_GT(reply.error_bound, 0.0);

  // m instance keys fit the summary uncompacted, so the degraded answer is
  // the exact phi-quantile of the instance: its rank must sit within the
  // stated bound (plus one-key granularity) of phi.
  std::vector<Key> sorted(service.epoch_keys().begin(),
                          service.epoch_keys().end());
  std::sort(sorted.begin(), sorted.end());
  const auto m = static_cast<double>(sorted.size());
  std::size_t rank = 0;
  while (rank < sorted.size() && !(reply.answer == sorted[rank])) ++rank;
  ASSERT_LT(rank, sorted.size());  // the answer is a real instance key
  const double rank_phi = (static_cast<double>(rank) + 1.0) / m;
  EXPECT_NEAR(rank_phi, request.phi, reply.error_bound + 1.0 / m);

  // Every query kind degrades to a well-formed reply.
  QueryRequest rank_request;
  rank_request.kind = QueryKind::kRank;
  rank_request.value = 0.5;
  const QueryReply rank_reply = service.query(rank_request);
  EXPECT_EQ(rank_reply.quality, AnswerQuality::kDegraded);
  EXPECT_GT(rank_reply.fraction, 0.0);
  EXPECT_LT(rank_reply.fraction, 1.0);

  QueryRequest cdf_request;
  cdf_request.kind = QueryKind::kCdf;
  cdf_request.cdf_points = {0.25, 0.5, 0.75};
  const QueryReply cdf_reply = service.query(cdf_request);
  EXPECT_EQ(cdf_reply.quality, AnswerQuality::kDegraded);
  ASSERT_EQ(cdf_reply.cdf.size(), 3u);
  EXPECT_LE(cdf_reply.cdf[0], cdf_reply.cdf[1]);
  EXPECT_LE(cdf_reply.cdf[1], cdf_reply.cdf[2]);

  QueryRequest multi_request;
  multi_request.kind = QueryKind::kMultiQuantile;
  multi_request.phis = {0.1, 0.5, 0.9};
  const QueryReply multi_reply = service.query(multi_request);
  EXPECT_EQ(multi_reply.quality, AnswerQuality::kDegraded);
  ASSERT_EQ(multi_reply.multi_values.size(), 3u);
  EXPECT_LE(multi_reply.multi_values[0], multi_reply.multi_values[1]);
  EXPECT_LE(multi_reply.multi_values[1], multi_reply.multi_values[2]);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.degraded_answers, 4u);
  EXPECT_EQ(stats.retry_attempts, 4u);  // one retry per exhausted query
}

TEST(ServiceResilience, BreakerOpensCoolsDownAndProbes) {
  constexpr std::uint32_t kNodes = 48;
  ServiceConfig cfg = resilient_config(1);
  cfg.supervisor.max_attempts = 2;
  cfg.supervisor.min_served_fraction = 1.5;  // every engine run exhausts
  cfg.breaker.open_after = 2;
  cfg.breaker.cooldown_queries = 3;
  QuantileService service(kNodes, cfg);
  ingest_fixture(service, kNodes, 5, 17);

  QueryRequest request;
  request.kind = QueryKind::kQuantile;

  // q1, q2: full attempt budgets burn; the second failure opens the breaker.
  EXPECT_EQ(service.query(request).attempts, 2u);
  EXPECT_EQ(service.breaker_state(QueryKind::kQuantile),
            QuantileService::BreakerState::kClosed);
  EXPECT_EQ(service.query(request).attempts, 2u);
  EXPECT_EQ(service.breaker_state(QueryKind::kQuantile),
            QuantileService::BreakerState::kOpen);

  // q3..q5: cooldown — degraded immediately, engine untouched.
  const std::uint64_t rounds_before = service.stats().gossip_rounds;
  for (int i = 0; i < 3; ++i) {
    const QueryReply reply = service.query(request);
    EXPECT_EQ(reply.quality, AnswerQuality::kDegraded);
    EXPECT_EQ(reply.attempts, 0u);
  }
  EXPECT_EQ(service.stats().gossip_rounds, rounds_before);

  // q6: half-open probe runs the full budget, fails, re-opens.
  EXPECT_EQ(service.query(request).attempts, 2u);
  EXPECT_EQ(service.breaker_state(QueryKind::kQuantile),
            QuantileService::BreakerState::kOpen);
  EXPECT_GT(service.stats().gossip_rounds, rounds_before);

  // q7: back in cooldown.
  EXPECT_EQ(service.query(request).attempts, 0u);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.degraded_answers, 7u);
  EXPECT_EQ(stats.breaker_opens, 2u);
  EXPECT_EQ(stats.retry_attempts, 3u);  // q1, q2, q6 each retried once

  // Breakers are per kind: the quantile breaker being open does not touch
  // rank queries (which also exhaust here, on their own breaker).
  EXPECT_EQ(service.breaker_state(QueryKind::kRank),
            QuantileService::BreakerState::kClosed);
}

TEST(ServiceResilience, BreakerClosesOnSuccessfulProbe) {
  constexpr std::uint32_t kNodes = 700;
  // Measure the deterministic round costs first (pinned seeds), then pick a
  // deadline between them: fine-eps quantiles blow it, coarse ones fit.
  QuantileService probe(kNodes, resilient_config(1));
  ingest_fixture(probe, kNodes, 3, 23);

  QueryRequest fine;
  fine.kind = QueryKind::kQuantile;
  fine.eps = 0.1;
  fine.seed = 777;
  QueryRequest coarse = fine;
  coarse.eps = 0.3;
  coarse.seed = 778;
  QueryRequest rank_request;
  rank_request.kind = QueryKind::kRank;
  rank_request.value = 0.5;
  rank_request.seed = 779;

  const std::uint64_t fine_rounds = probe.query(fine).rounds;
  const std::uint64_t coarse_rounds = probe.query(coarse).rounds;
  const std::uint64_t rank_rounds = probe.query(rank_request).rounds;
  ASSERT_LT(coarse_rounds, fine_rounds);
  ASSERT_LT(rank_rounds, fine_rounds);

  ServiceConfig cfg = resilient_config(1);
  cfg.supervisor.max_attempts = 1;  // no escalation: eps stays as requested
  cfg.supervisor.max_rounds =
      (std::max(coarse_rounds, rank_rounds) + fine_rounds) / 2;
  cfg.breaker.open_after = 1;
  cfg.breaker.cooldown_queries = 0;
  QuantileService service(kNodes, cfg);
  ingest_fixture(service, kNodes, 3, 23);

  // Fine query blows the deadline: degraded, breaker opens.
  const QueryReply failed = service.query(fine);
  EXPECT_EQ(failed.quality, AnswerQuality::kDegraded);
  EXPECT_EQ(service.breaker_state(QueryKind::kQuantile),
            QuantileService::BreakerState::kOpen);

  // Zero cooldown: the next quantile query is the half-open probe.  The
  // coarse one fits the deadline, so the probe succeeds and closes the
  // breaker.
  const QueryReply probe_reply = service.query(coarse);
  EXPECT_EQ(probe_reply.quality, AnswerQuality::kFull);
  EXPECT_EQ(probe_reply.rounds, coarse_rounds);
  EXPECT_EQ(service.breaker_state(QueryKind::kQuantile),
            QuantileService::BreakerState::kClosed);

  // The fine query still fails, re-opening; rank queries never notice.
  EXPECT_EQ(service.query(fine).quality, AnswerQuality::kDegraded);
  EXPECT_EQ(service.breaker_state(QueryKind::kQuantile),
            QuantileService::BreakerState::kOpen);
  const QueryReply rank_reply = service.query(rank_request);
  EXPECT_EQ(rank_reply.quality, AnswerQuality::kFull);
  EXPECT_EQ(service.breaker_state(QueryKind::kRank),
            QuantileService::BreakerState::kClosed);
}

TEST(ServiceResilience, WarmEqualsColdUnderCrashChurnAcrossThreads) {
  constexpr std::uint32_t kNodes = 700;
  const CrashChurnAdversary::Config configs[] = {
      {.crashes = 4, .crash_window = 24, .down_rounds = 8,
       .strategy_seed = 1},
      {.crashes = 32, .crash_window = 48, .down_rounds = 0,
       .strategy_seed = 2},
  };
  for (const auto& config : configs) {
    std::vector<QueryReply> replies;
    for (unsigned threads : kThreadCounts) {
      // Warm service: mixed traffic first, then the pinned-seed query.
      CrashChurnAdversary warm_crash(config);
      ServiceConfig warm_cfg = resilient_config(threads);
      warm_cfg.adversary = &warm_crash;
      QuantileService warm(kNodes, warm_cfg);
      ingest_fixture(warm, kNodes, 3, 29);
      QueryRequest traffic;
      traffic.kind = QueryKind::kQuantile;
      traffic.eps = 0.2;
      (void)warm.query(traffic);
      traffic.kind = QueryKind::kRank;
      traffic.value = 0.4;
      (void)warm.query(traffic);

      QueryRequest pinned;
      pinned.kind = QueryKind::kQuantile;
      pinned.eps = 0.2;
      pinned.seed = 4242;
      const QueryReply warm_reply = warm.query(pinned);

      // Cold service: identical state, the pinned query is its first.
      CrashChurnAdversary cold_crash(config);
      ServiceConfig cold_cfg = resilient_config(threads);
      cold_cfg.adversary = &cold_crash;
      QuantileService cold(kNodes, cold_cfg);
      ingest_fixture(cold, kNodes, 3, 29);
      const QueryReply cold_reply = cold.query(pinned);

      const std::string what = "crashes=" + std::to_string(config.crashes) +
                               " threads=" + std::to_string(threads);
      EXPECT_EQ(warm_reply.answer, cold_reply.answer) << what;
      EXPECT_EQ(warm_reply.rounds, cold_reply.rounds) << what;
      EXPECT_EQ(warm_reply.served, cold_reply.served) << what;
      EXPECT_EQ(warm_reply.transcript_hash, cold_reply.transcript_hash)
          << what;
      EXPECT_EQ(warm_reply.quality, cold_reply.quality) << what;
      EXPECT_EQ(warm_reply.attempts, cold_reply.attempts) << what;
      replies.push_back(warm_reply);
    }
    // And the reply is thread-count invariant, like everything else.
    for (std::size_t i = 1; i < replies.size(); ++i) {
      EXPECT_EQ(replies[i].transcript_hash, replies[0].transcript_hash);
      EXPECT_EQ(replies[i].rounds, replies[0].rounds);
      EXPECT_EQ(replies[i].served, replies[0].served);
    }
  }
}

TEST(ServiceResilience, NeverThrowsUnderAggressiveChurn) {
  constexpr std::uint32_t kNodes = 700;
  CrashChurnAdversary crash(CrashChurnAdversary::Config{
      .crashes = 64, .first_round = 1, .crash_window = 32, .down_rounds = 0,
      .strategy_seed = 11});
  ServiceConfig cfg = resilient_config(2);
  cfg.adversary = &crash;
  cfg.supervisor.max_attempts = 2;
  cfg.supervisor.min_served_fraction = 0.97;  // ~9% permanently down: fails
  QuantileService service(kNodes, cfg);
  ingest_fixture(service, kNodes, 3, 31);

  const QueryKind kinds[] = {QueryKind::kQuantile, QueryKind::kRank,
                             QueryKind::kCdf, QueryKind::kMultiQuantile};
  for (int i = 0; i < 8; ++i) {
    QueryRequest request;
    request.kind = kinds[i % 4];
    request.eps = 0.2;
    request.value = 0.5;
    request.cdf_points = {0.3, 0.7};
    request.phis = {0.25, 0.75};
    QueryReply reply;
    EXPECT_NO_THROW(reply = service.query(request));
    EXPECT_TRUE(reply.quality == AnswerQuality::kFull ||
                reply.quality == AnswerQuality::kDegraded);
  }
  EXPECT_GT(service.stats().degraded_answers, 0u);
}

TEST(ServiceResilience, ExhaustionThrowsWhenDegradeDisabled) {
  constexpr std::uint32_t kNodes = 48;
  ServiceConfig cfg = resilient_config(1);
  cfg.supervisor.max_attempts = 1;
  cfg.supervisor.min_served_fraction = 1.5;
  cfg.degrade_on_exhaustion = false;
  QuantileService service(kNodes, cfg);
  ingest_fixture(service, kNodes, 5, 17);

  QueryRequest request;
  request.kind = QueryKind::kQuantile;
  EXPECT_THROW((void)service.query(request), std::runtime_error);
  // A thrown exhaustion never reaches the breaker (loud failure stays
  // loud and consistent), and the service remains usable.
  EXPECT_THROW((void)service.query(request), std::runtime_error);
  EXPECT_EQ(service.breaker_state(QueryKind::kQuantile),
            QuantileService::BreakerState::kClosed);
  EXPECT_EQ(service.stats().degraded_answers, 0u);
}

}  // namespace
}  // namespace gq
