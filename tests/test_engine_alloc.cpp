// Allocation-freeness of the engine's steady-state hot path.
//
// The dispatch layer (ThreadPool chunked claiming, templated
// parallel_shards), the scatter arena, and the shard Metrics accumulators
// are all designed so that once a workload's capacities are warm, a round
// performs zero heap allocations.  This binary replaces global operator
// new/delete with counting versions and pins exactly that: after a warmup
// round, repeating an identical round allocates nothing — on any thread
// count — and the arena reports no mailbox growth.
//
// Under ASan/MSan the replaced operators would bypass the sanitizer's
// bookkeeping assumptions for counting purposes, so the count-based
// assertions are skipped there (the functional assertions still run).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "analysis/recurrences.hpp"
#include "core/two_tournament.hpp"
#include "engine/engine.hpp"
#include "engine/kernels.hpp"
#include "engine/scatter.hpp"
#include "sim/key.hpp"
#include "workload/distributions.hpp"
#include "workload/tiebreak.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define GQ_ALLOC_COUNTS_RELIABLE 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define GQ_ALLOC_COUNTS_RELIABLE 0
#else
#define GQ_ALLOC_COUNTS_RELIABLE 1
#endif
#else
#define GQ_ALLOC_COUNTS_RELIABLE 1
#endif

namespace gq {
namespace {

// One full gossip round shaped like the push collectives: a batched
// pull_round (dispatch + per-shard Metrics), a send kernel filling the
// scatter mailboxes, and the partitioned delivery fold.  The send pattern
// is fixed, so every round after the first reuses exactly the warmed
// capacity.
void steady_round(Engine& engine, Scatter<std::uint64_t>& scatter,
                  std::vector<std::uint32_t>& peers,
                  std::vector<std::uint64_t>& sums) {
  engine.pull_round(32, peers);
  scatter.begin_round();
  engine.parallel_shards(
      [&](std::uint32_t begin, std::uint32_t end, Metrics&) {
        for (std::uint32_t v = begin; v < end; ++v) {
          scatter.send(v, peers[v], v);
        }
      });
  scatter.deliver(
      engine,
      [&](std::uint32_t first, std::uint32_t last) {
        for (std::uint32_t v = first; v < last; ++v) sums[v] = 0;
      },
      [&](std::uint32_t dest, std::uint64_t payload) {
        sums[dest] += payload;
      });
}

TEST(EngineSteadyState, RoundsAllocateNothingAfterWarmup) {
  constexpr std::uint32_t kN = 4096;
  for (unsigned threads : {1u, 2u, 8u}) {
    Engine engine(kN, 11, FailureModel{},
                  EngineConfig{.threads = threads, .shard_size = 256});
    std::vector<std::uint32_t> peers(kN);
    std::vector<std::uint64_t> sums(kN);
    Scatter<std::uint64_t> scatter(engine);

    // Warmup: grows mailboxes, shard Metrics size tables, pool state.
    for (int r = 0; r < 3; ++r) steady_round(engine, scatter, peers, sums);

    const std::uint64_t grows_before = engine.scatter_arena().grow_events();
    const std::uint64_t allocs_before =
        g_allocations.load(std::memory_order_relaxed);
    for (int r = 0; r < 10; ++r) steady_round(engine, scatter, peers, sums);
    const std::uint64_t allocs =
        g_allocations.load(std::memory_order_relaxed) - allocs_before;
    const std::uint64_t grows =
        engine.scatter_arena().grow_events() - grows_before;

    // The arena-growth check is functional and runs everywhere (all thread
    // counts, sanitizers included); only the raw allocation count depends
    // on the replaced operator new being the one the runtime actually
    // calls, which sanitizers rewire.
    EXPECT_EQ(grows, 0u) << "threads=" << threads;
#if GQ_ALLOC_COUNTS_RELIABLE
    EXPECT_EQ(allocs, 0u) << "threads=" << threads;
#else
    (void)allocs;
#endif
  }
}

// Steady-state tournament kernels: after a warmup call has grown the
// pooled rank lanes, the interner's sort/table buffers, and the pick lanes
// in Engine::scratch, a repeat two_tournament run's ONLY allocations are
// the analytic schedule vectors the control flow computes per call — the
// blocked-gather rounds (index lanes, prefetch passes, commits), the
// intern/verify/export passes, and the session bookkeeping all allocate
// nothing.  (The repeat run presents an equal state vector, so the session
// verify pass short-circuits the re-intern; a re-intern would also be
// allocation-free on warm buffers, which the session-miss repeat at the
// end pins by mutating one key first.)
TEST(EngineSteadyState, TournamentRoundsAllocateNothingAfterWarmup) {
  constexpr std::uint32_t kN = 4096;
  constexpr double kPhi = 0.4, kEps = 0.15;
  const auto keys =
      make_keys(generate_values(Distribution::kUniformReal, kN, 79));

  const auto schedule_allocs = [&] {
    const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
    const auto [side, start] = tournament_side(kPhi, kEps);
    (void)side;
    const TwoTournamentSchedule schedule =
        two_tournament_schedule(start, kEps);
    (void)schedule;
    return g_allocations.load(std::memory_order_relaxed) - before;
  }();

  for (unsigned threads : {1u, 2u, 8u}) {
    // intern_min_nodes 1 pins the interned-lane representation (index
    // lanes, sort buffer, table, session verify pass); the default (kN
    // below the threshold) pins the pooled Key-buffer representation.
    for (const std::uint32_t intern_min : {1u, 0u}) {
      Engine engine(kN, 23, FailureModel{},
                    EngineConfig{.threads = threads,
                                 .shard_size = 256,
                                 .intern_min_nodes = intern_min});

      std::vector<Key> state(keys.begin(), keys.end());
      (void)two_tournament(engine, state, kPhi, kEps);  // warmup

      std::vector<Key> state2(keys.begin(), keys.end());
      const std::uint64_t allocs_before =
          g_allocations.load(std::memory_order_relaxed);
      (void)two_tournament(engine, state2, kPhi, kEps);
      const std::uint64_t session_hit_allocs =
          g_allocations.load(std::memory_order_relaxed) - allocs_before;

      // Session miss: one mutated key forces a full re-intern (sort +
      // table rebuild), which must still run entirely on warm pooled
      // buffers.  (On the Key-buffer path this is just another run.)
      std::vector<Key> state3(keys.begin(), keys.end());
      state3[kN / 2] = keys[0];  // duplicate: shrinks the distinct table
      const std::uint64_t miss_before =
          g_allocations.load(std::memory_order_relaxed);
      (void)two_tournament(engine, state3, kPhi, kEps);
      const std::uint64_t session_miss_allocs =
          g_allocations.load(std::memory_order_relaxed) - miss_before;

#if GQ_ALLOC_COUNTS_RELIABLE
      EXPECT_EQ(session_hit_allocs, schedule_allocs)
          << "threads=" << threads << " intern_min=" << intern_min;
      EXPECT_EQ(session_miss_allocs, schedule_allocs)
          << "threads=" << threads << " intern_min=" << intern_min;
#else
      (void)session_hit_allocs;
      (void)session_miss_allocs;
      (void)schedule_allocs;
#endif
    }
  }
}

// Steady-state robust (failure-model) phases: after a warmup call has
// grown the pooled ping-pong state in Engine::scratch, a repeat
// robust_two_tournament run's ONLY allocations are the analytic schedule
// vectors the shared control flow computes per call — every gossip round
// (the fan-out pull blocks and the delta-coin commits) allocates nothing.
// The schedule cost is measured independently and subtracted, so the pin
// is exact rather than a loose ceiling.  robust_three_tournament drives
// the same collect kernel and differs per call only by its caller-visible
// result vectors; robust_coverage has neither schedules nor result
// allocations and must be exactly zero.
TEST(EngineSteadyState, RobustRoundsAllocateNothingAfterWarmup) {
  constexpr std::uint32_t kN = 4096;
  constexpr double kPhi = 0.3, kEps = 0.2;
  const auto keys =
      make_keys(generate_values(Distribution::kUniformReal, kN, 77));

  const auto schedule_allocs = [&] {
    const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
    const auto [side, start] = tournament_side(kPhi, kEps);
    (void)side;
    const TwoTournamentSchedule schedule =
        two_tournament_schedule(start, kEps);
    (void)schedule;
    return g_allocations.load(std::memory_order_relaxed) - before;
  }();

  for (unsigned threads : {1u, 2u, 8u}) {
    Engine engine(kN, 17, FailureModel::uniform(0.3),
                  EngineConfig{.threads = threads, .shard_size = 256});

    // Warmup: grows the pooled robust scratch, pool state, Metrics tables.
    std::vector<Key> state(keys.begin(), keys.end());
    std::vector<bool> good(kN, true);
    (void)robust_two_tournament(engine, state, good, kPhi, kEps);

    // Identically-shaped repeat run, fresh inputs constructed up front.
    std::vector<Key> state2(keys.begin(), keys.end());
    std::vector<bool> good2(kN, true);
    const std::uint64_t grows_before = engine.scatter_arena().grow_events();
    const std::uint64_t allocs_before =
        g_allocations.load(std::memory_order_relaxed);
    (void)robust_two_tournament(engine, state2, good2, kPhi, kEps);
    const std::uint64_t allocs =
        g_allocations.load(std::memory_order_relaxed) - allocs_before;

    // The robust kernels are pull-shaped and never touch the scatter arena
    // (see core/robust_pipeline.hpp); this runs under sanitizers too.
    EXPECT_EQ(engine.scatter_arena().grow_events(), grows_before)
        << "threads=" << threads;
#if GQ_ALLOC_COUNTS_RELIABLE
    EXPECT_EQ(allocs, schedule_allocs) << "threads=" << threads;
#else
    (void)allocs;
    (void)schedule_allocs;
#endif

    // Coverage: no schedule, no result vectors — exactly zero after warmup.
    std::vector<Key> outputs(kN, Key::infinite());
    std::vector<bool> valid(kN, false);
    const auto half_serve = [&] {
      for (std::uint32_t v = 0; v < kN; ++v) {
        outputs[v] = v % 2 == 0 ? Key{1.0, 1, 0} : Key::infinite();
        valid[v] = v % 2 == 0;
      }
    };
    half_serve();
    (void)robust_coverage(engine, outputs, valid, 8);
    half_serve();
    const std::uint64_t cov_before =
        g_allocations.load(std::memory_order_relaxed);
    (void)robust_coverage(engine, outputs, valid, 8);
    const std::uint64_t cov_allocs =
        g_allocations.load(std::memory_order_relaxed) - cov_before;
#if GQ_ALLOC_COUNTS_RELIABLE
    EXPECT_EQ(cov_allocs, 0u) << "threads=" << threads;
#else
    (void)cov_allocs;
#endif
  }
}

// The deterministic-pattern variant of the scatter order test: identical
// send volume per round means the arena must reach steady state after one
// round even at fine shard sizes (many mailboxes).
TEST(EngineSteadyState, ScatterArenaStopsGrowingOnFixedPattern) {
  constexpr std::uint32_t kN = 997;
  Engine engine(kN, 3, FailureModel{},
                EngineConfig{.threads = 2, .shard_size = 37});
  Scatter<std::uint64_t> scatter(engine);
  std::vector<std::uint64_t> got(kN);

  const auto one_round = [&] {
    scatter.begin_round();
    engine.parallel_shards(
        [&](std::uint32_t begin, std::uint32_t end, Metrics&) {
          for (std::uint32_t v = begin; v < end; ++v) {
            scatter.send(v, (v * 7 + 3) % kN, v);
            scatter.send(v, (v * 5 + 11) % kN, v);
          }
        });
    scatter.deliver(engine, [&](std::uint32_t dest, std::uint64_t payload) {
      got[dest] += payload;
    });
  };

  one_round();
  const std::uint64_t grows_warm = engine.scatter_arena().grow_events();
  EXPECT_GT(grows_warm, 0u);
  for (int r = 0; r < 20; ++r) one_round();
  EXPECT_EQ(engine.scatter_arena().grow_events(), grows_warm);
}

}  // namespace
}  // namespace gq
