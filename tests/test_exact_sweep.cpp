// Fine-grained exact-quantile sweeps: a dense phi grid and the full
// strategy matrix, complementing test_exact_quantile's coarse grid.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "analysis/rank_stats.hpp"
#include "core/exact_quantile.hpp"
#include "workload/distributions.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

class DensePhiGrid : public ::testing::TestWithParam<int> {};

TEST_P(DensePhiGrid, ExactAtEveryGridPoint) {
  const double phi = GetParam() / 20.0;
  constexpr std::uint32_t kN = 1024;
  const auto values = generate_values(Distribution::kUniformReal, kN, 777);
  const auto keys = make_keys(values);
  const RankScale scale(keys);

  Network net(kN, 4000 + GetParam());
  ExactQuantileParams params;
  params.phi = phi;
  const auto r = exact_quantile(net, values, params);
  const Key& truth = scale.exact_quantile(phi);
  EXPECT_EQ(r.answer.value, truth.value) << "phi=" << phi;
  EXPECT_EQ(r.answer.id, truth.id);
}

INSTANTIATE_TEST_SUITE_P(Grid, DensePhiGrid, ::testing::Range(0, 21),
                         [](const auto& info) {
                           return "phi" + std::to_string(info.param * 5);
                         });

class StrategyMatrix
    : public ::testing::TestWithParam<std::tuple<ExactStrategy, double>> {};

TEST_P(StrategyMatrix, AllStrategiesAllTargets) {
  const auto [strategy, phi] = GetParam();
  constexpr std::uint32_t kN = 1 << 13;
  const auto values = generate_values(Distribution::kBimodal, kN, 888);
  const auto keys = make_keys(values);
  const RankScale scale(keys);

  Network net(kN, 5000 + static_cast<std::uint64_t>(phi * 100));
  ExactQuantileParams params;
  params.phi = phi;
  params.strategy = strategy;
  const auto r = exact_quantile(net, values, params);
  EXPECT_EQ(r.answer.value, scale.exact_quantile(phi).value);
  EXPECT_EQ(r.outputs.size(), kN);
  EXPECT_EQ(r.rounds, net.metrics().rounds);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, StrategyMatrix,
    ::testing::Combine(::testing::Values(ExactStrategy::kAuto,
                                         ExactStrategy::kPreferDuplication,
                                         ExactStrategy::kPreferEndgame),
                       ::testing::Values(0.05, 0.25, 0.5, 0.95)),
    [](const auto& info) {
      const char* s = std::get<0>(info.param) == ExactStrategy::kAuto
                          ? "auto"
                          : (std::get<0>(info.param) ==
                                     ExactStrategy::kPreferDuplication
                                 ? "dup"
                                 : "endgame");
      return std::string(s) + "_phi" +
             std::to_string(
                 static_cast<int>(std::get<1>(info.param) * 100));
    });

class SizeSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SizeSweep, RoundsStayWithinLogLinearEnvelope) {
  const std::uint32_t n = GetParam();
  const auto values = generate_values(Distribution::kUniformReal, n, 999);
  const auto keys = make_keys(values);
  const RankScale scale(keys);

  Network net(n, 6000 + n);
  ExactQuantileParams params;
  params.phi = 0.5;
  const auto r = exact_quantile(net, values, params);
  EXPECT_EQ(r.answer.value, scale.exact_quantile(0.5).value);
  // Generous O(log n) envelope: c * log2(n) with c = 200 covers all
  // strategies at these sizes while rejecting anything super-logarithmic.
  EXPECT_LE(static_cast<double>(r.rounds),
            200.0 * std::log2(static_cast<double>(n)))
      << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, SizeSweep,
                         ::testing::Values(128u, 512u, 2048u, 8192u, 32768u),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace gq
