#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "util/histogram.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace gq {
namespace {

TEST(Rng, SplitMix64IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, SplitMix64DiffersAcrossSeeds) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b()) ? 1 : 0;
  EXPECT_EQ(equal, 0);
}

TEST(Rng, XoshiroIsDeterministic) {
  Xoshiro256StarStar a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, RandIndexStaysInBounds) {
  Rng rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 500; ++i) {
      EXPECT_LT(rand_index(rng, bound), bound);
    }
  }
}

TEST(Rng, RandIndexIsRoughlyUniform) {
  Rng rng(11);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rand_index(rng, kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (auto c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expected, 5.0 * std::sqrt(expected));
  }
}

TEST(Rng, RandDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double x = rand_double(rng);
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rand_bernoulli(rng, 0.0));
    EXPECT_TRUE(rand_bernoulli(rng, 1.0));
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(13);
  constexpr int kDraws = 200000;
  int hits = 0;
  for (int i = 0; i < kDraws; ++i) hits += rand_bernoulli(rng, 0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Rng, DerivedSeedsAreDistinct) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t id = 0; id < 10000; ++id) {
    seen.insert(derive_seed(123456789, id));
  }
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, left, right;
  Rng rng(21);
  for (int i = 0; i < 1000; ++i) {
    const double x = rand_double(rng) * 10.0;
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(SampleQuantile, NearestRankConvention) {
  const std::vector<double> xs = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(sample_quantile(xs, 0.0), 10.0);   // clamped to rank 1
  EXPECT_DOUBLE_EQ(sample_quantile(xs, 0.2), 10.0);   // ceil(1) = 1
  EXPECT_DOUBLE_EQ(sample_quantile(xs, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(sample_quantile(xs, 0.61), 40.0);  // ceil(3.05) = 4
  EXPECT_DOUBLE_EQ(sample_quantile(xs, 1.0), 50.0);
}

TEST(SampleQuantile, RejectsBadInput) {
  const std::vector<double> xs = {1.0};
  EXPECT_THROW((void)sample_quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)sample_quantile(xs, -0.1), std::invalid_argument);
  EXPECT_THROW((void)sample_quantile(xs, 1.1), std::invalid_argument);
}

TEST(RankOf, CountsTies) {
  const std::vector<double> xs = {1, 2, 2, 3};
  EXPECT_EQ(rank_of(xs, 0.5), 0u);
  EXPECT_EQ(rank_of(xs, 2.0), 3u);
  EXPECT_EQ(rank_of(xs, 5.0), 4u);
}

TEST(MedianAbsDeviation, RobustSpread) {
  const std::vector<double> xs = {1, 1, 2, 2, 4, 6, 9};
  EXPECT_DOUBLE_EQ(median_abs_deviation(xs), 1.0);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(static_cast<double>(i) + 0.5);
  h.add(-1.0);
  h.add(42.0);
  EXPECT_EQ(h.total(), 12u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(h.bucket(i), 1u);
}

TEST(Histogram, CdfInterpolates) {
  Histogram h(0.0, 1.0, 2);
  for (int i = 0; i < 100; ++i) h.add(0.25);  // all in first bucket
  EXPECT_NEAR(h.cdf(0.5), 1.0, 1e-9);
  EXPECT_NEAR(h.cdf(1.0), 1.0, 1e-9);
  EXPECT_GT(h.cdf(0.3), 0.5);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Require, ThrowsWithContext) {
  try {
    GQ_REQUIRE(false, "custom context");
    FAIL() << "GQ_REQUIRE did not throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("custom context"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace gq
