#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "util/histogram.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace gq {
namespace {

TEST(Rng, SplitMix64IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, SplitMix64DiffersAcrossSeeds) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b()) ? 1 : 0;
  EXPECT_EQ(equal, 0);
}

TEST(Rng, XoshiroIsDeterministic) {
  Xoshiro256StarStar a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, RandIndexStaysInBounds) {
  Rng rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 500; ++i) {
      EXPECT_LT(rand_index(rng, bound), bound);
    }
  }
}

TEST(Rng, RandIndexIsRoughlyUniform) {
  Rng rng(11);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rand_index(rng, kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (auto c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expected, 5.0 * std::sqrt(expected));
  }
}

TEST(Rng, RandDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double x = rand_double(rng);
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rand_bernoulli(rng, 0.0));
    EXPECT_TRUE(rand_bernoulli(rng, 1.0));
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(13);
  constexpr int kDraws = 200000;
  int hits = 0;
  for (int i = 0; i < kDraws; ++i) hits += rand_bernoulli(rng, 0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Rng, DerivedSeedsAreDistinct) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t id = 0; id < 10000; ++id) {
    seen.insert(derive_seed(123456789, id));
  }
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, left, right;
  Rng rng(21);
  for (int i = 0; i < 1000; ++i) {
    const double x = rand_double(rng) * 10.0;
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(SampleQuantile, NearestRankConvention) {
  const std::vector<double> xs = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(sample_quantile(xs, 0.0), 10.0);   // clamped to rank 1
  EXPECT_DOUBLE_EQ(sample_quantile(xs, 0.2), 10.0);   // ceil(1) = 1
  EXPECT_DOUBLE_EQ(sample_quantile(xs, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(sample_quantile(xs, 0.61), 40.0);  // ceil(3.05) = 4
  EXPECT_DOUBLE_EQ(sample_quantile(xs, 1.0), 50.0);
}

TEST(SampleQuantile, RejectsBadInput) {
  const std::vector<double> xs = {1.0};
  EXPECT_THROW((void)sample_quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)sample_quantile(xs, -0.1), std::invalid_argument);
  EXPECT_THROW((void)sample_quantile(xs, 1.1), std::invalid_argument);
}

TEST(RankOf, CountsTies) {
  const std::vector<double> xs = {1, 2, 2, 3};
  EXPECT_EQ(rank_of(xs, 0.5), 0u);
  EXPECT_EQ(rank_of(xs, 2.0), 3u);
  EXPECT_EQ(rank_of(xs, 5.0), 4u);
}

TEST(MedianAbsDeviation, RobustSpread) {
  const std::vector<double> xs = {1, 1, 2, 2, 4, 6, 9};
  EXPECT_DOUBLE_EQ(median_abs_deviation(xs), 1.0);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(static_cast<double>(i) + 0.5);
  h.add(-1.0);
  h.add(42.0);
  EXPECT_EQ(h.total(), 12u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(h.bucket(i), 1u);
}

TEST(Histogram, CdfInterpolates) {
  Histogram h(0.0, 1.0, 2);
  for (int i = 0; i < 100; ++i) h.add(0.25);  // all in first bucket
  EXPECT_NEAR(h.cdf(0.5), 1.0, 1e-9);
  EXPECT_NEAR(h.cdf(1.0), 1.0, 1e-9);
  EXPECT_GT(h.cdf(0.3), 0.5);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(LogHistogram, SmallValuesAreExact) {
  LogHistogram h;
  for (std::uint64_t v = 0; v < 8; ++v) h.add(v);
  EXPECT_EQ(h.total(), 8u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 7u);
  // Values below 2^sub_bits land in exact unit buckets, so low quantiles
  // are exact, not approximate.
  EXPECT_EQ(h.quantile(1.0 / 8.0), 0u);
  EXPECT_EQ(h.quantile(1.0), 7u);
}

TEST(LogHistogram, QuantileRelativeErrorIsBounded) {
  LogHistogram h;  // sub_bits = 3: cells are 1/8 of an octave, <= 12.5% error
  SplitMix64 rng(7);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t v = 1 + (rng() % (std::uint64_t{1} << 40));
    values.push_back(v);
    h.add(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const std::size_t rank = std::min(
        values.size() - 1,
        static_cast<std::size_t>(std::ceil(q * values.size())) - 1);
    const auto exact = static_cast<double>(values[rank]);
    const auto approx = static_cast<double>(h.quantile(q));
    // The histogram reports a bucket upper bound, so it can only
    // overestimate, and by at most one sub-bucket cell (12.5%).
    EXPECT_GE(approx, exact);
    EXPECT_LE(approx, exact * 1.125 + 1.0);
  }
}

TEST(LogHistogram, QuantileNeverExceedsMax) {
  LogHistogram h;
  h.add(1000);  // bucket upper bound is > 1000
  EXPECT_EQ(h.quantile(0.5), 1000u);
  EXPECT_EQ(h.quantile(1.0), 1000u);
}


TEST(LogHistogram, BoundaryQuantiles) {
  // Empty histogram: every quantile (and min/max) reads 0 — the service's
  // latency summaries lean on this for query kinds never exercised.
  LogHistogram empty;
  EXPECT_EQ(empty.total(), 0u);
  EXPECT_EQ(empty.quantile(0.0), 0u);
  EXPECT_EQ(empty.quantile(0.5), 0u);
  EXPECT_EQ(empty.quantile(1.0), 0u);
  EXPECT_EQ(empty.min(), 0u);
  EXPECT_EQ(empty.max(), 0u);

  // Populated: q = 0.0 pins to the exact minimum and q = 1.0 clamps to
  // the exact maximum, never a bucket upper bound beyond it.
  LogHistogram h;
  h.add(3);
  h.add(500);
  h.add(70000);
  EXPECT_EQ(h.quantile(0.0), 3u);
  EXPECT_EQ(h.quantile(1.0), 70000u);
  EXPECT_LE(h.quantile(0.5), h.quantile(1.0));
  EXPECT_GE(h.quantile(0.5), h.quantile(0.0));
}

TEST(LogHistogram, MergeMatchesCombinedStream) {
  LogHistogram a, b, both;
  SplitMix64 rng(11);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng() % 1000000;
    if (i % 2 == 0) {
      a.add(v);
    } else {
      b.add(v);
    }
    both.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.total(), both.total());
  EXPECT_EQ(a.min(), both.min());
  EXPECT_EQ(a.max(), both.max());
  EXPECT_DOUBLE_EQ(a.mean(), both.mean());
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.quantile(q), both.quantile(q));
  }
}

TEST(LogHistogram, MergeRejectsMismatchedResolution) {
  LogHistogram a(3), b(4);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(LogHistogram, ClearResets) {
  LogHistogram h;
  h.add(42);
  h.clear();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  h.add(7);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.quantile(0.5), 7u);
}

TEST(Require, ThrowsWithContext) {
  try {
    GQ_REQUIRE(false, "custom context");
    FAIL() << "GQ_REQUIRE did not throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("custom context"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace gq
