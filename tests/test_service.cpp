// The streaming quantile service layer (src/service/): epoch/session
// semantics, and the load-bearing guarantee that a *warm* session query is
// bit-identical to a *cold* one-shot engine run on the same snapshot — at
// 1, 2, and 8 threads, across churn, and for every query kind.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "engine/engine.hpp"
#include "engine/pipelines.hpp"
#include "service/quantile_service.hpp"
#include "sim/failure_model.hpp"
#include "sim/key_intern.hpp"
#include "workload/distributions.hpp"

namespace gq {
namespace {

constexpr unsigned kThreadCounts[] = {1, 2, 8};

ServiceConfig service_config(unsigned threads) {
  ServiceConfig cfg;
  cfg.seed = 2024;
  cfg.sketch_k = 64;
  cfg.engine.threads = threads;
  cfg.engine.shard_size = 96;  // several shards even at small test n
  return cfg;
}

// Deterministic per-node streams: node v's stream is a fixed slice of one
// generated value array.  Stream lengths stay below sketch_k so summaries
// are exact and independent of their compaction seeds — which is what lets
// churn tests compare against cold-started services (see node_stream.hpp).
void ingest_fixture(QuantileService& service, std::uint32_t nodes,
                    std::size_t per_node, std::uint64_t seed) {
  const auto values =
      generate_values(Distribution::kUniformReal, nodes * per_node, seed);
  for (std::uint32_t v = 0; v < nodes; ++v) {
    for (std::size_t i = 0; i < per_node; ++i) {
      service.ingest(v, values[v * per_node + i]);
    }
  }
}

// The cold comparator: a fresh engine + one-shot pipeline run over the
// service's sealed instance, with the reply's stream seed.  Everything a
// warm reply reports must match this bit for bit.
QueryReply cold_quantile_reply(const QuantileService& service,
                               const QueryReply& warm,
                               const QueryRequest& request) {
  const ServiceConfig& cfg = service.config();
  Engine engine(static_cast<std::uint32_t>(service.epoch_keys().size()),
                warm.seed, cfg.failures, cfg.engine);
  ApproxQuantileParams params = cfg.approx;
  params.phi = request.phi;
  if (request.eps > 0.0) params.eps = request.eps;
  const ApproxQuantileResult res =
      approx_quantile_keys(engine, service.epoch_keys(), params);
  QueryReply reply;
  for (std::size_t v = 0; v < res.valid.size(); ++v) {
    if (res.valid[v]) {
      reply.answer = res.outputs[v];
      break;
    }
  }
  reply.value = reply.answer.value;
  reply.rounds = res.rounds;
  reply.served = static_cast<std::uint32_t>(res.served_nodes());
  reply.used_exact_fallback = res.used_exact_fallback;
  reply.transcript_hash = transcript_hash(res.outputs, res.valid);
  return reply;
}


// Cold comparator for the batched multi-quantile query: one fresh-engine
// shared-schedule run over the sealed instance, fingerprinted exactly the
// way the service does (per-target transcript hashes, FNV-chained).
QueryReply cold_multi_quantile_reply(const QuantileService& service,
                                     const QueryReply& warm,
                                     const QueryRequest& request) {
  const ServiceConfig& cfg = service.config();
  Engine engine(static_cast<std::uint32_t>(service.epoch_keys().size()),
                warm.seed, cfg.failures, cfg.engine);
  MultiQuantileParams params;
  params.phis = request.phis;
  params.eps = request.eps > 0.0 ? request.eps : cfg.approx.eps;
  params.final_sample_size = cfg.approx.final_sample_size;
  params.robust_coverage_rounds = cfg.approx.robust_coverage_rounds;
  const MultiQuantileResult res =
      multi_quantile_keys(engine, service.epoch_keys(), params);
  QueryReply reply;
  reply.kind = QueryKind::kMultiQuantile;
  std::vector<std::uint64_t> hashes;
  auto served_min = static_cast<std::uint32_t>(service.epoch_keys().size());
  for (const ApproxQuantileResult& r : res.per_phi) {
    Key answer{};
    for (std::size_t v = 0; v < r.valid.size(); ++v) {
      if (r.valid[v]) {
        answer = r.outputs[v];
        break;
      }
    }
    reply.multi_answers.push_back(answer);
    reply.multi_values.push_back(answer.value);
    hashes.push_back(transcript_hash(r.outputs, r.valid));
    served_min =
        std::min(served_min, static_cast<std::uint32_t>(r.served_nodes()));
    reply.used_exact_fallback |= r.used_exact_fallback;
  }
  reply.rounds = res.rounds;
  reply.served = served_min;
  reply.transcript_hash =
      transcript_hash_counts({hashes.data(), hashes.size()});
  return reply;
}

void expect_same_answer(const QueryReply& a, const QueryReply& b) {
  EXPECT_EQ(a.answer, b.answer);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.cdf_counts, b.cdf_counts);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.served, b.served);
  EXPECT_EQ(a.used_exact_fallback, b.used_exact_fallback);
  EXPECT_EQ(a.transcript_hash, b.transcript_hash);
}

TEST(Service, WarmQueriesBitIdenticalToColdRunsAtEveryThreadCount) {
  constexpr std::uint32_t kNodes = 700;
  QueryRequest request;
  request.kind = QueryKind::kQuantile;
  request.phi = 0.5;
  request.eps = 0.2;

  std::vector<QueryReply> reference;
  for (unsigned threads : kThreadCounts) {
    QuantileService service(kNodes, service_config(threads));
    ingest_fixture(service, kNodes, 24, 7);
    std::vector<QueryReply> replies;
    for (int q = 0; q < 3; ++q) replies.push_back(service.query(request));

    // Back-to-back warm queries rotate their stream seed, so each must
    // reproduce its own cold one-shot run exactly.
    for (const QueryReply& warm : replies) {
      const QueryReply cold = cold_quantile_reply(service, warm, request);
      expect_same_answer(warm, cold);
    }
    EXPECT_NE(replies[0].seed, replies[1].seed);
    EXPECT_EQ(replies[0].epoch, replies[2].epoch);

    // And the whole reply stream is thread-count invariant.
    if (reference.empty()) {
      reference = replies;
    } else {
      for (std::size_t i = 0; i < replies.size(); ++i) {
        expect_same_answer(replies[i], reference[i]);
        EXPECT_EQ(replies[i].seed, reference[i].seed);
        EXPECT_EQ(replies[i].epoch, reference[i].epoch);
      }
    }
  }
}


TEST(Service, MultiQuantileWarmMatchesColdSharedRunAtEveryThreadCount) {
  // The batched query kind: one warm kMultiQuantile reply must be
  // transcript-identical to a cold fresh-engine shared-schedule run over
  // the sealed instance — per target and as a whole — at every thread
  // count.  kNodes must keep request.eps above eps_tournament_floor or
  // the batch would route through the exact fallback instead.
  constexpr std::uint32_t kNodes = 1100;
  QueryRequest request;
  request.kind = QueryKind::kMultiQuantile;
  request.phis = {0.5, 0.9, 0.99, 0.9};  // one duplicated target
  request.eps = 0.2;

  std::vector<QueryReply> reference;
  for (unsigned threads : kThreadCounts) {
    QuantileService service(kNodes, service_config(threads));
    ingest_fixture(service, kNodes, 24, 7);
    const QueryReply warm = service.query(request);
    ASSERT_EQ(warm.multi_answers.size(), request.phis.size());
    EXPECT_EQ(warm.multi_answers[3], warm.multi_answers[1]);  // shared lane
    EXPECT_FALSE(warm.used_exact_fallback);

    const QueryReply cold = cold_multi_quantile_reply(service, warm, request);
    EXPECT_EQ(warm.multi_answers, cold.multi_answers);
    EXPECT_EQ(warm.multi_values, cold.multi_values);
    EXPECT_EQ(warm.rounds, cold.rounds);
    EXPECT_EQ(warm.served, cold.served);
    EXPECT_EQ(warm.used_exact_fallback, cold.used_exact_fallback);
    EXPECT_EQ(warm.transcript_hash, cold.transcript_hash);

    if (reference.empty()) {
      reference.push_back(warm);
    } else {
      EXPECT_EQ(warm.seed, reference[0].seed);
      EXPECT_EQ(warm.multi_answers, reference[0].multi_answers);
      EXPECT_EQ(warm.rounds, reference[0].rounds);
      EXPECT_EQ(warm.transcript_hash, reference[0].transcript_hash);
    }
  }
}

TEST(Service, ExactQuantileQueryMatchesCentralTruthAndColdRun) {
  constexpr std::uint32_t kNodes = 600;
  QuantileService service(kNodes, service_config(2));
  ingest_fixture(service, kNodes, 16, 11);

  QueryRequest request;
  request.kind = QueryKind::kExactQuantile;
  request.phi = 0.3;
  const QueryReply warm = service.query(request);

  // Central truth: the exact phi-quantile of the sealed instance.
  std::vector<Key> sorted(service.epoch_keys().begin(),
                          service.epoch_keys().end());
  std::sort(sorted.begin(), sorted.end());
  const auto target = static_cast<std::size_t>(
      std::ceil(request.phi * static_cast<double>(sorted.size())));
  EXPECT_EQ(warm.answer, sorted[target - 1]);

  // Cold comparator.
  const ServiceConfig& cfg = service.config();
  Engine engine(static_cast<std::uint32_t>(service.epoch_keys().size()),
                warm.seed, cfg.failures, cfg.engine);
  ExactQuantileParams params = cfg.exact;
  params.phi = request.phi;
  const ExactQuantileResult res =
      exact_quantile_keys(engine, service.epoch_keys(), params);
  EXPECT_EQ(warm.answer, res.answer);
  EXPECT_EQ(warm.rounds, res.rounds);
  EXPECT_EQ(warm.transcript_hash, transcript_hash(res.outputs, res.valid));
}

TEST(Service, RankAndCdfCountExactlyAndBatchThreePerDiffusion) {
  constexpr std::uint32_t kNodes = 500;
  ServiceConfig cfg = service_config(8);
  cfg.sketch_k = 256;  // tight resample: rank error a few / 256
  cfg.instance_policy = InstancePolicy::kGlobalResample;
  QuantileService service(kNodes, cfg);
  ingest_fixture(service, kNodes, 20, 13);

  QueryRequest rank;
  rank.kind = QueryKind::kRank;
  rank.value = 0.35;
  rank.seed = 99;  // pinned: the cdf comparison below reuses it
  const QueryReply r = service.query(rank);

  // Exact gossip counting agrees with the central count over the instance.
  std::uint64_t truth = 0;
  for (const Key& k : service.epoch_keys()) truth += k.value <= 0.35 ? 1 : 0;
  EXPECT_EQ(r.count, truth);
  EXPECT_DOUBLE_EQ(r.fraction,
                   static_cast<double>(truth) / service.epoch_keys().size());

  // A 5-point CDF batches 3 + 2 probes into two diffusions; every count
  // must equal the matching single-rank query's.
  QueryRequest cdf;
  cdf.kind = QueryKind::kCdf;
  cdf.cdf_points = {0.1, 0.35, 0.5, 0.75, 0.9};
  cdf.seed = 99;
  const QueryReply c = service.query(cdf);
  ASSERT_EQ(c.cdf_counts.size(), cdf.cdf_points.size());
  EXPECT_EQ(c.cdf_counts[1], truth);
  EXPECT_TRUE(std::is_sorted(c.cdf_counts.begin(), c.cdf_counts.end()));
  for (std::size_t i = 0; i < cdf.cdf_points.size(); ++i) {
    std::uint64_t t = 0;
    for (const Key& k : service.epoch_keys()) {
      t += k.value <= cdf.cdf_points[i] ? 1 : 0;
    }
    EXPECT_EQ(c.cdf_counts[i], t) << "probe " << cdf.cdf_points[i];
  }

  // Under kGlobalResample the instance is the m-point resample of the
  // union stream, so the reported fractions track the true union CDF.
  const auto values = generate_values(Distribution::kUniformReal,
                                      kNodes * 20, 13);
  for (std::size_t i = 0; i < cdf.cdf_points.size(); ++i) {
    double union_cdf = 0;
    for (const double v : values) union_cdf += v <= cdf.cdf_points[i] ? 1 : 0;
    union_cdf /= static_cast<double>(values.size());
    EXPECT_NEAR(c.cdf[i], union_cdf, 0.05) << "probe " << cdf.cdf_points[i];
  }
}

TEST(Service, ChurnMatchesColdStartOnTheNewMembership) {
  constexpr std::uint32_t kNodes = 520;
  constexpr std::size_t kPerNode = 18;
  const auto values = generate_values(Distribution::kGaussian,
                                      (kNodes + 1) * kPerNode, 17);
  const auto stream = [&](std::uint32_t slot) {
    return std::span<const double>(values).subspan(slot * kPerNode, kPerNode);
  };

  QueryRequest request;
  request.kind = QueryKind::kQuantile;
  request.phi = 0.9;
  request.eps = 0.2;
  request.seed = 777;  // pinned: replies must not depend on query history

  // Warm service: full membership, a query, then churn — node 3 leaves and
  // a fresh node joins with its own stream.
  QuantileService warm(kNodes, service_config(2));
  for (std::uint32_t v = 0; v < kNodes; ++v) warm.ingest(v, stream(v));
  const QueryReply before = warm.query(request);
  warm.leave(3);
  const std::uint32_t joined = warm.join();
  EXPECT_EQ(joined, kNodes);  // ids are stable handles, never reused
  warm.ingest(joined, stream(kNodes));
  const QueryReply after = warm.query(request);
  EXPECT_EQ(after.epoch, 2u);
  EXPECT_EQ(after.nodes, kNodes);  // one left, one joined

  // Cold service: built directly on the post-churn membership — node ids
  // 0..kNodes with node 3 never contributing — fed the same streams.  Its
  // first-ever reply must equal the churned warm service's in everything
  // but the epoch stamp.
  QuantileService cold(kNodes + 1, service_config(2));
  cold.leave(3);
  for (std::uint32_t v = 0; v <= kNodes; ++v) {
    if (v == 3) continue;
    cold.ingest(v, stream(v));
  }
  const QueryReply fresh = cold.query(request);
  EXPECT_EQ(fresh.epoch, 1u);
  EXPECT_EQ(fresh.seed, after.seed);  // both pinned
  expect_same_answer(after, fresh);
  // ...and churn really changed the answer transcript vs the old epoch.
  EXPECT_NE(before.transcript_hash, after.transcript_hash);
}

TEST(Service, EpochBarrierExtendsSessionInsteadOfRebuilding) {
  constexpr std::uint32_t kNodes = 400;
  QuantileService service(kNodes, service_config(1));
  ingest_fixture(service, kNodes, 12, 23);

  QueryRequest request;
  request.kind = QueryKind::kQuantile;
  request.phi = 0.5;
  request.eps = 0.2;

  (void)service.query(request);
  (void)service.query(request);
  ServiceStats s = service.stats();
  EXPECT_EQ(s.epoch, 1u);
  EXPECT_EQ(s.session_rebuilds, 1u);  // one cold intern, then reuse
  EXPECT_EQ(s.session_extends, 0u);

  // New ingest moves one node's representative: the next query seals a new
  // epoch and the session *extends* (merges the new key) instead of
  // re-sorting.
  service.ingest(7, 123.456);
  const QueryReply r = service.query(request);
  s = service.stats();
  EXPECT_EQ(r.epoch, 2u);
  EXPECT_EQ(s.epoch, 2u);
  EXPECT_EQ(s.session_rebuilds, 1u);
  EXPECT_EQ(s.session_extends + s.session_reuse_hits, 1u);
  EXPECT_EQ(s.engine_rebuilds, 1u);  // membership never changed
}

TEST(Service, PerNodeStateStaysBounded) {
  ServiceConfig cfg = service_config(1);
  cfg.sketch_k = 64;
  QuantileService service(4, cfg);
  const auto values =
      generate_values(Distribution::kExponential, 50000, 31);
  for (std::size_t i = 0; i < values.size(); ++i) {
    service.ingest(static_cast<std::uint32_t>(i % 4), values[i]);
  }
  const ServiceStats s = service.stats();
  EXPECT_EQ(s.ingested, 50000u);
  // Same O(k)-across-levels bound the KLL unit tests pin.
  EXPECT_LE(s.max_node_items, 64u * 5);
}

TEST(Service, BatchedQueriesShareOneEpochAndMatchSingles) {
  constexpr std::uint32_t kNodes = 450;
  QuantileService service(kNodes, service_config(2));
  ingest_fixture(service, kNodes, 14, 37);

  std::vector<QueryRequest> batch(3);
  batch[0].kind = QueryKind::kQuantile;
  batch[0].phi = 0.25;
  batch[0].eps = 0.2;
  batch[0].seed = 41;
  batch[1].kind = QueryKind::kRank;
  batch[1].value = 0.6;
  batch[1].seed = 42;
  batch[2].kind = QueryKind::kCdf;
  batch[2].cdf_points = {0.2, 0.8};
  batch[2].seed = 43;

  const auto replies = service.query_batch(batch);
  ASSERT_EQ(replies.size(), 3u);
  for (const QueryReply& r : replies) EXPECT_EQ(r.epoch, 1u);

  // Each batched reply equals the same pinned-seed request served alone.
  QuantileService solo(kNodes, service_config(2));
  ingest_fixture(solo, kNodes, 14, 37);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    expect_same_answer(replies[i], solo.query(batch[i]));
  }
}

TEST(Service, FailureModelQueriesStayWarmColdIdentical) {
  constexpr std::uint32_t kNodes = 400;
  ServiceConfig cfg = service_config(8);
  cfg.failures = FailureModel::uniform(0.2);
  QuantileService service(kNodes, cfg);
  ingest_fixture(service, kNodes, 10, 43);

  QueryRequest request;
  request.kind = QueryKind::kQuantile;
  request.phi = 0.5;
  request.eps = 0.25;
  (void)service.query(request);          // warm the session
  const QueryReply warm = service.query(request);
  EXPECT_LE(warm.served, warm.nodes);
  EXPECT_GE(warm.served, warm.nodes * 3 / 4);  // robust coverage serves most
  expect_same_answer(warm, cold_quantile_reply(service, warm, request));
}

// ---- interner session: incremental extend == full re-intern ---------------

TEST(KeyInterner, ExtendMatchesFullIntern) {
  const auto base_values =
      generate_values(Distribution::kUniformReal, 500, 51);
  const auto new_values = generate_values(Distribution::kGaussian, 300, 53);
  std::vector<Key> keys;
  for (std::size_t i = 0; i < base_values.size(); ++i) {
    keys.push_back(Key{base_values[i], static_cast<std::uint32_t>(i % 100), 0});
  }

  KeyInterner warm;
  std::vector<std::uint32_t> warm_ranks(keys.size());
  warm.intern(keys, warm_ranks);

  // Epoch advance: some new keys appear (with value duplicates against the
  // existing table mixed in), some existing keys repeat.
  std::vector<Key> added;
  for (std::size_t i = 0; i < new_values.size(); ++i) {
    added.push_back(Key{new_values[i], static_cast<std::uint32_t>(i % 50), 1});
  }
  added.push_back(added.front());  // duplicate inside `added`
  added.push_back(keys.front());   // already in the table
  std::vector<Key> all(keys);
  all.insert(all.end(), added.begin(), added.end());

  warm_ranks.resize(all.size());
  warm.extend(added, all, warm_ranks);

  KeyInterner cold;
  std::vector<std::uint32_t> cold_ranks(all.size());
  cold.intern(all, cold_ranks);

  ASSERT_EQ(warm.table().size(), cold.table().size());
  for (std::size_t i = 0; i < warm.table().size(); ++i) {
    EXPECT_EQ(warm.table()[i], cold.table()[i]);
  }
  for (std::size_t v = 0; v < all.size(); ++v) {
    EXPECT_EQ(warm_ranks[v], cold_ranks[v]) << "node " << v;
  }

  // rank_of / count_le agree with the table.
  for (const Key& k : all) {
    EXPECT_EQ(warm.table()[warm.rank_of(k)], k);
    EXPECT_EQ(warm.count_le(k), warm.rank_of(k) + 1);
  }
}

}  // namespace
}  // namespace gq
