#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "analysis/theory_bounds.hpp"
#include "core/lower_bound.hpp"
#include "workload/scenario.hpp"

namespace gq {
namespace {

TEST(InformationSpread, EventuallyInformsEveryone) {
  constexpr std::uint32_t kN = 4096;
  const auto pair = make_adversarial_pair(kN, 0.05, 3);
  Network net(kN, 7);
  const auto r = simulate_information_spread(net, pair.informative);
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.rounds_to_all, 0u);
  EXPECT_EQ(r.informed_counts.back(), kN);
}

TEST(InformationSpread, CountsAreMonotone) {
  constexpr std::uint32_t kN = 1024;
  const auto pair = make_adversarial_pair(kN, 0.02, 5);
  Network net(kN, 9);
  const auto r = simulate_information_spread(net, pair.informative);
  for (std::size_t i = 1; i < r.informed_counts.size(); ++i) {
    EXPECT_GE(r.informed_counts[i], r.informed_counts[i - 1]);
  }
}

TEST(InformationSpread, GrowthIsAtMostFourfold) {
  // The Theorem 1.3 argument: |good_{i+1}| <= 4 |good_i| w.h.p. (each
  // informed node converts at most one node by push, and pulls add at most
  // |good|/n * n in expectation).
  constexpr std::uint32_t kN = 1 << 15;
  const auto pair = make_adversarial_pair(kN, 0.01, 11);
  Network net(kN, 13);
  const auto r = simulate_information_spread(net, pair.informative);
  std::uint64_t prev = 2 * pair.shift + 1;
  for (const std::uint64_t c : r.informed_counts) {
    EXPECT_LE(c, 4 * prev + 10);
    prev = c;
  }
}

TEST(InformationSpread, RespectsTheoremLowerBound) {
  // rounds-to-all must exceed log4(n / |S|), deterministically implied by
  // the fourfold growth cap; the theory bound log4(8/eps) is its eps-form.
  for (double eps : {0.01, 0.04}) {
    constexpr std::uint32_t kN = 1 << 15;
    const auto pair = make_adversarial_pair(kN, eps, 17);
    Network net(kN, 19);
    const auto r = simulate_information_spread(net, pair.informative);
    ASSERT_TRUE(r.completed);
    const double start =
        static_cast<double>(2 * pair.shift + 1);
    const double min_rounds =
        std::log(static_cast<double>(kN) / start) / std::log(4.0);
    EXPECT_GE(static_cast<double>(r.rounds_to_all), std::floor(min_rounds))
        << "eps=" << eps;
  }
}

TEST(InformationSpread, SmallerEpsTakesLonger) {
  constexpr std::uint32_t kN = 1 << 15;
  const auto wide = make_adversarial_pair(kN, 0.1, 23);
  const auto narrow = make_adversarial_pair(kN, 0.001, 23);
  Network net_w(kN, 29), net_n(kN, 29);
  const auto r_wide = simulate_information_spread(net_w, wide.informative);
  const auto r_narrow =
      simulate_information_spread(net_n, narrow.informative);
  EXPECT_LT(r_wide.rounds_to_all, r_narrow.rounds_to_all);
}

TEST(InformationSpread, RejectsEmptyInformedSet) {
  Network net(64, 1);
  EXPECT_THROW((void)simulate_information_spread(
                   net, std::vector<bool>(64, false)),
               std::invalid_argument);
}

TEST(InformationSpread, DoublyExponentialTail) {
  // Once half the nodes are informed, the uninformed fraction should
  // square (up to the e^-1 factor) each round: the loglog n part of the
  // bound.  Check the tail shrinks superlinearly.
  constexpr std::uint32_t kN = 1 << 16;
  const auto pair = make_adversarial_pair(kN, 0.05, 31);
  Network net(kN, 37);
  const auto r = simulate_information_spread(net, pair.informative);
  ASSERT_TRUE(r.completed);
  // Find the first round with >= half informed.
  std::size_t half_at = 0;
  while (half_at < r.informed_counts.size() &&
         r.informed_counts[half_at] < kN / 2) {
    ++half_at;
  }
  ASSERT_LT(half_at, r.informed_counts.size());
  const std::uint64_t tail_rounds =
      r.informed_counts.size() - half_at;  // rounds from half to all
  // For n = 2^16 the doubly-exponential phase takes ~lg lg n + O(1)
  // rounds; assert a generous cap far below any linear behaviour.
  EXPECT_LE(tail_rounds, 12u);
}

}  // namespace
}  // namespace gq
