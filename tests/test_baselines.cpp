#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "analysis/rank_stats.hpp"
#include "baselines/doubling.hpp"
#include "baselines/kdg03_quantile.hpp"
#include "baselines/sampling.hpp"
#include "workload/distributions.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

class Kdg03Sweep
    : public ::testing::TestWithParam<std::tuple<Distribution, double>> {};

TEST_P(Kdg03Sweep, SelectsExactQuantile) {
  const auto [dist, phi] = GetParam();
  constexpr std::uint32_t kN = 512;
  const auto values = generate_values(dist, kN, 61);
  const auto keys = make_keys(values);
  const RankScale scale(keys);

  Network net(kN, 67);
  Kdg03Params params;
  params.phi = phi;
  const auto r = kdg03_exact_quantile(net, values, params);
  EXPECT_EQ(r.answer, scale.exact_quantile(phi))
      << "dist=" << to_string(dist) << " phi=" << phi;
  for (const Key& k : r.outputs) EXPECT_EQ(k, r.answer);
  EXPECT_LE(r.phases, 60u);  // ~log n expected, assert generous cap
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Kdg03Sweep,
    ::testing::Combine(::testing::Values(Distribution::kUniformPermutation,
                                         Distribution::kDuplicateHeavy,
                                         Distribution::kGaussian),
                       ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0)),
    [](const auto& info) {
      return to_string(std::get<0>(info.param)) + "_phi" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

TEST(Kdg03, PhasesScaleLogarithmically) {
  for (std::uint32_t n : {256u, 1024u, 4096u}) {
    Network net(n, 71);
    const auto values =
        generate_values(Distribution::kUniformPermutation, n, 73);
    Kdg03Params params;
    params.phi = 0.5;
    const auto r = kdg03_exact_quantile(net, values, params);
    EXPECT_LE(static_cast<double>(r.phases),
              4.0 * std::log2(static_cast<double>(n)))
        << "n=" << n;
  }
}

TEST(Sampling, OutputsWithinEps) {
  constexpr std::uint32_t kN = 1024;
  const double eps = 0.1;
  const auto values = generate_values(Distribution::kUniformReal, kN, 3);
  const auto keys = make_keys(values);
  const RankScale scale(keys);

  Network net(kN, 5);
  SamplingParams params;
  params.phi = 0.25;
  params.eps = eps;
  const auto r = sampling_quantile(net, values, params);
  EXPECT_EQ(r.rounds, r.sample_size);
  const auto summary = evaluate_outputs(scale, r.outputs, 0.25, eps);
  EXPECT_GE(summary.frac_within_eps, 0.99);
}

TEST(Sampling, RoundsGrowQuadraticallyInInverseEps) {
  constexpr std::uint32_t kN = 256;
  Network a(kN, 7), b(kN, 7);
  const auto values =
      generate_values(Distribution::kUniformPermutation, kN, 9);
  SamplingParams coarse;
  coarse.eps = 0.2;
  SamplingParams fine;
  fine.eps = 0.1;
  const auto rc = sampling_quantile(a, values, coarse);
  const auto rf = sampling_quantile(b, values, fine);
  EXPECT_NEAR(static_cast<double>(rf.rounds) / rc.rounds, 4.0, 0.2);
}

TEST(Doubling, OutputsWithinTwoEps) {
  constexpr std::uint32_t kN = 512;
  const double eps = 0.15;
  const auto values = generate_values(Distribution::kGaussian, kN, 11);
  const auto keys = make_keys(values);
  const RankScale scale(keys);

  Network net(kN, 13);
  DoublingParams params;
  params.phi = 0.5;
  params.eps = eps;
  const auto r = doubling_quantile(net, values, params);
  // Lemma A.2 carries a correlation penalty; grant 2*eps.
  const auto summary = evaluate_outputs(scale, r.outputs, 0.5, 2 * eps);
  EXPECT_GE(summary.frac_within_eps, 0.98);
}

TEST(Doubling, RoundsAreDoublyLogarithmic) {
  constexpr std::uint32_t kN = 512;
  Network net(kN, 17);
  const auto values =
      generate_values(Distribution::kUniformPermutation, kN, 19);
  DoublingParams params;
  params.eps = 0.15;
  const auto r = doubling_quantile(net, values, params);
  // log2(sample target) + 1 rounds.
  const double target = 3.0 * std::log(512.0) / (0.15 * 0.15);
  EXPECT_LE(static_cast<double>(r.rounds), std::log2(target) + 3.0);
  EXPECT_GE(r.final_buffer_size, static_cast<std::size_t>(target));
  // Message sizes blow up to Theta(|S| log n) bits: that is the point.
  EXPECT_GE(r.max_message_bits, r.final_buffer_size / 2 * key_bits(kN));
}

TEST(Compaction, OutputsWithinTwoEpsWithSmallMessages) {
  constexpr std::uint32_t kN = 512;
  const double eps = 0.15;
  const auto values = generate_values(Distribution::kExponential, kN, 23);
  const auto keys = make_keys(values);
  const RankScale scale(keys);

  Network net(kN, 29);
  CompactionParams params;
  params.phi = 0.5;
  params.eps = eps;
  const auto r = compaction_quantile(net, values, params);
  const auto summary = evaluate_outputs(scale, r.outputs, 0.5, 2 * eps);
  EXPECT_GE(summary.frac_within_eps, 0.95);

  // The buffer (and hence every message) stays at the compaction capacity
  // instead of the full sample size.
  Network net2(kN, 29);
  DoublingParams full;
  full.phi = 0.5;
  full.eps = eps;
  const auto rf = doubling_quantile(net2, values, full);
  EXPECT_LT(r.final_buffer_size, rf.final_buffer_size / 4);
  EXPECT_LT(r.max_message_bits, rf.max_message_bits / 2);
}

TEST(Compaction, MatchesDoublingRoundCount) {
  constexpr std::uint32_t kN = 256;
  const auto values =
      generate_values(Distribution::kUniformPermutation, kN, 31);
  Network a(kN, 37), b(kN, 37);
  DoublingParams dp;
  dp.eps = 0.2;
  CompactionParams cp;
  cp.eps = 0.2;
  const auto rd = doubling_quantile(a, values, dp);
  const auto rc = compaction_quantile(b, values, cp);
  EXPECT_EQ(rd.rounds, rc.rounds);  // same doubling schedule
}

TEST(Baselines, RejectFailureModelWhereUnsupported) {
  Network net(64, 1, FailureModel::uniform(0.2));
  const auto values =
      generate_values(Distribution::kUniformPermutation, 64, 1);
  DoublingParams dp;
  EXPECT_THROW((void)doubling_quantile(net, values, dp),
               std::invalid_argument);
  CompactionParams cp;
  EXPECT_THROW((void)compaction_quantile(net, values, cp),
               std::invalid_argument);
}

TEST(Baselines, SamplingToleratesFailures) {
  constexpr std::uint32_t kN = 512;
  Network net(kN, 41, FailureModel::uniform(0.3));
  const auto values = generate_values(Distribution::kUniformReal, kN, 43);
  const auto keys = make_keys(values);
  const RankScale scale(keys);
  SamplingParams params;
  params.phi = 0.5;
  params.eps = 0.15;
  const auto r = sampling_quantile(net, values, params);
  // Failed pulls shrink the sample by ~30%; accuracy degrades gracefully.
  const auto summary = evaluate_outputs(scale, r.outputs, 0.5, 0.3);
  EXPECT_GE(summary.frac_within_eps, 0.97);
}

}  // namespace
}  // namespace gq
