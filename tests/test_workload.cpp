#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "workload/distributions.hpp"
#include "workload/scenario.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

class DistributionTest : public ::testing::TestWithParam<Distribution> {};

TEST_P(DistributionTest, ProducesRequestedSize) {
  const auto xs = generate_values(GetParam(), 500, 42);
  EXPECT_EQ(xs.size(), 500u);
}

TEST_P(DistributionTest, IsDeterministicPerSeed) {
  const auto a = generate_values(GetParam(), 200, 7);
  const auto b = generate_values(GetParam(), 200, 7);
  EXPECT_EQ(a, b);
}

TEST_P(DistributionTest, AllValuesFinite) {
  const auto xs = generate_values(GetParam(), 300, 3);
  for (double x : xs) EXPECT_TRUE(std::isfinite(x));
}

TEST_P(DistributionTest, KeysRestoreDistinctness) {
  const auto xs = generate_values(GetParam(), 300, 11);
  const auto keys = make_keys(xs);
  std::set<Key> unique(keys.begin(), keys.end());
  EXPECT_EQ(unique.size(), keys.size());
  EXPECT_EQ(key_values(keys), xs);
}

INSTANTIATE_TEST_SUITE_P(AllDistributions, DistributionTest,
                         ::testing::ValuesIn(all_distributions()),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

TEST(Distributions, PermutationHitsEveryValueOnce) {
  const auto xs = generate_values(Distribution::kUniformPermutation, 256, 5);
  std::set<double> seen(xs.begin(), xs.end());
  EXPECT_EQ(seen.size(), 256u);
  EXPECT_EQ(*seen.begin(), 1.0);
  EXPECT_EQ(*seen.rbegin(), 256.0);
}

TEST(Distributions, ConstantIsAllEqual) {
  const auto xs = generate_values(Distribution::kConstant, 100, 1);
  for (double x : xs) EXPECT_EQ(x, xs.front());
}

TEST(Distributions, DuplicateHeavyHasTinyDomain) {
  const auto xs = generate_values(Distribution::kDuplicateHeavy, 1000, 1);
  std::set<double> domain(xs.begin(), xs.end());
  EXPECT_LE(domain.size(), 10u);
}

TEST(Distributions, DifferentSeedsDiffer) {
  const auto a = generate_values(Distribution::kUniformReal, 100, 1);
  const auto b = generate_values(Distribution::kUniformReal, 100, 2);
  EXPECT_NE(a, b);
}

TEST(AdversarialPair, ScenariosAreShiftedPermutations) {
  const auto pair = make_adversarial_pair(1000, 0.05, 9);
  EXPECT_EQ(pair.shift, 100u);  // floor(2 * 0.05 * 1000)
  std::vector<double> a = pair.scenario_a;
  std::vector<double> b = pair.scenario_b;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], static_cast<double>(i + 1));
    EXPECT_EQ(b[i], a[i] + 100.0);
  }
}

TEST(AdversarialPair, InformativeSetHasExpectedSize) {
  const auto pair = make_adversarial_pair(1000, 0.05, 9);
  const auto count = static_cast<std::size_t>(
      std::count(pair.informative.begin(), pair.informative.end(), true));
  // {1..b+1} plus {n-b+1..n} = 2b + 1 nodes.
  EXPECT_EQ(count, 2 * pair.shift + 1);
}

TEST(AdversarialPair, MediansDifferByAtLeastEpsN) {
  const double eps = 0.1;
  const auto pair = make_adversarial_pair(500, eps, 1);
  std::vector<double> a = pair.scenario_a, b = pair.scenario_b;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double median_gap = b[250] - a[250];
  EXPECT_GE(median_gap, eps * 500);
}

TEST(AdversarialPair, RejectsDegenerateEps) {
  EXPECT_THROW((void)make_adversarial_pair(100, 0.0001, 1),
               std::invalid_argument);
  EXPECT_THROW((void)make_adversarial_pair(100, 0.3, 1),
               std::invalid_argument);
}

TEST(SensorField, HotFractionControlsUpperTail) {
  const auto xs = make_sensor_field(5000, 0.2, 3);
  const auto hot = static_cast<double>(
      std::count_if(xs.begin(), xs.end(), [](double x) { return x > 50.0; }));
  EXPECT_NEAR(hot / 5000.0, 0.2, 0.03);
}

TEST(LatencyTrace, HasHeavyTail) {
  const auto xs = make_latency_trace(20000, 4);
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  const double p50 = sorted[10000];
  const double p999 = sorted[19980];
  EXPECT_GT(p50, 1.0);
  EXPECT_LT(p50, 100.0);
  EXPECT_GT(p999 / p50, 5.0);  // tail at least 5x the median
}

TEST(Tiebreak, RejectsEmptyInput) {
  EXPECT_THROW((void)make_keys({}), std::invalid_argument);
}

TEST(Tiebreak, IdsMatchNodeIndices) {
  const std::vector<double> xs = {5.0, 5.0, 1.0};
  const auto keys = make_keys(xs);
  for (std::uint32_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(keys[i].id, i);
    EXPECT_EQ(keys[i].tag, 0u);
  }
  EXPECT_LT(keys[0], keys[1]);  // equal values ordered by id
}

}  // namespace
}  // namespace gq
