// A2 — ablation of the final sample size K (Lemma 2.17): each node outputs
// the median of K sampled values.  Larger K suppresses the residual
// ~n^(-1/3) tails at a linear round cost.
#include <cstdio>

#include "analysis/rank_stats.hpp"
#include "bench_common.hpp"
#include "core/approx_quantile.hpp"
#include "util/stats.hpp"
#include "workload/distributions.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

void run() {
  bench::print_header(
      "A2", "ablation: final sample size K (Lemma 2.17)",
      "K = O(1) samples suffice; failure probability decays exponentially "
      "in K");
  constexpr std::uint32_t kN = 1 << 14;
  // eps deliberately below the floor (forced tournament route) so the
  // residual tails are large enough for K to visibly matter.
  const double phi = 0.5, eps = 0.05;
  const std::size_t trials = bench::scaled_trials(5);

  bench::Table table({"K", "rounds", "success", "failing nodes / run",
                      "max |err|"});
  for (const std::uint32_t k : {1u, 3u, 7u, 15u, 31u, 63u}) {
    RunningStats rounds, success, failures, max_err;
    for (std::size_t t = 0; t < trials; ++t) {
      const auto values =
          generate_values(Distribution::kUniformReal, kN, 120 + t);
      const RankScale scale(make_keys(values));
      Network net(kN, 9100 + 29 * t);
      ApproxQuantileParams params;
      params.phi = phi;
      params.eps = eps;
      params.final_sample_size = k;
      params.force_tournament = true;
      const auto r = approx_quantile(net, values, params);
      const auto s = evaluate_outputs(scale, r.outputs, phi, eps);
      rounds.add(static_cast<double>(r.rounds));
      success.add(s.frac_within_eps);
      failures.add((1.0 - s.frac_within_eps) * kN);
      max_err.add(s.max_abs_error);
    }
    table.add_row({bench::fmt_u(k), bench::fmt(rounds.mean(), 0),
                   bench::fmt_pct(success.mean(), 3),
                   bench::fmt(failures.mean(), 1),
                   bench::fmt(max_err.mean(), 4)});
  }
  table.print();
  std::printf(
      "Shape check: the worst-node error shrinks steadily with K while "
      "rounds grow linearly; success saturates\nbecause the median target "
      "is benign — K buys insurance exactly where Lemma 2.17 says "
      "(residual tails).\n\n");
}

}  // namespace
}  // namespace gq

int main() {
  gq::run();
  return gq::bench::exit_status();
}
