// E-ENG — engine scale: sharded parallel execution vs the sequential path.
//
// Demonstrates the engine subsystem at the paper's analysed scale
// (n = 10^6–10^7 nodes) with thread-count sweeps.  Three workloads:
//
//   1. raw pull rounds (the simulator substrate),
//   2. median dynamics via the NodeProtocol runtime — sequential
//      run_protocols(Network&) vs the engine adapter, and
//   3. median dynamics as the engine's batched SoA kernel (no virtual
//      dispatch in the hot loop).
//
// Every engine configuration computes bit-identical results to the
// sequential path (pinned by tests/test_engine.cpp), so each table is a
// pure throughput comparison.  GQ_BENCH_FAST=1 skips the 10^7 sweep.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "engine/engine.hpp"
#include "engine/kernels.hpp"
#include "engine/runtime_adapter.hpp"
#include "runtime/protocol.hpp"
#include "sim/network.hpp"
#include "wire/codec.hpp"
#include "workload/distributions.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

constexpr unsigned kThreadSweep[] = {1, 2, 4, 8};

bench::JsonArtifact& artifact() {
  static bench::JsonArtifact a("bench_engine_scale");
  return a;
}

void pull_round_table(std::uint32_t n, std::uint64_t rounds) {
  bench::Table table(
      {"executor", "threads", "rounds", "Mnode-rounds/s", "speedup"});
  Network net(n, 99);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t r = 0; r < rounds; ++r) (void)net.pull_round(32);
  const double seq_secs = bench::seconds_since(t0);
  table.add_row({"Network (sequential)", "1", bench::fmt_u(rounds),
                 bench::fmt(bench::mnrs(n, rounds, seq_secs)), "1.00"});
  artifact().add("pull_round", "network", n, 1, rounds, seq_secs, seq_secs);

  std::vector<std::uint32_t> peers(n);
  for (unsigned threads : bench::thread_sweep(kThreadSweep)) {
    Engine engine(n, 99, FailureModel{}, EngineConfig{.threads = threads});
    const auto t1 = std::chrono::steady_clock::now();
    for (std::uint64_t r = 0; r < rounds; ++r) engine.pull_round(32, peers);
    const double secs = bench::seconds_since(t1);
    table.add_row({"Engine pull_round", std::to_string(threads),
                   bench::fmt_u(rounds), bench::fmt(bench::mnrs(n, rounds, secs)),
                   bench::fmt(seq_secs / secs)});
    artifact().add("pull_round", "engine", n, threads, rounds, secs, seq_secs);
  }
  table.print();
}

void median_dynamics_table(std::uint32_t n, std::uint64_t iterations) {
  const auto keys =
      make_keys(generate_values(Distribution::kUniformReal, n, 71));
  const std::uint64_t bits = KeyCodec(n).encoded_bits();
  const std::uint64_t rounds = 2 * iterations;

  bench::Table table(
      {"executor", "threads", "rounds", "Mnode-rounds/s", "speedup"});

  double seq_secs;
  {
    Network net(n, 42);
    std::vector<std::unique_ptr<NodeProtocol>> protos;
    protos.reserve(n);
    for (const Key& k : keys) {
      protos.push_back(std::make_unique<MedianDynamicsProtocol>(k, iterations));
    }
    const auto t0 = std::chrono::steady_clock::now();
    (void)run_protocols(net, protos, rounds, bits);
    seq_secs = bench::seconds_since(t0);
    table.add_row({"runtime (sequential)", "1", bench::fmt_u(rounds),
                   bench::fmt(bench::mnrs(n, rounds, seq_secs)), "1.00"});
    artifact().add("median_dynamics", "network", n, 1, rounds, seq_secs, seq_secs);
  }

  for (unsigned threads : bench::thread_sweep(kThreadSweep)) {
    Engine engine(n, 42, FailureModel{}, EngineConfig{.threads = threads});
    std::vector<std::unique_ptr<NodeProtocol>> protos;
    protos.reserve(n);
    for (const Key& k : keys) {
      protos.push_back(std::make_unique<MedianDynamicsProtocol>(k, iterations));
    }
    const auto t0 = std::chrono::steady_clock::now();
    (void)run_protocols(engine, protos, rounds, bits);
    const double secs = bench::seconds_since(t0);
    table.add_row({"engine adapter", std::to_string(threads),
                   bench::fmt_u(rounds), bench::fmt(bench::mnrs(n, rounds, secs)),
                   bench::fmt(seq_secs / secs)});
    artifact().add("median_dynamics_adapter", "engine", n, threads, rounds, secs,
           seq_secs);
  }

  for (const std::uint32_t block : bench::block_sweep()) {
    const std::string pipeline =
        "median_dynamics_kernel" + bench::block_suffix(block);
    for (unsigned threads : bench::thread_sweep(kThreadSweep)) {
      Engine engine(n, 42, FailureModel{},
                    EngineConfig{.threads = threads, .gather_block = block});
      std::vector<Key> state(keys.begin(), keys.end());
      const auto t0 = std::chrono::steady_clock::now();
      (void)median_dynamics(engine, state, iterations, rounds, bits);
      const double secs = bench::seconds_since(t0);
      table.add_row({"engine batched kernel", std::to_string(threads),
                     bench::fmt_u(rounds),
                     bench::fmt(bench::mnrs(n, rounds, secs)),
                     bench::fmt(seq_secs / secs)});
      artifact().add(pipeline.c_str(), "engine", n, threads, rounds, secs,
                     seq_secs);
    }
  }
  table.print();
}

void kernel_only_table(std::uint32_t n, std::uint64_t iterations) {
  const auto keys =
      make_keys(generate_values(Distribution::kUniformReal, n, 73));
  const std::uint64_t bits = KeyCodec(n).encoded_bits();
  const std::uint64_t rounds = 2 * iterations;

  // Normalised against the sweep's first row (historically the t=1 run;
  // GQ_BENCH_THREADS/GQ_BENCH_BLOCK can reorder what comes first).
  bench::Table table(
      {"executor", "threads", "block", "rounds", "Mnode-rounds/s",
       "speedup vs first row"});
  double base_secs = 0.0;
  for (const std::uint32_t block : bench::block_sweep()) {
    const std::string pipeline =
        "median_dynamics_kernel" + bench::block_suffix(block);
    for (unsigned threads : bench::thread_sweep(kThreadSweep)) {
      Engine engine(n, 44, FailureModel{},
                    EngineConfig{.threads = threads, .gather_block = block});
      std::vector<Key> state(keys.begin(), keys.end());
      const auto t0 = std::chrono::steady_clock::now();
      (void)median_dynamics(engine, state, iterations, rounds, bits);
      const double secs = bench::seconds_since(t0);
      if (base_secs == 0.0) base_secs = secs;
      table.add_row({"engine batched kernel", std::to_string(threads),
                     block == 0 ? "auto" : std::to_string(block),
                     bench::fmt_u(rounds),
                     bench::fmt(bench::mnrs(n, rounds, secs)),
                     bench::fmt(base_secs / secs)});
      // No sequential twin in this sweep (the table normalises against the
      // first engine run); per the PerfRecord contract seq_seconds is 0.
      artifact().add(pipeline.c_str(), "engine", n, threads, rounds, secs,
                     0.0);
    }
  }
  table.print();
}

void run() {
  bench::print_header(
      "E-ENG", "sharded parallel engine scale",
      "engineering: rounds are embarrassingly parallel because node v's "
      "round-r randomness is a pure function of (seed, r, v); the engine "
      "exploits this for bit-identical parallel execution");
  std::printf("hardware threads: %u\n\n",
              std::thread::hardware_concurrency());

  constexpr std::uint32_t kMillion = 1000000;
  const std::uint32_t n = bench::smoke_capped(kMillion);
  std::printf("## raw pull rounds, n = %u\n\n", n);
  pull_round_table(n, 6);

  std::printf("\n## median dynamics, n = %u (protocol path vs batched)\n\n",
              n);
  median_dynamics_table(n, 3);

  if (!bench::fast_mode() && !bench::smoke_mode()) {
    std::printf("\n## batched kernel, n = 10^7\n\n");
    kernel_only_table(10 * kMillion, 2);
  }
}

}  // namespace
}  // namespace gq

int main() {
  gq::run();
  return gq::bench::exit_status();
}
