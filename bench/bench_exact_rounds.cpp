// E1 — Theorem 1.1: exact phi-quantile in O(log n) rounds, a quadratic
// improvement over the KDG03 O(log^2 n) selection baseline.
//
// The table reports rounds for both algorithms across n; the shape to look
// for is ours/log2(n) flattening while KDG03/log2(n) keeps growing
// (its phase count is itself Theta(log n)).
#include <cstdio>
#include <vector>

#include "baselines/kdg03_quantile.hpp"
#include "bench_common.hpp"
#include "core/exact_quantile.hpp"
#include "util/stats.hpp"
#include "workload/distributions.hpp"

namespace gq {
namespace {

void run() {
  bench::print_header(
      "E1", "exact quantile rounds vs n (ours vs KDG03)",
      "Theorem 1.1: O(log n) rounds vs the KDG03 O(log^2 n) baseline");

  std::vector<std::uint32_t> sizes = {1u << 8,  1u << 10, 1u << 12,
                                      1u << 14, 1u << 16, 1u << 18};
  if (bench::fast_mode()) {
    sizes.pop_back();
    sizes.pop_back();
  }
  const std::size_t trials = bench::scaled_trials(3);

  bench::Table table({"n", "phi", "ours rounds", "ours/log2n",
                      "kdg03 rounds", "kdg03/log2n", "speedup",
                      "ours iters", "kdg03 phases"});
  for (const std::uint32_t n : sizes) {
    for (const double phi : {0.1, 0.5, 0.9}) {
      RunningStats ours_rounds, base_rounds, ours_iters, base_phases;
      for (std::size_t t = 0; t < trials; ++t) {
        const auto values = generate_values(
            Distribution::kUniformReal, n, 900 + t);

        Network ours_net(n, 17 + t);
        ExactQuantileParams ep;
        ep.phi = phi;
        const auto ours = exact_quantile(ours_net, values, ep);
        ours_rounds.add(static_cast<double>(ours.rounds));
        ours_iters.add(static_cast<double>(ours.iterations +
                                           ours.endgame_phases));

        Network base_net(n, 39 + t);
        Kdg03Params kp;
        kp.phi = phi;
        const auto base = kdg03_exact_quantile(base_net, values, kp);
        base_rounds.add(static_cast<double>(base.rounds));
        base_phases.add(static_cast<double>(base.phases));
      }
      const double log2n = std::log2(static_cast<double>(n));
      table.add_row({bench::fmt_u(n), bench::fmt(phi, 1),
                     bench::fmt(ours_rounds.mean(), 0),
                     bench::fmt(ours_rounds.mean() / log2n, 1),
                     bench::fmt(base_rounds.mean(), 0),
                     bench::fmt(base_rounds.mean() / log2n, 1),
                     bench::fmt(base_rounds.mean() / ours_rounds.mean(), 2),
                     bench::fmt(ours_iters.mean(), 1),
                     bench::fmt(base_phases.mean(), 1)});
    }
  }
  table.print();
  std::printf(
      "Shape check: 'kdg03/log2n' grows with n (its selection needs "
      "Theta(log n) counting phases),\nwhile 'ours/log2n' stays flat or "
      "falls once token duplication engages (n >= 2^14).\n\n");
}

}  // namespace
}  // namespace gq

int main() {
  gq::run();
  return gq::bench::exit_status();
}
