// E-ROBUST — the Section-5 failure-model pipelines on the engine at scale.
//
// PR 2 put the failure-free quantile pipelines on the engine; this bench
// measures the robust variants end-to-end — approx_quantile under a
// FailureModel (k-fold fan-out tournaments + the Theorem-1.4 coverage
// tail) — at n = 10^5 … 10^7 with mu and thread sweeps.  The n = 10^7
// rows are the adversarial-scale sweep the sequential path cannot reach:
// its per-iteration n x k sample matrix and per-round snapshot copies are
// replaced by the engine's pooled ping-pong state, so the largest size
// runs engine-only (no sequential reference; seq_seconds = 0 in the
// artifact records).
//
// Every engine configuration computes bit-identical results, round counts,
// and Metrics to the sequential path (pinned by tests/test_engine_robust.cpp),
// so the tables are pure throughput comparisons.  GQ_BENCH_FAST=1 skips the
// 10^7 sweep; GQ_BENCH_SMOKE=1 shrinks everything to CI-smoke scale.
#include <chrono>
#include <cstdio>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/approx_quantile.hpp"
#include "engine/engine.hpp"
#include "engine/pipelines.hpp"
#include "sim/network.hpp"
#include "workload/distributions.hpp"

namespace gq {
namespace {

constexpr unsigned kThreadSweep[] = {1, 2, 4, 8};
// The 10^7 rows repeat hundreds of fan-out rounds; sweep the endpoints.
constexpr unsigned kThreadSweepLarge[] = {1, 8};

bench::JsonArtifact& artifact() {
  static bench::JsonArtifact a("bench_robust_scale");
  return a;
}

void robust_approx_table(std::uint32_t n, double mu, bool with_sequential,
                         std::span<const unsigned> threads_sweep) {
  const auto values = generate_values(Distribution::kUniformReal, n, 191);
  const FailureModel fm = FailureModel::uniform(mu);
  ApproxQuantileParams params;
  params.phi = 0.5;
  params.eps = 0.1;
  params.robust_coverage_rounds = 14;

  // mu is part of the measured configuration, so it must be part of the
  // record key (bench_diff keys on (bench, pipeline, executor, n, threads));
  // folding it into the pipeline name keeps the schema unchanged.
  const std::string pipeline =
      "robust_approx_quantile_mu" +
      std::to_string(static_cast<int>(mu * 100 + 0.5));

  bench::Table table({"executor", "threads", "block", "rounds", "served",
                      "Mnode-rounds/s", "speedup"});
  double seq_secs = 0.0;
  if (with_sequential) {
    Network net(n, 1789, fm);
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = approx_quantile(net, values, params);
    seq_secs = bench::seconds_since(t0);
    table.add_row({"Network (sequential)", "1", "-", bench::fmt_u(r.rounds),
                   bench::fmt_pct(static_cast<double>(r.served_nodes()) / n),
                   bench::fmt(bench::mnrs(n, r.rounds, seq_secs)), "1.00"});
    artifact().add(pipeline.c_str(), "network", n, 1, r.rounds, seq_secs,
                   seq_secs);
  }
  for (const std::uint32_t block : bench::block_sweep()) {
    const std::string swept = pipeline + bench::block_suffix(block);
    for (unsigned threads : bench::thread_sweep(threads_sweep)) {
      Engine engine(n, 1789, fm,
                    EngineConfig{.threads = threads, .gather_block = block});
      const auto t0 = std::chrono::steady_clock::now();
      const auto r = approx_quantile(engine, values, params);
      const double secs = bench::seconds_since(t0);
      table.add_row({"Engine pipeline", std::to_string(threads),
                     block == 0 ? "auto" : std::to_string(block),
                     bench::fmt_u(r.rounds),
                     bench::fmt_pct(static_cast<double>(r.served_nodes()) / n),
                     bench::fmt(bench::mnrs(n, r.rounds, secs)),
                     seq_secs > 0.0 ? bench::fmt(seq_secs / secs) : "-"});
      artifact().add(swept.c_str(), "engine", n, threads, r.rounds, secs,
                     seq_secs);
    }
  }
  table.print();
}

void run() {
  bench::print_header(
      "E-ROBUST", "failure-model pipelines on the engine at scale",
      "Theorem 1.4 at engineering scale: the robust tournaments and the "
      "coverage tail run end-to-end on the sharded engine, bit-identical "
      "to the sequential path, unlocking adversarial sweeps at n = 10^7");
  std::printf("hardware threads: %u\n\n",
              std::thread::hardware_concurrency());

  const std::uint32_t k100k = bench::smoke_capped(100000);
  for (const double mu : {0.1, 0.3, 0.5}) {
    std::printf("## robust approx_quantile (phi=0.5, eps=0.1, mu=%.1f), "
                "n = %u\n\n",
                mu, k100k);
    robust_approx_table(k100k, mu, /*with_sequential=*/true, kThreadSweep);
    std::printf("\n");
  }

  if (!bench::smoke_mode()) {
    std::printf("## robust approx_quantile (phi=0.5, eps=0.1, mu=0.3), "
                "n = 10^6\n\n");
    robust_approx_table(1000000, 0.3, /*with_sequential=*/true, kThreadSweep);
    if (!bench::fast_mode()) {
      std::printf("\n## robust approx_quantile (phi=0.5, eps=0.1, mu=0.3), "
                  "n = 10^7 (adversarial scale, engine-only)\n\n");
      robust_approx_table(10000000, 0.3, /*with_sequential=*/false,
                          kThreadSweepLarge);
    }
  }
}

}  // namespace
}  // namespace gq

int main() {
  gq::run();
  return gq::bench::exit_status();
}
