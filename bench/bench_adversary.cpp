// E-ADVERSARY — the adversarially-robust pipelines (arXiv 2502.15320)
// under strategy and budget sweeps.
//
// Three questions, one table each:
//   * rounds vs budget: the filtered tournament schedule is sized by
//     (phi, eps), not by the adversary, so rounds stay flat while served
//     fraction and corruption exposure absorb the pressure — the
//     graceful-degradation contract, measured;
//   * oblivious baseline: ObliviousAdversary(mu) rows — the model is
//     absorbed into the executor's FailureModel, its losses land in
//     failed_operations, and the filter absorbs those too;
//   * throughput: Network reference vs Engine thread sweep per strategy,
//     bit-identical transcripts (pinned by tests/test_adversary.cpp), so
//     speedups are pure throughput.
//
// Budget levels fold into the pipeline name (bench_diff keys records on
// (bench, pipeline, executor, n, threads)): adv_quantile_greedy_bn64 is
// the greedy strategy with budget n/64.  GQ_BENCH_SMOKE=1 shrinks
// everything to CI-smoke scale.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/adversarial.hpp"
#include "engine/engine.hpp"
#include "engine/pipelines.hpp"
#include "service/quantile_service.hpp"
#include "sim/adversary.hpp"
#include "sim/network.hpp"
#include "workload/distributions.hpp"

namespace gq {
namespace {

constexpr unsigned kThreadSweep[] = {1, 2, 4, 8};

bench::JsonArtifact& artifact() {
  static bench::JsonArtifact a("bench_adversary");
  return a;
}

struct BudgetLevel {
  const char* label;  // folded into the record's pipeline name
  std::uint32_t budget;
};

std::vector<BudgetLevel> budget_levels(std::uint32_t n) {
  return {{"b1", 1}, {"bn64", n / 64}, {"bn8", n / 8}};
}

// One strategy instance per (strategy, budget) cell; bind() resets all
// adaptive state, so reusing an instance across runs is safe.
struct StrategyCell {
  const char* label;
  AdversaryStrategy* strategy;
};

void quantile_sweep_table(std::uint32_t n) {
  const auto values = generate_values(Distribution::kUniformReal, n, 211);
  AdversarialQuantileParams params;
  params.phi = 0.5;
  params.eps = 0.1;

  bench::Table table({"strategy", "budget", "executor", "threads", "rounds",
                      "served", "exposure", "Mnode-rounds/s", "speedup"});
  for (const BudgetLevel& level : budget_levels(n)) {
    GreedyTargetedAdversary greedy(level.budget, 1e9);
    EclipseAdversary eclipse(0, level.budget);
    BudgetBurstAdversary burst(level.budget, 8, 3, 2, 31);
    ScatterCorruptAdversary scatter(level.budget, 1e9, 31);
    const StrategyCell cells[] = {{"greedy", &greedy},
                                  {"eclipse", &eclipse},
                                  {"budget_burst", &burst},
                                  {"scatter_corrupt", &scatter}};
    for (const StrategyCell& cell : cells) {
      const std::string pipeline =
          std::string("adv_quantile_") + cell.label + "_" + level.label;

      Network net(n, 1889);
      net.set_adversary(cell.strategy);
      const auto t0 = std::chrono::steady_clock::now();
      const auto seq = adversarial_quantile(net, values, params);
      const double seq_secs = bench::seconds_since(t0);
      table.add_row({cell.label, std::to_string(level.budget), "Network", "1",
                     bench::fmt_u(seq.rounds),
                     bench::fmt_pct(seq.quality.served_fraction),
                     bench::fmt_pct(seq.quality.corruption_exposure),
                     bench::fmt(bench::mnrs(n, seq.rounds, seq_secs)), "1.00"});
      artifact().add(pipeline.c_str(), "network", n, 1, seq.rounds, seq_secs,
                     seq_secs);

      for (unsigned threads : bench::thread_sweep(kThreadSweep)) {
        Engine engine(n, 1889, FailureModel{},
                      EngineConfig{.threads = threads});
        engine.set_adversary(cell.strategy);
        const auto t1 = std::chrono::steady_clock::now();
        const auto par = adversarial_quantile(engine, values, params);
        const double secs = bench::seconds_since(t1);
        table.add_row({cell.label, std::to_string(level.budget), "Engine",
                       std::to_string(threads), bench::fmt_u(par.rounds),
                       bench::fmt_pct(par.quality.served_fraction),
                       bench::fmt_pct(par.quality.corruption_exposure),
                       bench::fmt(bench::mnrs(n, par.rounds, secs)),
                       bench::fmt(seq_secs / secs)});
        artifact().add(pipeline.c_str(), "engine", n, threads, par.rounds,
                       secs, seq_secs);
      }
    }
  }
  table.print();
}

void mean_sweep_table(std::uint32_t n) {
  const auto values = generate_values(Distribution::kGaussian, n, 223);
  AdversarialMeanParams params;

  bench::Table table({"strategy", "budget", "executor", "threads", "rounds",
                      "served", "Mnode-rounds/s", "speedup"});
  for (const BudgetLevel& level : budget_levels(n)) {
    GreedyTargetedAdversary greedy(level.budget, 1e9);
    EclipseAdversary eclipse(0, level.budget);
    const StrategyCell cells[] = {{"greedy", &greedy}, {"eclipse", &eclipse}};
    for (const StrategyCell& cell : cells) {
      const std::string pipeline =
          std::string("adv_mean_") + cell.label + "_" + level.label;

      Network net(n, 1901);
      net.set_adversary(cell.strategy);
      const auto t0 = std::chrono::steady_clock::now();
      const auto seq = adversarial_mean(net, values, params);
      const double seq_secs = bench::seconds_since(t0);
      table.add_row({cell.label, std::to_string(level.budget), "Network", "1",
                     bench::fmt_u(seq.rounds),
                     bench::fmt_pct(seq.quality.served_fraction),
                     bench::fmt(bench::mnrs(n, seq.rounds, seq_secs)), "1.00"});
      artifact().add(pipeline.c_str(), "network", n, 1, seq.rounds, seq_secs,
                     seq_secs);

      for (unsigned threads : bench::thread_sweep(kThreadSweep)) {
        Engine engine(n, 1901, FailureModel{},
                      EngineConfig{.threads = threads});
        engine.set_adversary(cell.strategy);
        const auto t1 = std::chrono::steady_clock::now();
        const auto par = adversarial_mean(engine, values, params);
        const double secs = bench::seconds_since(t1);
        table.add_row({cell.label, std::to_string(level.budget), "Engine",
                       std::to_string(threads), bench::fmt_u(par.rounds),
                       bench::fmt_pct(par.quality.served_fraction),
                       bench::fmt(bench::mnrs(n, par.rounds, secs)),
                       bench::fmt(seq_secs / secs)});
        artifact().add(pipeline.c_str(), "engine", n, threads, par.rounds,
                       secs, seq_secs);
      }
    }
  }
  table.print();
}

// The oblivious baseline: ObliviousAdversary(mu) is absorbed into the
// executor's FailureModel, so its pressure lands in failed_operations —
// and the filter absorbs those too, same flat round count.  The rows
// quantify how much loss the fixed schedule shrugs off.
void oblivious_rounds_table(std::uint32_t n) {
  const auto values = generate_values(Distribution::kUniformReal, n, 227);
  AdversarialQuantileParams params;
  params.phi = 0.5;
  params.eps = 0.1;

  bench::Table table(
      {"mu", "rounds", "served", "failed ops", "Mnode-rounds/s"});
  for (const double mu : {0.0, 0.2, 0.4}) {
    ObliviousAdversary oblivious(mu > 0.0 ? FailureModel::uniform(mu)
                                          : FailureModel{});
    const std::string pipeline =
        "adv_quantile_oblivious_mu" +
        std::to_string(static_cast<int>(mu * 100 + 0.5));
    Network net(n, 1913);
    net.set_adversary(&oblivious);
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = adversarial_quantile(net, values, params);
    const double secs = bench::seconds_since(t0);
    table.add_row({bench::fmt(mu), bench::fmt_u(r.rounds),
                   bench::fmt_pct(r.quality.served_fraction),
                   bench::fmt_u(r.quality.failed_operations),
                   bench::fmt(bench::mnrs(n, r.rounds, secs))});
    artifact().add(pipeline.c_str(), "network", n, 1, r.rounds, secs, secs);
  }
  table.print();
}

void run() {
  bench::print_header(
      "E-ADVERSARY", "adversarial strategies vs the filtered pipelines",
      "arXiv 2502.15320 measured: the filtered tournament schedule is sized "
      "by (phi, eps), so a budget-bounded adaptive adversary moves served "
      "fraction and exposure, never the round count — graceful degradation "
      "by construction");
  std::printf("hardware threads: %u\n\n",
              std::thread::hardware_concurrency());

  const std::uint32_t n = bench::smoke_capped(65536);
  std::printf("## adversarial_quantile (phi=0.5, eps=0.1), n = %u, "
              "strategy x budget\n\n",
              n);
  quantile_sweep_table(n);

  std::printf("\n## adversarial_mean, n = %u, strategy x budget\n\n", n);
  mean_sweep_table(bench::smoke_capped(32768));

  std::printf("\n## oblivious baseline: rounds vs mu, n = %u\n\n", n);
  oblivious_rounds_table(n);
}

// ---- fault soak (--soak) ---------------------------------------------------
//
// The CI resilience gate: a seeded sweep of crash-churn and adaptive
// strategies against a *supervised* QuantileService.  The contract under
// test is the service's never-throw guarantee — every query must come back
// answered, either full (some supervised attempt passed) or degraded (the
// epoch summary answered after the budget exhausted).  One cell forces
// exhaustion outright so the degraded path (and its service/degraded trace
// spans, validated by scripts/trace_check in CI) fires on every run.
// Exits non-zero on any violation.

int run_soak() {
  std::printf("bench_adversary --soak: resilience fault-soak gate\n\n");
  const std::uint32_t nodes = bench::smoke_capped(1024);
  const std::uint32_t budget = std::max<std::uint32_t>(4, nodes / 16);
  std::uint64_t total = 0, full = 0, degraded = 0, violations = 0;
  bench::Table table({"strategy", "seed", "queries", "full", "degraded",
                      "retries", "breaker opens"});
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    CrashChurnAdversary light(CrashChurnAdversary::Config{
        .crashes = budget, .first_round = 1, .crash_window = 32,
        .down_rounds = 8, .strategy_seed = seed});
    CrashChurnAdversary heavy(CrashChurnAdversary::Config{
        .crashes = budget * 2, .first_round = 1, .crash_window = 32,
        .down_rounds = 0, .strategy_seed = seed});
    GreedyTargetedAdversary greedy(budget, 1e9);
    EclipseAdversary eclipse(0, budget);
    struct Cell {
      const char* label;
      AdversaryStrategy* strategy;
      double min_served;
    };
    const Cell cells[] = {
        {"crash_light", &light, 0.5},
        {"crash_heavy", &heavy, 0.97},  // ~12% permanently down: exhausts
        {"greedy", &greedy, 0.5},
        {"eclipse", &eclipse, 0.5},
        // Unattainable bar: every query exhausts, guaranteeing the degraded
        // path runs (and emits its spans) in every soak.
        {"forced_degrade", nullptr, 1.5},
    };
    for (const Cell& cell : cells) {
      ServiceConfig cfg;
      cfg.seed = 7000 + seed;
      cfg.engine.threads = 4;
      cfg.adversary = cell.strategy;
      cfg.supervisor.max_attempts = 2;
      cfg.supervisor.min_served_fraction = cell.min_served;
      cfg.breaker.open_after = 3;
      cfg.breaker.cooldown_queries = 2;
      std::uint64_t cell_full = 0, cell_degraded = 0;
      try {
        QuantileService service(nodes, cfg);
        const auto values = generate_values(Distribution::kUniformReal,
                                            nodes * 2, 300 + seed);
        for (std::uint32_t v = 0; v < nodes; ++v) {
          service.ingest(v, values[v * 2]);
          service.ingest(v, values[v * 2 + 1]);
        }
        const QueryKind kinds[] = {QueryKind::kQuantile, QueryKind::kRank,
                                   QueryKind::kCdf, QueryKind::kMultiQuantile,
                                   QueryKind::kExactQuantile};
        for (int i = 0; i < 10; ++i) {
          QueryRequest request;
          request.kind = kinds[i % 5];
          request.phi = 0.25 + 0.05 * static_cast<double>(i % 5);
          request.eps = 0.2;
          request.value = 0.5;
          request.cdf_points = {0.25, 0.5, 0.75};
          request.phis = {0.1, 0.5, 0.9};
          const QueryReply reply = service.query(request);
          ++total;
          if (reply.quality == AnswerQuality::kDegraded) {
            ++degraded;
            ++cell_degraded;
          } else {
            ++full;
            ++cell_full;
          }
        }
        const ServiceStats stats = service.stats();
        table.add_row({cell.label, std::to_string(seed), "10",
                       std::to_string(cell_full),
                       std::to_string(cell_degraded),
                       std::to_string(stats.retry_attempts),
                       std::to_string(stats.breaker_opens)});
      } catch (const std::exception& error) {
        ++violations;
        std::printf("VIOLATION: strategy=%s seed=%llu threw: %s\n",
                    cell.label, static_cast<unsigned long long>(seed),
                    error.what());
      }
    }
  }
  table.print();
  std::printf("\nsoak: %llu queries, %llu full, %llu degraded, "
              "%llu violations\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(full),
              static_cast<unsigned long long>(degraded),
              static_cast<unsigned long long>(violations));
  // No query may throw, and the forced cell must have exercised the
  // degraded path (otherwise CI's trace requirements are vacuous).
  // exit_status() flushes the GQ_TRACE artifacts the trace gate validates.
  const int soak_status = (violations == 0 && degraded > 0) ? 0 : 1;
  const int artifact_status = bench::exit_status();
  return soak_status != 0 ? soak_status : artifact_status;
}

}  // namespace
}  // namespace gq

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--soak") return gq::run_soak();
  }
  gq::run();
  return gq::bench::exit_status();
}
