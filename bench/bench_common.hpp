// Shared output helpers for the experiment harness: every bench prints
// markdown tables so EXPERIMENTS.md rows can be pasted verbatim.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gq::bench {

// Markdown table with left-aligned first column and right-aligned rest.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

[[nodiscard]] std::string fmt(double v, int precision = 2);
[[nodiscard]] std::string fmt_u(std::uint64_t v);
[[nodiscard]] std::string fmt_pct(double fraction, int precision = 1);

// Experiment banner: id and the paper claim being exercised.
void print_header(const std::string& id, const std::string& title,
                  const std::string& claim);

// GQ_BENCH_SCALE env (default 1.0) scales trial counts; GQ_BENCH_FAST=1
// trims the largest problem sizes for smoke runs.
[[nodiscard]] double scale();
[[nodiscard]] bool fast_mode();

// max(1, round(base * scale()))
[[nodiscard]] std::size_t scaled_trials(std::size_t base);

}  // namespace gq::bench
