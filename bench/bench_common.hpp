// Shared output helpers for the experiment harness: every bench prints
// markdown tables so EXPERIMENTS.md rows can be pasted verbatim.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gq::bench {

// Markdown table with left-aligned first column and right-aligned rest.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

[[nodiscard]] std::string fmt(double v, int precision = 2);
[[nodiscard]] std::string fmt_u(std::uint64_t v);
[[nodiscard]] std::string fmt_pct(double fraction, int precision = 1);

// Experiment banner: id and the paper claim being exercised.
void print_header(const std::string& id, const std::string& title,
                  const std::string& claim);

// GQ_BENCH_SCALE env (default 1.0) scales trial counts; GQ_BENCH_FAST=1
// trims the largest problem sizes for smoke runs.
[[nodiscard]] double scale();
[[nodiscard]] bool fast_mode();

// GQ_BENCH_SMOKE=1 shrinks problem sizes to CI-smoke scale: the bench
// exercises every code path but measures nothing meaningful.  Used by the
// CI bench-smoke job to keep bench targets from bit-rotting.
[[nodiscard]] bool smoke_mode();

// n, or the CI-smoke substitute when GQ_BENCH_SMOKE=1.
[[nodiscard]] std::uint32_t smoke_capped(std::uint32_t n,
                                         std::uint32_t smoke_n = 10000);

// max(1, round(base * scale()))
[[nodiscard]] std::size_t scaled_trials(std::size_t base);

}  // namespace gq::bench
