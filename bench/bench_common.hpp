// Shared output helpers for the experiment harness: every bench prints
// markdown tables so EXPERIMENTS.md rows can be pasted verbatim, and can
// additionally emit machine-readable timing records (see JsonArtifact) so
// the perf trajectory survives in BENCH_engine.json instead of scrollback.
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace gq::bench {

// Wall-clock seconds elapsed since `start`.
[[nodiscard]] double seconds_since(std::chrono::steady_clock::time_point start);

// Million node-rounds per second: one normalisation for every scale bench,
// with rounds taken from the run itself so sequential and engine rows of
// one table are normalised identically.
[[nodiscard]] double mnrs(std::uint64_t nodes, std::uint64_t rounds,
                          double seconds);

// Markdown table with left-aligned first column and right-aligned rest.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

[[nodiscard]] std::string fmt(double v, int precision = 2);
[[nodiscard]] std::string fmt_u(std::uint64_t v);
[[nodiscard]] std::string fmt_pct(double fraction, int precision = 1);

// Experiment banner: id and the paper claim being exercised.
void print_header(const std::string& id, const std::string& title,
                  const std::string& claim);

// ---- telemetry / trace wiring ---------------------------------------------
//
// Setting any of these envs to an output path turns gq::telemetry on for
// the whole bench run (before main(), so every phase is covered) and makes
// exit_status() write the artifact:
//
//   GQ_TRACE       Chrome trace-event JSON (load in Perfetto / about:tracing)
//   GQ_TRACE_JSON  one JSON object per completed span (JSONL)
//   GQ_TRACE_PROM  Prometheus-style text exposition
//
// When tracing is on, exit_status() also prints the phase and worker-
// utilization summaries to stderr (stdout keeps the markdown tables).
// Unset/empty envs leave telemetry disabled — the bench measures the same
// instruction stream the tests pin.
[[nodiscard]] bool trace_requested();

// The exit code a bench's main() must return: flushes the trace artifacts
// (once), then reports 1 if any artifact write — bench JSON or trace —
// failed, 0 otherwise.  Benches that write artifacts and return 0
// unconditionally hide broken CI uploads, so every bench main ends with
// `return gq::bench::exit_status();`.
[[nodiscard]] int exit_status();

// Records that an artifact write failed (diagnostic already printed);
// flips exit_status() to 1.  Used by JsonArtifact, the trace flush, and
// benches that write their own artifacts (e.g. bench_dynamics' CSV).
void note_artifact_failure();

// GQ_BENCH_SCALE env (default 1.0) scales trial counts; GQ_BENCH_FAST
// trims the largest problem sizes for smoke runs.  Boolean envs accept
// 1/true/yes/on (and 0/false/no/off as an explicit off); any other
// non-empty value aborts with a diagnostic rather than being silently
// ignored, so a CI misconfiguration like GQ_BENCH_SMOKE=yes please is
// visible instead of quietly running the multi-minute full sweep.
[[nodiscard]] double scale();
[[nodiscard]] bool fast_mode();

// GQ_BENCH_SMOKE shrinks problem sizes to CI-smoke scale: the bench
// exercises every code path but measures nothing meaningful.  Used by the
// CI bench-smoke job to keep bench targets from bit-rotting.
[[nodiscard]] bool smoke_mode();

// n, or the CI-smoke substitute when GQ_BENCH_SMOKE is on.
[[nodiscard]] std::uint32_t smoke_capped(std::uint32_t n,
                                         std::uint32_t smoke_n = 10000);

// max(1, round(base * scale()))
[[nodiscard]] std::size_t scaled_trials(std::size_t base);

// GQ_BENCH_THREADS ("1" or "1,2,8") overrides a bench's default engine
// thread sweep; empty/unset keeps `fallback`.  Exists for single-core
// boxes where multi-thread rows would measure oversubscription, not
// scaling — the committed BENCH_engine.json perf-trajectory records are
// captured with GQ_BENCH_THREADS=1 there.
[[nodiscard]] std::vector<unsigned> thread_sweep(
    std::span<const unsigned> fallback);

// GQ_BENCH_BLOCK ("512" or "128,512,2048") sweeps EngineConfig::gather_block
// in the engine benches; empty/unset yields {0} (the engine's tuned
// default).  Block size is observable-neutral (results and Metrics are
// bit-identical at every value), so the sweep is pure timing.
[[nodiscard]] std::vector<std::uint32_t> block_sweep();

// Record-name suffix for a non-default gather block ("@b512", "" for 0),
// so swept rows cannot collide with the default-config perf trajectory in
// BENCH_engine.json (records are keyed by (bench, pipeline, executor, n,
// threads)).
[[nodiscard]] std::string block_suffix(std::uint32_t gather_block);

// ---- machine-readable perf records ----------------------------------------
//
// One record per measured configuration.  `pipeline` names the workload
// ("approx_quantile", "exact_quantile", "pull_round", ...), `executor`
// distinguishes the sequential Network path from the engine, and
// `seq_seconds` is the sequential reference the speedup is computed
// against (0 when the row has no sequential twin).
struct PerfRecord {
  std::string bench;     // emitting binary, e.g. "bench_pipeline_scale"
  std::string pipeline;  // workload name
  std::string executor;  // "network" | "engine" | "service"
  std::uint64_t n = 0;
  unsigned threads = 1;
  std::uint64_t rounds = 0;
  double seconds = 0.0;
  double seq_seconds = 0.0;  // sequential reference for this (pipeline, n)

  // Throughput records (the service layer's service_qps rows): `qps` is the
  // measured rate and `higher_is_better` flips the regression direction in
  // scripts/bench_diff.  Latency records leave both at their defaults and
  // their JSON shape is unchanged.
  double qps = 0.0;
  bool higher_is_better = false;

  // Optional phase breakdown (name -> seconds), emitted as a "phases" JSON
  // object on the record.  Purely descriptive metadata: scripts/bench_diff
  // passes it through and never gates on it.
  std::vector<std::pair<std::string, double>> phases;
};

// Collects PerfRecords and writes them as a BENCH_engine.json fragment when
// GQ_BENCH_JSON names a path (no file is written otherwise).  The schema is
// documented in README.md ("Performance"); records carry an optional label
// from GQ_BENCH_LABEL (e.g. a git revision) so before/after runs can live
// in one merged artifact — see scripts/bench_diff.
class JsonArtifact {
 public:
  explicit JsonArtifact(std::string bench_name);
  // Writes on destruction so benches cannot forget to flush.
  ~JsonArtifact();

  void add(PerfRecord record);

  // Convenience for the common row shape.  Pass seq_seconds = 0 when the
  // row has no sequential twin (e.g. an engine-only sweep normalised
  // against its own 1-thread run).
  void add(const char* pipeline, const char* executor, std::uint64_t n,
           unsigned threads, std::uint64_t rounds, double seconds,
           double seq_seconds) {
    add(PerfRecord{.bench = {},
                   .pipeline = pipeline,
                   .executor = executor,
                   .n = n,
                   .threads = threads,
                   .rounds = rounds,
                   .seconds = seconds,
                   .seq_seconds = seq_seconds});
  }

 private:
  std::string bench_;
  std::string label_;
  std::vector<PerfRecord> records_;
};

}  // namespace gq::bench
