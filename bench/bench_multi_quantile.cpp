// E-MULTI — shared-schedule multi-quantile: all q targets in ONE gossip
// run.
//
// The batch pipeline (core/multi_pipeline.hpp) superimposes every target's
// 2-TOURNAMENT schedule over one sequence of rounds — one peer draw and one
// message per node per round, carrying a q-lane vector — then shares the
// single (eps,n)-determined 3-TOURNAMENT and final sampling phases.  Rounds
// therefore cost max-of-schedules instead of sum-of-schedules, and bits
// grow only with the number of simultaneously-active lanes.
//
// Three tables:
//   1. rounds/bits of the shared run vs q independent single-target runs
//      vs the most expensive single target alone (Network accounting, which
//      tests/test_engine_multi.cpp pins bit-identical to the engine);
//   2. an engine thread sweep over the shared run (wall-clock throughput);
//   3. accuracy-per-bit against a centralised KLL sketch — the state of
//      the art the paper's Appendix A discusses — at the same targets.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "analysis/rank_stats.hpp"
#include "bench_common.hpp"
#include "core/approx_quantile.hpp"
#include "core/multi_quantile.hpp"
#include "engine/engine.hpp"
#include "engine/pipelines.hpp"
#include "sim/network.hpp"
#include "sketch/kll.hpp"
#include "workload/distributions.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

constexpr unsigned kThreadSweep[] = {1, 2, 4, 8};
constexpr double kPhis[] = {0.5, 0.9, 0.99, 0.999};
constexpr std::uint64_t kSeed = 907;

bench::JsonArtifact& artifact() {
  static bench::JsonArtifact a("bench_multi_quantile");
  return a;
}

MultiQuantileParams batch_params() {
  MultiQuantileParams params;
  params.phis.assign(std::begin(kPhis), std::end(kPhis));
  params.eps = 0.1;
  return params;
}

void cost_table(std::uint32_t n, const std::vector<double>& values) {
  const MultiQuantileParams params = batch_params();

  bench::Table table({"run", "rounds", "Mbits total", "bits/node/target",
                      "vs shared"});

  Network shared_net(n, kSeed);
  const auto t0 = std::chrono::steady_clock::now();
  const MultiQuantileResult shared = multi_quantile(shared_net, values, params);
  const double shared_secs = bench::seconds_since(t0);
  const Metrics sm = shared.metrics;

  // q independent single-target runs (the pre-batch API cost): fresh
  // network per target, rounds and bits summed.
  Metrics independent;
  double independent_secs = 0.0;
  std::uint64_t single_max_rounds = 0;
  ApproxQuantileParams ap;
  ap.eps = params.eps;
  for (const double phi : kPhis) {
    Network ref(n, kSeed);
    ap.phi = phi;
    const auto t1 = std::chrono::steady_clock::now();
    const auto one = approx_quantile(ref, values, ap);
    independent_secs += bench::seconds_since(t1);
    independent.merge(ref.metrics());
    single_max_rounds = std::max(single_max_rounds, one.rounds);
  }

  const auto per_target_bits = [&](const Metrics& m, std::size_t targets) {
    return static_cast<double>(m.message_bits) /
           (static_cast<double>(n) * static_cast<double>(targets));
  };
  table.add_row({"shared schedule (q=4)", bench::fmt_u(sm.rounds),
                 bench::fmt(static_cast<double>(sm.message_bits) / 1e6),
                 bench::fmt(per_target_bits(sm, 4)), "1.00"});
  table.add_row(
      {"4 independent runs", bench::fmt_u(independent.rounds),
       bench::fmt(static_cast<double>(independent.message_bits) / 1e6),
       bench::fmt(per_target_bits(independent, 4)),
       bench::fmt(static_cast<double>(independent.rounds) /
                  static_cast<double>(sm.rounds))});
  table.add_row({"costliest single target", bench::fmt_u(single_max_rounds),
                 "-", "-",
                 bench::fmt(static_cast<double>(single_max_rounds) /
                            static_cast<double>(sm.rounds))});
  table.print();
  std::printf(
      "\nshared/single round overhead: %.2fx (target <= ~1.3x); "
      "independent/shared: %.2fx rounds, %.2fx bits\n",
      static_cast<double>(sm.rounds) /
          static_cast<double>(single_max_rounds),
      static_cast<double>(independent.rounds) /
          static_cast<double>(sm.rounds),
      static_cast<double>(independent.message_bits) /
          static_cast<double>(sm.message_bits));

  artifact().add("multi_quantile_shared_q4", "network", n, 1, sm.rounds,
                 shared_secs, shared_secs);
  artifact().add("multi_quantile_independent_q4", "network", n, 1,
                 independent.rounds, independent_secs, shared_secs);
}

void engine_table(std::uint32_t n, const std::vector<double>& values) {
  const MultiQuantileParams params = batch_params();

  bench::Table table(
      {"executor", "threads", "rounds", "Mnode-rounds/s", "speedup"});
  double seq_secs;
  {
    Network net(n, kSeed);
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = multi_quantile(net, values, params);
    seq_secs = bench::seconds_since(t0);
    table.add_row({"Network (sequential)", "1", bench::fmt_u(r.rounds),
                   bench::fmt(bench::mnrs(n, r.rounds, seq_secs)), "1.00"});
  }
  for (unsigned threads : bench::thread_sweep(kThreadSweep)) {
    Engine engine(n, kSeed, FailureModel{}, EngineConfig{.threads = threads});
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = multi_quantile(engine, values, params);
    const double secs = bench::seconds_since(t0);
    table.add_row({"Engine pipeline", std::to_string(threads),
                   bench::fmt_u(r.rounds),
                   bench::fmt(bench::mnrs(n, r.rounds, secs)),
                   bench::fmt(seq_secs / secs)});
    artifact().add("multi_quantile_shared_q4", "engine", n, threads, r.rounds,
                   secs, seq_secs);
  }
  table.print();
}

void kll_table(std::uint32_t n, const std::vector<double>& values) {
  const auto keys = make_keys(values);
  const RankScale scale(keys);
  const MultiQuantileParams params = batch_params();

  Network net(n, kSeed);
  const MultiQuantileResult r = multi_quantile(net, values, params);
  const double gossip_bits_node =
      static_cast<double>(r.metrics.message_bits) / static_cast<double>(n);

  // A centralised KLL over the full stream: the quality target an optimal
  // mergeable sketch reaches with unbounded message size.
  KllSketch sketch(256, kSeed);
  for (const Key& k : keys) sketch.insert(k);
  const double kll_bits =
      static_cast<double>(sketch.message_bits(n));

  bench::Table table({"phi", "gossip max |err|", "KLL |err|",
                      "gossip bits/node", "KLL sketch bits"});
  for (std::size_t i = 0; i < params.phis.size(); ++i) {
    const double phi = params.phis[i];
    const auto summary =
        evaluate_outputs(scale, r.per_phi[i].outputs, phi, params.eps);
    const double kll_err =
        std::abs(scale.quantile_of(sketch.quantile(phi)) - phi);
    table.add_row({bench::fmt(phi, 3), bench::fmt(summary.max_abs_error, 4),
                   bench::fmt(kll_err, 4),
                   i == 0 ? bench::fmt(gossip_bits_node) : "\"",
                   i == 0 ? bench::fmt(kll_bits) : "\""});
  }
  table.print();
  std::printf(
      "\nKLL needs one O(k log n)-bit sketch per message; the shared "
      "gossip run stays at O(q log n) bits per round and still lands all "
      "targets within eps.\n");
}

void run() {
  bench::print_header(
      "E-MULTI", "shared-schedule multi-quantile",
      "paper+engineering: all q quantile targets answered in ONE gossip "
      "run — superimposed 2-TOURNAMENT lanes, one shared 3-TOURNAMENT and "
      "final sampling phase — vs q independent runs and a centralised KLL "
      "sketch");
  std::printf("hardware threads: %u\n\n",
              std::thread::hardware_concurrency());

  const std::uint32_t n = bench::smoke_capped(100000);
  const auto values = generate_values(Distribution::kUniformReal, n, 911);

  std::printf("## batch cost: q=4 targets (p50/p90/p99/p999), eps=0.1, "
              "n = %u\n\n", n);
  cost_table(n, values);

  std::printf("\n## engine thread sweep (shared run), n = %u\n\n", n);
  engine_table(n, values);

  std::printf("\n## accuracy per bit vs KLL (k=256), n = %u\n\n", n);
  kll_table(n, values);
}

}  // namespace
}  // namespace gq

int main() {
  gq::run();
  return gq::bench::exit_status();
}
