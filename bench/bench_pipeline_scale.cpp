// E-PIPE — full quantile pipelines on the engine vs the sequential path.
//
// PR 1 parallelised the substrate (pull rounds, median dynamics,
// tournaments); this bench measures the headline algorithms end-to-end:
// approx_quantile (2-TOURNAMENT + 3-TOURNAMENT) and exact_quantile
// (Algorithm 3, including scatter-based push-sum counting and the Step-7
// token split) at n = 10^5 … 10^7 with thread sweeps.
//
// Every engine configuration computes bit-identical results, round counts,
// and Metrics to the sequential path (pinned by tests/test_engine.cpp), so
// the tables are pure throughput comparisons.  GQ_BENCH_FAST=1 skips the
// 10^7 sweep; GQ_BENCH_SMOKE=1 shrinks everything to CI-smoke scale.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/approx_quantile.hpp"
#include "core/exact_quantile.hpp"
#include "engine/engine.hpp"
#include "engine/pipelines.hpp"
#include "sim/network.hpp"
#include "workload/distributions.hpp"

namespace gq {
namespace {

constexpr unsigned kThreadSweep[] = {1, 2, 4, 8};

bench::JsonArtifact& artifact() {
  static bench::JsonArtifact a("bench_pipeline_scale");
  return a;
}

void approx_table(std::uint32_t n) {
  const auto values = generate_values(Distribution::kUniformReal, n, 171);
  ApproxQuantileParams params;
  params.phi = 0.5;
  params.eps = 0.1;

  bench::Table table(
      {"executor", "threads", "block", "rounds", "Mnode-rounds/s", "speedup"});
  double seq_secs;
  std::uint64_t rounds;
  {
    Network net(n, 1234);
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = approx_quantile(net, values, params);
    seq_secs = bench::seconds_since(t0);
    rounds = r.rounds;
    table.add_row({"Network (sequential)", "1", "-", bench::fmt_u(rounds),
                   bench::fmt(bench::mnrs(n, rounds, seq_secs)), "1.00"});
    artifact().add("approx_quantile", "network", n, 1, rounds, seq_secs, seq_secs);
  }
  for (const std::uint32_t block : bench::block_sweep()) {
    const std::string pipeline = "approx_quantile" + bench::block_suffix(block);
    for (unsigned threads : bench::thread_sweep(kThreadSweep)) {
      Engine engine(n, 1234, FailureModel{},
                    EngineConfig{.threads = threads, .gather_block = block});
      const auto t0 = std::chrono::steady_clock::now();
      const auto r = approx_quantile(engine, values, params);
      const double secs = bench::seconds_since(t0);
      table.add_row({"Engine pipeline", std::to_string(threads),
                     block == 0 ? "auto" : std::to_string(block),
                     bench::fmt_u(r.rounds),
                     bench::fmt(bench::mnrs(n, r.rounds, secs)),
                     bench::fmt(seq_secs / secs)});
      artifact().add(pipeline.c_str(), "engine", n, threads, r.rounds, secs,
                     seq_secs);
    }
  }
  table.print();
}

void exact_table(std::uint32_t n) {
  const auto values = generate_values(Distribution::kUniformReal, n, 173);
  ExactQuantileParams params;
  params.phi = 0.5;

  bench::Table table(
      {"executor", "threads", "block", "rounds", "Mnode-rounds/s", "speedup"});
  double seq_secs;
  {
    Network net(n, 4321);
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = exact_quantile(net, values, params);
    seq_secs = bench::seconds_since(t0);
    table.add_row({"Network (sequential)", "1", "-", bench::fmt_u(r.rounds),
                   bench::fmt(bench::mnrs(n, r.rounds, seq_secs)), "1.00"});
    artifact().add("exact_quantile", "network", n, 1, r.rounds, seq_secs, seq_secs);
  }
  for (const std::uint32_t block : bench::block_sweep()) {
    const std::string pipeline = "exact_quantile" + bench::block_suffix(block);
    for (unsigned threads : bench::thread_sweep(kThreadSweep)) {
      Engine engine(n, 4321, FailureModel{},
                    EngineConfig{.threads = threads, .gather_block = block});
      const auto t0 = std::chrono::steady_clock::now();
      const auto r = exact_quantile(engine, values, params);
      const double secs = bench::seconds_since(t0);
      table.add_row({"Engine pipeline", std::to_string(threads),
                     block == 0 ? "auto" : std::to_string(block),
                     bench::fmt_u(r.rounds),
                     bench::fmt(bench::mnrs(n, r.rounds, secs)),
                     bench::fmt(seq_secs / secs)});
      artifact().add(pipeline.c_str(), "engine", n, threads, r.rounds, secs,
                     seq_secs);
    }
  }
  table.print();
}

void run() {
  bench::print_header(
      "E-PIPE", "engine-native quantile pipelines at scale",
      "engineering: approx_quantile and exact_quantile run end-to-end on "
      "the sharded engine (scatter-based push patterns included) with "
      "bit-identical results, turning thread count into pure speedup");
  std::printf("hardware threads: %u\n\n",
              std::thread::hardware_concurrency());

  const std::uint32_t k100k = bench::smoke_capped(100000);
  const std::uint32_t kMillion = bench::smoke_capped(1000000);

  std::printf("## approx_quantile (phi=0.5, eps=0.1), n = %u\n\n", k100k);
  approx_table(k100k);
  if (!bench::smoke_mode()) {
    std::printf("\n## approx_quantile (phi=0.5, eps=0.1), n = %u\n\n",
                kMillion);
    approx_table(kMillion);
    if (!bench::fast_mode()) {
      std::printf("\n## approx_quantile (phi=0.5, eps=0.1), n = 10^7\n\n");
      approx_table(10000000);
    }
  }

  std::printf("\n## exact_quantile (phi=0.5), n = %u\n\n", k100k);
  exact_table(k100k);
  if (!bench::smoke_mode()) {
    std::printf("\n## exact_quantile (phi=0.5), n = %u\n\n", kMillion);
    exact_table(kMillion);
  }
}

}  // namespace
}  // namespace gq

int main() {
  gq::run();
  return gq::bench::exit_status();
}
