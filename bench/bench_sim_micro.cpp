// M1 — microbenchmarks of the simulator substrate (google-benchmark).
//
// These quantify simulation throughput, not protocol behaviour: node-rounds
// per second for the core primitives, which bounds the network sizes the
// experiment harness can sweep.
#include <benchmark/benchmark.h>

#include <vector>

#include "agg/push_sum.hpp"
#include "agg/spread.hpp"
#include "core/three_tournament.hpp"
#include "core/two_tournament.hpp"
#include "sim/network.hpp"
#include "util/rng.hpp"
#include "workload/distributions.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

void BM_RngThroughput(benchmark::State& state) {
  Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rand_index(rng, 1000000));
  }
}
BENCHMARK(BM_RngThroughput);

void BM_NodeStreamDraw(benchmark::State& state) {
  Network net(1024, 7);
  net.begin_round();
  std::uint32_t v = 0;
  for (auto _ : state) {
    SplitMix64 s = net.node_stream(v);
    benchmark::DoNotOptimize(net.sample_peer(v, s));
    v = (v + 1) & 1023;
  }
}
BENCHMARK(BM_NodeStreamDraw);

void BM_PullRound(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Network net(n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.pull_round(32));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PullRound)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_PushSumRound(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto xs = generate_values(Distribution::kUniformReal, n, 1);
  for (auto _ : state) {
    Network net(n, 5);
    benchmark::DoNotOptimize(push_sum_average(net, xs, 1));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PushSumRound)->Arg(1 << 10)->Arg(1 << 14);

void BM_TwoTournamentIteration(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto keys =
      make_keys(generate_values(Distribution::kUniformReal, n, 2));
  for (auto _ : state) {
    Network net(n, 9);
    std::vector<Key> s(keys.begin(), keys.end());
    // eps chosen so the schedule has exactly a few iterations.
    benchmark::DoNotOptimize(two_tournament(net, s, 0.25, 0.2));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TwoTournamentIteration)->Arg(1 << 10)->Arg(1 << 14);

void BM_SpreadMax(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto keys =
      make_keys(generate_values(Distribution::kUniformReal, n, 3));
  for (auto _ : state) {
    Network net(n, 11);
    benchmark::DoNotOptimize(spread_max(net, keys));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SpreadMax)->Arg(1 << 10)->Arg(1 << 14);

}  // namespace
}  // namespace gq
