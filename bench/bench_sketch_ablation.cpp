// A4 — sketch ablation: accuracy vs space for the Appendix-A compaction
// machinery and the KLL sketch it approximates.
//
// The paper's Appendix argues even an optimal sketch cannot meet the
// O(log n)-bit message budget; this bench quantifies the accuracy/space
// frontier those arguments rest on.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "analysis/rank_stats.hpp"
#include "baselines/doubling.hpp"
#include "bench_common.hpp"
#include "sketch/kll.hpp"
#include "util/stats.hpp"
#include "workload/distributions.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

void run() {
  bench::print_header(
      "A4", "sketch ablation: accuracy vs space",
      "Appendix A / [KLL16]: rank error scales like 1/k; the message cost "
      "of shipping a sketch scales like k log n");

  {
    std::printf("### KLL sketch: rank error vs k (n = 50000 inserts)\n\n");
    constexpr std::size_t kInserts = 50000;
    const auto values =
        generate_values(Distribution::kUniformReal, kInserts, 7);
    const auto keys = make_keys(values);
    std::vector<Key> sorted(keys.begin(), keys.end());
    std::sort(sorted.begin(), sorted.end());

    bench::Table table({"k", "stored keys", "message bits (n=2^14)",
                        "max rank err", "err * k"});
    for (const std::size_t k : {32u, 64u, 128u, 256u, 512u}) {
      KllSketch sk(k, 3);
      for (const Key& key : keys) sk.insert(key);
      double max_err = 0.0;
      for (double q = 0.05; q < 1.0; q += 0.05) {
        const auto idx = static_cast<std::size_t>(q * (kInserts - 1));
        const double est = static_cast<double>(sk.rank(sorted[idx]));
        max_err = std::max(
            max_err, std::abs(est - static_cast<double>(idx + 1)) /
                         static_cast<double>(kInserts));
      }
      table.add_row({bench::fmt_u(k), bench::fmt_u(sk.space()),
                     bench::fmt_u(sk.message_bits(1 << 14)),
                     bench::fmt(max_err, 5),
                     bench::fmt(max_err * static_cast<double>(k), 2)});
    }
    table.print();
    std::printf(
        "Shape check: 'err * k' is roughly constant (the O(1/k) law), "
        "while message bits grow linearly in k —\nso meeting eps via a "
        "sketch costs Theta((1/eps) log n)-bit messages, above the "
        "model's O(log n) budget.\n\n");
  }

  {
    std::printf("### compaction-doubling: capacity constant sweep "
                "(n = 2^12, eps = 0.1, success window 2*eps)\n\n");
    constexpr std::uint32_t kN = 1 << 12;
    const std::size_t trials = bench::scaled_trials(3);
    bench::Table table({"capacity const", "buffer keys", "max msg bits",
                        "success", "mean |err|"});
    for (const double c : {1.0, 2.0, 4.0, 8.0}) {
      RunningStats buf, bits, success, err;
      for (std::size_t t = 0; t < trials; ++t) {
        const auto values =
            generate_values(Distribution::kGaussian, kN, 90 + t);
        const auto keys = make_keys(values);
        const RankScale scale(keys);
        Network net(kN, 13100 + 41 * t);
        CompactionParams p;
        p.phi = 0.5;
        p.eps = 0.1;
        p.capacity_constant = c;
        const auto r = compaction_quantile(net, values, p);
        const auto s = evaluate_outputs(scale, r.outputs, 0.5, 0.2);
        buf.add(static_cast<double>(r.final_buffer_size));
        bits.add(static_cast<double>(r.max_message_bits));
        success.add(s.frac_within_eps);
        err.add(s.mean_abs_error);
      }
      table.add_row({bench::fmt(c, 0), bench::fmt(buf.mean(), 0),
                     bench::fmt(bits.mean(), 0),
                     bench::fmt_pct(success.mean()),
                     bench::fmt(err.mean(), 4)});
    }
    table.print();
    std::printf(
        "Shape check: halving the buffer capacity doubles the compaction "
        "error term of Corollary A.4; the\ndefault constant (4) keeps the "
        "compaction loss well below the sampling error.\n\n");
  }
}

}  // namespace
}  // namespace gq

int main() {
  gq::run();
  return gq::bench::exit_status();
}
