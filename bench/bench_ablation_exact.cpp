// A3 — ablation of the exact algorithm's strategy and bracketing slack.
//
// Strategy: the paper's duplication route vs the selection endgame vs the
// cost-model auto choice.  Slack: wider brackets make each iteration
// cheaper to trust but slower to converge.
#include <cstdio>

#include "analysis/rank_stats.hpp"
#include "analysis/theory_bounds.hpp"
#include "bench_common.hpp"
#include "core/exact_quantile.hpp"
#include "util/stats.hpp"
#include "workload/distributions.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

const char* strategy_name(ExactStrategy s) {
  switch (s) {
    case ExactStrategy::kAuto: return "auto";
    case ExactStrategy::kPreferDuplication: return "duplication";
    case ExactStrategy::kPreferEndgame: return "endgame";
  }
  return "?";
}

void run() {
  bench::print_header(
      "A3", "ablation: exact-algorithm strategy and bracketing slack",
      "Algorithm 3's duplication route vs selection endgame; slack choice "
      "trades iteration count against per-iteration cost");
  constexpr std::uint32_t kN = 1 << 14;
  const double phi = 0.37;
  const std::size_t trials = bench::scaled_trials(3);

  {
    std::printf("### strategy sweep (n = 2^14, phi = %.2f)\n\n", phi);
    bench::Table table({"strategy", "rounds", "bracket iters",
                        "endgame phases", "exact answers"});
    for (const auto strategy :
         {ExactStrategy::kAuto, ExactStrategy::kPreferDuplication,
          ExactStrategy::kPreferEndgame}) {
      RunningStats rounds, iters, phases, correct;
      for (std::size_t t = 0; t < trials; ++t) {
        const auto values =
            generate_values(Distribution::kUniformReal, kN, 130 + t);
        const RankScale scale(make_keys(values));
        Network net(kN, 10100 + 31 * t);
        ExactQuantileParams params;
        params.phi = phi;
        params.strategy = strategy;
        const auto r = exact_quantile(net, values, params);
        rounds.add(static_cast<double>(r.rounds));
        iters.add(static_cast<double>(r.iterations));
        phases.add(static_cast<double>(r.endgame_phases));
        correct.add(
            r.answer.value == scale.exact_quantile(phi).value ? 1.0 : 0.0);
      }
      table.add_row({strategy_name(strategy), bench::fmt(rounds.mean(), 0),
                     bench::fmt(iters.mean(), 1),
                     bench::fmt(phases.mean(), 1),
                     bench::fmt_pct(correct.mean(), 0)});
    }
    table.print();
  }

  {
    const double floor_eps = eps_tournament_floor(kN);
    std::printf("### slack sweep (duplication strategy; floor = %s)\n\n",
                bench::fmt(floor_eps, 4).c_str());
    bench::Table table({"slack", "rounds", "bracket iters",
                        "endgame phases", "exact answers"});
    for (const double mult : {1.0, 1.5, 2.0, 3.0}) {
      RunningStats rounds, iters, phases, correct;
      for (std::size_t t = 0; t < trials; ++t) {
        const auto values =
            generate_values(Distribution::kUniformReal, kN, 140 + t);
        const RankScale scale(make_keys(values));
        Network net(kN, 11100 + 37 * t);
        ExactQuantileParams params;
        params.phi = phi;
        params.strategy = ExactStrategy::kPreferDuplication;
        params.slack = floor_eps * mult;
        const auto r = exact_quantile(net, values, params);
        rounds.add(static_cast<double>(r.rounds));
        iters.add(static_cast<double>(r.iterations));
        phases.add(static_cast<double>(r.endgame_phases));
        correct.add(
            r.answer.value == scale.exact_quantile(phi).value ? 1.0 : 0.0);
      }
      table.add_row({bench::fmt(floor_eps * mult, 4),
                     bench::fmt(rounds.mean(), 0),
                     bench::fmt(iters.mean(), 1),
                     bench::fmt(phases.mean(), 1),
                     bench::fmt_pct(correct.mean(), 0)});
    }
    table.print();
    std::printf(
        "Shape check: wider slack fattens the candidate window, reducing "
        "the duplication multiplier and\nslowing convergence; correctness "
        "is unaffected (exact-count guards + verification).\n\n");
  }
}

}  // namespace
}  // namespace gq

int main() {
  gq::run();
  return gq::bench::exit_status();
}
