#include "bench_common.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <limits>
#include <thread>

#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"

namespace gq::bench {

namespace {

std::atomic<bool> g_artifact_failed{false};

// A set-but-empty trace env is treated as unset: pointing an artifact at
// "" is a shell quoting accident, not a request.
const char* env_path(const char* name) {
  const char* s = std::getenv(name);
  return (s != nullptr && s[0] != '\0') ? s : nullptr;
}

// Telemetry switches on before main() so spans cover the whole run,
// including any setup a bench does in static scope.
const bool g_trace_requested = [] {
  const bool want = env_path("GQ_TRACE") != nullptr ||
                    env_path("GQ_TRACE_JSON") != nullptr ||
                    env_path("GQ_TRACE_PROM") != nullptr;
  if (want) telemetry::enable();
  return want;
}();

}  // namespace

bool trace_requested() { return g_trace_requested; }

void note_artifact_failure() {
  g_artifact_failed.store(true, std::memory_order_relaxed);
}

int exit_status() {
  static bool flushed = false;
  if (!flushed && g_trace_requested) {
    flushed = true;
    if (const char* path = env_path("GQ_TRACE")) {
      if (!telemetry::write_chrome_trace(path)) {
        std::fprintf(stderr, "GQ_TRACE: failed to write %s\n", path);
        note_artifact_failure();
      }
    }
    if (const char* path = env_path("GQ_TRACE_JSON")) {
      if (!telemetry::write_jsonl(path)) {
        std::fprintf(stderr, "GQ_TRACE_JSON: failed to write %s\n", path);
        note_artifact_failure();
      }
    }
    if (const char* path = env_path("GQ_TRACE_PROM")) {
      const std::string text = telemetry::prometheus_text();
      std::FILE* f = std::fopen(path, "w");
      bool ok = f != nullptr;
      if (f != nullptr) {
        ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
        ok = (std::fclose(f) == 0) && ok;
      }
      if (!ok) {
        std::fprintf(stderr, "GQ_TRACE_PROM: failed to write %s\n", path);
        note_artifact_failure();
      }
    }
    const std::string phase = telemetry::phase_summary();
    if (!phase.empty()) std::fprintf(stderr, "\n%s", phase.c_str());
    const std::string util = telemetry::utilization_summary();
    if (!util.empty()) std::fprintf(stderr, "\n%s", util.c_str());
  }
  return g_artifact_failed.load(std::memory_order_relaxed) ? 1 : 0;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double mnrs(std::uint64_t nodes, std::uint64_t rounds, double seconds) {
  return static_cast<double>(nodes) * static_cast<double>(rounds) / seconds /
         1e6;
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::print() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      if (c < row.size()) widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& cells) {
    std::printf("|");
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      if (c == 0) {
        std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
      } else {
        std::printf(" %*s |", static_cast<int>(widths[c]), cell.c_str());
      }
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::printf("|");
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    for (std::size_t i = 0; i < widths[c] + 2; ++i) std::printf("-");
    std::printf("|");
  }
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
  std::printf("\n");
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_u(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string fmt_pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, 100.0 * fraction);
  return buf;
}

void print_header(const std::string& id, const std::string& title,
                  const std::string& claim) {
  std::printf("## %s — %s\n\nPaper claim: %s\n\n", id.c_str(), title.c_str(),
              claim.c_str());
}

double scale() {
  if (const char* s = std::getenv("GQ_BENCH_SCALE")) {
    const double v = std::atof(s);
    if (v > 0.0) return v;
  }
  return 1.0;
}

namespace {

bool matches_any(const char* value, std::initializer_list<const char*> names) {
  for (const char* name : names) {
    if (std::strcmp(value, name) == 0) return true;
  }
  return false;
}

// Boolean env parsing: 1/true/yes/on are on, 0/false/no/off/"" are off, and
// anything else is a hard error — a typo'd CI flag must fail the job, not
// silently run the wrong problem sizes.
bool env_flag(const char* name) {
  const char* s = std::getenv(name);
  if (s == nullptr || s[0] == '\0') return false;
  if (matches_any(s, {"1", "true", "yes", "on"})) return true;
  if (matches_any(s, {"0", "false", "no", "off"})) return false;
  std::fprintf(stderr,
               "%s=%s is not a boolean; use 1/true/yes/on or 0/false/no/off\n",
               name, s);
  std::exit(2);
}

}  // namespace

bool fast_mode() { return env_flag("GQ_BENCH_FAST"); }

bool smoke_mode() { return env_flag("GQ_BENCH_SMOKE"); }

std::uint32_t smoke_capped(std::uint32_t n, std::uint32_t smoke_n) {
  return smoke_mode() && n > smoke_n ? smoke_n : n;
}

std::size_t scaled_trials(std::size_t base) {
  const double t = std::round(static_cast<double>(base) * scale());
  return static_cast<std::size_t>(std::max(1.0, t));
}

namespace {

// Comma-separated positive integers, with the same hard-error policy as
// env_flag: a typo'd sweep must fail the run, not silently measure the
// wrong configurations.  Values are bounded to uint32 (both consumers —
// thread counts and gather blocks — are 32-bit knobs), and negatives are
// rejected explicitly: strtoull would happily wrap "-1" to 2^64-1.
std::vector<std::uint64_t> env_u64_list(const char* name) {
  std::vector<std::uint64_t> out;
  const char* s = std::getenv(name);
  if (s == nullptr || s[0] == '\0') return out;
  const auto reject = [&] {
    std::fprintf(stderr,
                 "%s=%s is not a comma-separated list of positive 32-bit "
                 "integers\n",
                 name, s);
    std::exit(2);
  };
  const char* p = s;
  while (*p != '\0') {
    // Only a bare digit may start an entry: strtoull itself would skip
    // whitespace and accept signs, reopening the wrap-around hole.
    if (*p < '0' || *p > '9') reject();
    char* end = nullptr;
    const unsigned long long v = std::strtoull(p, &end, 10);
    if (end == p || v == 0 ||
        v > std::numeric_limits<std::uint32_t>::max()) {
      reject();
    }
    out.push_back(v);
    p = end;
    if (*p == ',') {
      ++p;
      if (*p == '\0') reject();  // trailing comma is a typo, not a sweep
    } else if (*p != '\0') {
      reject();
    }
  }
  return out;
}

}  // namespace

std::vector<unsigned> thread_sweep(std::span<const unsigned> fallback) {
  const std::vector<std::uint64_t> env = env_u64_list("GQ_BENCH_THREADS");
  if (env.empty()) return {fallback.begin(), fallback.end()};
  std::vector<unsigned> out;
  out.reserve(env.size());
  for (const std::uint64_t v : env) out.push_back(static_cast<unsigned>(v));
  return out;
}

std::vector<std::uint32_t> block_sweep() {
  const std::vector<std::uint64_t> env = env_u64_list("GQ_BENCH_BLOCK");
  if (env.empty()) return {0};
  std::vector<std::uint32_t> out;
  out.reserve(env.size());
  for (const std::uint64_t v : env) {
    out.push_back(static_cast<std::uint32_t>(v));
  }
  return out;
}

std::string block_suffix(std::uint32_t gather_block) {
  if (gather_block == 0) return {};
  return "@b" + std::to_string(gather_block);
}

JsonArtifact::JsonArtifact(std::string bench_name)
    : bench_(std::move(bench_name)) {
  if (const char* label = std::getenv("GQ_BENCH_LABEL")) label_ = label;
}

void JsonArtifact::add(PerfRecord record) {
  if (record.bench.empty()) record.bench = bench_;
  records_.push_back(std::move(record));
}

JsonArtifact::~JsonArtifact() {
  const char* path = std::getenv("GQ_BENCH_JSON");
  if (path == nullptr || path[0] == '\0' || records_.empty()) return;
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "GQ_BENCH_JSON: cannot open %s for writing\n", path);
    note_artifact_failure();
    return;
  }
  // Strings written here are bench/pipeline identifiers and env labels —
  // no escaping beyond quotes is attempted, so keep labels simple.
  std::fprintf(f, "{\n  \"schema\": \"gq-bench-engine/1\",\n");
  std::fprintf(f, "  \"bench\": \"%s\",\n", bench_.c_str());
  std::fprintf(f, "  \"label\": \"%s\",\n", label_.c_str());
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"smoke\": %s,\n", smoke_mode() ? "true" : "false");
  std::fprintf(f, "  \"records\": [\n");
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const PerfRecord& r = records_[i];
    const double speedup =
        (r.seq_seconds > 0.0 && r.seconds > 0.0) ? r.seq_seconds / r.seconds
                                                 : 0.0;
    std::fprintf(
        f,
        "    {\"bench\": \"%s\", \"label\": \"%s\", \"pipeline\": \"%s\", "
        "\"executor\": \"%s\", \"n\": %llu, \"threads\": %u, "
        "\"rounds\": %llu, \"seconds\": %.6f, \"seq_seconds\": %.6f, "
        "\"speedup_vs_sequential\": %.4f",
        r.bench.c_str(), label_.c_str(), r.pipeline.c_str(),
        r.executor.c_str(), static_cast<unsigned long long>(r.n), r.threads,
        static_cast<unsigned long long>(r.rounds), r.seconds, r.seq_seconds,
        speedup);
    // Throughput fields only appear on throughput rows, so the committed
    // latency trajectory keeps its exact byte shape.
    if (r.higher_is_better) {
      std::fprintf(f, ", \"qps\": %.2f, \"higher_is_better\": true", r.qps);
    }
    // Optional phase breakdown: descriptive metadata only, never gated on
    // (scripts/bench_diff passes it through untouched).
    if (!r.phases.empty()) {
      std::fprintf(f, ", \"phases\": {");
      for (std::size_t p = 0; p < r.phases.size(); ++p) {
        std::fprintf(f, "%s\"%s\": %.6f", p > 0 ? ", " : "",
                     r.phases[p].first.c_str(), r.phases[p].second);
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "}%s\n", i + 1 < records_.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  const bool ok = std::ferror(f) == 0;
  if (std::fclose(f) != 0 || !ok) {
    std::fprintf(stderr, "GQ_BENCH_JSON: failed to write %s\n", path);
    note_artifact_failure();
  }
}

}  // namespace gq::bench
