#include "bench_common.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace gq::bench {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::print() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      if (c < row.size()) widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& cells) {
    std::printf("|");
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      if (c == 0) {
        std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
      } else {
        std::printf(" %*s |", static_cast<int>(widths[c]), cell.c_str());
      }
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::printf("|");
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    for (std::size_t i = 0; i < widths[c] + 2; ++i) std::printf("-");
    std::printf("|");
  }
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
  std::printf("\n");
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_u(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string fmt_pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, 100.0 * fraction);
  return buf;
}

void print_header(const std::string& id, const std::string& title,
                  const std::string& claim) {
  std::printf("## %s — %s\n\nPaper claim: %s\n\n", id.c_str(), title.c_str(),
              claim.c_str());
}

double scale() {
  if (const char* s = std::getenv("GQ_BENCH_SCALE")) {
    const double v = std::atof(s);
    if (v > 0.0) return v;
  }
  return 1.0;
}

bool fast_mode() {
  const char* s = std::getenv("GQ_BENCH_FAST");
  return s != nullptr && s[0] == '1';
}

bool smoke_mode() {
  const char* s = std::getenv("GQ_BENCH_SMOKE");
  return s != nullptr && s[0] == '1';
}

std::uint32_t smoke_capped(std::uint32_t n, std::uint32_t smoke_n) {
  return smoke_mode() && n > smoke_n ? smoke_n : n;
}

std::size_t scaled_trials(std::size_t base) {
  const double t = std::round(static_cast<double>(base) * scale());
  return static_cast<std::size_t>(std::max(1.0, t));
}

}  // namespace gq::bench
