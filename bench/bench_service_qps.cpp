// E-SVC — streaming service throughput: sustained ingest + query QPS.
//
// Measures the serving layer (src/service/) end to end: a fleet of nodes
// streams values into bounded KLL summaries while quantile / rank / CDF
// queries re-run the engine pipelines on demand.  Three angles:
//
//   1. warm vs cold quantile serving — the tentpole claim: a warm session
//      (persistent engine, interned table handed to the kernels via
//      adopt_intern_session) vs constructing a fresh service per query,
//   2. batched multi-tenant CDF probes (gossip_count3 folds three probes
//      into one diffusion), swept over query batch size, and
//   3. the mixed steady state: interleaved ingest and queries, so every
//      query pays the epoch seal and the session's incremental extend.
//
// Records land in BENCH_engine.json as executor "service" with qps +
// higher_is_better set, so scripts/bench_diff gates throughput in the
// correct direction (bigger is better, unlike the latency rows).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "service/quantile_service.hpp"
#include "workload/distributions.hpp"

namespace gq {
namespace {

constexpr unsigned kThreadSweep[] = {1, 2, 8};

bench::JsonArtifact& artifact() {
  static bench::JsonArtifact a("bench_service_qps");
  return a;
}

ServiceConfig config_for(unsigned threads) {
  ServiceConfig cfg;
  cfg.seed = 4242;
  cfg.sketch_k = 64;
  cfg.engine.threads = threads;
  return cfg;
}

void ingest_all(QuantileService& service, std::uint32_t n,
                std::size_t per_node, const std::vector<double>& values) {
  for (std::uint32_t v = 0; v < n; ++v) {
    service.ingest(v, std::span<const double>(values)
                          .subspan(v * per_node, per_node));
  }
}

// Angle 1: warm session vs cold per-query construction.
void warm_vs_cold_table(std::uint32_t n, unsigned threads,
                        std::size_t queries) {
  constexpr std::size_t kPerNode = 16;
  const auto values =
      generate_values(Distribution::kUniformReal, n * kPerNode, 7);

  QueryRequest request;
  request.kind = QueryKind::kQuantile;
  request.phi = 0.5;

  bench::Table table({"pipeline", "threads", "queries", "qps", "speedup"});

  QuantileService warm(n, config_for(threads));
  ingest_all(warm, n, kPerNode, values);
  (void)warm.query(request);  // pay the cold intern outside the timer
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t rounds = 0;
  for (std::size_t q = 0; q < queries; ++q) rounds += warm.query(request).rounds;
  const double warm_secs = bench::seconds_since(t0);
  const double warm_qps = static_cast<double>(queries) / warm_secs;

  // Cold: a fresh service (fresh engine, thread pool, un-interned session)
  // per query — what callers paid before the service layer existed.
  const std::size_t cold_queries = std::max<std::size_t>(1, queries / 8);
  const auto t1 = std::chrono::steady_clock::now();
  for (std::size_t q = 0; q < cold_queries; ++q) {
    QuantileService cold(n, config_for(threads));
    ingest_all(cold, n, kPerNode, values);
    rounds += cold.query(request).rounds;
  }
  const double cold_secs = bench::seconds_since(t1);
  const double cold_qps = static_cast<double>(cold_queries) / cold_secs;

  table.add_row({"service_quantile_cold", std::to_string(threads),
                 bench::fmt_u(cold_queries), bench::fmt(cold_qps),
                 "1.00"});
  table.add_row({"service_quantile_warm", std::to_string(threads),
                 bench::fmt_u(queries), bench::fmt(warm_qps),
                 bench::fmt(warm_qps / cold_qps)});
  table.print();

  artifact().add(bench::PerfRecord{.pipeline = "service_quantile_cold",
                                   .executor = "service",
                                   .n = n,
                                   .threads = threads,
                                   .seconds = cold_secs,
                                   .qps = cold_qps,
                                   .higher_is_better = true});
  artifact().add(bench::PerfRecord{.pipeline = "service_quantile_warm",
                                   .executor = "service",
                                   .n = n,
                                   .threads = threads,
                                   .seconds = warm_secs,
                                   .qps = warm_qps,
                                   .higher_is_better = true});
}

// Angle 2: batched CDF probes per diffusion, swept over batch size.
void cdf_batch_table(std::uint32_t n, unsigned threads, std::size_t trials) {
  constexpr std::size_t kPerNode = 16;
  const auto values =
      generate_values(Distribution::kGaussian, n * kPerNode, 11);
  QuantileService service(n, config_for(threads));
  ingest_all(service, n, kPerNode, values);

  bench::Table table({"pipeline", "threads", "probes/query", "probe qps"});
  for (const std::size_t probes : {1u, 3u, 9u}) {
    QueryRequest request;
    request.kind = QueryKind::kCdf;
    for (std::size_t p = 0; p < probes; ++p) {
      request.cdf_points.push_back(-2.0 +
                                   4.0 * static_cast<double>(p + 1) /
                                       static_cast<double>(probes + 1));
    }
    (void)service.query(request);  // warm
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t t = 0; t < trials; ++t) (void)service.query(request);
    const double secs = bench::seconds_since(t0);
    const double probe_qps =
        static_cast<double>(trials * probes) / secs;
    const std::string name = "service_cdf_x" + std::to_string(probes);
    table.add_row({name, std::to_string(threads), std::to_string(probes),
                   bench::fmt(probe_qps)});
    artifact().add(bench::PerfRecord{.pipeline = name,
                                     .executor = "service",
                                     .n = n,
                                     .threads = threads,
                                     .seconds = secs,
                                     .qps = probe_qps,
                                     .higher_is_better = true});
  }
  table.print();
}

// Angle 3: interleaved ingest + query — every query seals a new epoch, so
// the session's incremental extend path (not the full re-sort) is the hot
// path being measured.
void mixed_steady_state_table(std::uint32_t n, unsigned threads,
                              std::size_t queries) {
  constexpr std::size_t kPerNode = 16;
  const auto values =
      generate_values(Distribution::kExponential, n * (kPerNode + 4), 13);
  QuantileService service(n, config_for(threads));
  ingest_all(service, n, kPerNode, values);

  QueryRequest request;
  request.kind = QueryKind::kQuantile;
  request.phi = 0.9;
  (void)service.query(request);

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t q = 0; q < queries; ++q) {
    // A trickle of fresh values lands on a rotating node between queries.
    service.ingest(static_cast<std::uint32_t>(q % n),
                   values[(n * kPerNode + q) % values.size()]);
    (void)service.query(request);
  }
  const double secs = bench::seconds_since(t0);
  const double qps = static_cast<double>(queries) / secs;

  const ServiceStats stats = service.stats();
  bench::Table table(
      {"pipeline", "threads", "queries", "qps", "extends", "rebuilds"});
  table.add_row({"service_mixed_ingest_query", std::to_string(threads),
                 bench::fmt_u(queries), bench::fmt(qps),
                 bench::fmt_u(stats.session_extends),
                 bench::fmt_u(stats.session_rebuilds)});
  table.print();

  artifact().add(bench::PerfRecord{.pipeline = "service_mixed_ingest_query",
                                   .executor = "service",
                                   .n = n,
                                   .threads = threads,
                                   .seconds = secs,
                                   .qps = qps,
                                   .higher_is_better = true});
}

}  // namespace
}  // namespace gq

int main() {
  using namespace gq;
  bench::print_header(
      "E-SVC", "streaming service throughput",
      "long-lived sessions amortise engine construction and the interned "
      "instance across queries; batched probes share diffusions");

  const std::uint32_t n = bench::smoke_capped(1u << 16, 2000);
  const auto queries = bench::scaled_trials(bench::smoke_mode() ? 6 : 40);

  for (unsigned threads : bench::thread_sweep(kThreadSweep)) {
    std::printf("### n = %u, threads = %u\n\n", n, threads);
    warm_vs_cold_table(n, threads, queries);
    cdf_batch_table(n, threads, queries);
    mixed_steady_state_table(n, threads, queries);
  }
  return bench::exit_status();
}
