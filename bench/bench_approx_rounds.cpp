// E2a/E2b — Theorem 1.2: eps-approximate phi-quantile in
// O(log log n + log 1/eps) rounds.
//
// Table A sweeps n at fixed eps (rounds should grow like log log n);
// Table B sweeps eps at fixed n (rounds should grow like log 1/eps until
// eps crosses the tournament floor, where the exact-bootstrap route of the
// theorem takes over).
#include <cmath>
#include <cstdio>
#include <vector>

#include "analysis/rank_stats.hpp"
#include "analysis/theory_bounds.hpp"
#include "bench_common.hpp"
#include "core/approx_quantile.hpp"
#include "util/stats.hpp"
#include "workload/distributions.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

struct Measured {
  double rounds = 0;
  double success = 0;
  double p1 = 0, p2 = 0;
  bool fallback = false;
};

Measured measure(std::uint32_t n, double phi, double eps, std::size_t trials,
                 std::uint64_t seed0) {
  Measured m;
  for (std::size_t t = 0; t < trials; ++t) {
    const auto values =
        generate_values(Distribution::kUniformReal, n, seed0 + t);
    const RankScale scale(make_keys(values));
    Network net(n, 7000 + seed0 + t);
    ApproxQuantileParams params;
    params.phi = phi;
    params.eps = eps;
    const auto r = approx_quantile(net, values, params);
    m.rounds += static_cast<double>(r.rounds);
    m.p1 += static_cast<double>(r.phase1_iterations);
    m.p2 += static_cast<double>(r.phase2_iterations);
    m.fallback = m.fallback || r.used_exact_fallback;
    m.success +=
        evaluate_outputs(scale, r.outputs, phi, eps).frac_within_eps;
  }
  const auto tt = static_cast<double>(trials);
  m.rounds /= tt;
  m.success /= tt;
  m.p1 /= tt;
  m.p2 /= tt;
  return m;
}

void run() {
  bench::print_header(
      "E2", "approximate quantile round complexity",
      "Theorem 1.2: O(log log n + log 1/eps) rounds, any eps(n) > 0");
  const std::size_t trials = bench::scaled_trials(3);

  {
    std::printf("### E2a: rounds vs n (eps = 0.15, phi = 0.3)\n\n");
    bench::Table table({"n", "loglog n", "rounds", "phase1 iters",
                        "phase2 iters", "all-nodes success"});
    std::vector<std::uint32_t> sizes = {1u << 12, 1u << 13, 1u << 14,
                                        1u << 16, 1u << 18};
    if (bench::fast_mode()) sizes.pop_back();
    for (const std::uint32_t n : sizes) {
      const auto m = measure(n, 0.3, 0.15, trials, 100);
      table.add_row({bench::fmt_u(n),
                     bench::fmt(std::log2(std::log2(double(n))), 2),
                     bench::fmt(m.rounds, 1), bench::fmt(m.p1, 1),
                     bench::fmt(m.p2, 1), bench::fmt_pct(m.success)});
    }
    table.print();
  }

  {
    constexpr std::uint32_t kN = 1 << 16;
    std::printf("### E2b: rounds vs eps (n = %u, phi = 0.3; floor = %s)\n\n",
                kN, bench::fmt(eps_tournament_floor(kN), 3).c_str());
    bench::Table table({"eps", "log2(1/eps)", "route", "rounds",
                        "all-nodes success"});
    for (const double eps :
         {0.3, 0.2, 0.15, 0.1, 0.075, 0.05, 0.02, 0.01}) {
      if (bench::fast_mode() && eps < 0.05) continue;
      const auto m = measure(kN, 0.3, eps, trials, 300);
      table.add_row({bench::fmt(eps, 3), bench::fmt(std::log2(1.0 / eps), 2),
                     m.fallback ? "exact-bootstrap" : "tournament",
                     bench::fmt(m.rounds, 1), bench::fmt_pct(m.success)});
    }
    table.print();
    std::printf(
        "Shape check: rounds grow ~linearly in log2(1/eps) on the "
        "tournament route; below the floor the exact\nbootstrap takes over "
        "at O(log n) rounds — the paper's Theorem 1.2 route for tiny eps "
        "(log 1/eps >= c log n).\n\n");
  }
}

}  // namespace
}  // namespace gq

int main() {
  gq::run();
  return gq::bench::exit_status();
}
