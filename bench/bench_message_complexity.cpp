// E8 — message and bit complexity of every protocol vs n.
//
// The model allows O(log n)-bit messages; this bench verifies the budget
// and reports total traffic so deployments can size their networks.
#include <cmath>
#include <cstdio>
#include <vector>

#include "baselines/kdg03_quantile.hpp"
#include "bench_common.hpp"
#include "core/approx_quantile.hpp"
#include "core/exact_quantile.hpp"
#include "core/own_rank.hpp"
#include "workload/distributions.hpp"

namespace gq {
namespace {

void add_row(bench::Table& table, const char* name, std::uint32_t n,
             const Metrics& m) {
  table.add_row({name, bench::fmt_u(n), bench::fmt_u(m.rounds),
                 bench::fmt_u(m.messages),
                 bench::fmt(static_cast<double>(m.messages) / n, 1),
                 bench::fmt(static_cast<double>(m.message_bits) / 1e6, 2),
                 bench::fmt_u(m.max_message_bits)});
}

void run() {
  bench::print_header(
      "E8", "message complexity",
      "all protocols respect the O(log n)-bit message budget; traffic is "
      "O(n) messages per round");
  bench::Table table({"protocol", "n", "rounds", "messages", "msgs/node",
                      "total Mbits", "max msg bits"});

  // Sizes start at 2^12 so eps = 0.15 stays above the tournament floor and
  // every row exercises the protocol it names.
  std::vector<std::uint32_t> sizes = {1u << 12, 1u << 14, 1u << 16};
  if (bench::fast_mode()) sizes.pop_back();
  for (const std::uint32_t n : sizes) {
    const auto values =
        generate_values(Distribution::kUniformReal, n, 90);
    {
      Network net(n, 7100);
      ApproxQuantileParams p;
      p.phi = 0.5;
      p.eps = 0.15;
      (void)approx_quantile(net, values, p);
      add_row(table, "approx (eps=0.15)", n, net.metrics());
    }
    {
      Network net(n, 7200);
      ExactQuantileParams p;
      p.phi = 0.5;
      (void)exact_quantile(net, values, p);
      add_row(table, "exact (ours)", n, net.metrics());
    }
    {
      Network net(n, 7300);
      Kdg03Params p;
      p.phi = 0.5;
      (void)kdg03_exact_quantile(net, values, p);
      add_row(table, "exact (KDG03)", n, net.metrics());
    }
    // Own-rank's inner runs need eps/4 above the floor: only meaningful
    // from n = 2^14 up.
    if (n >= (1u << 14)) {
      Network net(n, 7400);
      OwnRankParams p;
      p.eps = 0.45;
      (void)own_rank(net, values, p);
      add_row(table, "own-rank (eps=0.45)", n, net.metrics());
    }
  }
  table.print();
  std::printf(
      "Budget check: 'max msg bits' stays within a small constant of "
      "log2(n) words for every protocol\n(push-sum pairs are the constant "
      "above the key size; token weights add only bit_width(multiplier) "
      "bits).\n\n");
}

}  // namespace
}  // namespace gq

int main() {
  gq::run();
  return gq::bench::exit_status();
}
