// A1 — ablation of the delta-truncation (Lemma 2.4): executing the final
// 2-TOURNAMENT iteration with probability delta per node is what parks the
// high-side fraction exactly on T = 1/2 - eps.  Without it the tail
// overshoots by up to eps and the end-to-end accuracy degrades.
#include <cmath>
#include <cstdio>

#include "analysis/rank_stats.hpp"
#include "bench_common.hpp"
#include "core/approx_quantile.hpp"
#include "core/two_tournament.hpp"
#include "util/stats.hpp"
#include "workload/distributions.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

void run() {
  bench::print_header(
      "A1", "ablation: delta-truncated final iteration (Lemma 2.4)",
      "with truncation |H_t|/n = T +- eps/2; without it the square "
      "overshoots");
  constexpr std::uint32_t kN = 1 << 16;
  const double phi = 0.25;
  const std::size_t trials = bench::scaled_trials(3);

  bench::Table table({"eps", "variant", "|H_t|/n", "target T",
                      "overshoot", "end-to-end success"});
  for (const double eps : {0.15, 0.1, 0.05}) {
    for (const bool truncate : {true, false}) {
      RunningStats tail, success;
      for (std::size_t t = 0; t < trials; ++t) {
        const auto keys = make_keys(
            generate_values(Distribution::kUniformReal, kN, 95 + t));
        const RankScale scale(keys);

        Network net(kN, 8100 + 23 * t);
        std::vector<Key> state(keys.begin(), keys.end());
        two_tournament(net, state, phi, eps, truncate);
        std::size_t high = 0;
        for (const Key& k : state) {
          if (scale.quantile_of(k) > phi + eps) ++high;
        }
        tail.add(static_cast<double>(high) / kN);

        Network net2(kN, 8200 + 23 * t);
        ApproxQuantileParams params;
        params.phi = phi;
        params.eps = eps;
        params.truncate_last = truncate;
        const auto r = approx_quantile_keys(net2, keys, params);
        success.add(
            evaluate_outputs(scale, r.outputs, phi, eps).frac_within_eps);
      }
      const double target = 0.5 - eps;
      table.add_row({bench::fmt(eps, 2), truncate ? "truncated" : "plain",
                     bench::fmt(tail.mean(), 4), bench::fmt(target, 4),
                     bench::fmt(target - tail.mean(), 4),
                     bench::fmt_pct(success.mean())});
    }
  }
  table.print();
  std::printf(
      "Shape check: the plain variant undershoots T (the high side "
      "squares straight past it), biasing the\nmedian of the Phase-II "
      "configuration away from the target window.\n\n");
}

}  // namespace
}  // namespace gq

int main() {
  gq::run();
  return gq::bench::exit_status();
}
