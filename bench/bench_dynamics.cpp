// E9 — gossip dynamics comparison: the paper's scheduled tournaments vs the
// prior-art median rule [DGM+11] and a frugal O(1)-state walk [MMS13].
//
// Also writes convergence_trace.csv: per-iteration tail fractions of all
// three dynamics, the "figure" behind the table.
#include <cmath>
#include <cstdio>

#include "analysis/rank_stats.hpp"
#include "baselines/frugal.hpp"
#include "baselines/median_rule.hpp"
#include "bench_common.hpp"
#include "core/approx_quantile.hpp"
#include "core/three_tournament.hpp"
#include "sim/trace.hpp"
#include "util/stats.hpp"
#include "workload/distributions.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

void run() {
  bench::print_header(
      "E9", "dynamics comparison: tournaments vs median rule vs frugal",
      "Section 1/related work: raw dynamics reach the median only; the "
      "tournament pipeline hits any phi with a round budget");
  constexpr std::uint32_t kN = 1 << 13;
  const std::size_t trials = bench::scaled_trials(3);

  bench::Table table({"dynamics", "phi", "rounds", "success (eps=0.1)",
                      "mean |err|"});
  for (const double phi : {0.5, 0.9}) {
    RunningStats tn_r, tn_s, tn_e, mr_r, mr_s, mr_e, fr_r, fr_s, fr_e;
    for (std::size_t t = 0; t < trials; ++t) {
      const auto values =
          generate_values(Distribution::kUniformReal, kN, 200 + t);
      const auto keys = make_keys(values);
      const RankScale scale(keys);

      {
        Network net(kN, 12100 + 7 * t);
        ApproxQuantileParams p;
        p.phi = phi;
        p.eps = 0.1;
        const auto r = approx_quantile(net, values, p);
        const auto s = evaluate_outputs(scale, r.outputs, phi, 0.1);
        tn_r.add(static_cast<double>(r.rounds));
        tn_s.add(s.frac_within_eps);
        tn_e.add(s.mean_abs_error);
      }
      {
        Network net(kN, 12200 + 7 * t);
        const auto r = median_rule(net, values, MedianRuleParams{});
        const auto s = evaluate_outputs(scale, r.outputs, phi, 0.1);
        mr_r.add(static_cast<double>(r.rounds));
        mr_s.add(s.frac_within_eps);
        mr_e.add(s.mean_abs_error);
      }
      {
        Network net(kN, 12300 + 7 * t);
        FrugalParams p;
        p.phi = phi;
        const auto r = frugal_quantile(net, values, p);
        std::size_t ok = 0;
        double err = 0.0;
        for (const double est : r.estimates) {
          const Key probe{est, 0xffffffffu, ~0ull};
          const double q = scale.quantile_of(probe);
          ok += std::abs(q - phi) <= 0.1 ? 1 : 0;
          err += std::abs(q - phi);
        }
        fr_r.add(static_cast<double>(r.rounds));
        fr_s.add(static_cast<double>(ok) / kN);
        fr_e.add(err / kN);
      }
    }
    const auto row = [&](const char* name, RunningStats& r, RunningStats& s,
                         RunningStats& e) {
      table.add_row({name, bench::fmt(phi, 1), bench::fmt(r.mean(), 0),
                     bench::fmt_pct(s.mean()), bench::fmt(e.mean(), 4)});
    };
    row("tournaments (ours)", tn_r, tn_s, tn_e);
    row("median rule [DGM+11]", mr_r, mr_s, mr_e);
    row("frugal walk [MMS13]", fr_r, fr_s, fr_e);
  }
  table.print();

  // Figure data: fraction of nodes outside the eps-window per iteration.
  TraceRecorder trace;
  {
    const auto values =
        generate_values(Distribution::kUniformReal, kN, 300);
    const auto keys = make_keys(values);
    const RankScale scale(keys);
    const auto outside = [&](std::span<const Key> state, double phi,
                             double eps) {
      std::size_t bad = 0;
      for (const Key& k : state) {
        if (std::abs(scale.quantile_of(k) - 0.5) > eps) ++bad;
      }
      (void)phi;
      return static_cast<double>(bad) / kN;
    };
    Network net(kN, 12400);
    std::vector<Key> state(keys.begin(), keys.end());
    three_tournament(net, state, 0.1, 15,
                     [&](std::size_t iter, std::span<const Key> s) {
                       trace.record("three_tournament", iter,
                                    outside(s, 0.5, 0.1));
                     });
    Network net2(kN, 12500);
    std::vector<Key> mr(keys.begin(), keys.end());
    // Median rule re-run instrumented manually: one iteration at a time.
    for (std::uint64_t it = 1; it <= 32; ++it) {
      MedianRuleParams p;
      p.iterations = 1;
      const auto r = median_rule_keys(net2, mr, p);
      mr = r.outputs;
      trace.record("median_rule", it, outside(mr, 0.5, 0.1));
    }
  }
  const std::string path = "dynamics_trace.csv";
  if (trace.write_csv(path)) {
    std::printf("Wrote per-iteration convergence series to %s (%zu points).\n\n",
                path.c_str(), trace.size());
  } else {
    // A bench whose artifact silently fails to land leaves CI green while
    // uploading nothing; fail the run instead.
    std::fprintf(stderr, "bench_dynamics: failed to write %s\n", path.c_str());
    bench::note_artifact_failure();
  }
}

}  // namespace
}  // namespace gq

int main() {
  gq::run();
  return gq::bench::exit_status();
}
