// E6 — Corollary 1.5: every node learns its own quantile up to +-eps in
// (1/eps) * O(log log n + log 1/eps) rounds.
#include <cmath>
#include <cstdio>

#include "analysis/rank_stats.hpp"
#include "bench_common.hpp"
#include "core/own_rank.hpp"
#include "util/stats.hpp"
#include "workload/distributions.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

void run() {
  bench::print_header(
      "E6", "own-rank estimation at every node",
      "Corollary 1.5: additive-eps own-quantile for all nodes in "
      "(1/eps) O(log log n + log 1/eps) rounds");
  constexpr std::uint32_t kN = 1 << 14;
  const std::size_t trials = bench::scaled_trials(3);

  bench::Table table({"eps", "quantile runs", "rounds", "rounds/run",
                      "success", "mean |err|", "max |err|"});
  for (const double eps : {0.48, 0.4, 0.32}) {
    RunningStats rounds, success, mean_err, max_err;
    std::size_t runs = 0;
    for (std::size_t t = 0; t < trials; ++t) {
      const auto values =
          generate_values(Distribution::kGaussian, kN, 60 + t);
      const auto keys = make_keys(values);
      const RankScale scale(keys);
      Network net(kN, 5100 + 19 * t);
      OwnRankParams params;
      params.eps = eps;
      const auto r = own_rank(net, values, params);
      runs = r.quantile_runs;
      rounds.add(static_cast<double>(r.rounds));
      std::size_t ok = 0;
      double me = 0.0, xe = 0.0;
      for (std::uint32_t v = 0; v < kN; ++v) {
        const double err =
            std::abs(r.estimates[v] - scale.quantile_of(keys[v]));
        ok += err <= eps ? 1 : 0;
        me += err;
        xe = std::max(xe, err);
      }
      success.add(static_cast<double>(ok) / kN);
      mean_err.add(me / kN);
      max_err.add(xe);
    }
    table.add_row({bench::fmt(eps, 2), bench::fmt_u(runs),
                   bench::fmt(rounds.mean(), 0),
                   bench::fmt(rounds.mean() / static_cast<double>(runs), 1),
                   bench::fmt_pct(success.mean()),
                   bench::fmt(mean_err.mean(), 4),
                   bench::fmt(max_err.mean(), 4)});
  }
  table.print();
  std::printf(
      "Shape check: rounds scale linearly with the number of grid runs "
      "(~2/eps), each run costing\nO(log log n + log 1/eps) rounds — the "
      "Corollary 1.5 structure.\n\n");
}

}  // namespace
}  // namespace gq

int main() {
  gq::run();
  return gq::bench::exit_status();
}
