// E3 — Theorem 1.3: any gossip algorithm needs
// max(1/2 loglog n, log4(8/eps)) rounds for eps-approximate quantiles.
//
// Simulates the most generous spreading of the distinguishing information
// (every node pushes AND pulls each round) on the adversarial instance and
// reports measured rounds-to-inform-everyone against the bound — and
// against our algorithm's round count, which must dominate it.
#include <cmath>
#include <cstdio>
#include <vector>

#include "analysis/theory_bounds.hpp"
#include "bench_common.hpp"
#include "core/approx_quantile.hpp"
#include "core/lower_bound.hpp"
#include "util/stats.hpp"
#include "workload/scenario.hpp"

namespace gq {
namespace {

void run() {
  bench::print_header(
      "E3", "information-spread lower bound",
      "Theorem 1.3: < max(0.5 loglog n, log4(8/eps)) rounds => failure "
      "probability >= 1/3");
  const std::size_t trials = bench::scaled_trials(5);

  {
    std::printf("### rounds to inform all nodes vs n (eps = 0.02)\n\n");
    bench::Table table(
        {"n", "|S|", "measured rounds", "bound", "0.5 loglog n",
         "log4(8/eps)"});
    std::vector<std::uint32_t> sizes = {1u << 10, 1u << 12, 1u << 14,
                                        1u << 16, 1u << 18, 1u << 20};
    if (bench::fast_mode()) sizes.resize(4);
    for (const std::uint32_t n : sizes) {
      RunningStats rounds;
      std::size_t informed0 = 0;
      for (std::size_t t = 0; t < trials; ++t) {
        const auto pair = make_adversarial_pair(n, 0.02, 50 + t);
        informed0 = 2 * pair.shift + 1;
        Network net(n, 900 + t);
        const auto r = simulate_information_spread(net, pair.informative);
        rounds.add(static_cast<double>(r.rounds_to_all));
      }
      const double nn = static_cast<double>(n);
      table.add_row(
          {bench::fmt_u(n), bench::fmt_u(informed0),
           bench::fmt(rounds.mean(), 1),
           bench::fmt(lower_bound_rounds(0.02, n), 2),
           bench::fmt(0.5 * std::log2(std::log2(nn)), 2),
           bench::fmt(std::log(8.0 / 0.02) / std::log(4.0), 2)});
    }
    table.print();
  }

  {
    std::printf("### rounds to inform all nodes vs eps (n = 2^16)\n\n");
    constexpr std::uint32_t kN = 1 << 16;
    bench::Table table({"eps", "|S|", "measured rounds", "log4(8/eps)",
                        "bound"});
    for (const double eps : {0.1, 0.05, 0.02, 0.01, 0.005, 0.001}) {
      RunningStats rounds;
      std::size_t informed0 = 0;
      for (std::size_t t = 0; t < trials; ++t) {
        const auto pair = make_adversarial_pair(kN, eps, 70 + t);
        informed0 = 2 * pair.shift + 1;
        Network net(kN, 1100 + t);
        const auto r = simulate_information_spread(net, pair.informative);
        rounds.add(static_cast<double>(r.rounds_to_all));
      }
      table.add_row({bench::fmt(eps, 3), bench::fmt_u(informed0),
                     bench::fmt(rounds.mean(), 1),
                     bench::fmt(std::log(8.0 / eps) / std::log(4.0), 2),
                     bench::fmt(lower_bound_rounds(eps, kN), 2)});
    }
    table.print();
  }

  {
    std::printf(
        "### sanity: our algorithm's rounds dominate the lower bound "
        "(n = 2^14, phi = 0.5)\n\n");
    constexpr std::uint32_t kN = 1 << 14;
    bench::Table table({"eps", "lower bound", "algorithm rounds"});
    for (const double eps : {0.2, 0.1, 0.05}) {
      const auto pair = make_adversarial_pair(kN, eps, 91);
      Network net(kN, 1300);
      ApproxQuantileParams params;
      params.phi = 0.5;
      params.eps = eps;
      const auto r = approx_quantile(net, pair.scenario_a, params);
      table.add_row({bench::fmt(eps, 2),
                     bench::fmt(lower_bound_rounds(eps, kN), 2),
                     bench::fmt_u(r.rounds)});
    }
    table.print();
  }
}

}  // namespace
}  // namespace gq

int main() {
  gq::run();
  return gq::bench::exit_status();
}
