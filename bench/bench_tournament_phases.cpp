// E5 — Lemmas 2.2-2.6 and 2.12-2.16: the measured tail fractions of both
// tournament phases track the analytic recurrences h_{i+1} = h_i^2 and
// l_{i+1} = 3l^2 - 2l^3, and the iteration counts respect the bounds.
#include <cmath>
#include <cstdio>
#include <vector>

#include "analysis/rank_stats.hpp"
#include "analysis/recurrences.hpp"
#include "analysis/theory_bounds.hpp"
#include "bench_common.hpp"
#include "core/three_tournament.hpp"
#include "core/two_tournament.hpp"
#include "workload/distributions.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

void run() {
  bench::print_header(
      "E5", "tournament dynamics vs analytic recurrences",
      "Lemma 2.5: |H_i|/n tracks h_{i+1} = h_i^2; Lemma 2.15: tails track "
      "3l^2-2l^3; iteration counts within Lemmas 2.2/2.12");
  constexpr std::uint32_t kN = 1 << 16;
  const double phi = 0.25, eps = 0.1;

  const auto keys =
      make_keys(generate_values(Distribution::kUniformReal, kN, 3));
  const RankScale scale(keys);

  {
    std::printf("### Phase I (2-TOURNAMENT): measured |H_i|/n vs h_i "
                "(n = 2^16, phi = %.2f, eps = %.2f)\n\n", phi, eps);
    bench::Table table({"iteration", "analytic h_i", "measured |H_i|/n",
                        "rel. deviation"});
    Network net(kN, 41);
    std::vector<Key> state(keys.begin(), keys.end());
    std::vector<double> measured;
    const auto outcome = two_tournament(
        net, state, phi, eps, true,
        [&](std::size_t, std::span<const Key> s) {
          std::size_t high = 0;
          for (const Key& k : s) {
            if (scale.quantile_of(k) > phi + eps) ++high;
          }
          measured.push_back(static_cast<double>(high) / kN);
        });
    for (std::size_t i = 0; i < measured.size(); ++i) {
      const double analytic = outcome.schedule.h[i + 1];
      table.add_row(
          {bench::fmt_u(i + 1), bench::fmt(analytic, 4),
           bench::fmt(measured[i], 4),
           bench::fmt_pct(std::abs(measured[i] - analytic) /
                          std::max(analytic, 1e-9))});
    }
    table.print();
  }

  {
    std::printf("### Phase II (3-TOURNAMENT): measured tails vs l_i "
                "(n = 2^16, eps = %.2f)\n\n", eps);
    // Run on the raw input with the median as target so quantiles are
    // directly comparable.
    bench::Table table({"iteration", "analytic l_i", "measured low tail",
                        "measured high tail"});
    Network net(kN, 43);
    std::vector<Key> state(keys.begin(), keys.end());
    std::vector<std::pair<double, double>> tails;
    const auto outcome = three_tournament(
        net, state, eps, 15,
        [&](std::size_t, std::span<const Key> s) {
          std::size_t low = 0, high = 0;
          for (const Key& k : s) {
            const double q = scale.quantile_of(k);
            if (q < 0.5 - eps) ++low;
            if (q > 0.5 + eps) ++high;
          }
          tails.emplace_back(static_cast<double>(low) / kN,
                             static_cast<double>(high) / kN);
        });
    for (std::size_t i = 0; i < tails.size(); ++i) {
      table.add_row({bench::fmt_u(i + 1),
                     bench::fmt(outcome.schedule.l[i + 1], 5),
                     bench::fmt(tails[i].first, 5),
                     bench::fmt(tails[i].second, 5)});
    }
    table.print();
  }

  {
    std::printf("### iteration counts vs Lemma bounds\n\n");
    bench::Table table({"eps", "phase1 iters", "Lemma 2.2 bound",
                        "phase2 iters", "Lemma 2.12 bound"});
    for (const double e : {0.2, 0.1, 0.05, 0.02}) {
      const auto s1 = two_tournament_schedule(1.0 - e, e);
      const auto s2 = three_tournament_schedule(e, kN);
      table.add_row({bench::fmt(e, 2), bench::fmt_u(s1.iterations()),
                     bench::fmt(phase1_iteration_bound(e), 2),
                     bench::fmt_u(s2.iterations()),
                     bench::fmt(phase2_iteration_bound(e, kN), 2)});
    }
    table.print();
  }
}

}  // namespace
}  // namespace gq

int main() {
  gq::run();
  return gq::bench::exit_status();
}
