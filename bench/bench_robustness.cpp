// E4 — Theorem 1.4: the algorithms tolerate per-node/round failure
// probability mu < 1 with only constant-factor slowdown; the approximate
// algorithm serves all but ~n/2^t nodes given t extra coverage rounds.
#include <cmath>
#include <cstdio>
#include <vector>

#include "analysis/rank_stats.hpp"
#include "analysis/theory_bounds.hpp"
#include "bench_common.hpp"
#include "core/approx_quantile.hpp"
#include "core/exact_quantile.hpp"
#include "core/robust.hpp"
#include "core/three_tournament.hpp"
#include "util/stats.hpp"
#include "workload/distributions.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

void run() {
  bench::print_header(
      "E4", "robustness to random failures",
      "Theorem 1.4: same asymptotic rounds under failure prob mu; all but "
      "n/2^t nodes served with +t rounds");
  const std::size_t trials = bench::scaled_trials(3);

  {
    constexpr std::uint32_t kN = 1 << 13;
    const double phi = 0.25, eps = 0.12;
    std::printf("### approximate quantile vs mu (n = %u, phi = %.2f, eps = %.2f)\n\n",
                kN, phi, eps);
    bench::Table table({"mu", "pulls/iter", "rounds", "served",
                        "success (served)", "rounds vs mu=0"});
    double rounds_mu0 = 0.0;
    for (const double mu : {0.0, 0.1, 0.3, 0.5, 0.7}) {
      RunningStats rounds, served, success;
      for (std::size_t t = 0; t < trials; ++t) {
        const auto values =
            generate_values(Distribution::kUniformReal, kN, 10 + t);
        const RankScale scale(make_keys(values));
        Network net(kN, 2100 + 7 * t,
                    mu > 0.0 ? FailureModel::uniform(mu) : FailureModel{});
        ApproxQuantileParams params;
        params.phi = phi;
        params.eps = eps;
        params.robust_coverage_rounds = 14;
        const auto r = approx_quantile(net, values, params);
        rounds.add(static_cast<double>(r.rounds));
        served.add(static_cast<double>(r.served_nodes()) / kN);
        std::size_t ok = 0, tot = 0;
        for (std::uint32_t v = 0; v < kN; ++v) {
          if (!r.valid[v]) continue;
          ++tot;
          ok += scale.within_eps(r.outputs[v], phi, eps) ? 1 : 0;
        }
        success.add(tot ? static_cast<double>(ok) / tot : 0.0);
      }
      if (mu == 0.0) rounds_mu0 = rounds.mean();
      table.add_row({bench::fmt(mu, 1),
                     bench::fmt_u(robust_pull_count(mu, 6.0)),
                     bench::fmt(rounds.mean(), 0),
                     bench::fmt_pct(served.mean()),
                     bench::fmt_pct(success.mean()),
                     bench::fmt(rounds.mean() / rounds_mu0, 2) + "x"});
    }
    table.print();
    std::printf(
        "Shape check: rounds grow by the constant fan-out factor "
        "Theta(1/(1-mu) log 1/(1-mu)), not with n.\n\n");
  }

  {
    std::printf("### coverage tail: Theorem 1.4 allows up to n/2^t "
                "unserved nodes after t extra rounds\n(n = 2^13; "
                "heterogeneous failures: 25%% of nodes lose 90%% of "
                "messages, rest 5%%.  The implementation's\nfan-out is "
                "sized for the worst node, so it beats the allowance with "
                "slack — the allowance itself is tight\nonly for protocols "
                "running the minimum number of rounds, per the paper's "
                "exp(-t) participation argument.)\n\n");
    constexpr std::uint32_t kN = 1 << 13;
    std::vector<double> probs(kN, 0.05);
    for (std::uint32_t v = 0; v < kN; v += 4) probs[v] = 0.9;
    bench::Table table({"t", "measured unserved", "allowed (n/2^t)"});
    for (const std::uint32_t t : {0u, 2u, 4u, 6u, 8u, 12u}) {
      RunningStats unserved;
      for (std::size_t s = 0; s < trials; ++s) {
        const auto values =
            generate_values(Distribution::kUniformReal, kN, 20 + s);
        Network net(kN, 3100 + 13 * s, FailureModel::per_node(probs));
        ApproxQuantileParams params;
        params.phi = 0.5;
        params.eps = 0.12;
        params.robust_coverage_rounds = t;
        const auto r = approx_quantile(net, values, params);
        unserved.add(1.0 -
                     static_cast<double>(r.served_nodes()) / kN);
      }
      table.add_row({bench::fmt_u(t), bench::fmt_pct(unserved.mean(), 3),
                     bench::fmt_pct(std::pow(0.5, t), 3)});
    }
    table.print();
  }

  {
    std::printf("### exact quantile under failures (phi = 0.5)\n\n");
    bench::Table table({"n", "mu", "rounds", "exact answers"});
    for (const std::uint32_t n : {512u, 2048u}) {
      for (const double mu : {0.0, 0.3}) {
        RunningStats rounds, correct;
        for (std::size_t t = 0; t < trials; ++t) {
          const auto values =
              generate_values(Distribution::kUniformReal, n, 30 + t);
          const RankScale scale(make_keys(values));
          Network net(n, 4100 + 17 * t,
                      mu > 0.0 ? FailureModel::uniform(mu) : FailureModel{});
          ExactQuantileParams params;
          params.phi = 0.5;
          const auto r = exact_quantile(net, values, params);
          rounds.add(static_cast<double>(r.rounds));
          correct.add(r.answer.value == scale.exact_quantile(0.5).value
                          ? 1.0
                          : 0.0);
        }
        table.add_row({bench::fmt_u(n), bench::fmt(mu, 1),
                       bench::fmt(rounds.mean(), 0),
                       bench::fmt_pct(correct.mean(), 0)});
      }
    }
    table.print();
  }
}

}  // namespace
}  // namespace gq

int main() {
  gq::run();
  return gq::bench::exit_status();
}
