// E7 — Appendix A: the sampling-family trade-off space.
//
//   direct sampling   O(log n / eps^2) rounds, O(log n)-bit messages
//   doubling          O(log log n + log 1/eps) rounds, O(log^2 n/eps^2)-bit messages
//   compaction        same rounds, O((1/eps)(log log n + log 1/eps) log n)-bit messages
//   tournaments       same rounds AND O(log n)-bit messages (the paper's point)
//
// The table makes the two-axis dominance of the tournament pipeline
// explicit: it is the only row that is simultaneously round-optimal and
// message-budget compliant.
#include <cstdio>

#include "analysis/rank_stats.hpp"
#include "baselines/doubling.hpp"
#include "baselines/sampling.hpp"
#include "bench_common.hpp"
#include "core/approx_quantile.hpp"
#include "util/stats.hpp"
#include "workload/distributions.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

void run() {
  bench::print_header(
      "E7", "sampling family: rounds vs message size",
      "Appendix A + Section 2: tournaments match the sampling round "
      "complexity with O(log n)-bit messages");
  constexpr std::uint32_t kN = 1 << 12;
  const double phi = 0.5;
  const std::size_t trials = bench::scaled_trials(3);

  for (const double eps : {0.15, 0.1}) {
    std::printf("### n = %u, phi = %.1f, eps = %.2f (success window 2*eps "
                "for the Appendix-A family, eps for tournaments)\n\n",
                kN, phi, eps);
    bench::Table table({"algorithm", "rounds", "max msg bits",
                        "total Mbits", "success"});

    RunningStats sa_r, sa_b, sa_tb, sa_s;
    RunningStats db_r, db_b, db_tb, db_s;
    RunningStats cp_r, cp_b, cp_tb, cp_s;
    RunningStats tn_r, tn_b, tn_tb, tn_s;
    for (std::size_t t = 0; t < trials; ++t) {
      const auto values =
          generate_values(Distribution::kUniformReal, kN, 80 + t);
      const auto keys = make_keys(values);
      const RankScale scale(keys);

      {
        Network net(kN, 6100 + t);
        SamplingParams p;
        p.phi = phi;
        p.eps = eps;
        const auto r = sampling_quantile(net, values, p);
        sa_r.add(static_cast<double>(r.rounds));
        sa_b.add(static_cast<double>(net.metrics().max_message_bits));
        sa_tb.add(static_cast<double>(net.metrics().message_bits) / 1e6);
        sa_s.add(evaluate_outputs(scale, r.outputs, phi, 2 * eps)
                     .frac_within_eps);
      }
      {
        Network net(kN, 6200 + t);
        DoublingParams p;
        p.phi = phi;
        p.eps = eps;
        const auto r = doubling_quantile(net, values, p);
        db_r.add(static_cast<double>(r.rounds));
        db_b.add(static_cast<double>(r.max_message_bits));
        db_tb.add(static_cast<double>(net.metrics().message_bits) / 1e6);
        db_s.add(evaluate_outputs(scale, r.outputs, phi, 2 * eps)
                     .frac_within_eps);
      }
      {
        Network net(kN, 6300 + t);
        CompactionParams p;
        p.phi = phi;
        p.eps = eps;
        const auto r = compaction_quantile(net, values, p);
        cp_r.add(static_cast<double>(r.rounds));
        cp_b.add(static_cast<double>(r.max_message_bits));
        cp_tb.add(static_cast<double>(net.metrics().message_bits) / 1e6);
        cp_s.add(evaluate_outputs(scale, r.outputs, phi, 2 * eps)
                     .frac_within_eps);
      }
      {
        Network net(kN, 6400 + t);
        ApproxQuantileParams p;
        p.phi = phi;
        p.eps = eps;
        p.force_tournament = true;  // keep the row on the tournament route
        const auto r = approx_quantile(net, values, p);
        tn_r.add(static_cast<double>(r.rounds));
        tn_b.add(static_cast<double>(net.metrics().max_message_bits));
        tn_tb.add(static_cast<double>(net.metrics().message_bits) / 1e6);
        tn_s.add(
            evaluate_outputs(scale, r.outputs, phi, eps).frac_within_eps);
      }
    }
    const auto row = [&](const char* name, RunningStats& r, RunningStats& b,
                         RunningStats& tb, RunningStats& s) {
      table.add_row({name, bench::fmt(r.mean(), 0), bench::fmt(b.mean(), 0),
                     bench::fmt(tb.mean(), 1), bench::fmt_pct(s.mean())});
    };
    row("direct sampling", sa_r, sa_b, sa_tb, sa_s);
    row("doubling (A.2)", db_r, db_b, db_tb, db_s);
    row("compaction (A.6)", cp_r, cp_b, cp_tb, cp_s);
    row("tournaments (Thm 2.1)", tn_r, tn_b, tn_tb, tn_s);
    table.print();
  }
  std::printf(
      "Shape check: sampling is round-expensive; doubling/compaction are "
      "round-cheap but message-fat;\nonly the tournament row is cheap on "
      "both axes (the O(log n)-bit model budget).\n\n");
}

}  // namespace
}  // namespace gq

int main() {
  gq::run();
  return gq::bench::exit_status();
}
