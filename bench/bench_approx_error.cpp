// E2c — accuracy of the approximate pipeline: the rank of every node's
// output must land in [(phi-eps)n, (phi+eps)n].
//
// Reports all-node success rates and the error distribution across
// distributions and targets, plus an ASCII histogram of normalized rank
// errors for the hardest configuration.
#include <cstdio>
#include <vector>

#include "analysis/rank_stats.hpp"
#include "bench_common.hpp"
#include "core/approx_quantile.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"
#include "workload/distributions.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

void run() {
  bench::print_header(
      "E2c", "approximate quantile accuracy",
      "every node outputs a value of rank within (phi +- eps) n w.h.p.");
  constexpr std::uint32_t kN = 1 << 16;
  const std::size_t trials = bench::scaled_trials(5);

  bench::Table table({"distribution", "phi", "eps", "success", "mean |err|",
                      "max |err|", "rounds"});
  Histogram err_hist(0.0, 2.0, 20);  // |rank error| / eps

  for (const auto dist :
       {Distribution::kUniformReal, Distribution::kZipf,
        Distribution::kBimodal}) {
    for (const double phi : {0.1, 0.5, 0.9}) {
      for (const double eps : {0.05, 0.1}) {
        RunningStats success, mean_err, max_err, rounds;
        for (std::size_t t = 0; t < trials; ++t) {
          const auto values = generate_values(dist, kN, 40 + t);
          const auto keys = make_keys(values);
          const RankScale scale(keys);
          Network net(kN, 800 + 31 * t);
          ApproxQuantileParams params;
          params.phi = phi;
          params.eps = eps;
          const auto r = approx_quantile(net, values, params);
          const auto s = evaluate_outputs(scale, r.outputs, phi, eps);
          success.add(s.frac_within_eps);
          mean_err.add(s.mean_abs_error);
          max_err.add(s.max_abs_error);
          rounds.add(static_cast<double>(r.rounds));
          for (const Key& k : r.outputs) {
            err_hist.add(std::abs(scale.quantile_of(k) - phi) / eps);
          }
        }
        table.add_row({to_string(dist), bench::fmt(phi, 1),
                       bench::fmt(eps, 2), bench::fmt_pct(success.mean()),
                       bench::fmt(mean_err.mean(), 4),
                       bench::fmt(max_err.mean(), 4),
                       bench::fmt(rounds.mean(), 0)});
      }
    }
  }
  table.print();

  std::printf("Normalized rank-error distribution (|err|/eps, all configs):\n%s\n",
              err_hist.render(50).c_str());
  std::printf("Fraction of node-outputs with |err| <= eps: %s\n\n",
              bench::fmt_pct(err_hist.cdf(1.0), 2).c_str());
}

}  // namespace
}  // namespace gq

int main() {
  gq::run();
  return gq::bench::exit_status();
}
