// The compaction primitive of Appendix A.1.
//
// A CompactingBuffer holds up to `capacity` keys, each carrying the same
// power-of-two weight.  Merging two buffers of equal weight concatenates
// them; if the union exceeds capacity it is compacted: sorted, and only the
// items in alternating positions are kept, with the per-item weight doubled.
// One compaction changes the weighted rank of any query point by at most the
// pre-compaction weight (Lemma A.3), which is what makes the doubling
// algorithm with compaction accurate (Corollary A.4).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/key.hpp"

namespace gq {

class CompactingBuffer {
 public:
  explicit CompactingBuffer(std::size_t capacity);

  // Appends a weight-1 item.  Only valid before any compaction has happened
  // (weight() == 1); used to seed the buffer with the node's own value.
  void add(const Key& k);

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] std::uint64_t weight() const noexcept { return weight_; }
  [[nodiscard]] std::span<const Key> items() const noexcept { return items_; }
  // Total weighted mass represented by this buffer.
  [[nodiscard]] std::uint64_t total_weight() const noexcept {
    return weight_ * items_.size();
  }

  // Union of two buffers with equal per-item weight; compacts (keeping the
  // items at odd 0-based positions of the sorted union if `keep_odd`, else
  // even) whenever the union exceeds the capacity.  Capacity is inherited
  // from `a`.
  [[nodiscard]] static CompactingBuffer merged(const CompactingBuffer& a,
                                               const CompactingBuffer& b,
                                               bool keep_odd);

  // Weighted rank of z: weight() * #{item <= z}.
  [[nodiscard]] std::uint64_t weighted_rank(const Key& z) const;

  // Weighted quantile: the smallest stored key whose weighted rank reaches
  // phi * total_weight() (nearest-rank rule).
  [[nodiscard]] Key quantile(double phi) const;

 private:
  std::size_t capacity_;
  std::uint64_t weight_ = 1;
  std::vector<Key> items_;  // kept sorted
};

}  // namespace gq
