// A KLL-style mergeable quantile sketch (Karnin, Lang, Liberty; FOCS'16),
// the state of the art the paper's Appendix A discusses porting to gossip.
//
// The sketch keeps a hierarchy of compactors: level h stores items of weight
// 2^h.  Level capacities decay geometrically (c = 2/3) from k at the top, so
// total space is O(k).  A full level is sorted and every other item (random
// offset) is promoted to the level above.  Rank queries sum weighted ranks
// over all levels; the standard analysis gives additive rank error
// O(total_weight / k) with high probability.
//
// Provided as a library extension: the paper argues that even an optimal
// sketch cannot beat the tournament algorithms under the O(log n)-bit
// message constraint, and bench_sampling_family quantifies exactly that
// trade-off.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/key.hpp"
#include "util/rng.hpp"

namespace gq {

class KllSketch {
 public:
  // k: top-level capacity (accuracy knob).  seed: randomness for the
  // odd/even promotion coins.
  explicit KllSketch(std::size_t k, std::uint64_t seed = 1);

  void insert(const Key& key);
  void merge(const KllSketch& other);

  // Total weighted item count (number of inserts across merges).
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  // Number of keys physically stored.
  [[nodiscard]] std::size_t space() const noexcept;
  [[nodiscard]] std::size_t k() const noexcept { return k_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  // Estimated rank of z: #{inserted keys <= z}.
  [[nodiscard]] std::uint64_t rank(const Key& z) const;

  // Estimated phi-quantile over everything inserted.
  [[nodiscard]] Key quantile(double phi) const;

  // Conservative additive rank-error bound for quantile()/rank(), as a
  // fraction of count().  While the sketch is still uncompacted (every item
  // retained at level 0) answers are exact up to rank resolution; after the
  // first compaction the standard KLL analysis bounds the error by
  // O(1/k) w.h.p. — reported with a conservative constant so the service's
  // degraded answers can state "phi within +/- bound".
  [[nodiscard]] double rank_error_bound() const noexcept;

  // Serialized size in bits under the model's accounting (used when a
  // sketch is shipped as a gossip message).
  [[nodiscard]] std::uint64_t message_bits(std::uint32_t n) const;

 private:
  [[nodiscard]] std::size_t level_capacity(std::size_t level) const;
  void compact_level(std::size_t level);
  void compress();

  std::size_t k_;
  Rng rng_;
  std::uint64_t count_ = 0;
  // levels_[h] holds the (unsorted between compactions) items of weight 2^h.
  std::vector<std::vector<Key>> levels_;
};

}  // namespace gq
