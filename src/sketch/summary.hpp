// The mergeable quantile-summary interface: what a per-node stream state
// must provide for the service layer (src/service/) to bound per-node
// memory while still answering rank and quantile questions about the
// stream.
//
// The contract mirrors the standard mergeable-summary semantics (Agarwal
// et al., "Mergeable Summaries"):
//   * insert(key)   — absorb one stream item;
//   * merge(other)  — absorb another summary of the same accuracy class;
//     count() is exactly additive under merge, and the rank-error bound
//     must survive arbitrary merge trees (k-way, any order) — not just
//     repeated single-stream insertion.  Pinned for KllSketch by
//     tests/test_sketch.cpp (KllMerge*).
//   * count()       — exact number of items absorbed (inserts + merges);
//   * rank(z)       — estimated #{items <= z};
//   * quantile(phi) — an item whose rank is ~phi*count() within the
//     summary's error bound;
//   * space()       — items physically stored, the per-node state bound.
//
// Determinism note: summaries may be randomized (KLL's compaction coins),
// but must be *reproducibly* randomized — the same construction sequence on
// the same seed yields bit-identical summaries.  The service layer's
// warm-vs-cold bit-identity guarantee leans on this.
#pragma once

#include <concepts>
#include <cstdint>

#include "sim/key.hpp"

namespace gq {

template <typename S>
concept QuantileSummary = requires(S s, const S cs, const Key& k, double phi) {
  { s.insert(k) };
  { s.merge(cs) };
  { cs.count() } -> std::convertible_to<std::uint64_t>;
  { cs.rank(k) } -> std::convertible_to<std::uint64_t>;
  { cs.quantile(phi) } -> std::convertible_to<Key>;
  { cs.space() } -> std::convertible_to<std::size_t>;
  { cs.empty() } -> std::convertible_to<bool>;
};

}  // namespace gq
