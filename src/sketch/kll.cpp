#include "sketch/kll.hpp"

#include <algorithm>
#include <cmath>

#include "sketch/summary.hpp"
#include "util/require.hpp"

namespace gq {

// KLL is the service layer's default per-node summary; keep it honest
// against the mergeable-summary contract it is consumed through.
static_assert(QuantileSummary<KllSketch>);

KllSketch::KllSketch(std::size_t k, std::uint64_t seed)
    : k_(k), rng_(derive_seed(seed, 0x6b11)) {
  GQ_REQUIRE(k >= 8, "KLL needs k >= 8 for sensible accuracy");
  levels_.emplace_back();
}

std::size_t KllSketch::level_capacity(std::size_t level) const {
  // Capacity decays as k * (2/3)^(depth below top), floored at 2.
  const std::size_t depth = levels_.size() - 1 - level;
  double cap = static_cast<double>(k_);
  for (std::size_t i = 0; i < depth; ++i) cap *= 2.0 / 3.0;
  return std::max<std::size_t>(2, static_cast<std::size_t>(std::ceil(cap)));
}

void KllSketch::insert(const Key& key) {
  levels_[0].push_back(key);
  ++count_;
  compress();
}

void KllSketch::merge(const KllSketch& other) {
  GQ_REQUIRE(k_ == other.k_, "cannot merge KLL sketches with different k");
  if (other.levels_.size() > levels_.size()) {
    levels_.resize(other.levels_.size());
  }
  for (std::size_t h = 0; h < other.levels_.size(); ++h) {
    levels_[h].insert(levels_[h].end(), other.levels_[h].begin(),
                      other.levels_[h].end());
  }
  count_ += other.count_;
  compress();
}

void KllSketch::compact_level(std::size_t level) {
  if (level + 1 >= levels_.size()) levels_.emplace_back();
  auto& buf = levels_[level];
  std::sort(buf.begin(), buf.end());
  const bool keep_odd = rand_bernoulli(rng_, 0.5);
  auto& up = levels_[level + 1];
  for (std::size_t i = keep_odd ? 1 : 0; i < buf.size(); i += 2) {
    up.push_back(buf[i]);
  }
  // An odd-sized buffer with keep_odd drops the last item; with !keep_odd it
  // promotes one extra.  Both are the standard unbiased halving.
  buf.clear();
}

void KllSketch::compress() {
  for (std::size_t h = 0; h < levels_.size(); ++h) {
    if (levels_[h].size() > level_capacity(h)) {
      compact_level(h);
    }
  }
}

std::size_t KllSketch::space() const noexcept {
  std::size_t s = 0;
  for (const auto& level : levels_) s += level.size();
  return s;
}

std::uint64_t KllSketch::rank(const Key& z) const {
  std::uint64_t r = 0;
  std::uint64_t weight = 1;
  for (const auto& level : levels_) {
    for (const Key& item : level) {
      if (item <= z) r += weight;
    }
    weight *= 2;
  }
  return r;
}

Key KllSketch::quantile(double phi) const {
  GQ_REQUIRE(!empty(), "quantile of an empty sketch");
  GQ_REQUIRE(phi >= 0.0 && phi <= 1.0, "phi must lie in [0,1]");
  // Collect (key, weight) pairs, sort by key, walk the cumulative weight.
  std::vector<std::pair<Key, std::uint64_t>> weighted;
  weighted.reserve(space());
  std::uint64_t weight = 1;
  std::uint64_t total = 0;
  for (const auto& level : levels_) {
    for (const Key& item : level) {
      weighted.emplace_back(item, weight);
      total += weight;
    }
    weight *= 2;
  }
  GQ_REQUIRE(total > 0, "quantile of a sketch with no stored items");
  std::sort(weighted.begin(), weighted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  const double target = phi * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (const auto& [key, w] : weighted) {
    cum += w;
    if (static_cast<double>(cum) >= target) return key;
  }
  return weighted.back().first;
}

double KllSketch::rank_error_bound() const noexcept {
  if (count_ == 0) return 0.0;
  if (levels_.size() == 1) {
    // No compaction yet: every item is stored, so rank() is exact and
    // quantile() is off by at most the rank resolution of one item.
    return 0.5 / static_cast<double>(count_);
  }
  return std::min(1.0, 4.0 / static_cast<double>(k_));
}

std::uint64_t KllSketch::message_bits(std::uint32_t n) const {
  // Stored keys plus one level-size word per level.
  return space() * key_bits(n) + levels_.size() * 32;
}

}  // namespace gq
