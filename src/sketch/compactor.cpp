#include "sketch/compactor.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace gq {

CompactingBuffer::CompactingBuffer(std::size_t capacity)
    : capacity_(capacity) {
  GQ_REQUIRE(capacity >= 2, "compacting buffer capacity must be at least 2");
  items_.reserve(capacity);
}

void CompactingBuffer::add(const Key& k) {
  GQ_REQUIRE(weight_ == 1, "add() is only valid before the first compaction");
  GQ_REQUIRE(items_.size() < capacity_, "buffer is full");
  const auto pos = std::lower_bound(items_.begin(), items_.end(), k);
  items_.insert(pos, k);
}

CompactingBuffer CompactingBuffer::merged(const CompactingBuffer& a,
                                          const CompactingBuffer& b,
                                          bool keep_odd) {
  GQ_REQUIRE(a.weight_ == b.weight_,
             "merged() requires buffers of equal per-item weight");
  CompactingBuffer out(a.capacity_);
  out.weight_ = a.weight_;
  out.items_.resize(a.items_.size() + b.items_.size());
  std::merge(a.items_.begin(), a.items_.end(), b.items_.begin(),
             b.items_.end(), out.items_.begin());
  if (out.items_.size() > out.capacity_) {
    std::vector<Key> kept;
    kept.reserve(out.items_.size() / 2 + 1);
    for (std::size_t i = keep_odd ? 1 : 0; i < out.items_.size(); i += 2) {
      kept.push_back(out.items_[i]);
    }
    out.items_ = std::move(kept);
    out.weight_ *= 2;
  }
  return out;
}

std::uint64_t CompactingBuffer::weighted_rank(const Key& z) const {
  const auto it = std::upper_bound(items_.begin(), items_.end(), z);
  return weight_ * static_cast<std::uint64_t>(it - items_.begin());
}

Key CompactingBuffer::quantile(double phi) const {
  GQ_REQUIRE(!items_.empty(), "quantile of an empty buffer");
  GQ_REQUIRE(phi >= 0.0 && phi <= 1.0, "phi must lie in [0,1]");
  const auto n = items_.size();
  auto rank = static_cast<std::size_t>(
      std::ceil(phi * static_cast<double>(n)));
  rank = std::clamp<std::size_t>(rank, 1, n);
  return items_[rank - 1];
}

}  // namespace gq
