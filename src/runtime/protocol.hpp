// The deployable embedding of the gossip algorithms: per-node state
// machines driven by a synchronous runtime.
//
// The algorithm modules in core/ drive the Network directly — convenient
// for experiments, but a real system embeds a protocol per node.  This
// layer defines that boundary: a NodeProtocol exposes a payload, optionally
// pulls one peer per round, and updates at round boundaries.  The Runtime
// snapshots all exposed payloads at the start of each round (the paper's
// synchronous semantics) and delivers pulls with the Network's randomness,
// failure model and traffic accounting, so behaviour and costs match the
// monolithic drivers.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sim/key.hpp"
#include "sim/network.hpp"

namespace gq {

class NodeProtocol {
 public:
  virtual ~NodeProtocol() = default;

  // Payload other nodes receive when they pull from this node this round.
  // The runtime reads it once at the start of every round.
  [[nodiscard]] virtual Key exposed() const = 0;

  // Whether this node attempts a pull this round.
  [[nodiscard]] virtual bool wants_pull(std::uint64_t round) const = 0;

  // Pull result delivery; called only when the operation succeeded.
  virtual void deliver(std::uint64_t round, const Key& payload) = 0;

  // Round boundary: commit state updates.
  virtual void finish_round(std::uint64_t round) = 0;

  // Local termination flag (e.g. schedule exhausted).
  [[nodiscard]] virtual bool finished() const = 0;
};

struct RuntimeResult {
  std::uint64_t rounds = 0;
  bool all_finished = false;
};

// Drives one protocol instance per node until all report finished() or
// `max_rounds` elapse.  `bits_per_message` is the accounted payload size
// (use KeyCodec(n).encoded_bits() for the exact wire size).
RuntimeResult run_protocols(Network& net,
                            std::span<std::unique_ptr<NodeProtocol>> nodes,
                            std::uint64_t max_rounds,
                            std::uint64_t bits_per_message);

// Reference protocol: the [DGM+11] median dynamics as a per-node state
// machine — each iteration spans two rounds collecting two samples, then
// the node adopts median(own, a, b).  Behaviourally the protocol form of
// baselines/median_rule.
class MedianDynamicsProtocol final : public NodeProtocol {
 public:
  MedianDynamicsProtocol(const Key& initial, std::uint64_t iterations)
      : state_(initial), iterations_(iterations) {}

  [[nodiscard]] Key exposed() const override { return state_; }
  [[nodiscard]] bool wants_pull(std::uint64_t) const override {
    return !finished();
  }
  void deliver(std::uint64_t round, const Key& payload) override;
  void finish_round(std::uint64_t round) override;
  [[nodiscard]] bool finished() const override {
    return completed_ >= iterations_;
  }

  [[nodiscard]] const Key& state() const noexcept { return state_; }

 private:
  Key state_;
  std::uint64_t iterations_;
  std::uint64_t completed_ = 0;
  int phase_ = 0;  // 0: expecting first sample, 1: expecting second
  Key sample_a_;
  Key sample_b_;
  bool have_a_ = false;
  bool have_b_ = false;
};

}  // namespace gq
