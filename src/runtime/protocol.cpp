#include "runtime/protocol.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace gq {

RuntimeResult run_protocols(Network& net,
                            std::span<std::unique_ptr<NodeProtocol>> nodes,
                            std::uint64_t max_rounds,
                            std::uint64_t bits_per_message) {
  const std::uint32_t n = net.size();
  GQ_REQUIRE(nodes.size() == n, "one protocol instance per node required");
  for (const auto& p : nodes) {
    GQ_REQUIRE(p != nullptr, "protocol instances must not be null");
  }

  RuntimeResult out;
  std::vector<Key> payloads(n);
  const auto all_finished = [&] {
    return std::all_of(nodes.begin(), nodes.end(),
                       [](const auto& p) { return p->finished(); });
  };

  for (std::uint64_t r = 0; r < max_rounds; ++r) {
    if (all_finished()) {
      out.all_finished = true;
      return out;
    }
    const std::uint64_t round = net.begin_round();
    ++out.rounds;
    // Round-start snapshot of every node's exposed payload.
    for (std::uint32_t v = 0; v < n; ++v) payloads[v] = nodes[v]->exposed();
    for (std::uint32_t v = 0; v < n; ++v) {
      if (!nodes[v]->wants_pull(round)) continue;
      if (net.node_fails(v)) {
        net.record_failed_operation();
        continue;
      }
      SplitMix64 stream = net.node_stream(v);
      const std::uint32_t peer = net.sample_peer(v, stream);
      net.record_message(bits_per_message);
      nodes[v]->deliver(round, payloads[peer]);
    }
    for (std::uint32_t v = 0; v < n; ++v) nodes[v]->finish_round(round);
  }
  out.all_finished = all_finished();
  return out;
}

void MedianDynamicsProtocol::deliver(std::uint64_t, const Key& payload) {
  if (phase_ == 0) {
    sample_a_ = payload;
    have_a_ = true;
  } else {
    sample_b_ = payload;
    have_b_ = true;
  }
}

void MedianDynamicsProtocol::finish_round(std::uint64_t) {
  if (finished()) return;
  if (phase_ == 0) {
    phase_ = 1;
    return;
  }
  // Second round of the iteration: commit.  Both samples must have
  // arrived; a failed pull forfeits the iteration's update (the same rule
  // as the monolithic median_rule driver).
  if (have_a_ && have_b_) {
    const Key& a = sample_a_;
    const Key& b = sample_b_;
    const Key& c = state_;
    state_ = std::min(std::max(a, b), std::max(std::min(a, b), c));
  }
  have_a_ = have_b_ = false;
  phase_ = 0;
  ++completed_;
}

}  // namespace gq
