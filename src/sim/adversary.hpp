// Message-level adversarial fault injection (the 2502.15320 model).
//
// The paper's Section-5 FailureModel is *oblivious*: whether node v's
// operation in round r is lost is a coin fixed before the protocol starts.
// The authors' follow-up (arXiv 2502.15320, Haeupler-Kaufmann-Ravi,
// "Adversarially-Robust Gossip Algorithms for Approximate Quantile and Mean
// Computations") strengthens the model to an *adaptive* adversary that
// watches the execution and, under a per-round budget, corrupts, drops, or
// delays messages of its choosing.
//
// AdversaryStrategy is that adversary as an interface:
//
//   * observe(RoundWindow)  — called once per fused round block on the
//     orchestrating thread, before the block's rounds execute.  The window
//     carries the upcoming rounds plus a read-only snapshot of the state the
//     adversary may inspect (adaptive strategies pick targets here).
//   * fault(node, round)    — pure and thread-safe: the fault (if any) the
//     adversary applies to `node`'s message in `round`.  Both executors
//     query it — the sequential Network from its single thread, the Engine
//     from parallel shards — so implementations must not mutate state here.
//
// Determinism contract: fault() must be a pure function of (bind seed, all
// windows observed so far, node, round).  Both executors observe identical
// windows at identical points (the shared pipeline templates guarantee it),
// so transcripts stay bit-identical between Network and Engine at any
// thread count — the same discipline every kernel in this repo obeys.
//
// The oblivious special case: ObliviousAdversary wraps a FailureModel and
// reports it through oblivious_model().  Executors absorb that model into
// their own failure model at set_adversary() time, so an executor with an
// oblivious adversary is *exactly* an executor constructed with the
// FailureModel — same fan-out sizing, same failure coins, same transcript.
//
// Fault semantics by execution layer:
//   * kDrop     — the message is destroyed in transit.  Legacy pipelines see
//     it as a failed operation (node_fails() returns true); the adversarial
//     pipelines tally it separately (Metrics::adversary_dropped).
//   * kCorrupt  — the payload is replaced by `Fault::value`.  Only the
//     adversarial pipelines model payloads at the fault layer; legacy
//     pipelines cannot apply a corruption and treat it as kNone.
//   * kDelay    — delivery is postponed by `Fault::delay` rounds (dropped if
//     the block ends first).  Legacy pipelines conservatively treat a
//     delayed message as lost for the round it was sent.
//   * kCrash    — node-lifecycle fault: the node is *down* this round.  A
//     crashed node sends nothing, receives nothing (pulls of its state find
//     nobody home, deliveries addressed to it are lost), and is excluded
//     from served sets while down.  The adversarial pipelines implement the
//     full semantics in their shared fold; legacy pipelines see the crashed
//     node's own rounds as failed operations (op_fails), the same
//     conservative reading they give kDrop/kDelay.
//   * kRecover  — returned exactly on the first round a crashed node is back
//     up.  Message semantics are kNone (the node operates normally); it
//     exists so executors can tally recovery events.  Strategies must emit
//     kCrash for every down round and kRecover only on the round after the
//     last down round.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/failure_model.hpp"
#include "sim/key.hpp"

namespace gq {

enum class FaultKind : std::uint8_t {
  kNone,
  kDrop,
  kCorrupt,
  kDelay,
  kCrash,
  kRecover,
};

struct Fault {
  FaultKind kind = FaultKind::kNone;
  double value = 0.0;       // replacement payload for kCorrupt
  std::uint32_t delay = 1;  // postponement in rounds for kDelay
};

// Read-only view of an upcoming fused round block handed to observe().
// Exactly one of `keys` / `values` is non-empty depending on whether the
// pipeline's state is Key-valued or double-valued.
struct RoundWindow {
  std::uint64_t first_round = 0;  // first round index of the block
  std::uint32_t rounds = 0;       // number of rounds in the block
  std::uint32_t n = 0;            // network size
  std::uint64_t seed = 0;         // executor master seed
  std::span<const Key> keys;      // per-node state snapshot (Key pipelines)
  std::span<const double> values;  // per-node state snapshot (mean pipeline)
};

class AdversaryStrategy {
 public:
  virtual ~AdversaryStrategy() = default;

  [[nodiscard]] virtual const char* name() const noexcept = 0;

  // Maximum number of node-messages this strategy touches per round.  Purely
  // informational (benches sweep it); the strategies below enforce it
  // structurally.
  [[nodiscard]] virtual std::uint64_t budget_per_round() const noexcept = 0;

  // Non-null iff this strategy is equivalent to an oblivious FailureModel.
  // Executors absorb the returned model into their own failure model when
  // the adversary is installed (see Network::set_adversary), which is what
  // makes FailureModel the exact special case: fan-out sizing and failure
  // coins become indistinguishable from constructing with the model.
  [[nodiscard]] virtual const FailureModel* oblivious_model() const noexcept {
    return nullptr;
  }

  // Called by the executor when the adversary is installed (and again on
  // Engine::reset_stream).  Strategies derive all their randomness from this
  // seed so transcripts are reproducible.
  virtual void bind(std::uint64_t seed, std::uint32_t n) {
    seed_ = seed;
    n_ = n;
  }

  // Orchestrating-thread-only hook: inspect the state snapshot for the
  // upcoming block.  Strategies must tolerate fault() queries for rounds
  // they never observed (legacy pipelines do not publish windows) by
  // falling back to a deterministic default.
  virtual void observe(const RoundWindow& window) { (void)window; }

  // The fault applied to `node`'s outgoing message in `round`.  Pure and
  // thread-safe; queried concurrently from engine shards.
  [[nodiscard]] virtual Fault fault(std::uint32_t node,
                                    std::uint64_t round) const = 0;

 protected:
  std::uint64_t seed_ = 0;
  std::uint32_t n_ = 0;
};

// The Section-5 model as an adversary: drops node v's round-r message with
// the wrapped FailureModel's coin — the *same* coin the executors flip
// (streams::node_fails), so installing it on a failure-free executor is
// transcript-identical to constructing the executor with the model.
class ObliviousAdversary final : public AdversaryStrategy {
 public:
  explicit ObliviousAdversary(FailureModel model);

  [[nodiscard]] const char* name() const noexcept override {
    return "oblivious";
  }
  [[nodiscard]] std::uint64_t budget_per_round() const noexcept override;
  [[nodiscard]] const FailureModel* oblivious_model() const noexcept override {
    return &model_;
  }
  [[nodiscard]] Fault fault(std::uint32_t node,
                            std::uint64_t round) const override;

 private:
  FailureModel model_;
};

// Adaptive corruption: each observed window, targets the `budget` nodes
// whose current state is smallest (dragging the low tail — the worst case
// for a low quantile) and replaces the payloads they receive with
// `inject_value`.  Before the first observation it deterministically
// targets nodes [0, budget).
class GreedyTargetedAdversary final : public AdversaryStrategy {
 public:
  GreedyTargetedAdversary(std::uint32_t budget, double inject_value);

  [[nodiscard]] const char* name() const noexcept override { return "greedy"; }
  [[nodiscard]] std::uint64_t budget_per_round() const noexcept override {
    return budget_;
  }
  void bind(std::uint64_t seed, std::uint32_t n) override;
  void observe(const RoundWindow& window) override;
  [[nodiscard]] Fault fault(std::uint32_t node,
                            std::uint64_t round) const override;

 private:
  std::uint32_t budget_;
  double inject_value_;
  std::vector<std::uint32_t> targets_;  // sorted node ids, size <= budget_
};

// Eclipse attack: silences every message of the contiguous node range
// [first_target, first_target + budget).  The strongest targeted-drop
// adversary — eclipsed nodes receive nothing and their pushes vanish —
// and the canonical graceful-degradation scenario: everyone else must
// still be served.
class EclipseAdversary final : public AdversaryStrategy {
 public:
  EclipseAdversary(std::uint32_t first_target, std::uint32_t budget);

  [[nodiscard]] const char* name() const noexcept override { return "eclipse"; }
  [[nodiscard]] std::uint64_t budget_per_round() const noexcept override {
    return budget_;
  }
  [[nodiscard]] Fault fault(std::uint32_t node,
                            std::uint64_t round) const override;

 private:
  std::uint32_t first_target_;
  std::uint32_t budget_;
};

// Scattered corruption: each round, corrupts the messages of a pseudorandom
// `budget`-sized window of nodes (re-drawn per round from the bind seed), so
// any single node's channel is corrupted only in a budget/n fraction of
// rounds.  The regime sample filtering is built for: to move one filtered
// sample the adversary must corrupt a majority of its pull group, which for
// scattered corruption is quadratically rarer than corrupting one pull.
// Contrast with GreedyTargetedAdversary, which parks its whole budget on
// the same nodes and defeats their filters outright (but touches no one
// else).  examples/adversarial_lower_bound.cpp measures the difference.
class ScatterCorruptAdversary final : public AdversaryStrategy {
 public:
  ScatterCorruptAdversary(std::uint32_t budget, double inject_value,
                          std::uint64_t strategy_seed = 0);

  [[nodiscard]] const char* name() const noexcept override {
    return "scatter_corrupt";
  }
  [[nodiscard]] std::uint64_t budget_per_round() const noexcept override {
    return budget_;
  }
  [[nodiscard]] Fault fault(std::uint32_t node,
                            std::uint64_t round) const override;

 private:
  std::uint32_t budget_;
  double inject_value_;
  std::uint64_t strategy_seed_;
};

// One node-lifecycle episode: `node` is down for rounds
// [crash_round, recover_round) and reports kRecover exactly at
// recover_round.  recover_round == kNoRecovery means the node never comes
// back.
struct CrashEvent {
  std::uint32_t node = 0;
  std::uint64_t crash_round = 0;
  std::uint64_t recover_round = 0;

  friend bool operator==(const CrashEvent&, const CrashEvent&) = default;
};

inline constexpr std::uint64_t kNoRecovery = ~std::uint64_t{0};

// Crash-churn: whole nodes die mid-run and (optionally) come back.  Two
// modes:
//   * randomized — bind() draws `Config::crashes` distinct victims with
//     pseudorandom crash rounds in [first_round, first_round + crash_window)
//     and a fixed downtime, all a pure function of (bind seed, strategy
//     seed, n), so both executors regenerate the identical schedule;
//   * pinned — an explicit CrashEvent schedule, immune to bind() (tests and
//     forced-failure scenarios use this to crash a named node forever).
// fault() is a read-only schedule lookup: pure and thread-safe.
class CrashChurnAdversary final : public AdversaryStrategy {
 public:
  struct Config {
    std::uint32_t crashes = 1;        // distinct victims per run
    std::uint64_t first_round = 1;    // earliest crash round
    std::uint64_t crash_window = 64;  // crash rounds drawn from this span
    std::uint64_t down_rounds = 16;   // downtime; 0 = never recovers
    std::uint64_t strategy_seed = 0;
  };

  explicit CrashChurnAdversary(Config config);
  explicit CrashChurnAdversary(std::vector<CrashEvent> schedule);

  [[nodiscard]] const char* name() const noexcept override {
    return "crash_churn";
  }
  [[nodiscard]] std::uint64_t budget_per_round() const noexcept override;
  void bind(std::uint64_t seed, std::uint32_t n) override;
  [[nodiscard]] Fault fault(std::uint32_t node,
                            std::uint64_t round) const override;

  // The full lifecycle schedule, sorted by (node, crash_round).
  [[nodiscard]] std::span<const CrashEvent> schedule() const noexcept {
    return schedule_;
  }

 private:
  Config config_{};
  bool pinned_ = false;  // explicit schedule: bind() must not regenerate
  std::vector<CrashEvent> schedule_;
};

// Bursty delays: for `burst_rounds` out of every `period` rounds, delays the
// messages of a contiguous window of `budget` nodes by `delay` rounds.  The
// window start is re-drawn pseudorandomly every round from (bind seed,
// strategy seed, round), so the pressure moves around but never exceeds the
// budget.  Exercises the kDelay fault kind end-to-end.
class BudgetBurstAdversary final : public AdversaryStrategy {
 public:
  BudgetBurstAdversary(std::uint32_t budget, std::uint32_t period,
                       std::uint32_t burst_rounds, std::uint32_t delay = 2,
                       std::uint64_t strategy_seed = 0);

  [[nodiscard]] const char* name() const noexcept override {
    return "budget_burst";
  }
  [[nodiscard]] std::uint64_t budget_per_round() const noexcept override {
    return budget_;
  }
  [[nodiscard]] Fault fault(std::uint32_t node,
                            std::uint64_t round) const override;

 private:
  std::uint32_t budget_;
  std::uint32_t period_;
  std::uint32_t burst_rounds_;
  std::uint32_t delay_;
  std::uint64_t strategy_seed_;
};

}  // namespace gq
