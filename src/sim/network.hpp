// The uniform gossip network simulator.
//
// Model (Section 1 of the paper): computation proceeds in synchronized
// rounds.  In each round every node performs one push (deliver a message to
// a uniformly random other node) or one pull (receive a message from a
// uniformly random other node).  Messages are O(log n) bits; the simulator
// accounts sizes instead of serializing bytes.  Under the Section-5 failure
// model, node v's operation in round i is lost with probability p_{v,i}.
//
// Determinism: all randomness of node v in round r is a pure function of
// (master seed, r, v).  Two runs with the same seed produce identical
// transcripts, and a node's draws do not depend on the order in which other
// nodes are processed.
//
// Protocols drive the network through two levels of API:
//   * whole-round helpers (pull_round, push_round) covering the common
//     "every node contacts one random peer" pattern, and
//   * low-level primitives (begin_round / node_stream / sample_peer /
//     node_fails / record_messages) for protocols with richer per-round
//     behaviour such as the token-splitting step of the exact algorithm.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/adversary.hpp"
#include "sim/failure_model.hpp"
#include "sim/metrics.hpp"
#include "sim/streams.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace gq {

class Network {
 public:
  // Sentinel peer index meaning "this node's operation failed this round".
  static constexpr std::uint32_t kNoPeer = 0xffffffffu;

  Network(std::uint32_t n, std::uint64_t seed,
          FailureModel failures = FailureModel{})
      : n_(n), seed_(seed), failures_(std::move(failures)) {
    GQ_REQUIRE(n >= 2, "a gossip network needs at least two nodes");
  }

  [[nodiscard]] std::uint32_t size() const noexcept { return n_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }
  [[nodiscard]] const FailureModel& failures() const noexcept {
    return failures_;
  }

  // ---- adversarial fault injection -------------------------------------

  // Installs a message-level adversary (sim/adversary.hpp).  The strategy is
  // borrowed, not owned — it must outlive the executor — and is bound to
  // (seed, n) here.  An oblivious strategy's drop model is absorbed into
  // this executor's failure model (when none is installed yet), which is
  // what makes FailureModel the exact special case: fan-out sizing, failure
  // coins, and transcripts match a model-constructed executor bit for bit.
  // Pass nullptr to uninstall.
  void set_adversary(AdversaryStrategy* adversary) {
    adversary_ = adversary;
    if (adversary_ != nullptr) {
      adversary_->bind(seed_, n_);
      if (const FailureModel* fm = adversary_->oblivious_model();
          fm != nullptr && failures_.never_fails()) {
        failures_ = *fm;
      }
    }
  }
  [[nodiscard]] AdversaryStrategy* adversary() const noexcept {
    return adversary_;
  }

  // Rebases this executor onto a fresh randomness stream: new master seed,
  // round counter back to zero, installed adversary re-bound.  A run after
  // reset_stream(s) is transcript-identical to one on a Network constructed
  // with seed s — the supervisor's retry attempts (core/supervisor.hpp)
  // rely on this, exactly as warm service queries rely on the Engine's
  // counterpart.  Metrics keep accumulating; callers snapshot/`since` around
  // each attempt.
  void reset_stream(std::uint64_t seed) {
    seed_ = seed;
    round_ = 0;
    if (adversary_ != nullptr) adversary_->bind(seed_, n_);
  }

  // True iff no fault source is installed at all — no failure model and no
  // adversary.  The failure-free pipeline variants key off this (the
  // never_fails() of the pre-adversary era).
  [[nodiscard]] bool faultless() const noexcept {
    return failures_.never_fails() && adversary_ == nullptr;
  }

  // ---- low-level primitives --------------------------------------------

  // Starts the next synchronous round and returns its index.
  std::uint64_t begin_round() noexcept {
    ++round_;
    ++metrics_.rounds;
    return round_;
  }

  // Independent random stream for node v in the current round.  Protocols
  // must draw from it in a fixed program order to stay deterministic.
  // (Shared derivation with the parallel Engine: see sim/streams.hpp.)
  [[nodiscard]] SplitMix64 node_stream(std::uint32_t v) const noexcept {
    return streams::node_stream(seed_, round_, v);
  }

  // Samples whether node v's operation fails in the current round.  Uses a
  // dedicated stream so the failure coin does not perturb peer choices.
  // With an adversary installed, a kDrop, kDelay, or kCrash fault on v also
  // reads as a failed operation here (legacy pipelines have no payload layer
  // to corrupt or mailbox to delay into, and no lifecycle notion — a down
  // node simply loses its rounds; kCorrupt is a no-op at this level — only
  // the adversarial pipelines apply it).
  [[nodiscard]] bool node_fails(std::uint32_t v) const {
    return op_fails(v, round_);
  }

  // Explicit-round variant for fused multi-round kernels that advance the
  // round counter up front (see engine/kernels.cpp).
  [[nodiscard]] bool op_fails(std::uint32_t v, std::uint64_t round) const {
    if (streams::node_fails(seed_, round, v, failures_)) return true;
    if (adversary_ == nullptr) return false;
    const Fault f = adversary_->fault(v, round);
    return f.kind == FaultKind::kDrop || f.kind == FaultKind::kDelay ||
           f.kind == FaultKind::kCrash;
  }

  // Uniformly random node other than v, drawn from `stream`.
  [[nodiscard]] std::uint32_t sample_peer(std::uint32_t v,
                                          SplitMix64& stream) const noexcept {
    return streams::sample_peer(v, n_, stream);
  }

  // Traffic accounting for the current round.  Bulk form is O(#distinct
  // message sizes), not O(count).
  void record_messages(std::uint64_t count, std::uint64_t bits_each) {
    metrics_.record_messages(count, bits_each);
  }
  void record_message(std::uint64_t bits) { metrics_.record_message(bits); }
  void record_failed_operation() noexcept { ++metrics_.failed_operations; }

  // Folds a kernel-accumulated Metrics fragment (messages, failed
  // operations, adversary tallies — never rounds; advance those through
  // begin_round) into the run accounting.  The adversarial kernels batch
  // their per-node accounting per fused block instead of calling
  // record_message once per message.
  void merge_metrics(const Metrics& fragment) { metrics_.merge(fragment); }

  // ---- whole-round helpers ---------------------------------------------

  // One synchronous round in which every node attempts a single pull of a
  // `bits_per_message`-bit message.  out[v] is the contacted peer, or
  // kNoPeer if v's operation failed.
  [[nodiscard]] std::vector<std::uint32_t> pull_round(
      std::uint64_t bits_per_message);

  // One synchronous round in which every node attempts a single push.
  // out[v] is the destination chosen by v, or kNoPeer on failure.  (The
  // mechanics are identical to pull_round; the distinction is which side
  // supplies the message, which matters to the protocol, not the sampler.)
  [[nodiscard]] std::vector<std::uint32_t> push_round(
      std::uint64_t bits_per_message) {
    return pull_round(bits_per_message);
  }

  // Default message budget of the model: Theta(log n) bits.  Computed as
  // 2*ceil(log2 n) — one value plus one tag word.
  [[nodiscard]] std::uint64_t default_message_bits() const noexcept;

 private:
  std::uint32_t n_;
  std::uint64_t seed_;
  FailureModel failures_;
  AdversaryStrategy* adversary_ = nullptr;  // borrowed; see set_adversary
  std::uint64_t round_ = 0;
  Metrics metrics_;
};

}  // namespace gq
