// Counter-based randomness for synchronous gossip, shared by the sequential
// Network and the parallel Engine.
//
// All randomness of node v in round r is a pure function of
// (master seed, r, v): a SplitMix64 stream seeded by mixing the three with
// odd constants.  This is the property that makes gossip rounds
// embarrassingly parallel without sacrificing reproducibility — any executor
// that derives its draws through these functions, in the same per-node
// program order, produces bit-identical transcripts regardless of the order
// (or thread) in which nodes are processed.
//
// Network and Engine both delegate here; do not reimplement the mixing
// elsewhere, or the two execution paths can drift apart silently.
#pragma once

#include <cstdint>

#include "sim/failure_model.hpp"
#include "util/rng.hpp"

namespace gq::streams {

// Independent random stream for node v in round `round`.  Protocols must
// draw from it in a fixed program order to stay deterministic.
[[nodiscard]] constexpr SplitMix64 node_stream(std::uint64_t seed,
                                               std::uint64_t round,
                                               std::uint32_t v) noexcept {
  // Mix round and node into the master seed with two odd constants; the
  // SplitMix64 constructor's first output then decorrelates neighbours.
  const std::uint64_t s = seed ^ (round * 0x9e3779b97f4a7c15ULL) ^
                          (static_cast<std::uint64_t>(v) + 1) *
                              0xd1342543de82ef95ULL;
  return SplitMix64{s};
}

// Samples whether node v's operation fails in round `round`.  Uses a
// dedicated stream so the failure coin does not perturb peer choices.
[[nodiscard]] inline bool node_fails(std::uint64_t seed, std::uint64_t round,
                                     std::uint32_t v,
                                     const FailureModel& failures) {
  const double p = failures.probability(v, round);
  if (p <= 0.0) return false;
  SplitMix64 s{seed ^ 0x5851f42d4c957f2dULL ^
               (round * 0xd6e8feb86659fd93ULL) ^
               (static_cast<std::uint64_t>(v) + 1) * 0xaef17502108ef2d9ULL};
  return rand_bernoulli(s, p);
}

// Deterministic reseeding for supervised retries (core/supervisor.hpp):
// the seed of attempt `attempt` over base seed `base_seed`.  Attempt 0 IS
// the unsupervised run — it returns base_seed unchanged, which is what
// makes a zero-fault supervised run transcript-identical to the bare
// pipeline.  Later attempts derive statistically independent streams from
// (base_seed, attempt) alone, so every retry is reproducible from the base
// seed and both executors re-derive the identical sequence.
[[nodiscard]] inline std::uint64_t attempt_seed(std::uint64_t base_seed,
                                                std::uint32_t attempt) {
  if (attempt == 0) return base_seed;
  return derive_seed(base_seed ^ 0xa77e3b7a5eedULL,
                     static_cast<std::uint64_t>(attempt));
}

// Uniformly random node in [0, n) other than v, drawn from `stream`.
[[nodiscard]] inline std::uint32_t sample_peer(std::uint32_t v,
                                               std::uint32_t n,
                                               SplitMix64& stream) noexcept {
  auto idx = static_cast<std::uint32_t>(rand_index(stream, n - 1));
  return idx >= v ? idx + 1 : idx;
}

}  // namespace gq::streams
