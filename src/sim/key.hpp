// Key: the totally ordered node payload used by all quantile protocols.
//
// The paper assumes w.l.o.g. that all node values are distinct.  Real
// workloads have ties, so the library orders payloads by the lexicographic
// triple (value, id, tag):
//   * value — the application's double;
//   * id    — the originating node, breaking ties between equal values;
//   * tag   — a duplication tag used by the exact algorithm when a value is
//             replicated into many copies (Algorithm 3, Step 7); 0 initially.
// Any two keys held by different nodes compare unequal, which restores the
// paper's distinctness assumption without constraining inputs.
//
// A Key fits in O(log n) bits in the model's sense: value (one machine word),
// id and tag (indices).  Message-size accounting uses key_bits().
#pragma once

#include <bit>
#include <compare>
#include <cstdint>
#include <limits>

namespace gq {

struct Key {
  double value = 0.0;
  std::uint32_t id = 0;
  std::uint64_t tag = 0;

  friend constexpr auto operator<=>(const Key&, const Key&) = default;

  // The "valueless" marker of Algorithm 3 Step 6: compares above every real
  // payload (x_v <- infinity in the paper).
  [[nodiscard]] static constexpr Key infinite() noexcept {
    return Key{std::numeric_limits<double>::infinity(),
               std::numeric_limits<std::uint32_t>::max(),
               std::numeric_limits<std::uint64_t>::max()};
  }

  // Sentinel comparing below every real payload (used when spreading a
  // maximum over nodes that have no contribution).
  [[nodiscard]] static constexpr Key neg_infinite() noexcept {
    return Key{-std::numeric_limits<double>::infinity(), 0, 0};
  }

  [[nodiscard]] constexpr bool is_finite() const noexcept {
    return value != std::numeric_limits<double>::infinity() &&
           value != -std::numeric_limits<double>::infinity();
  }

  // Two keys carry the same application value (ignoring duplication tags).
  [[nodiscard]] constexpr bool same_value(const Key& o) const noexcept {
    return value == o.value && id == o.id;
  }
};

// Message size of one key under the model's O(log n)-bit budget: one value
// word plus two index fields of ceil(log2 n) bits each.
[[nodiscard]] constexpr std::uint64_t key_bits(std::uint32_t n) noexcept {
  std::uint64_t log2n = 1;
  while ((1ull << log2n) < n) ++log2n;
  return 64 + 2 * log2n;
}

// Default message budget of the model: Theta(log n) bits, computed as
// 2*ceil(log2 n) — one value plus one tag word.  Shared by Network and
// Engine so the two executors cannot drift.
[[nodiscard]] constexpr std::uint64_t default_message_bits(
    std::uint32_t n) noexcept {
  return 2 * static_cast<std::uint64_t>(
                 std::bit_width(static_cast<std::uint64_t>(n) - 1));
}

}  // namespace gq
