// Order-preserving key interning: the compact-lane representation behind
// the engine's tournament kernels.
//
// A tournament/median-dynamics round never creates key values — it only
// copies and compares them — so the whole evolving state is a multiset over
// the distinct keys of the *initial* state.  Interning builds the sorted
// dictionary of those distinct keys once and replaces every state entry by
// its 32-bit rank.  Because the map rank -> key is strictly increasing,
// rank comparisons decide exactly as key comparisons do: min / max /
// median-of-three / nth_element over ranks commit the same values the
// Key-typed kernels would, bit for bit.  What changes is purely the memory
// traffic: a random peer gather touches a 4-byte lane entry instead of a
// Key-sized record, so one cache line now serves 16 peers instead of 2 —
// the difference between a latency-bound pointer chase and a prefetchable
// stream at n = 10^6..10^7.
//
// Duplicates are fine (the exact pipeline's instances carry many identical
// Key::infinite() entries): equal keys share a rank, and since equal keys
// are interchangeable everywhere the protocols compare them, collapsing
// them is unobservable.
//
// All buffers are pooled: a warmed-up interner's intern() performs no heap
// allocation, which the engine's steady-state allocation tests rely on
// (kernels hold their interner in Engine::scratch).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/key.hpp"
#include "util/require.hpp"

namespace gq {

class KeyInterner {
 public:
  // Builds the dictionary for `keys` and writes ranks[v] = the rank of
  // keys[v] in the sorted distinct-key table.  O(n log n) once per interned
  // state — amortised over the dozens of gather rounds the compact lanes
  // then serve.
  void intern(std::span<const Key> keys, std::span<std::uint32_t> ranks) {
    GQ_REQUIRE(keys.size() == ranks.size(),
               "one rank slot per interned key required");
    const std::size_t n = keys.size();
    if (sort_buf_.size() < n) sort_buf_.resize(n);
    for (std::size_t v = 0; v < n; ++v) {
      sort_buf_[v] = Entry{keys[v], static_cast<std::uint32_t>(v)};
    }
    std::sort(sort_buf_.begin(), sort_buf_.begin() + static_cast<std::ptrdiff_t>(n),
              [](const Entry& a, const Entry& b) { return a.key < b.key; });
    table_.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (table_.empty() || table_.back() != sort_buf_[i].key) {
        table_.push_back(sort_buf_[i].key);
      }
      ranks[sort_buf_[i].node] =
          static_cast<std::uint32_t>(table_.size() - 1);
    }
  }

  // The sorted distinct-key dictionary of the last intern() call.
  [[nodiscard]] std::span<const Key> table() const noexcept {
    return {table_.data(), table_.size()};
  }

  [[nodiscard]] const Key& key_at(std::uint32_t rank) const noexcept {
    return table_[rank];
  }

 private:
  struct Entry {
    Key key;
    std::uint32_t node;
  };

  std::vector<Entry> sort_buf_;
  std::vector<Key> table_;
};

}  // namespace gq
