// Order-preserving key interning: the compact-lane representation behind
// the engine's tournament kernels.
//
// A tournament/median-dynamics round never creates key values — it only
// copies and compares them — so the whole evolving state is a multiset over
// the distinct keys of the *initial* state.  Interning builds the sorted
// dictionary of those distinct keys once and replaces every state entry by
// its 32-bit rank.  Because the map rank -> key is strictly increasing,
// rank comparisons decide exactly as key comparisons do: min / max /
// median-of-three / nth_element over ranks commit the same values the
// Key-typed kernels would, bit for bit.  What changes is purely the memory
// traffic: a random peer gather touches a 4-byte lane entry instead of a
// Key-sized record, so one cache line now serves 16 peers instead of 2 —
// the difference between a latency-bound pointer chase and a prefetchable
// stream at n = 10^6..10^7.
//
// Duplicates are fine (the exact pipeline's instances carry many identical
// Key::infinite() entries): equal keys share a rank, and since equal keys
// are interchangeable everywhere the protocols compare them, collapsing
// them is unobservable.
//
// All buffers are pooled: a warmed-up interner's intern() performs no heap
// allocation, which the engine's steady-state allocation tests rely on
// (kernels hold their interner in Engine::scratch).
//
// Long-lived sessions (src/service/) additionally use extend(): instead of
// re-sorting all n keys when an epoch appends a few new distinct keys, the
// newly appeared keys are merged into the existing sorted table and every
// lane is re-ranked by binary search — O(a log a + n log d) against
// intern()'s O(n log n) sort.  The table is then allowed to be a *superset*
// of the state's distinct keys: rank order is still key order and every
// state key still maps through the table, so protocols decide and
// materialise identically; only the (unobserved) rank values differ.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/key.hpp"
#include "util/require.hpp"

namespace gq {

class KeyInterner {
 public:
  // Builds the dictionary for `keys` and writes ranks[v] = the rank of
  // keys[v] in the sorted distinct-key table.  O(n log n) once per interned
  // state — amortised over the dozens of gather rounds the compact lanes
  // then serve.
  void intern(std::span<const Key> keys, std::span<std::uint32_t> ranks) {
    GQ_REQUIRE(keys.size() == ranks.size(),
               "one rank slot per interned key required");
    const std::size_t n = keys.size();
    if (sort_buf_.size() < n) sort_buf_.resize(n);
    for (std::size_t v = 0; v < n; ++v) {
      sort_buf_[v] = Entry{keys[v], static_cast<std::uint32_t>(v)};
    }
    std::sort(sort_buf_.begin(), sort_buf_.begin() + static_cast<std::ptrdiff_t>(n),
              [](const Entry& a, const Entry& b) { return a.key < b.key; });
    table_.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (table_.empty() || table_.back() != sort_buf_[i].key) {
        table_.push_back(sort_buf_[i].key);
      }
      ranks[sort_buf_[i].node] =
          static_cast<std::uint32_t>(table_.size() - 1);
    }
  }

  // Incremental session extension: merges `added` (any multiset; duplicates
  // and keys already in the table are fine) into the sorted dictionary, then
  // writes ranks[v] for every keys[v] by binary search.  Bit-identical rank
  // semantics to intern() — rank order is table order — except that keys
  // retired from the state stay in the table as harmless stale entries
  // (see the header comment).  Every keys[v] must be findable, i.e. present
  // in the old table or in `added`.  O(a log a + d + n log d).
  void extend(std::span<const Key> added, std::span<const Key> keys,
              std::span<std::uint32_t> ranks) {
    GQ_REQUIRE(keys.size() == ranks.size(),
               "one rank slot per interned key required");
    if (add_buf_.size() < added.size()) add_buf_.resize(added.size());
    std::copy(added.begin(), added.end(), add_buf_.begin());
    const auto add_end =
        add_buf_.begin() + static_cast<std::ptrdiff_t>(added.size());
    std::sort(add_buf_.begin(), add_end);
    // Set-union merge of two sorted ranges into the pooled merge buffer;
    // both inputs may carry duplicates of each other.
    merge_buf_.clear();
    merge_buf_.reserve(table_.size() + added.size());
    auto t = table_.begin();
    auto a = add_buf_.begin();
    while (t != table_.end() || a != add_end) {
      const Key* next = nullptr;
      if (a == add_end || (t != table_.end() && *t <= *a)) {
        next = &*t++;
      } else {
        next = &*a++;
      }
      if (merge_buf_.empty() || merge_buf_.back() != *next) {
        merge_buf_.push_back(*next);
      }
    }
    table_.swap(merge_buf_);
    for (std::size_t v = 0; v < keys.size(); ++v) {
      ranks[v] = rank_of(keys[v]);
    }
  }

  // Replaces the dictionary with an externally maintained sorted table
  // (the engine-side half of a session hand-off; see
  // engine/kernels.hpp: adopt_intern_session).
  void adopt(std::span<const Key> table) {
    for (std::size_t i = 1; i < table.size(); ++i) {
      GQ_REQUIRE(table[i - 1] < table[i],
                 "adopted intern table must be sorted and distinct");
    }
    table_.assign(table.begin(), table.end());
  }

  // Rank of a key that is present in the table.
  [[nodiscard]] std::uint32_t rank_of(const Key& key) const {
    const auto it = std::lower_bound(table_.begin(), table_.end(), key);
    GQ_REQUIRE(it != table_.end() && *it == key,
               "rank_of: key missing from the interned table");
    return static_cast<std::uint32_t>(it - table_.begin());
  }

  // Number of table keys <= z: with state held as rank lanes, the
  // state-level indicator keys[v] <= z is exactly lane[v] < count_le(z) —
  // one integer compare per node against a single binary search.
  [[nodiscard]] std::uint32_t count_le(const Key& z) const noexcept {
    return static_cast<std::uint32_t>(
        std::upper_bound(table_.begin(), table_.end(), z) - table_.begin());
  }

  // The sorted distinct-key dictionary of the last intern() call.
  [[nodiscard]] std::span<const Key> table() const noexcept {
    return {table_.data(), table_.size()};
  }

  [[nodiscard]] const Key& key_at(std::uint32_t rank) const noexcept {
    return table_[rank];
  }

 private:
  struct Entry {
    Key key;
    std::uint32_t node;
  };

  std::vector<Entry> sort_buf_;
  std::vector<Key> table_;
  std::vector<Key> add_buf_, merge_buf_;  // extend() scratch
};

}  // namespace gq
