#include "sim/network.hpp"

#include "sim/key.hpp"

namespace gq {

std::vector<std::uint32_t> Network::pull_round(std::uint64_t bits_per_message) {
  begin_round();
  std::vector<std::uint32_t> peers(n_, kNoPeer);
  for (std::uint32_t v = 0; v < n_; ++v) {
    if (node_fails(v)) {
      record_failed_operation();
      continue;
    }
    SplitMix64 stream = node_stream(v);
    peers[v] = sample_peer(v, stream);
    record_message(bits_per_message);
  }
  return peers;
}

std::uint64_t Network::default_message_bits() const noexcept {
  return gq::default_message_bits(n_);
}

}  // namespace gq
