// Traffic and round accounting for a simulated gossip execution.
//
// Every algorithm in this library advances rounds and records messages
// through Network, so the counters below are honest end-to-end costs in the
// paper's model: rounds of synchronous gossip, messages exchanged, and bits
// on the wire (message sizes are accounted, not serialized).
#pragma once

#include <cstdint>

namespace gq {

struct Metrics {
  std::uint64_t rounds = 0;             // synchronous gossip rounds elapsed
  std::uint64_t messages = 0;           // successful push/pull messages
  std::uint64_t message_bits = 0;       // sum of message sizes in bits
  std::uint64_t max_message_bits = 0;   // largest single message
  std::uint64_t failed_operations = 0;  // node-rounds lost to failures

  void record_message(std::uint64_t bits) noexcept {
    ++messages;
    message_bits += bits;
    if (bits > max_message_bits) max_message_bits = bits;
  }

  // Difference of two snapshots: cost of the phase between them.
  [[nodiscard]] Metrics since(const Metrics& earlier) const noexcept {
    Metrics d;
    d.rounds = rounds - earlier.rounds;
    d.messages = messages - earlier.messages;
    d.message_bits = message_bits - earlier.message_bits;
    d.max_message_bits = max_message_bits;
    d.failed_operations = failed_operations - earlier.failed_operations;
    return d;
  }
};

}  // namespace gq
