// Traffic and round accounting for a simulated gossip execution.
//
// Every algorithm in this library advances rounds and records messages
// through Network (or the parallel Engine), so the counters below are honest
// end-to-end costs in the paper's model: rounds of synchronous gossip,
// messages exchanged, and bits on the wire (message sizes are accounted, not
// serialized).
//
// Alongside the plain counters, Metrics keeps a cumulative per-size message
// count (`size_counts`).  Protocols use only a handful of distinct message
// sizes per run, so the table stays tiny, and it is what makes phase
// accounting honest: `since(earlier)` can report the largest message that
// occurred *within* the phase rather than the run-global maximum.
//
// Metrics is a value type: snapshots are plain copies, and shard-local
// instances can be combined with `merge` (all counters are sums or maxes, so
// merging is order-independent — the parallel engine relies on this for
// bit-identical results at any thread count).
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace gq {

namespace metrics_detail {

using SizeCounts = std::vector<std::pair<std::uint64_t, std::uint64_t>>;

inline SizeCounts::const_iterator find_size(const SizeCounts& counts,
                                            std::uint64_t bits) {
  return std::lower_bound(
      counts.begin(), counts.end(), bits,
      [](const auto& entry, std::uint64_t b) { return entry.first < b; });
}

// Adds `count` messages of size `bits` to the sorted table.
inline void add_size(SizeCounts& counts, std::uint64_t bits,
                     std::uint64_t count) {
  const auto pos = counts.begin() + (find_size(counts, bits) - counts.begin());
  if (pos != counts.end() && pos->first == bits) {
    pos->second += count;
  } else {
    counts.insert(pos, {bits, count});
  }
}

// Cumulative count recorded for size `bits` (0 if never seen).
inline std::uint64_t count_at(const SizeCounts& counts, std::uint64_t bits) {
  const auto pos = find_size(counts, bits);
  return (pos != counts.end() && pos->first == bits) ? pos->second : 0;
}

}  // namespace metrics_detail

struct Metrics {
  std::uint64_t rounds = 0;             // synchronous gossip rounds elapsed
  std::uint64_t messages = 0;           // successful push/pull messages
  std::uint64_t message_bits = 0;       // sum of message sizes in bits
  std::uint64_t max_message_bits = 0;   // largest single message
  std::uint64_t failed_operations = 0;  // node-rounds lost to failures

  // Adversarial fault tallies (sim/adversary.hpp).  A faulted message is
  // still billed as sent (the sender paid for it); these count what the
  // adversary did to it in transit.  Zero on failure-model-only runs.
  std::uint64_t adversary_dropped = 0;    // destroyed in transit
  std::uint64_t adversary_corrupted = 0;  // payload replaced
  std::uint64_t adversary_delayed = 0;    // delivery postponed

  // Crash-churn lifecycle tallies (FaultKind::kCrash / kRecover).  Crashed
  // node-rounds send nothing, so unlike the in-transit tallies above these
  // operations are *not* billed as messages.
  std::uint64_t adversary_crashed = 0;        // node-rounds spent down
  std::uint64_t adversary_crash_dropped = 0;  // pulls lost to a down peer
  std::uint64_t adversary_recovered = 0;      // recovery events observed

  // Cumulative count of messages per distinct size, sorted by size.
  metrics_detail::SizeCounts size_counts;

  friend bool operator==(const Metrics&, const Metrics&) = default;

  // Zeroes every counter but keeps size_counts' capacity, unlike assigning
  // Metrics{} — the engine resets shard-local accumulators every parallel
  // section, and steady-state rounds must not reallocate the table.
  void reset() {
    rounds = 0;
    messages = 0;
    message_bits = 0;
    max_message_bits = 0;
    failed_operations = 0;
    adversary_dropped = 0;
    adversary_corrupted = 0;
    adversary_delayed = 0;
    adversary_crashed = 0;
    adversary_crash_dropped = 0;
    adversary_recovered = 0;
    size_counts.clear();
  }

  // True iff every counter is zero.  The engine's per-section merge skips
  // empty shard accumulators on this test; skipping is observationally
  // identical to merging (every field is a sum or a max, and merging zeros
  // changes nothing), it just keeps the O(shards) per-section accounting
  // from touching size tables that recorded no traffic.
  [[nodiscard]] bool empty() const noexcept {
    return rounds == 0 && messages == 0 && message_bits == 0 &&
           max_message_bits == 0 && failed_operations == 0 &&
           adversary_dropped == 0 && adversary_corrupted == 0 &&
           adversary_delayed == 0 && adversary_crashed == 0 &&
           adversary_crash_dropped == 0 && adversary_recovered == 0 &&
           size_counts.empty();
  }

  void record_message(std::uint64_t bits) { record_messages(1, bits); }

  // Bulk update: `count` messages of `bits` bits each, O(#distinct sizes)
  // instead of O(count).
  void record_messages(std::uint64_t count, std::uint64_t bits) {
    if (count == 0) return;
    messages += count;
    message_bits += count * bits;
    if (bits > max_message_bits) max_message_bits = bits;
    metrics_detail::add_size(size_counts, bits, count);
  }

  // Folds a shard-local Metrics into this one.  Every field is a sum or a
  // max, so the result does not depend on merge order.
  void merge(const Metrics& other) {
    rounds += other.rounds;
    messages += other.messages;
    message_bits += other.message_bits;
    max_message_bits = std::max(max_message_bits, other.max_message_bits);
    failed_operations += other.failed_operations;
    adversary_dropped += other.adversary_dropped;
    adversary_corrupted += other.adversary_corrupted;
    adversary_delayed += other.adversary_delayed;
    adversary_crashed += other.adversary_crashed;
    adversary_crash_dropped += other.adversary_crash_dropped;
    adversary_recovered += other.adversary_recovered;
    for (const auto& [bits, count] : other.size_counts) {
      metrics_detail::add_size(size_counts, bits, count);
    }
  }

  // Difference of two snapshots: cost of the phase between them.  `earlier`
  // must be a previous snapshot of this same accounting stream (its per-size
  // counts are dominated by ours); `max_message_bits` of the result is the
  // largest message recorded within the phase, not the global maximum.
  [[nodiscard]] Metrics since(const Metrics& earlier) const {
    Metrics d;
    d.rounds = rounds - earlier.rounds;
    d.messages = messages - earlier.messages;
    d.message_bits = message_bits - earlier.message_bits;
    d.failed_operations = failed_operations - earlier.failed_operations;
    d.adversary_dropped = adversary_dropped - earlier.adversary_dropped;
    d.adversary_corrupted = adversary_corrupted - earlier.adversary_corrupted;
    d.adversary_delayed = adversary_delayed - earlier.adversary_delayed;
    d.adversary_crashed = adversary_crashed - earlier.adversary_crashed;
    d.adversary_crash_dropped =
        adversary_crash_dropped - earlier.adversary_crash_dropped;
    d.adversary_recovered = adversary_recovered - earlier.adversary_recovered;
    for (const auto& [bits, count] : size_counts) {
      const std::uint64_t before =
          metrics_detail::count_at(earlier.size_counts, bits);
      if (count > before) {
        d.size_counts.emplace_back(bits, count - before);
        if (bits > d.max_message_bits) d.max_message_bits = bits;
      }
    }
    return d;
  }
};

}  // namespace gq
