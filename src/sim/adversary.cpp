#include "sim/adversary.hpp"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "sim/streams.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace gq {

// ---- ObliviousAdversary ---------------------------------------------------

ObliviousAdversary::ObliviousAdversary(FailureModel model)
    : model_(std::move(model)) {}

std::uint64_t ObliviousAdversary::budget_per_round() const noexcept {
  // An oblivious model is not budget-bounded: in the worst round every node's
  // coin can come up "fail".
  return n_;
}

Fault ObliviousAdversary::fault(std::uint32_t node, std::uint64_t round) const {
  // The same coin the executors flip for their own failure model.  When the
  // executor has absorbed model_ (the usual case), this is redundant with the
  // executor's own draw — ORing identical coins is idempotent, so the
  // transcript is unchanged; when it has not (a failure model was already
  // installed), it composes as an independent drop source.
  if (streams::node_fails(seed_, round, node, model_)) {
    return Fault{.kind = FaultKind::kDrop};
  }
  return Fault{};
}

// ---- GreedyTargetedAdversary ----------------------------------------------

GreedyTargetedAdversary::GreedyTargetedAdversary(std::uint32_t budget,
                                                 double inject_value)
    : budget_(budget), inject_value_(inject_value) {}

void GreedyTargetedAdversary::bind(std::uint64_t seed, std::uint32_t n) {
  AdversaryStrategy::bind(seed, n);
  targets_.clear();
  // Deterministic fallback until the first observation: the lowest node ids.
  const std::uint32_t k = std::min(budget_, n);
  targets_.reserve(k);
  for (std::uint32_t v = 0; v < k; ++v) targets_.push_back(v);
}

void GreedyTargetedAdversary::observe(const RoundWindow& window) {
  const std::uint32_t n = window.n;
  const std::uint32_t k = std::min(budget_, n);
  if (k == 0 || n == 0) return;
  // Rank nodes by their current state, smallest first, ties by node id so the
  // selection is total-ordered and executor-independent.
  std::vector<std::pair<double, std::uint32_t>> order;
  order.reserve(n);
  if (!window.keys.empty()) {
    for (std::uint32_t v = 0; v < n; ++v) {
      order.emplace_back(window.keys[v].value, v);
    }
  } else {
    for (std::uint32_t v = 0; v < n; ++v) {
      order.emplace_back(window.values[v], v);
    }
  }
  std::nth_element(order.begin(), order.begin() + (k - 1), order.end());
  targets_.clear();
  for (std::uint32_t i = 0; i < k; ++i) targets_.push_back(order[i].second);
  std::sort(targets_.begin(), targets_.end());
}

Fault GreedyTargetedAdversary::fault(std::uint32_t node,
                                     std::uint64_t /*round*/) const {
  if (std::binary_search(targets_.begin(), targets_.end(), node)) {
    return Fault{.kind = FaultKind::kCorrupt, .value = inject_value_};
  }
  return Fault{};
}

// ---- EclipseAdversary -----------------------------------------------------

EclipseAdversary::EclipseAdversary(std::uint32_t first_target,
                                   std::uint32_t budget)
    : first_target_(first_target), budget_(budget) {}

Fault EclipseAdversary::fault(std::uint32_t node,
                              std::uint64_t /*round*/) const {
  if (node >= first_target_ && node - first_target_ < budget_) {
    return Fault{.kind = FaultKind::kDrop};
  }
  return Fault{};
}

// ---- ScatterCorruptAdversary ----------------------------------------------

ScatterCorruptAdversary::ScatterCorruptAdversary(std::uint32_t budget,
                                                 double inject_value,
                                                 std::uint64_t strategy_seed)
    : budget_(budget),
      inject_value_(inject_value),
      strategy_seed_(strategy_seed) {}

Fault ScatterCorruptAdversary::fault(std::uint32_t node,
                                     std::uint64_t round) const {
  if (budget_ == 0 || n_ == 0) return Fault{};
  // Same wrapping-window scheme as BudgetBurstAdversary: a pure function of
  // (bind seed, strategy seed, round), identical on both executors.
  SplitMix64 gen(derive_seed(seed_ ^ (strategy_seed_ * 0x9e3779b97f4a7c15ULL),
                             round));
  const auto start = static_cast<std::uint32_t>(rand_index(gen, n_));
  const std::uint32_t offset = node >= start ? node - start : node + n_ - start;
  if (offset < budget_) {
    return Fault{.kind = FaultKind::kCorrupt, .value = inject_value_};
  }
  return Fault{};
}

// ---- CrashChurnAdversary --------------------------------------------------

CrashChurnAdversary::CrashChurnAdversary(Config config) : config_(config) {
  GQ_REQUIRE(config.crash_window > 0, "crash window must be positive");
}

CrashChurnAdversary::CrashChurnAdversary(std::vector<CrashEvent> schedule)
    : pinned_(true), schedule_(std::move(schedule)) {
  for (const CrashEvent& event : schedule_) {
    GQ_REQUIRE(event.crash_round < event.recover_round,
               "a crash must precede its recovery");
  }
  std::sort(schedule_.begin(), schedule_.end(),
            [](const CrashEvent& a, const CrashEvent& b) {
              return a.node != b.node ? a.node < b.node
                                      : a.crash_round < b.crash_round;
            });
}

std::uint64_t CrashChurnAdversary::budget_per_round() const noexcept {
  return schedule_.size();
}

void CrashChurnAdversary::bind(std::uint64_t seed, std::uint32_t n) {
  AdversaryStrategy::bind(seed, n);
  if (pinned_) return;
  // Regenerate the schedule as a pure function of (seed, strategy seed, n):
  // both executors bind with the same seed and recompute the identical
  // lifecycle plan, so fault() answers match bit for bit.
  schedule_.clear();
  const std::uint32_t k = std::min(config_.crashes, n);
  if (k == 0) return;
  SplitMix64 gen(derive_seed(
      seed ^ (config_.strategy_seed * 0x9e3779b97f4a7c15ULL), 0xc7a54ULL));
  schedule_.reserve(k);
  std::vector<std::uint32_t> victims;
  victims.reserve(k);
  while (victims.size() < k) {
    const auto v = static_cast<std::uint32_t>(rand_index(gen, n));
    if (std::find(victims.begin(), victims.end(), v) == victims.end()) {
      victims.push_back(v);
    }
  }
  for (const std::uint32_t v : victims) {
    CrashEvent event;
    event.node = v;
    event.crash_round =
        config_.first_round + rand_index(gen, config_.crash_window);
    event.recover_round = config_.down_rounds > 0
                              ? event.crash_round + config_.down_rounds
                              : kNoRecovery;
    schedule_.push_back(event);
  }
  std::sort(schedule_.begin(), schedule_.end(),
            [](const CrashEvent& a, const CrashEvent& b) {
              return a.node != b.node ? a.node < b.node
                                      : a.crash_round < b.crash_round;
            });
}

Fault CrashChurnAdversary::fault(std::uint32_t node,
                                 std::uint64_t round) const {
  const auto first = std::lower_bound(
      schedule_.begin(), schedule_.end(), node,
      [](const CrashEvent& event, std::uint32_t v) { return event.node < v; });
  bool recovering = false;
  for (auto it = first; it != schedule_.end() && it->node == node; ++it) {
    if (round >= it->crash_round && round < it->recover_round) {
      return Fault{.kind = FaultKind::kCrash};
    }
    if (round == it->recover_round) recovering = true;
  }
  if (recovering) return Fault{.kind = FaultKind::kRecover};
  return Fault{};
}

// ---- BudgetBurstAdversary -------------------------------------------------

BudgetBurstAdversary::BudgetBurstAdversary(std::uint32_t budget,
                                           std::uint32_t period,
                                           std::uint32_t burst_rounds,
                                           std::uint32_t delay,
                                           std::uint64_t strategy_seed)
    : budget_(budget),
      period_(period),
      burst_rounds_(burst_rounds),
      delay_(delay),
      strategy_seed_(strategy_seed) {
  GQ_REQUIRE(period > 0, "burst period must be positive");
  GQ_REQUIRE(burst_rounds <= period, "burst length cannot exceed the period");
  GQ_REQUIRE(delay > 0, "a zero-round delay is not a fault");
}

Fault BudgetBurstAdversary::fault(std::uint32_t node,
                                  std::uint64_t round) const {
  if (budget_ == 0 || n_ == 0) return Fault{};
  if (round % period_ >= burst_rounds_) return Fault{};
  // Per-round pseudorandom window of `budget_` nodes (wrapping), a pure
  // function of (bind seed, strategy seed, round) — identical on both
  // executors regardless of which shard asks.
  SplitMix64 gen(derive_seed(seed_ ^ (strategy_seed_ * 0x9e3779b97f4a7c15ULL),
                             round));
  const auto start = static_cast<std::uint32_t>(rand_index(gen, n_));
  const std::uint32_t offset = node >= start ? node - start : node + n_ - start;
  if (offset < budget_) {
    return Fault{.kind = FaultKind::kDelay, .delay = delay_};
  }
  return Fault{};
}

}  // namespace gq
