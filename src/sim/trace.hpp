// Round-trace recording: named time series collected during a simulation,
// exportable as CSV.  Benches use this to regenerate the paper's "figure"
// data (per-iteration tail fractions, informed counts, ...) in a form a
// plotting script can consume directly.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gq {

struct TracePoint {
  std::string series;
  std::uint64_t round = 0;
  double value = 0.0;
};

class TraceRecorder {
 public:
  void record(std::string_view series, std::uint64_t round, double value);

  [[nodiscard]] const std::vector<TracePoint>& points() const noexcept {
    return points_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }

  // All points of one series, in recording order.
  [[nodiscard]] std::vector<TracePoint> series(std::string_view name) const;

  // "series,round,value\n" rows with a header line.
  [[nodiscard]] std::string to_csv() const;

  // Writes to_csv() to `path`; returns false on I/O failure.
  bool write_csv(const std::string& path) const;

 private:
  std::vector<TracePoint> points_;
};

}  // namespace gq
