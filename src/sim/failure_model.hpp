// Failure model from Section 5 of the paper: every node v in every round i
// fails to perform its operation (push or pull) with a pre-determined
// probability p_{v,i} bounded by a constant mu < 1.
//
// FailureModel is a small value type: it stores a probability function
// (node, round) -> p and named constructors cover the common cases.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "util/require.hpp"

namespace gq {

class FailureModel {
 public:
  using ProbabilityFn = std::function<double(std::uint32_t node, std::uint64_t round)>;

  // No failures (p = 0 everywhere). Default.
  FailureModel() = default;

  // Every node fails in every round with the same probability mu in [0, 1).
  [[nodiscard]] static FailureModel uniform(double mu) {
    GQ_REQUIRE(mu >= 0.0 && mu < 1.0, "failure probability must be in [0,1)");
    FailureModel fm;
    if (mu > 0.0) {
      fm.fn_ = [mu](std::uint32_t, std::uint64_t) { return mu; };
      fm.max_probability_ = mu;
    }
    return fm;
  }

  // Per-node probabilities, constant across rounds.
  [[nodiscard]] static FailureModel per_node(std::vector<double> probs) {
    double mu = 0.0;
    for (double p : probs) {
      GQ_REQUIRE(p >= 0.0 && p < 1.0, "failure probability must be in [0,1)");
      mu = p > mu ? p : mu;
    }
    FailureModel fm;
    fm.fn_ = [probs = std::move(probs)](std::uint32_t v, std::uint64_t) {
      return v < probs.size() ? probs[v] : 0.0;
    };
    fm.max_probability_ = mu;
    return fm;
  }

  // Arbitrary schedule.  Contract:
  //   * `fn` must be a *total* function: defined for every (node, round)
  //     pair, including node indices beyond the network it ends up attached
  //     to (per_node() returns 0.0 out of range, for example).
  //   * `max_probability` must bound fn from above, and every value must lie
  //     in [0, max_probability].  The bound is reported through
  //     max_probability() and is what the robust protocols size their pull
  //     fan-out with (Theta(1/(1-mu) * log(1/(1-mu)))); a schedule that
  //     exceeds it silently starves the fan-out and voids Theorem 1.4's
  //     guarantee.
  // Construction spot-checks the bound on a fixed (node, round) probe grid
  // and throws std::invalid_argument on a violation.  The probe is O(1) and
  // runs in every build — it cannot prove the bound, but it catches the
  // common footgun (passing a bound for a *different* schedule) at the
  // construction site instead of as a silent accuracy loss mid-protocol.
  [[nodiscard]] static FailureModel custom(ProbabilityFn fn,
                                           double max_probability) {
    GQ_REQUIRE(max_probability >= 0.0 && max_probability < 1.0,
               "failure probability bound must be in [0,1)");
    if (fn) {
      for (const std::uint32_t v : {0u, 1u, 2u, 7u, 63u, 1023u}) {
        for (const std::uint64_t r :
             {std::uint64_t{1}, std::uint64_t{2}, std::uint64_t{3},
              std::uint64_t{17}, std::uint64_t{257}, std::uint64_t{65537}}) {
          const double p = fn(v, r);
          GQ_REQUIRE(p >= 0.0 && p <= max_probability,
                     "custom failure schedule exceeds its declared "
                     "max_probability bound (or is negative) on the "
                     "construction-time probe grid");
        }
      }
    }
    FailureModel fm;
    fm.fn_ = std::move(fn);
    fm.max_probability_ = max_probability;
    return fm;
  }

  [[nodiscard]] double probability(std::uint32_t node,
                                   std::uint64_t round) const {
    return fn_ ? fn_(node, round) : 0.0;
  }

  // The constant mu bounding all per-node/round probabilities.
  [[nodiscard]] double max_probability() const noexcept {
    return max_probability_;
  }

  [[nodiscard]] bool never_fails() const noexcept { return !fn_; }

 private:
  ProbabilityFn fn_;  // empty => never fails
  double max_probability_ = 0.0;
};

}  // namespace gq
