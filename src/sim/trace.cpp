#include "sim/trace.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace gq {

namespace {

// RFC 4180 field quoting: a series name containing a comma, double quote,
// or line break is wrapped in double quotes with internal quotes doubled;
// anything else passes through unchanged.
std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\r\n") == std::string::npos) return s;
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void TraceRecorder::record(std::string_view series, std::uint64_t round,
                           double value) {
  points_.push_back(TracePoint{std::string(series), round, value});
}

std::vector<TracePoint> TraceRecorder::series(std::string_view name) const {
  std::vector<TracePoint> out;
  for (const TracePoint& p : points_) {
    if (p.series == name) out.push_back(p);
  }
  return out;
}

std::string TraceRecorder::to_csv() const {
  std::ostringstream os;
  os << "series,round,value\n";
  for (const TracePoint& p : points_) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", p.value);
    os << csv_field(p.series) << ',' << p.round << ',' << buf << '\n';
  }
  return os.str();
}

bool TraceRecorder::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_csv();
  return static_cast<bool>(f);
}

}  // namespace gq
