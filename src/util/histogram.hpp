// Fixed-width histogram used by benches to report error distributions.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace gq {

class Histogram {
 public:
  // Buckets [lo, hi) split into `buckets` equal cells, plus underflow and
  // overflow counters.
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;

  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::size_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::size_t bucket(std::size_t i) const {
    return counts_.at(i);
  }
  [[nodiscard]] double bucket_lo(std::size_t i) const noexcept;
  [[nodiscard]] double bucket_hi(std::size_t i) const noexcept;

  // Fraction of samples strictly below x (linear interpolation inside the
  // containing bucket). Useful for "what fraction of nodes had error < eps".
  [[nodiscard]] double cdf(double x) const noexcept;

  // Compact ASCII rendering for bench output.
  [[nodiscard]] std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  double cell_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace gq
