// Fixed-width histogram used by benches to report error distributions,
// plus the log-bucketed duration histogram behind the telemetry layer's
// latency percentiles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace gq {

class Histogram {
 public:
  // Buckets [lo, hi) split into `buckets` equal cells, plus underflow and
  // overflow counters.
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;

  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::size_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::size_t bucket(std::size_t i) const {
    return counts_.at(i);
  }
  [[nodiscard]] double bucket_lo(std::size_t i) const noexcept;
  [[nodiscard]] double bucket_hi(std::size_t i) const noexcept;

  // Fraction of samples strictly below x (linear interpolation inside the
  // containing bucket). Useful for "what fraction of nodes had error < eps".
  [[nodiscard]] double cdf(double x) const noexcept;

  // Compact ASCII rendering for bench output.
  [[nodiscard]] std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  double cell_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

// Log-bucketed histogram for non-negative integer samples (durations in
// nanoseconds, counts): HDR-style log2 octaves with 2^sub_bucket_bits
// linear sub-buckets per octave, so the relative quantile error is bounded
// by 2^-sub_bucket_bits at every magnitude.  add() is allocation-free and
// O(1) (the bucket table is sized at construction for the full 64-bit
// range), which is what lets the telemetry layer record every service
// query and phase duration without perturbing the measured system.
class LogHistogram {
 public:
  // sub_bucket_bits in [0, 16]; the default 3 (8 sub-buckets per octave)
  // bounds quantile error at 12.5%, plenty for latency percentiles.
  explicit LogHistogram(unsigned sub_bucket_bits = 3);

  void add(std::uint64_t value) noexcept;
  void merge(const LogHistogram& other);
  void clear() noexcept;

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t min() const noexcept { return total_ ? min_ : 0; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept;

  // Upper bound of the bucket holding the q-quantile sample (q in [0, 1]);
  // 0 when empty.  quantile(0.5)/quantile(0.99)/... are the p50/p99 the
  // telemetry exporters report.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept;

  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return counts_.at(i);
  }
  // Inclusive upper edge of bucket i's value range.
  [[nodiscard]] std::uint64_t bucket_upper(std::size_t i) const noexcept;

 private:
  [[nodiscard]] std::size_t bucket_index(std::uint64_t v) const noexcept;

  unsigned sub_bits_;
  std::uint64_t sub_count_;       // 2^sub_bits: linear cells per octave
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
  std::uint64_t max_ = 0;
};

}  // namespace gq
