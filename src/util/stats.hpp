// Running statistics and small sample-summary helpers used by tests and the
// benchmark harness.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace gq {

// Welford's online algorithm: numerically stable mean/variance accumulation.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  // Sample variance (divides by n-1); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

  // Merge another accumulator into this one (parallel Welford).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Sorts a copy of `xs` and returns the empirical q-quantile via the
// nearest-rank rule (q in [0,1]).  Intended for offline summaries, not the
// gossip protocols themselves.
[[nodiscard]] double sample_quantile(std::span<const double> xs, double q);

// Exact 1-based rank of `x` in `xs`: the number of elements <= x.
[[nodiscard]] std::size_t rank_of(std::span<const double> xs, double x);

// Median absolute deviation around the median; robust spread estimate.
[[nodiscard]] double median_abs_deviation(std::span<const double> xs);

}  // namespace gq
