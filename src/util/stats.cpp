#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "util/require.hpp"

namespace gq {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double sample_quantile(std::span<const double> xs, double q) {
  GQ_REQUIRE(!xs.empty(), "sample_quantile needs a non-empty sample");
  GQ_REQUIRE(q >= 0.0 && q <= 1.0, "quantile parameter must lie in [0,1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const auto n = sorted.size();
  // Nearest-rank: index ceil(q*n) in 1-based terms, clamped to [1, n].
  auto rank = static_cast<std::size_t>(std::ceil(q * static_cast<double>(n)));
  rank = std::clamp<std::size_t>(rank, 1, n);
  return sorted[rank - 1];
}

std::size_t rank_of(std::span<const double> xs, double x) {
  std::size_t r = 0;
  for (double v : xs) {
    if (v <= x) ++r;
  }
  return r;
}

double median_abs_deviation(std::span<const double> xs) {
  GQ_REQUIRE(!xs.empty(), "median_abs_deviation needs a non-empty sample");
  const double med = sample_quantile(xs, 0.5);
  std::vector<double> dev;
  dev.reserve(xs.size());
  for (double v : xs) dev.push_back(std::abs(v - med));
  return sample_quantile(dev, 0.5);
}

}  // namespace gq
