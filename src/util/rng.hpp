// Deterministic, fast random number generation for gossip simulation.
//
// Two generators are provided:
//   * SplitMix64 — a tiny 64-bit mixer used for seeding, for deriving
//     independent sub-streams from a master seed, and as the per-(node,round)
//     stream inside the simulator (one multiply-xorshift step per draw).
//   * Xoshiro256StarStar — a general-purpose generator (passes BigCrush) for
//     workload generation and offline sampling.
//
// Both satisfy std::uniform_random_bit_generator.  The sampling helpers
// (rand_index, rand_double, rand_bernoulli) are free templates so they work
// with either generator; they avoid libstdc++ distribution overhead, which
// dominates gossip-round costs at n >= 10^5.
#pragma once

#include <array>
#include <concepts>
#include <cstdint>
#include <limits>
#include <random>

#include "util/require.hpp"

namespace gq {

// SplitMix64: public-domain mixer by Sebastiano Vigna. Good avalanche
// behaviour; the canonical way to expand one 64-bit seed into many.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t operator()() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

 private:
  std::uint64_t state_;
};

// xoshiro256**: public-domain generator by Blackman & Vigna.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256StarStar(std::uint64_t seed) noexcept
      : state_{} {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm();
  }

  constexpr std::uint64_t operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_;
};

using Rng = Xoshiro256StarStar;

template <typename G>
concept RandomGenerator = std::uniform_random_bit_generator<G> &&
                          std::same_as<typename G::result_type, std::uint64_t>;

// Uniform integer in [0, bound) without modulo bias (Lemire's method).
template <RandomGenerator G>
std::uint64_t rand_index(G& gen, std::uint64_t bound) noexcept {
  GQ_ASSERT(bound > 0);
  __extension__ using u128 = unsigned __int128;
  std::uint64_t x = gen();
  u128 m = static_cast<u128>(x) * static_cast<u128>(bound);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = gen();
      m = static_cast<u128>(x) * static_cast<u128>(bound);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

// Uniform double in [0, 1) with 53 bits of randomness.
template <RandomGenerator G>
double rand_double(G& gen) noexcept {
  return static_cast<double>(gen() >> 11) * 0x1.0p-53;
}

template <RandomGenerator G>
bool rand_bernoulli(G& gen, double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return rand_double(gen) < p;
}

// Derives a statistically independent child seed from (master, stream_id).
// Used so that every node / protocol phase gets its own stream and results
// do not depend on evaluation order.
constexpr std::uint64_t derive_seed(std::uint64_t master,
                                    std::uint64_t stream_id) noexcept {
  SplitMix64 sm(master ^
                (0x9e3779b97f4a7c15ULL + stream_id * 0xd1342543de82ef95ULL));
  sm();  // discard one output to decorrelate adjacent stream ids further
  return sm();
}

}  // namespace gq
