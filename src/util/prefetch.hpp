// Software-prefetch shim for the engine's blocked-gather hot loops.
//
// The batched kernels are bound by random-access gathers into n-sized state
// lanes: at n in the millions every peer read is a cold cache line, and a
// naive load-use loop pays the full memory latency per draw.  The kernels
// therefore materialise a block's peer indices first, issue prefetches over
// the target lines, and run the compute pass against warm lines — turning a
// latency-bound pointer chase into a bandwidth-bound stream.  This header
// is the one place the compiler intrinsic is spelled, so a non-GNU port has
// a single line to patch.
//
// Prefetching is advisory: dropping every call changes nothing observable
// (results, Metrics, transcripts), only wall-clock time.
#pragma once

namespace gq {

// Hints that `p` will be read soon.  Safe on any address value — prefetch
// instructions do not fault — but callers should still pass in-bounds
// addresses (forming a wild pointer is UB even unread).
inline void prefetch_read(const void* p) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

}  // namespace gq
