#include "util/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "util/require.hpp"

namespace gq {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo),
      hi_(hi),
      cell_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  GQ_REQUIRE(hi > lo, "histogram range must be non-empty");
  GQ_REQUIRE(buckets > 0, "histogram needs at least one bucket");
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / cell_);
  idx = std::min(idx, counts_.size() - 1);  // guard fp edge at hi_
  ++counts_[idx];
}

double Histogram::bucket_lo(std::size_t i) const noexcept {
  return lo_ + cell_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const noexcept {
  return lo_ + cell_ * static_cast<double>(i + 1);
}

double Histogram::cdf(double x) const noexcept {
  if (total_ == 0) return 0.0;
  if (x <= lo_) {
    return static_cast<double>(underflow_) / static_cast<double>(total_);
  }
  double below = static_cast<double>(underflow_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (x >= bucket_hi(i)) {
      below += static_cast<double>(counts_[i]);
    } else if (x > bucket_lo(i)) {
      const double frac = (x - bucket_lo(i)) / cell_;
      below += frac * static_cast<double>(counts_[i]);
      break;
    } else {
      break;
    }
  }
  return below / static_cast<double>(total_);
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar =
        static_cast<std::size_t>(std::llround(static_cast<double>(counts_[i]) /
                                              static_cast<double>(peak) *
                                              static_cast<double>(width)));
    os << '[' << bucket_lo(i) << ", " << bucket_hi(i) << ") "
       << std::string(bar, '#') << ' ' << counts_[i] << '\n';
  }
  if (underflow_ > 0) os << "underflow " << underflow_ << '\n';
  if (overflow_ > 0) os << "overflow " << overflow_ << '\n';
  return os.str();
}

// ---- LogHistogram ----------------------------------------------------------
//
// Layout: buckets [0, 2^sub_bits) hold exact small values; every later
// octave e (values [2^e, 2^(e+1))) is split into 2^sub_bits linear cells.

LogHistogram::LogHistogram(unsigned sub_bucket_bits)
    : sub_bits_(sub_bucket_bits),
      sub_count_(std::uint64_t{1} << sub_bucket_bits) {
  GQ_REQUIRE(sub_bucket_bits <= 16, "sub-bucket bits must be <= 16");
  const std::size_t octaves = 64 - sub_bits_;
  counts_.assign(static_cast<std::size_t>(sub_count_) +
                     octaves * static_cast<std::size_t>(sub_count_),
                 0);
}

std::size_t LogHistogram::bucket_index(std::uint64_t v) const noexcept {
  if (v < sub_count_) return static_cast<std::size_t>(v);
  const unsigned e = std::bit_width(v) - 1;  // 2^e <= v < 2^(e+1)
  const std::uint64_t offset = (v >> (e - sub_bits_)) - sub_count_;
  return static_cast<std::size_t>(
      sub_count_ + (e - sub_bits_) * sub_count_ + offset);
}

std::uint64_t LogHistogram::bucket_upper(std::size_t i) const noexcept {
  if (i < sub_count_) return i;
  const std::uint64_t j = i - sub_count_;
  const unsigned e = static_cast<unsigned>(j / sub_count_) + sub_bits_;
  const std::uint64_t off = j % sub_count_;
  const std::uint64_t cell = std::uint64_t{1} << (e - sub_bits_);
  return (sub_count_ + off) * cell + (cell - 1);
}

void LogHistogram::add(std::uint64_t value) noexcept {
  ++counts_[bucket_index(value)];
  ++total_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void LogHistogram::merge(const LogHistogram& other) {
  GQ_REQUIRE(sub_bits_ == other.sub_bits_,
             "merging histograms needs matching sub-bucket resolution");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void LogHistogram::clear() noexcept {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
  sum_ = 0;
  min_ = ~std::uint64_t{0};
  max_ = 0;
}

double LogHistogram::mean() const noexcept {
  if (total_ == 0) return 0.0;
  return static_cast<double>(sum_) / static_cast<double>(total_);
}

std::uint64_t LogHistogram::quantile(double q) const noexcept {
  if (total_ == 0) return 0;
  if (q <= 0.0) return min_;
  const double target = q * static_cast<double>(total_);
  auto rank = static_cast<std::uint64_t>(std::ceil(target));
  rank = std::clamp<std::uint64_t>(rank, 1, total_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= rank) return std::min(bucket_upper(i), max_);
  }
  return max_;
}

}  // namespace gq
