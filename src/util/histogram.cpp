#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/require.hpp"

namespace gq {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo),
      hi_(hi),
      cell_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  GQ_REQUIRE(hi > lo, "histogram range must be non-empty");
  GQ_REQUIRE(buckets > 0, "histogram needs at least one bucket");
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / cell_);
  idx = std::min(idx, counts_.size() - 1);  // guard fp edge at hi_
  ++counts_[idx];
}

double Histogram::bucket_lo(std::size_t i) const noexcept {
  return lo_ + cell_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const noexcept {
  return lo_ + cell_ * static_cast<double>(i + 1);
}

double Histogram::cdf(double x) const noexcept {
  if (total_ == 0) return 0.0;
  if (x <= lo_) {
    return static_cast<double>(underflow_) / static_cast<double>(total_);
  }
  double below = static_cast<double>(underflow_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (x >= bucket_hi(i)) {
      below += static_cast<double>(counts_[i]);
    } else if (x > bucket_lo(i)) {
      const double frac = (x - bucket_lo(i)) / cell_;
      below += frac * static_cast<double>(counts_[i]);
      break;
    } else {
      break;
    }
  }
  return below / static_cast<double>(total_);
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar =
        static_cast<std::size_t>(std::llround(static_cast<double>(counts_[i]) /
                                              static_cast<double>(peak) *
                                              static_cast<double>(width)));
    os << '[' << bucket_lo(i) << ", " << bucket_hi(i) << ") "
       << std::string(bar, '#') << ' ' << counts_[i] << '\n';
  }
  if (underflow_ > 0) os << "underflow " << underflow_ << '\n';
  if (overflow_ > 0) os << "overflow " << overflow_ << '\n';
  return os.str();
}

}  // namespace gq
