// Contract-checking macros for the gq library.
//
// GQ_REQUIRE checks preconditions at public API boundaries and throws
// std::invalid_argument with a descriptive message on violation; it is always
// enabled.  GQ_ASSERT checks internal invariants and aborts via assert(); it
// compiles out in NDEBUG builds.
#pragma once

#include <cassert>
#include <sstream>
#include <stdexcept>
#include <string>

namespace gq::detail {

[[noreturn]] inline void throw_requirement_failure(const char* expr,
                                                   const char* file, int line,
                                                   const std::string& msg) {
  std::ostringstream os;
  os << "gq precondition failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

}  // namespace gq::detail

#define GQ_REQUIRE(expr, msg)                                              \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::gq::detail::throw_requirement_failure(#expr, __FILE__, __LINE__,   \
                                              (msg));                      \
    }                                                                      \
  } while (false)

#define GQ_ASSERT(expr) assert(expr)
