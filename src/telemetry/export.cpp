#include "telemetry/export.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace gq::telemetry {

namespace {

// JSON string escaping for span names and labels.  Names are our own
// static literals today, but the exporter must stay correct if a future
// layer registers computed names.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

struct Trace {
  std::vector<SpanEvent> events;
  std::vector<std::string> names;
  std::uint64_t base_ns = 0;  // earliest start, the exported time origin
};

Trace take_trace() {
  Trace t;
  t.events = snapshot();
  t.names = span_names();
  t.base_ns = ~std::uint64_t{0};
  for (const SpanEvent& e : t.events) {
    t.base_ns = std::min(t.base_ns, e.start_ns);
  }
  if (t.events.empty()) t.base_ns = 0;
  // Stable viewer order: by thread, then start time; at equal starts the
  // longer (enclosing) span first so parents precede children.
  std::sort(t.events.begin(), t.events.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              if (a.thread != b.thread) return a.thread < b.thread;
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.end_ns > b.end_ns;
            });
  return t;
}

const std::string& name_of(const Trace& t, SpanId id) {
  static const std::string kUnknown = "<unregistered>";
  return id < t.names.size() ? t.names[id] : kUnknown;
}

}  // namespace

std::vector<PhaseStat> phase_stats() {
  const Trace t = take_trace();
  std::map<std::string, PhaseStat> by_name;
  for (const SpanEvent& e : t.events) {
    PhaseStat& stat = by_name[name_of(t, e.id)];
    const std::uint64_t dur = e.end_ns - e.start_ns;
    ++stat.count;
    stat.total_ns += dur;
    stat.durations.add(dur);
  }
  std::vector<PhaseStat> out;
  out.reserve(by_name.size());
  for (auto& [name, stat] : by_name) {
    stat.name = name;
    out.push_back(std::move(stat));
  }
  std::sort(out.begin(), out.end(), [](const PhaseStat& a, const PhaseStat& b) {
    if (a.total_ns != b.total_ns) return a.total_ns > b.total_ns;
    return a.name < b.name;
  });
  return out;
}

bool write_chrome_trace(const std::string& path) {
  const Trace t = take_trace();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
  // Metadata rows name the process and each recording thread; tid 0 is
  // whichever thread recorded first (usually the orchestrating thread).
  std::fprintf(f,
               "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": 1, "
               "\"tid\": 0, \"args\": {\"name\": \"gossip-quantiles\"}}");
  std::uint32_t max_thread = 0;
  for (const SpanEvent& e : t.events) {
    max_thread = std::max(max_thread, e.thread);
  }
  if (!t.events.empty()) {
    for (std::uint32_t tid = 0; tid <= max_thread; ++tid) {
      std::fprintf(f,
                   ",\n{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, "
                   "\"tid\": %u, \"args\": {\"name\": \"gq-thread-%u\"}}",
                   tid, tid);
    }
  }
  for (const SpanEvent& e : t.events) {
    const double ts =
        static_cast<double>(e.start_ns - t.base_ns) / 1000.0;  // us
    const double dur = static_cast<double>(e.end_ns - e.start_ns) / 1000.0;
    std::fprintf(f,
                 ",\n{\"name\": \"%s\", \"cat\": \"gq\", \"ph\": \"X\", "
                 "\"pid\": 1, \"tid\": %u, \"ts\": %.3f, \"dur\": %.3f}",
                 json_escape(name_of(t, e.id)).c_str(), e.thread, ts, dur);
  }
  std::fprintf(f, "\n]}\n");
  const bool ok = std::ferror(f) == 0;
  return std::fclose(f) == 0 && ok;
}

bool write_jsonl(const std::string& path) {
  const Trace t = take_trace();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  for (const SpanEvent& e : t.events) {
    std::fprintf(f,
                 "{\"name\": \"%s\", \"thread\": %u, \"start_ns\": %llu, "
                 "\"end_ns\": %llu, \"dur_ns\": %llu}\n",
                 json_escape(name_of(t, e.id)).c_str(), e.thread,
                 static_cast<unsigned long long>(e.start_ns - t.base_ns),
                 static_cast<unsigned long long>(e.end_ns - t.base_ns),
                 static_cast<unsigned long long>(e.end_ns - e.start_ns));
  }
  const bool ok = std::ferror(f) == 0;
  return std::fclose(f) == 0 && ok;
}

std::string prometheus_text() {
  std::ostringstream os;
  const std::vector<PhaseStat> phases = phase_stats();
  os << "# TYPE gq_phase_count counter\n";
  for (const PhaseStat& p : phases) {
    os << "gq_phase_count{phase=\"" << p.name << "\"} " << p.count << "\n";
  }
  os << "# TYPE gq_phase_seconds_total counter\n";
  for (const PhaseStat& p : phases) {
    os << "gq_phase_seconds_total{phase=\"" << p.name << "\"} "
       << static_cast<double>(p.total_ns) / 1e9 << "\n";
  }
  os << "# TYPE gq_phase_duration_seconds summary\n";
  for (const PhaseStat& p : phases) {
    for (const double q : {0.5, 0.9, 0.99, 0.999}) {
      os << "gq_phase_duration_seconds{phase=\"" << p.name
         << "\",quantile=\"" << q << "\"} "
         << static_cast<double>(p.durations.quantile(q)) / 1e9 << "\n";
    }
  }
  const std::vector<PoolSample> pools = pool_samples();
  os << "# TYPE gq_worker_busy_seconds_total counter\n";
  for (const PoolSample& pool : pools) {
    for (std::size_t w = 0; w < pool.workers.size(); ++w) {
      os << "gq_worker_busy_seconds_total{pool=\"" << pool.pool_id
         << "\",worker=\"" << w << "\"} "
         << static_cast<double>(pool.workers[w].busy_ns) / 1e9 << "\n";
    }
  }
  os << "# TYPE gq_worker_chunks_total counter\n";
  for (const PoolSample& pool : pools) {
    for (std::size_t w = 0; w < pool.workers.size(); ++w) {
      os << "gq_worker_chunks_total{pool=\"" << pool.pool_id
         << "\",worker=\"" << w << "\"} " << pool.workers[w].chunks << "\n";
    }
  }
  os << "# TYPE gq_trace_dropped_events counter\n";
  os << "gq_trace_dropped_events " << dropped_events() << "\n";
  return os.str();
}

std::string phase_summary() {
  const std::vector<PhaseStat> phases = phase_stats();
  std::ostringstream os;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-40s %10s %12s %10s %10s %10s\n", "phase",
                "count", "total_s", "mean_ms", "p50_ms", "p99_ms");
  os << buf;
  for (const PhaseStat& p : phases) {
    std::snprintf(buf, sizeof(buf),
                  "%-40s %10llu %12.3f %10.3f %10.3f %10.3f\n",
                  p.name.c_str(), static_cast<unsigned long long>(p.count),
                  static_cast<double>(p.total_ns) / 1e9,
                  p.durations.mean() / 1e6,
                  static_cast<double>(p.durations.quantile(0.5)) / 1e6,
                  static_cast<double>(p.durations.quantile(0.99)) / 1e6);
    os << buf;
  }
  return os.str();
}

std::string utilization_summary() {
  const std::vector<PoolSample> pools = pool_samples();
  std::ostringstream os;
  char buf[256];
  for (const PoolSample& pool : pools) {
    std::uint64_t busy = 0, chunks = 0, max_busy = 0;
    for (const WorkerSample& w : pool.workers) {
      busy += w.busy_ns;
      chunks += w.chunks;
      max_busy = std::max(max_busy, w.busy_ns);
    }
    if (busy == 0) continue;  // never ran while telemetry was on
    const auto threads = static_cast<double>(pool.workers.size());
    const double mean_busy = static_cast<double>(busy) / threads;
    const double wall = static_cast<double>(pool.wall_ns);
    // Utilization is busy time over the pool's observed wall window across
    // all workers; imbalance is the straggler ratio (1.0 = perfectly even).
    const double util = wall > 0.0 ? static_cast<double>(busy) / (wall * threads)
                                   : 0.0;
    const double imbalance =
        mean_busy > 0.0 ? static_cast<double>(max_busy) / mean_busy : 0.0;
    std::snprintf(buf, sizeof(buf),
                  "pool %llu: threads=%zu wall=%.3fs busy=%.3fs util=%.1f%% "
                  "imbalance=%.2f chunks=%llu%s\n",
                  static_cast<unsigned long long>(pool.pool_id),
                  pool.workers.size(), wall / 1e9,
                  static_cast<double>(busy) / 1e9, 100.0 * util, imbalance,
                  static_cast<unsigned long long>(chunks),
                  pool.retired ? " (retired)" : "");
    os << buf;
    for (std::size_t w = 0; w < pool.workers.size(); ++w) {
      std::snprintf(buf, sizeof(buf),
                    "  worker %zu: busy=%.3fs chunks=%llu batches=%llu\n", w,
                    static_cast<double>(pool.workers[w].busy_ns) / 1e9,
                    static_cast<unsigned long long>(pool.workers[w].chunks),
                    static_cast<unsigned long long>(pool.workers[w].batches));
      os << buf;
    }
  }
  return os.str();
}

}  // namespace gq::telemetry
