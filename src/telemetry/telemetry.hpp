// Low-overhead, determinism-neutral observability for every execution
// layer: phase spans, worker utilization, and duration histograms.
//
// ## Design constraints (both are hard invariants, pinned by tests)
//
//   * Telemetry OFF => zero overhead.  Compiled out (GQ_TELEMETRY=0) every
//     entry point below is an empty inline that the optimizer deletes.
//     Compiled in but not enable()d, an instrumented scope costs one
//     relaxed atomic load and a predictable branch — no clock reads, no
//     stores, and never a heap allocation, so the engine's steady-state
//     zero-allocation pin (tests/test_engine_alloc.cpp) holds unchanged.
//   * Telemetry ON => observational only.  Recording reads clocks and
//     writes into pre-reserved per-thread ring buffers; it never touches
//     protocol state, randomness, Metrics, or scheduling decisions, so
//     transcripts and results are bit-identical with telemetry enabled or
//     disabled at every thread count (tests/test_telemetry.cpp).
//
// ## Shape
//
//   * Span names are interned once per call site into a static registry
//     (register_span); a recorded event carries the 32-bit id, not the
//     string, so the hot path never hashes or copies names.
//   * Each recording thread owns one ring buffer of completed SpanEvents,
//     created on the thread's first record and pre-reserved to the
//     configured capacity — steady-state recording is bump-a-cursor.  A
//     full ring drops new events (counted; see dropped_events) instead of
//     overwriting the enclosing phases already recorded.
//   * ThreadPools register per-worker busy-ns/chunk counters here
//     (RegisteredPool) so exporters can compute utilization and imbalance
//     summaries; retired pools leave a final snapshot behind, letting a
//     bench export after its Engine is destroyed.
//
// Exporters (Chrome trace JSON for Perfetto, JSONL, Prometheus-style text)
// live in telemetry/export.hpp; they only read snapshots, off the hot path.
#pragma once

#include <cstddef>
#include <cstdint>

// GQ_TELEMETRY is normally injected by the build (CMake option GQ_TELEMETRY,
// ON by default); standalone includes compile the instrumented variant.
#if !defined(GQ_TELEMETRY)
#define GQ_TELEMETRY 1
#endif

#if GQ_TELEMETRY

#include <atomic>
#include <chrono>
#include <string>
#include <vector>

namespace gq::telemetry {

inline constexpr bool kCompiledIn = true;

using SpanId = std::uint32_t;

// One completed span.  `thread` is the telemetry-assigned recording-thread
// index (stable per OS thread, dense from 0 in first-record order).
struct SpanEvent {
  SpanId id = 0;
  std::uint32_t thread = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
};

struct Config {
  // Completed-span capacity of each recording thread's ring, reserved when
  // the thread first records.  24 bytes/event: the default is ~6 MB/thread,
  // comfortably above any pipeline's span count at n = 10^7.
  std::size_t ring_capacity = 1u << 18;
};

// Interns `name` (idempotent: same string => same id).  Call-site statics
// make this a once-per-site cost; it may allocate, so instrument warmup
// paths before measuring allocations.
[[nodiscard]] SpanId register_span(const char* name);

// Name table indexed by SpanId (copy: the registry stays lock-protected).
[[nodiscard]] std::vector<std::string> span_names();

// Runtime switch.  enable() is idempotent and keeps previously recorded
// events; disable() stops recording but keeps events and rings so exporters
// can still snapshot.  reset() drops recorded spans and zeroes pool
// counters without touching the enabled state.
void enable(const Config& config = Config{});
void disable();
void reset();

[[nodiscard]] inline bool enabled() noexcept {
  extern std::atomic<bool> g_enabled;
  return g_enabled.load(std::memory_order_relaxed);
}

// Monotonic nanoseconds (steady clock, process-relative epoch).
[[nodiscard]] std::uint64_t now_ns() noexcept;

// Records a completed span into the calling thread's ring.  Only call when
// enabled() was true at span start; allocates once per thread (the ring).
void record_span(SpanId id, std::uint64_t start_ns,
                 std::uint64_t end_ns) noexcept;

// All recorded events, ordered by (thread, recording order).  Safe to call
// while other threads record: each ring is sampled at its published count.
[[nodiscard]] std::vector<SpanEvent> snapshot();

// Events discarded because a ring was full.
[[nodiscard]] std::uint64_t dropped_events();

// RAII phase span.  Reads the clock only when telemetry is enabled at
// construction; a span that straddles disable() still records (its events
// are observational either way).
class Span {
 public:
  explicit Span(SpanId id) noexcept
      : id_(id), start_ns_(enabled() ? now_ns() : 0) {}
  ~Span() {
    if (start_ns_ != 0) record_span(id_, start_ns_, now_ns());
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  SpanId id_;
  std::uint64_t start_ns_;
};

// ---- worker (thread-pool) telemetry ---------------------------------------

// Per-worker accumulators, cache-line separated so two workers bumping
// their own counters never share a line.
struct alignas(64) WorkerCounters {
  std::atomic<std::uint64_t> busy_ns{0};   // time spent executing chunks
  std::atomic<std::uint64_t> chunks{0};    // chunk claims served
  std::atomic<std::uint64_t> batches{0};   // parallel sections participated in
};

// Snapshot of one worker's counters.
struct WorkerSample {
  std::uint64_t busy_ns = 0;
  std::uint64_t chunks = 0;
  std::uint64_t batches = 0;
};

// Snapshot of one registered pool (live or retired).
struct PoolSample {
  std::uint64_t pool_id = 0;
  bool retired = false;
  std::uint64_t wall_ns = 0;  // registration-to-now (or -retirement) window
  std::vector<WorkerSample> workers;  // index 0 is the calling thread
};

// A ThreadPool's registration handle: owns the counter block for `threads`
// workers.  Construction/destruction are pool-lifetime events, never
// per-round; counters() is lock-free and the pool only writes it when
// telemetry::enabled().
class RegisteredPool {
 public:
  explicit RegisteredPool(unsigned threads);
  ~RegisteredPool();

  RegisteredPool(const RegisteredPool&) = delete;
  RegisteredPool& operator=(const RegisteredPool&) = delete;

  [[nodiscard]] WorkerCounters* counters() noexcept { return counters_; }

 private:
  std::uint64_t id_;
  unsigned threads_;
  WorkerCounters* counters_;
};

// All registered pools' current counters; retired pools report their final
// snapshot.  Pools that never recorded anything (telemetry disabled for
// their whole life) are included with zero counters.
[[nodiscard]] std::vector<PoolSample> pool_samples();

}  // namespace gq::telemetry

// Statement macro: opens a phase span for the rest of the enclosing scope.
// The span name is interned once per call site (function-local static).
#define GQ_TELEMETRY_CAT2(a, b) a##b
#define GQ_TELEMETRY_CAT(a, b) GQ_TELEMETRY_CAT2(a, b)
#define GQ_SPAN(name_literal)                                              \
  static const ::gq::telemetry::SpanId GQ_TELEMETRY_CAT(                   \
      gq_span_id_, __LINE__) = ::gq::telemetry::register_span(name_literal); \
  const ::gq::telemetry::Span GQ_TELEMETRY_CAT(gq_span_, __LINE__)(        \
      GQ_TELEMETRY_CAT(gq_span_id_, __LINE__))

#else  // !GQ_TELEMETRY: the compile-time no-op sink

#include <atomic>
#include <string>
#include <vector>

namespace gq::telemetry {

inline constexpr bool kCompiledIn = false;

using SpanId = std::uint32_t;

struct SpanEvent {
  SpanId id = 0;
  std::uint32_t thread = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
};

struct Config {
  std::size_t ring_capacity = 0;
};

[[nodiscard]] inline SpanId register_span(const char*) { return 0; }
[[nodiscard]] inline std::vector<std::string> span_names() { return {}; }
inline void enable(const Config& = Config{}) {}
inline void disable() {}
inline void reset() {}
[[nodiscard]] inline constexpr bool enabled() noexcept { return false; }
[[nodiscard]] inline std::uint64_t now_ns() noexcept { return 0; }
inline void record_span(SpanId, std::uint64_t, std::uint64_t) noexcept {}
[[nodiscard]] inline std::vector<SpanEvent> snapshot() { return {}; }
[[nodiscard]] inline std::uint64_t dropped_events() { return 0; }

class Span {
 public:
  explicit Span(SpanId) noexcept {}
};

// Same member shape as the instrumented variant so call sites that are
// runtime-dead when compiled out (guarded by the constexpr-false enabled())
// still type-check; counters() returns nullptr and is never dereferenced.
struct WorkerCounters {
  std::atomic<std::uint64_t> busy_ns{0};
  std::atomic<std::uint64_t> chunks{0};
  std::atomic<std::uint64_t> batches{0};
};

struct WorkerSample {
  std::uint64_t busy_ns = 0;
  std::uint64_t chunks = 0;
  std::uint64_t batches = 0;
};

struct PoolSample {
  std::uint64_t pool_id = 0;
  bool retired = false;
  std::uint64_t wall_ns = 0;
  std::vector<WorkerSample> workers;
};

class RegisteredPool {
 public:
  explicit RegisteredPool(unsigned) {}
  [[nodiscard]] WorkerCounters* counters() noexcept { return nullptr; }
};

[[nodiscard]] inline std::vector<PoolSample> pool_samples() { return {}; }

}  // namespace gq::telemetry

#define GQ_SPAN(name_literal) ((void)0)

#endif  // GQ_TELEMETRY
