// Exporters over the telemetry registry's snapshots: Chrome trace-event
// JSON (loadable in Perfetto / chrome://tracing), JSONL span records, a
// Prometheus-style text exposition, and human-readable phase/utilization
// summaries.  Everything here runs OFF the hot path — exporters only read
// snapshot() / pool_samples(), so they can run after the instrumented
// engines and pools are gone.  With telemetry compiled out the snapshots
// are empty and every exporter emits a valid empty artifact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/telemetry.hpp"
#include "util/histogram.hpp"

namespace gq::telemetry {

// Per-span-name aggregate across all recorded events.
struct PhaseStat {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  LogHistogram durations;  // per-event durations, ns
};

// Aggregates the current snapshot by span name, ordered by descending
// total time.
[[nodiscard]] std::vector<PhaseStat> phase_stats();

// Chrome trace-event JSON ("X" complete events, one tid per recording
// thread, microsecond timestamps rebased to the trace start).  Returns
// false on I/O failure.
[[nodiscard]] bool write_chrome_trace(const std::string& path);

// One JSON object per line per completed span (start/end rebased to the
// trace start, durations in ns).  Returns false on I/O failure.
[[nodiscard]] bool write_jsonl(const std::string& path);

// Prometheus-style text exposition of the span aggregates, worker
// counters, and drop counters.
[[nodiscard]] std::string prometheus_text();

// Human-readable per-phase breakdown (count, total, mean, p50/p99), one
// line per span name, ordered by descending total time.
[[nodiscard]] std::string phase_summary();

// Human-readable per-pool worker utilization/imbalance summary.
[[nodiscard]] std::string utilization_summary();

}  // namespace gq::telemetry
