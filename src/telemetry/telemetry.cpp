#include "telemetry/telemetry.hpp"

#if GQ_TELEMETRY

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>

namespace gq::telemetry {

std::atomic<bool> g_enabled{false};

namespace {

// One thread's pre-reserved ring of completed spans.  The owning thread is
// the only writer; snapshot() readers sample `count` with acquire ordering,
// so every event below the sampled count is fully written.
struct ThreadSink {
  std::vector<SpanEvent> ring;
  std::atomic<std::size_t> count{0};    // published events (<= ring.size())
  std::atomic<std::uint64_t> dropped{0};
  std::uint32_t thread_index = 0;
};

// Registry state.  Sinks and pool registrations are appended under the
// mutex; the hot path touches neither (a recording thread reaches its sink
// through a thread_local pointer, a pool through its counter block).
struct Registry {
  std::mutex mutex;
  std::vector<std::string> names;
  std::vector<std::unique_ptr<ThreadSink>> sinks;
  std::size_t ring_capacity = Config{}.ring_capacity;

  struct PoolEntry {
    std::uint64_t id = 0;
    unsigned threads = 0;
    std::uint64_t registered_ns = 0;
    std::uint64_t retired_ns = 0;  // 0 while live
    bool retired = false;
    // Live pools point at the pool-owned counter block; retirement copies
    // the final values here so exports outlive the pool.
    WorkerCounters* live = nullptr;
    std::vector<WorkerSample> final_samples;
  };
  std::vector<PoolEntry> pools;
  std::uint64_t next_pool_id = 0;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: sinks outlive all threads
  return *r;
}

thread_local ThreadSink* t_sink = nullptr;

ThreadSink* acquire_sink() {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  r.sinks.push_back(std::make_unique<ThreadSink>());
  ThreadSink* sink = r.sinks.back().get();
  sink->thread_index = static_cast<std::uint32_t>(r.sinks.size() - 1);
  sink->ring.resize(r.ring_capacity);
  return sink;
}

[[nodiscard]] WorkerSample sample_counters(const WorkerCounters& c) {
  WorkerSample s;
  s.busy_ns = c.busy_ns.load(std::memory_order_relaxed);
  s.chunks = c.chunks.load(std::memory_order_relaxed);
  s.batches = c.batches.load(std::memory_order_relaxed);
  return s;
}

}  // namespace

SpanId register_span(const char* name) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  for (std::size_t i = 0; i < r.names.size(); ++i) {
    if (r.names[i] == name) return static_cast<SpanId>(i);
  }
  r.names.emplace_back(name);
  return static_cast<SpanId>(r.names.size() - 1);
}

std::vector<std::string> span_names() {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  return r.names;
}

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void enable(const Config& config) {
  Registry& r = registry();
  {
    std::lock_guard lock(r.mutex);
    if (config.ring_capacity > 0) r.ring_capacity = config.ring_capacity;
  }
  g_enabled.store(true, std::memory_order_relaxed);
}

void disable() { g_enabled.store(false, std::memory_order_relaxed); }

void reset() {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  for (auto& sink : r.sinks) {
    sink->count.store(0, std::memory_order_release);
    sink->dropped.store(0, std::memory_order_relaxed);
  }
  for (auto& pool : r.pools) {
    if (pool.retired || pool.live == nullptr) continue;
    for (unsigned w = 0; w < pool.threads; ++w) {
      pool.live[w].busy_ns.store(0, std::memory_order_relaxed);
      pool.live[w].chunks.store(0, std::memory_order_relaxed);
      pool.live[w].batches.store(0, std::memory_order_relaxed);
    }
    pool.registered_ns = now_ns();
  }
}

void record_span(SpanId id, std::uint64_t start_ns,
                 std::uint64_t end_ns) noexcept {
  ThreadSink* sink = t_sink;
  if (sink == nullptr) {
    sink = acquire_sink();
    t_sink = sink;
  }
  const std::size_t at = sink->count.load(std::memory_order_relaxed);
  if (at >= sink->ring.size()) {
    // Full: drop the NEW event.  Overwriting would lose the enclosing
    // phases recorded first, which are the ones a trace reader needs.
    sink->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  sink->ring[at] = SpanEvent{id, sink->thread_index, start_ns, end_ns};
  sink->count.store(at + 1, std::memory_order_release);
}

std::vector<SpanEvent> snapshot() {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  std::vector<SpanEvent> out;
  std::size_t total = 0;
  for (const auto& sink : r.sinks) {
    total += sink->count.load(std::memory_order_acquire);
  }
  out.reserve(total);
  for (const auto& sink : r.sinks) {
    const std::size_t count = sink->count.load(std::memory_order_acquire);
    out.insert(out.end(), sink->ring.begin(),
               sink->ring.begin() + static_cast<std::ptrdiff_t>(count));
  }
  return out;
}

std::uint64_t dropped_events() {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  std::uint64_t dropped = 0;
  for (const auto& sink : r.sinks) {
    dropped += sink->dropped.load(std::memory_order_relaxed);
  }
  return dropped;
}

RegisteredPool::RegisteredPool(unsigned threads)
    : threads_(threads), counters_(new WorkerCounters[threads]) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  Registry::PoolEntry entry;
  entry.id = r.next_pool_id++;
  entry.threads = threads;
  entry.registered_ns = now_ns();
  entry.live = counters_;
  id_ = entry.id;
  r.pools.push_back(std::move(entry));
}

RegisteredPool::~RegisteredPool() {
  Registry& r = registry();
  {
    std::lock_guard lock(r.mutex);
    for (auto& pool : r.pools) {
      if (pool.id != id_) continue;
      pool.retired = true;
      pool.retired_ns = now_ns();
      pool.final_samples.reserve(threads_);
      for (unsigned w = 0; w < threads_; ++w) {
        pool.final_samples.push_back(sample_counters(counters_[w]));
      }
      pool.live = nullptr;
      break;
    }
  }
  delete[] counters_;
}

std::vector<PoolSample> pool_samples() {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  std::vector<PoolSample> out;
  out.reserve(r.pools.size());
  const std::uint64_t now = now_ns();
  for (const auto& pool : r.pools) {
    PoolSample s;
    s.pool_id = pool.id;
    s.retired = pool.retired;
    s.wall_ns = (pool.retired ? pool.retired_ns : now) - pool.registered_ns;
    if (pool.retired) {
      s.workers = pool.final_samples;
    } else {
      s.workers.reserve(pool.threads);
      for (unsigned w = 0; w < pool.threads; ++w) {
        s.workers.push_back(sample_counters(pool.live[w]));
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace gq::telemetry

#endif  // GQ_TELEMETRY
