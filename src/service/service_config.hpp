// Configuration for the streaming quantile service (see quantile_service.hpp
// for the subsystem overview).
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/params.hpp"
#include "core/supervisor.hpp"
#include "engine/engine_config.hpp"
#include "sim/failure_model.hpp"

namespace gq {

class AdversaryStrategy;

// Per-QueryKind circuit breaker (see quantile_service.hpp "Resilience").
// State advances on *query counts of that kind*, never on wall time, so the
// breaker's behaviour is part of the service's deterministic call-log
// contract.
struct CircuitBreakerConfig {
  // Consecutive supervisor-exhausted queries of one kind that trip the
  // breaker open.  0 disables the breaker entirely (every query runs the
  // full attempt budget).
  std::uint32_t open_after = 3;

  // While open, this many queries of the kind are served degraded without
  // touching the engine; the next one after the cooldown is the half-open
  // probe (full supervised run — success closes the breaker, failure
  // re-opens it for another cooldown).
  std::uint64_t cooldown_queries = 8;
};

// How a sealed epoch turns the live per-node stream summaries into the
// one-key-per-node gossip instance the engine pipelines run on.
enum class InstancePolicy {
  // Node v contributes its own stream's local_phi-quantile (default: the
  // local median).  Fully local — in a real deployment every node derives
  // its key from its own summary with no coordination — so queries answer
  // *fleet* questions: "the p99 across servers of per-server median
  // latency".
  kLocalQuantile,
  // The epoch instance is the m-point equi-depth resample of the merged
  // global summary (all node sketches merged in ascending node order under
  // a fixed seed).  Queries then track the quantiles of the *union* of all
  // ingested values, within the summary's rank-error bound plus the 1/(2m)
  // resample granularity.  The merge is performed by the epoch seal — the
  // simulation-harness counterpart of a summary-aggregation pre-pass — and
  // its cost is O(live_nodes * k).
  kGlobalResample,
};

struct ServiceConfig {
  // Master seed: per-node summary seeds, per-query engine streams, and the
  // global-resample merge accumulator all derive from it, so a service's
  // entire life is a pure function of (config, ingest/churn/query log).
  std::uint64_t seed = 1;

  // Per-node summary accuracy knob (KLL top-level capacity): per-node state
  // is O(sketch_k) items regardless of how many values the node ingests.
  std::size_t sketch_k = 256;

  InstancePolicy instance_policy = InstancePolicy::kLocalQuantile;

  // The local representative quantile under kLocalQuantile.
  double local_phi = 0.5;

  // Defaults for quantile queries; per-request fields override (see
  // query.hpp).
  ApproxQuantileParams approx;
  ExactQuantileParams exact;

  // The gossip executor the queries run on.  Results are bit-identical at
  // every threads/shard_size/gather_block setting, like every other layer.
  EngineConfig engine;

  // Failure model applied to query-time gossip: queries route through the
  // robust Section-5 pipelines and replies report the served-node count.
  FailureModel failures;

  // Optional adversary installed on the query engine at every seal
  // (borrowed, not owned; must outlive the service).  Crash-churn and
  // adaptive strategies from sim/adversary.hpp attack warm queries exactly
  // as they attack cold one-shot runs — the warm == cold reply pins hold
  // under an installed adversary too.
  AdversaryStrategy* adversary = nullptr;

  // Retry/escalation budget every query runs under (core/supervisor.hpp).
  // With the defaults a clean first attempt is transcript-identical to the
  // unsupervised pipeline, so zero-fault services never see the supervisor.
  SupervisorPolicy supervisor;

  CircuitBreakerConfig breaker;

  // When the supervisor exhausts its budget: true serves a kDegraded answer
  // from the epoch's merged summary sketch; false rethrows the last
  // attempt's failure (pre-resilience behaviour, kept for tests and for
  // callers that prefer loud failure over approximate answers).
  bool degrade_on_exhaustion = true;

  // A session table more than this many times larger than the current
  // instance's node count is compacted by a full re-intern on the next
  // seal.  Stale keys (retired representatives, departed nodes) are
  // correctness-neutral but cost table memory and binary-search depth.
  std::uint32_t session_compact_factor = 4;
};

}  // namespace gq
