// QuantileService: the long-lived streaming serving layer over the gossip
// engine.
//
// Every pipeline below this layer is one-shot — keys in, one answer out,
// state discarded.  The service turns that into continuous serving:
//
//   ingest --------> per-node NodeStream (bounded KLL summary, O(k) items)
//   seal (epoch) --> one-key-per-node instance (InstancePolicy)
//                      -> EpochSession (persistent interned table + lanes,
//                         extended incrementally, engine hand-off)
//   query ---------> Engine pipelines re-run on demand over the sealed
//                    instance (approx/exact tournaments, exact gossip
//                    counting for rank/CDF), warm across queries
//
// ## Epoch barrier
//
// Ingest and churn accumulate against the *open* epoch; queries only ever
// observe a *sealed* one.  The first query after any mutation seals
// implicitly (or call seal() for an explicit barrier); all queries of one
// query_batch observe the same epoch.  Within an epoch, queries are
// repeatable: the instance, session, and membership are frozen.
//
// ## Determinism and warm == cold
//
// A service's entire life is a pure function of (config, call log).  Each
// query runs the engine on its own derived stream seed after
// Engine::reset_stream, so a warm-session query is **bit-identical** to a
// cold one-shot run of the same pipeline on a fresh Engine(m, seed) over
// the same instance — at 1, 2, and 8 threads and any shard/block size —
// which tests/test_service.cpp pins via reply fingerprints.  What the warm
// session reuses (thread pool, scatter arena, pooled kernel scratch, the
// adopted intern session) is exactly the observationally-neutral state.
//
// ## Churn
//
// join()/leave() change membership between epochs; the next seal re-shards
// the session: contributors are renumbered 0..m-1 in ascending node-id
// order, the instance is rebuilt over them, and the engine is reconstructed
// when m changed (shard geometry is fixed per Engine).  A join/leave
// sequence converging to the same per-node streams answers pinned-seed
// queries identically to a fresh service built on that membership.
//
// ## Errors
//
// kExactQuantile propagates ExactPipelineError (recoverable — the service
// and its engine stay usable; see core/result.hpp).  Structural misuse
// (unknown node ids, ingest into departed nodes, queries with fewer than
// two contributing nodes) throws std::invalid_argument via GQ_REQUIRE.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "service/node_stream.hpp"
#include "service/query.hpp"
#include "service/service_config.hpp"
#include "service/session.hpp"
#include "sketch/kll.hpp"
#include "util/histogram.hpp"

namespace gq {

// Service-lifetime counters (cheap snapshot, see QuantileService::stats).
struct ServiceStats {
  std::uint64_t epoch = 0;             // sealed epochs so far
  std::uint64_t queries = 0;           // queries answered
  std::uint64_t ingested = 0;          // values ingested service-wide
  std::uint32_t live_nodes = 0;        // joined minus departed
  std::uint32_t contributing_nodes = 0;  // live with data (last seal)
  std::size_t max_node_items = 0;      // max per-node summary space
  std::size_t session_table_keys = 0;  // interned table size
  std::uint64_t session_rebuilds = 0;  // full intern sorts paid
  std::uint64_t session_extends = 0;   // incremental table merges paid
  std::uint64_t session_reuse_hits = 0;  // seals with zero new keys
  std::uint64_t engine_rebuilds = 0;   // membership-change reconstructions
  std::uint64_t gossip_rounds = 0;     // engine rounds across all queries
};

class QuantileService {
 public:
  using Stream = NodeStream<KllSketch>;

  explicit QuantileService(std::uint32_t initial_nodes,
                           ServiceConfig config = ServiceConfig{});
  ~QuantileService();

  // ---- membership and ingest (mutations against the open epoch) ---------

  // Adds a node and returns its id (ids are stable handles, never reused).
  std::uint32_t join();
  void leave(std::uint32_t node);

  void ingest(std::uint32_t node, double value);
  void ingest(std::uint32_t node, std::span<const double> values);

  // ---- epoch barrier -----------------------------------------------------

  // Seals the open epoch (no-op when nothing changed): freezes membership,
  // rebuilds the instance, updates the interned session, re-shards the
  // engine if membership size changed.  Returns the sealed epoch number.
  std::uint64_t seal();

  // ---- queries (always observe the latest sealed epoch) ------------------

  [[nodiscard]] QueryReply query(const QueryRequest& request);
  [[nodiscard]] std::vector<QueryReply> query_batch(
      std::span<const QueryRequest> requests);

  // ---- observability -----------------------------------------------------

  // The sealed instance (key i belongs to contributor slot i).  Valid until
  // the next seal; requires at least one seal.
  [[nodiscard]] std::span<const Key> epoch_keys() const;

  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] std::uint32_t live_nodes() const noexcept { return live_; }
  [[nodiscard]] const ServiceConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] ServiceStats stats() const;

  // Per-kind end-to-end query latency (ns), recorded only while
  // gq::telemetry is enabled — with telemetry off the query path reads no
  // clocks.  The histograms are log-bucketed (12.5% max relative error);
  // use quantile(0.5/0.9/0.99/0.999) for percentiles.
  [[nodiscard]] const LogHistogram& query_latency(QueryKind kind) const;

  // Human-readable per-kind latency percentiles (one line per kind with
  // recorded samples), and a Prometheus-style exposition of the same plus
  // the ServiceStats counters.
  [[nodiscard]] std::string latency_summary() const;
  [[nodiscard]] std::string prometheus_text() const;

 private:
  [[nodiscard]] Stream& live_stream(std::uint32_t node);
  void build_instance();
  [[nodiscard]] std::uint64_t next_query_seed(const QueryRequest& request);
  void prepare_engine(std::uint64_t seed);

  QueryReply run_quantile(const QueryRequest& request, std::uint64_t seed);
  QueryReply run_exact(const QueryRequest& request, std::uint64_t seed);
  QueryReply run_rank(const QueryRequest& request, std::uint64_t seed);
  QueryReply run_cdf(const QueryRequest& request, std::uint64_t seed);
  QueryReply run_multi_quantile(const QueryRequest& request,
                                std::uint64_t seed);

  ServiceConfig cfg_;
  // Index = node id; departed nodes leave a null slot (ids stay stable).
  std::vector<std::unique_ptr<Stream>> streams_;
  std::uint32_t live_ = 0;
  std::vector<std::uint32_t> contributors_;  // node ids, last seal
  std::vector<Key> instance_;                // one key per contributor
  EpochSession session_;
  std::unique_ptr<Engine> engine_;
  bool dirty_ = true;        // open-epoch mutations pending
  std::uint64_t epoch_ = 0;  // sealed epoch counter
  std::uint64_t query_seq_ = 0;
  std::uint64_t queries_ = 0;
  std::uint64_t ingested_ = 0;
  std::uint64_t engine_rebuilds_ = 0;
  std::vector<bool> indicator_a_, indicator_b_, indicator_c_;  // rank scratch
  std::array<LogHistogram, 5> query_latency_ns_;  // indexed by QueryKind
};

}  // namespace gq
