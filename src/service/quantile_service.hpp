// QuantileService: the long-lived streaming serving layer over the gossip
// engine.
//
// Every pipeline below this layer is one-shot — keys in, one answer out,
// state discarded.  The service turns that into continuous serving:
//
//   ingest --------> per-node NodeStream (bounded KLL summary, O(k) items)
//   seal (epoch) --> one-key-per-node instance (InstancePolicy)
//                      -> EpochSession (persistent interned table + lanes,
//                         extended incrementally, engine hand-off)
//   query ---------> Engine pipelines re-run on demand over the sealed
//                    instance (approx/exact tournaments, exact gossip
//                    counting for rank/CDF), warm across queries
//
// ## Epoch barrier
//
// Ingest and churn accumulate against the *open* epoch; queries only ever
// observe a *sealed* one.  The first query after any mutation seals
// implicitly (or call seal() for an explicit barrier); all queries of one
// query_batch observe the same epoch.  Within an epoch, queries are
// repeatable: the instance, session, and membership are frozen.
//
// ## Determinism and warm == cold
//
// A service's entire life is a pure function of (config, call log).  Each
// query runs the engine on its own derived stream seed after
// Engine::reset_stream, so a warm-session query is **bit-identical** to a
// cold one-shot run of the same pipeline on a fresh Engine(m, seed) over
// the same instance — at 1, 2, and 8 threads and any shard/block size —
// which tests/test_service.cpp pins via reply fingerprints.  What the warm
// session reuses (thread pool, scatter arena, pooled kernel scratch, the
// adopted intern session) is exactly the observationally-neutral state.
//
// ## Churn
//
// join()/leave() change membership between epochs; the next seal re-shards
// the session: contributors are renumbered 0..m-1 in ascending node-id
// order, the instance is rebuilt over them, and the engine is reconstructed
// when m changed (shard geometry is fixed per Engine).  A join/leave
// sequence converging to the same per-node streams answers pinned-seed
// queries identically to a fresh service built on that membership.
//
// ## Resilience
//
// Every gossip-backed query runs under the deterministic supervisor
// (core/supervisor.hpp): a failed attempt — pipeline abort, served fraction
// below policy, round deadline — retries with a reseeded stream and
// escalated parameters, up to the configured budget.  Attempt 0 uses the
// query's own seed with untouched parameters, so a query whose first
// attempt succeeds is bit-identical to the pre-supervision service (and to
// a cold one-shot run).  When the budget is exhausted the service *degrades
// instead of throwing*: the reply is answered from the sealed epoch's
// merged summary sketch (built at seal time, rank error <= the sketch's
// bound), tagged AnswerQuality::kDegraded with the bound in error_bound.
//
// A per-QueryKind circuit breaker sits in front of the supervisor: after
// `breaker.open_after` consecutive exhausted queries of one kind the
// breaker opens and subsequent queries of that kind serve the degraded
// answer immediately (no gossip, no attempt budget burned) for
// `breaker.cooldown_queries` queries of that kind; the next query is the
// half-open probe that either closes the breaker or re-opens it.  All
// transitions advance on query counts, never wall time, so the whole
// resilience layer is as deterministic and replayable as the pipelines.
//
// ## Errors
//
// With degrade_on_exhaustion = false, kExactQuantile propagates the last
// attempt's ExactPipelineError (recoverable — the service and its engine
// stay usable; see core/result.hpp) once the supervisor budget is spent.
// Structural misuse (unknown node ids, ingest into departed nodes, queries
// with fewer than two contributing nodes) throws std::invalid_argument via
// GQ_REQUIRE regardless — misuse is a bug, not a fault to absorb.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "service/node_stream.hpp"
#include "service/query.hpp"
#include "service/service_config.hpp"
#include "service/session.hpp"
#include "sketch/kll.hpp"
#include "util/histogram.hpp"

namespace gq {

// Service-lifetime counters (cheap snapshot, see QuantileService::stats).
struct ServiceStats {
  std::uint64_t epoch = 0;             // sealed epochs so far
  std::uint64_t queries = 0;           // queries answered
  std::uint64_t ingested = 0;          // values ingested service-wide
  std::uint32_t live_nodes = 0;        // joined minus departed
  std::uint32_t contributing_nodes = 0;  // live with data (last seal)
  std::size_t max_node_items = 0;      // max per-node summary space
  std::size_t session_table_keys = 0;  // interned table size
  std::uint64_t session_rebuilds = 0;  // full intern sorts paid
  std::uint64_t session_extends = 0;   // incremental table merges paid
  std::uint64_t session_reuse_hits = 0;  // seals with zero new keys
  std::uint64_t engine_rebuilds = 0;   // membership-change reconstructions
  std::uint64_t gossip_rounds = 0;     // engine rounds across all queries

  // Resilience counters (see "Resilience" below).
  std::uint64_t retry_attempts = 0;    // supervised attempts beyond the first
  std::uint64_t degraded_answers = 0;  // replies served from the summary
  std::uint64_t breaker_opens = 0;     // closed/half-open -> open transitions
};

class QuantileService {
 public:
  using Stream = NodeStream<KllSketch>;

  explicit QuantileService(std::uint32_t initial_nodes,
                           ServiceConfig config = ServiceConfig{});
  ~QuantileService();

  // ---- membership and ingest (mutations against the open epoch) ---------

  // Adds a node and returns its id (ids are stable handles, never reused).
  std::uint32_t join();
  void leave(std::uint32_t node);

  void ingest(std::uint32_t node, double value);
  void ingest(std::uint32_t node, std::span<const double> values);

  // ---- epoch barrier -----------------------------------------------------

  // Seals the open epoch (no-op when nothing changed): freezes membership,
  // rebuilds the instance, updates the interned session, re-shards the
  // engine if membership size changed.  Returns the sealed epoch number.
  std::uint64_t seal();

  // ---- queries (always observe the latest sealed epoch) ------------------

  [[nodiscard]] QueryReply query(const QueryRequest& request);
  [[nodiscard]] std::vector<QueryReply> query_batch(
      std::span<const QueryRequest> requests);

  // ---- observability -----------------------------------------------------

  // The sealed instance (key i belongs to contributor slot i).  Valid until
  // the next seal; requires at least one seal.
  [[nodiscard]] std::span<const Key> epoch_keys() const;

  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] std::uint32_t live_nodes() const noexcept { return live_; }
  [[nodiscard]] const ServiceConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] ServiceStats stats() const;

  // Per-kind end-to-end query latency (ns), recorded only while
  // gq::telemetry is enabled — with telemetry off the query path reads no
  // clocks.  The histograms are log-bucketed (12.5% max relative error);
  // use quantile(0.5/0.9/0.99/0.999) for percentiles.
  [[nodiscard]] const LogHistogram& query_latency(QueryKind kind) const;

  // Human-readable per-kind latency percentiles (one line per kind with
  // recorded samples), and a Prometheus-style exposition of the same plus
  // the ServiceStats counters.
  [[nodiscard]] std::string latency_summary() const;
  [[nodiscard]] std::string prometheus_text() const;

  // Current circuit-breaker state of a query kind (observability; the
  // breaker itself is driven entirely by query()).
  enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };
  [[nodiscard]] BreakerState breaker_state(QueryKind kind) const noexcept;

 private:
  // Circuit breaker state of one query kind; see the Resilience overview.
  // All fields advance on queries of that kind only.
  struct Breaker {
    BreakerState state = BreakerState::kClosed;
    std::uint32_t consecutive_failures = 0;
    std::uint64_t kind_queries = 0;  // queries of this kind so far
    std::uint64_t opened_at = 0;     // kind_queries when last opened
  };

  [[nodiscard]] Stream& live_stream(std::uint32_t node);
  void build_instance();
  void build_degraded_summary();
  [[nodiscard]] std::uint64_t next_query_seed(const QueryRequest& request);
  void prepare_engine(std::uint64_t seed);

  // One supervised query: breaker consultation, attempt loop, degraded
  // fallback.  `dispatch` runs the kind-specific pipeline body.
  QueryReply run_resilient(const QueryRequest& request, std::uint64_t seed);
  QueryReply run_attempts(const QueryRequest& request, std::uint64_t seed,
                          std::uint32_t max_attempts, bool& exhausted);
  QueryReply degraded_reply(const QueryRequest& request, std::uint64_t seed,
                            std::uint32_t attempts_spent);
  void record_outcome(Breaker& breaker, bool exhausted);

  QueryReply run_quantile(const QueryRequest& request, std::uint64_t seed,
                          const AttemptPlan& plan);
  QueryReply run_exact(const QueryRequest& request, std::uint64_t seed);
  QueryReply run_rank(const QueryRequest& request, std::uint64_t seed);
  QueryReply run_cdf(const QueryRequest& request, std::uint64_t seed);
  QueryReply run_multi_quantile(const QueryRequest& request,
                                std::uint64_t seed, const AttemptPlan& plan);

  ServiceConfig cfg_;
  // Index = node id; departed nodes leave a null slot (ids stay stable).
  std::vector<std::unique_ptr<Stream>> streams_;
  std::uint32_t live_ = 0;
  std::vector<std::uint32_t> contributors_;  // node ids, last seal
  std::vector<Key> instance_;                // one key per contributor
  EpochSession session_;
  std::unique_ptr<Engine> engine_;
  bool dirty_ = true;        // open-epoch mutations pending
  std::uint64_t epoch_ = 0;  // sealed epoch counter
  std::uint64_t query_seq_ = 0;
  std::uint64_t queries_ = 0;
  std::uint64_t ingested_ = 0;
  std::uint64_t engine_rebuilds_ = 0;
  std::vector<bool> indicator_a_, indicator_b_, indicator_c_;  // rank scratch
  std::array<LogHistogram, 5> query_latency_ns_;  // indexed by QueryKind

  // Resilience state: the epoch's merged summary (degraded answers), the
  // per-kind breakers, and the lifetime counters surfaced via stats().
  std::unique_ptr<KllSketch> degraded_summary_;  // rebuilt at every seal
  std::array<Breaker, 5> breakers_;              // indexed by QueryKind
  std::uint64_t retry_attempts_ = 0;
  std::uint64_t degraded_answers_ = 0;
  std::uint64_t breaker_opens_ = 0;
};

}  // namespace gq
