#include "service/session.hpp"

#include <algorithm>

#include "telemetry/telemetry.hpp"
#include "util/require.hpp"

namespace gq {

void EpochSession::update(std::span<const Key> instance,
                          std::uint32_t compact_factor) {
  const std::size_t m = instance.size();
  lanes_.resize(m);
  const std::span<std::uint32_t> lanes(lanes_.data(), m);

  // Compact once staleness dominates: the table may lawfully hold retired
  // keys, but past `compact_factor` times the instance size the binary-
  // search depth and memory are paying for dead weight.
  const bool oversized =
      interner_.table().size() > static_cast<std::size_t>(compact_factor) * m;
  if (warm_ && !oversized) {
    GQ_SPAN("service/session_extend");
    // Keys this epoch introduced: anything not already in the table.  The
    // common steady-state epoch (a few nodes ingested, a few
    // representatives moved) makes this a short list; a quiet epoch makes
    // it empty.
    added_.clear();
    const std::span<const Key> table = interner_.table();
    for (const Key& k : instance) {
      if (!std::binary_search(table.begin(), table.end(), k)) {
        added_.push_back(k);
      }
    }
    interner_.extend(added_, instance, lanes);
    if (added_.empty()) {
      ++reuse_hits_;
    } else {
      ++extends_;
    }
    return;
  }
  GQ_SPAN("service/session_rebuild");
  interner_.intern(instance, lanes);
  warm_ = true;
  ++rebuilds_;
}

void EpochSession::indicator_le(const Key& probe,
                                std::vector<bool>& indicator) const {
  GQ_REQUIRE(warm_, "indicator_le needs an updated session");
  const std::uint32_t bound = interner_.count_le(probe);
  indicator.assign(lanes_.size(), false);
  for (std::size_t v = 0; v < lanes_.size(); ++v) {
    indicator[v] = lanes_[v] < bound;
  }
}

}  // namespace gq
