#include "service/query.hpp"

#include <bit>

namespace gq {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

constexpr std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t word) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (word >> (8 * byte)) & 0xffu;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

std::uint64_t transcript_hash(std::span<const Key> outputs,
                              const std::vector<bool>& valid) {
  std::uint64_t h = kFnvOffset;
  for (std::size_t v = 0; v < outputs.size(); ++v) {
    h = fnv_mix(h, std::bit_cast<std::uint64_t>(outputs[v].value));
    h = fnv_mix(h, outputs[v].id);
    h = fnv_mix(h, outputs[v].tag);
    h = fnv_mix(h, v < valid.size() && valid[v] ? 1u : 0u);
  }
  return h;
}

std::uint64_t transcript_hash_counts(std::span<const std::uint64_t> counts) {
  std::uint64_t h = kFnvOffset;
  for (const std::uint64_t c : counts) h = fnv_mix(h, c);
  return h;
}

}  // namespace gq
