// Request/reply types of the streaming quantile service.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/key.hpp"

namespace gq {

enum class QueryKind {
  kQuantile,       // phi-quantile via the approximate tournament pipeline
  kExactQuantile,  // phi-quantile via Algorithm 3 (exact over the instance)
  kRank,           // #{instance keys <= value} via exact gossip counting
  kCdf,            // kRank for a batch of points, three per diffusion
  kMultiQuantile,  // all phi targets in ONE shared tournament schedule
};

// How a reply was produced.  kFull answers ran a gossip pipeline to
// completion; kDegraded answers come from the sealed epoch's centrally
// merged summary sketch after the supervisor exhausted its attempt budget
// (or while the query kind's circuit breaker is open) — see
// quantile_service.hpp "Resilience".  A degraded reply is approximate
// (error_bound says by how much, in rank space) but never an exception.
enum class AnswerQuality : std::uint8_t {
  kFull,
  kDegraded,
};

struct QueryRequest {
  QueryKind kind = QueryKind::kQuantile;

  double phi = 0.5;  // quantile queries

  double value = 0.0;              // kRank: the probe point
  std::vector<double> cdf_points;  // kCdf: the probe points
  std::vector<double> phis;        // kMultiQuantile: the targets

  // Per-request overrides of the service-config pipeline defaults;
  // 0 keeps the default.
  double eps = 0.0;

  // Engine stream seed for this query.  0 (default) auto-derives a fresh
  // seed from (service seed, query sequence number) — every query consumes
  // an independent stream.  Non-zero pins the stream explicitly: two
  // services in the same epoch state answer a pinned-seed query
  // bit-identically regardless of their query histories (deterministic
  // replay; the churn tests lean on this).
  std::uint64_t seed = 0;
};

struct QueryReply {
  QueryKind kind = QueryKind::kQuantile;
  double phi = 0.0;

  // Quantile queries: the answer key node 0 settles on (kQuantile) or THE
  // instance quantile (kExactQuantile); `value` is answer.value.
  Key answer{};
  double value = 0.0;

  // Rank queries: exact count of instance keys <= the probe, and the
  // fraction count / nodes.  kCdf fills the vectors, one entry per probe.
  std::uint64_t count = 0;
  double fraction = 0.0;
  std::vector<std::uint64_t> cdf_counts;
  std::vector<double> cdf;

  // kMultiQuantile: one answer per request phi (duplicated targets share
  // one gossip lane but still get their own reply slot); `multi_values`
  // mirrors multi_answers[i].value.
  std::vector<Key> multi_answers;
  std::vector<double> multi_values;

  std::uint64_t epoch = 0;   // sealed epoch this query observed
  std::uint64_t seed = 0;    // engine stream seed the query ran under
  std::uint64_t rounds = 0;  // gossip rounds this query consumed
  std::uint32_t nodes = 0;   // contributing nodes (instance size m)
  std::uint32_t served = 0;  // nodes holding a valid output (== nodes when
                             // failure-free)
  bool used_exact_fallback = false;  // approx ran the exact bootstrap route

  // Resilience annotations (see quantile_service.hpp "Resilience").
  // `attempts` counts supervised pipeline attempts consumed (0 when the
  // breaker short-circuited the query straight to the degraded path).  For
  // kDegraded replies `seed` is the query's base seed (no attempt ran to
  // completion) and `error_bound` is the summary sketch's additive rank
  // error as a fraction of the instance — the answer is a phi' quantile for
  // some |phi' - phi| <= error_bound.  kFull replies have error_bound 0.
  AnswerQuality quality = AnswerQuality::kFull;
  double error_bound = 0.0;
  std::uint32_t attempts = 1;

  // FNV-1a over the per-node outputs and valid mask: a compact fingerprint
  // of the full transcript, so tests can pin warm-session replies
  // bit-identical to cold one-shot pipeline runs without shipping the
  // output vectors through the reply.
  std::uint64_t transcript_hash = 0;
};

// The reply fingerprints, shared with the tests' cold-run comparators:
// per-node outputs + valid mask for quantile queries, the per-probe exact
// counts for rank/CDF queries.
[[nodiscard]] std::uint64_t transcript_hash(std::span<const Key> outputs,
                                            const std::vector<bool>& valid);
[[nodiscard]] std::uint64_t transcript_hash_counts(
    std::span<const std::uint64_t> counts);

}  // namespace gq
