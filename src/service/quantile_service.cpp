#include "service/quantile_service.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "core/supervisor.hpp"
#include "engine/kernels.hpp"
#include "engine/pipelines.hpp"
#include "telemetry/telemetry.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace gq {
namespace {

constexpr const char* kQueryKindNames[] = {"quantile", "exact_quantile",
                                           "rank", "cdf", "multi_quantile"};

// Disjoint sub-seed spaces off the master seed, so node summaries, query
// streams, and the resample merge can never collide.
constexpr std::uint64_t kSummaryStream = 0x5eed0001;
constexpr std::uint64_t kQueryStream = 0x5eed0002;
constexpr std::uint64_t kMergeStream = 0x5eed0003;
constexpr std::uint64_t kDegradedStream = 0x5eed0004;

// A probe value's threshold key: compares >= every instance key holding the
// same value, so count_le counts exactly the keys with key.value <= probe.
constexpr Key probe_key(double value) {
  return Key{value, std::numeric_limits<std::uint32_t>::max(),
             std::numeric_limits<std::uint64_t>::max()};
}

}  // namespace

QuantileService::QuantileService(std::uint32_t initial_nodes,
                                 ServiceConfig config)
    : cfg_(std::move(config)) {
  GQ_REQUIRE(cfg_.local_phi >= 0.0 && cfg_.local_phi <= 1.0,
             "local_phi must lie in [0,1]");
  GQ_REQUIRE(cfg_.session_compact_factor >= 1,
             "session_compact_factor must be at least 1");
  streams_.reserve(initial_nodes);
  for (std::uint32_t i = 0; i < initial_nodes; ++i) (void)join();
}

QuantileService::~QuantileService() = default;

std::uint32_t QuantileService::join() {
  const auto id = static_cast<std::uint32_t>(streams_.size());
  streams_.push_back(std::make_unique<Stream>(
      cfg_.sketch_k, derive_seed(derive_seed(cfg_.seed, kSummaryStream), id)));
  ++live_;
  dirty_ = true;
  return id;
}

void QuantileService::leave(std::uint32_t node) {
  (void)live_stream(node);  // validates live
  streams_[node].reset();
  --live_;
  dirty_ = true;
}

QuantileService::Stream& QuantileService::live_stream(std::uint32_t node) {
  GQ_REQUIRE(node < streams_.size() && streams_[node] != nullptr,
             "unknown or departed node id");
  return *streams_[node];
}

void QuantileService::ingest(std::uint32_t node, double value) {
  live_stream(node).ingest(value);
  ++ingested_;
  dirty_ = true;
}

void QuantileService::ingest(std::uint32_t node,
                             std::span<const double> values) {
  live_stream(node).ingest(values);
  ingested_ += values.size();
  dirty_ = true;
}

void QuantileService::build_instance() {
  GQ_SPAN("service/build_instance");
  const auto m = static_cast<std::uint32_t>(contributors_.size());
  instance_.resize(m);
  switch (cfg_.instance_policy) {
    case InstancePolicy::kLocalQuantile:
      // Every contributor derives its representative from its own summary;
      // re-id by contributor slot restores cross-node distinctness.
      for (std::uint32_t i = 0; i < m; ++i) {
        const Key local =
            streams_[contributors_[i]]->local_quantile(cfg_.local_phi);
        instance_[i] = Key{local.value, i, 0};
      }
      return;
    case InstancePolicy::kGlobalResample: {
      // Merge all summaries (ascending contributor order, fixed seed — a
      // pure function of the stream states) and deal the instance as the
      // merged distribution's m-point equi-depth resample.
      KllSketch merged(cfg_.sketch_k, derive_seed(cfg_.seed, kMergeStream));
      for (const std::uint32_t id : contributors_) {
        merged.merge(streams_[id]->summary());
      }
      for (std::uint32_t i = 0; i < m; ++i) {
        const double phi = (static_cast<double>(i) + 0.5) / m;
        instance_[i] = Key{merged.quantile(phi).value, i, 0};
      }
      return;
    }
  }
  GQ_REQUIRE(false, "unknown instance policy");
}

std::uint64_t QuantileService::seal() {
  if (!dirty_ && engine_ != nullptr) return epoch_;
  GQ_SPAN("service/seal");
  contributors_.clear();
  for (std::uint32_t id = 0; id < streams_.size(); ++id) {
    if (streams_[id] != nullptr && !streams_[id]->empty()) {
      contributors_.push_back(id);
    }
  }
  const auto m = static_cast<std::uint32_t>(contributors_.size());
  GQ_REQUIRE(m >= 2, "sealing an epoch needs >= 2 nodes holding data");
  build_instance();
  // Membership-size changes re-shard: shard geometry is fixed per Engine,
  // so a new m gets a new engine (thread pool and arenas respawn once per
  // churn event, not per query).
  if (engine_ == nullptr || engine_->size() != m) {
    engine_ = std::make_unique<Engine>(m, cfg_.seed, cfg_.failures,
                                       cfg_.engine);
    ++engine_rebuilds_;
  }
  // (Re-)install the configured adversary every seal: a rebuilt engine
  // starts bare, and per-query reset_stream rebinds the strategy onto each
  // query's stream seed.
  if (cfg_.adversary != nullptr) engine_->set_adversary(cfg_.adversary);
  session_.update(instance_, cfg_.session_compact_factor);
  build_degraded_summary();
  dirty_ = false;
  return ++epoch_;
}

void QuantileService::build_degraded_summary() {
  // The degraded-answer summary approximates the same distribution the
  // sealed *instance* exposes to queries, so a degraded reply answers the
  // question the caller actually asked: under kLocalQuantile that is the
  // instance keys themselves (m items — near-exact below sketch_k), under
  // kGlobalResample the merged per-node summaries (same merge the instance
  // was resampled from, without the 1/(2m) resample granularity).
  degraded_summary_ = std::make_unique<KllSketch>(
      cfg_.sketch_k, derive_seed(cfg_.seed, kDegradedStream));
  switch (cfg_.instance_policy) {
    case InstancePolicy::kLocalQuantile:
      for (const Key& key : instance_) degraded_summary_->insert(key);
      return;
    case InstancePolicy::kGlobalResample:
      for (const std::uint32_t id : contributors_) {
        degraded_summary_->merge(streams_[id]->summary());
      }
      return;
  }
  GQ_REQUIRE(false, "unknown instance policy");
}

std::uint64_t QuantileService::next_query_seed(const QueryRequest& request) {
  if (request.seed != 0) return request.seed;
  return derive_seed(derive_seed(cfg_.seed, kQueryStream), ++query_seq_);
}

void QuantileService::prepare_engine(std::uint64_t seed) {
  // Rebase the stream so this query is bit-identical to a cold
  // Engine(m, seed) run, then hand the kernels the session encoding so
  // their verify pass skips the per-query intern sort.
  engine_->reset_stream(seed);
  adopt_intern_session(*engine_, session_.table(), session_.lanes());
}

QueryReply QuantileService::query(const QueryRequest& request) {
  (void)seal();  // implicit ingest->query barrier; no-op when clean
  GQ_SPAN("service/query");
  const std::uint64_t seed = next_query_seed(request);
  // Latency is end-to-end over the resilient dispatch (post-seal, retries
  // and degraded fallback included), read only while telemetry is enabled
  // so the disabled query path stays clock-free.
  const std::uint64_t t0 =
      telemetry::enabled() ? telemetry::now_ns() : 0;
  QueryReply reply = run_resilient(request, seed);
  if (t0 != 0) {
    query_latency_ns_[static_cast<std::size_t>(request.kind)].add(
        telemetry::now_ns() - t0);
  }
  reply.epoch = epoch_;
  reply.nodes = static_cast<std::uint32_t>(instance_.size());
  ++queries_;
  return reply;
}

QueryReply QuantileService::run_resilient(const QueryRequest& request,
                                          std::uint64_t seed) {
  // Structural misuse stays loud no matter what the resilience layer would
  // absorb: a malformed request is a caller bug, not a gossip fault.
  const bool quantile_kind = request.kind == QueryKind::kQuantile ||
                             request.kind == QueryKind::kExactQuantile;
  GQ_REQUIRE(!quantile_kind || (request.phi >= 0.0 && request.phi <= 1.0),
             "phi must lie in [0,1]");
  GQ_REQUIRE(request.kind != QueryKind::kCdf || !request.cdf_points.empty(),
             "kCdf needs at least one probe point");
  GQ_REQUIRE(
      request.kind != QueryKind::kMultiQuantile || !request.phis.empty(),
      "kMultiQuantile needs at least one target");

  Breaker& breaker = breakers_[static_cast<std::size_t>(request.kind)];
  ++breaker.kind_queries;
  const bool breaker_enabled = cfg_.breaker.open_after > 0;
  if (breaker_enabled && breaker.state == BreakerState::kOpen) {
    if (breaker.kind_queries - breaker.opened_at <=
        cfg_.breaker.cooldown_queries) {
      // Cooling down: serve from the summary without touching the engine.
      return degraded_reply(request, seed, /*attempts_spent=*/0);
    }
    breaker.state = BreakerState::kHalfOpen;  // this query is the probe
  }
  bool exhausted = false;
  QueryReply reply =
      run_attempts(request, seed, cfg_.supervisor.max_attempts, exhausted);
  record_outcome(breaker, exhausted);
  if (!exhausted) return reply;
  return degraded_reply(request, seed, cfg_.supervisor.max_attempts);
}

QueryReply QuantileService::run_attempts(const QueryRequest& request,
                                         std::uint64_t seed,
                                         std::uint32_t max_attempts,
                                         bool& exhausted) {
  GQ_REQUIRE(max_attempts >= 1, "supervisor needs at least one attempt");
  const auto m = static_cast<double>(instance_.size());
  std::exception_ptr last_error;
  for (std::uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    const AttemptPlan plan = plan_attempt(cfg_.supervisor, seed, attempt);
    if (attempt > 0) ++retry_attempts_;
    GQ_SPAN("supervisor/attempt");
    prepare_engine(plan.seed);
    try {
      QueryReply reply;
      switch (request.kind) {
        case QueryKind::kQuantile: {
          GQ_SPAN("service/query_quantile");
          reply = run_quantile(request, plan.seed, plan);
          break;
        }
        case QueryKind::kExactQuantile: {
          GQ_SPAN("service/query_exact_quantile");
          reply = run_exact(request, plan.seed);
          break;
        }
        case QueryKind::kRank: {
          GQ_SPAN("service/query_rank");
          reply = run_rank(request, plan.seed);
          break;
        }
        case QueryKind::kCdf: {
          GQ_SPAN("service/query_cdf");
          reply = run_cdf(request, plan.seed);
          break;
        }
        case QueryKind::kMultiQuantile: {
          GQ_SPAN("service/query_multi_quantile");
          reply = run_multi_quantile(request, plan.seed, plan);
          break;
        }
      }
      const double served_fraction =
          m > 0.0 ? static_cast<double>(reply.served) / m : 1.0;
      const bool deadline_ok = cfg_.supervisor.max_rounds == 0 ||
                               reply.rounds <= cfg_.supervisor.max_rounds;
      if (deadline_ok &&
          served_fraction >= cfg_.supervisor.min_served_fraction) {
        reply.seed = plan.seed;
        reply.attempts = attempt + 1;
        exhausted = false;
        return reply;
      }
      last_error = nullptr;  // quality failure, not an exception
    } catch (const std::exception&) {
      // Pipeline aborts (typed ExactPipelineError) and convergence
      // failures under extreme faults (GQ_REQUIRE) are both failed
      // attempts; structural misuse was rejected before the loop.
      last_error = std::current_exception();
    }
  }
  exhausted = true;
  if (!cfg_.degrade_on_exhaustion) {
    if (last_error != nullptr) std::rethrow_exception(last_error);
    throw std::runtime_error(
        "supervisor budget exhausted: quality below threshold");
  }
  return {};
}

void QuantileService::record_outcome(Breaker& breaker, bool exhausted) {
  if (cfg_.breaker.open_after == 0) return;
  if (!exhausted) {
    breaker.consecutive_failures = 0;
    breaker.state = BreakerState::kClosed;
    return;
  }
  ++breaker.consecutive_failures;
  if (breaker.state == BreakerState::kHalfOpen ||
      breaker.consecutive_failures >= cfg_.breaker.open_after) {
    breaker.state = BreakerState::kOpen;
    breaker.opened_at = breaker.kind_queries;
    ++breaker_opens_;
  }
}

QueryReply QuantileService::degraded_reply(const QueryRequest& request,
                                           std::uint64_t seed,
                                           std::uint32_t attempts_spent) {
  GQ_SPAN("service/degraded");
  GQ_REQUIRE(degraded_summary_ != nullptr && !degraded_summary_->empty(),
             "degraded path needs a sealed epoch summary");
  ++degraded_answers_;
  const KllSketch& summary = *degraded_summary_;
  const auto m = static_cast<double>(instance_.size());
  QueryReply reply;
  reply.kind = request.kind;
  reply.quality = AnswerQuality::kDegraded;
  reply.error_bound = summary.rank_error_bound();
  reply.attempts = attempts_spent;
  reply.seed = seed;  // the base seed; no attempt ran to completion
  reply.served = 0;   // no node served an answer — the service did
  switch (request.kind) {
    case QueryKind::kQuantile:
    case QueryKind::kExactQuantile:
      reply.phi = request.phi;
      reply.answer = summary.quantile(request.phi);
      reply.value = reply.answer.value;
      break;
    case QueryKind::kRank: {
      const double fraction = static_cast<double>(summary.rank(
                                  probe_key(request.value))) /
                              static_cast<double>(summary.count());
      reply.fraction = fraction;
      reply.count = static_cast<std::uint64_t>(std::llround(fraction * m));
      break;
    }
    case QueryKind::kCdf:
      reply.cdf_counts.reserve(request.cdf_points.size());
      reply.cdf.reserve(request.cdf_points.size());
      for (const double point : request.cdf_points) {
        const double fraction =
            static_cast<double>(summary.rank(probe_key(point))) /
            static_cast<double>(summary.count());
        reply.cdf.push_back(fraction);
        reply.cdf_counts.push_back(
            static_cast<std::uint64_t>(std::llround(fraction * m)));
      }
      break;
    case QueryKind::kMultiQuantile:
      reply.multi_answers.reserve(request.phis.size());
      reply.multi_values.reserve(request.phis.size());
      for (const double phi : request.phis) {
        const Key answer = summary.quantile(phi);
        reply.multi_answers.push_back(answer);
        reply.multi_values.push_back(answer.value);
      }
      break;
  }
  return reply;
}

QuantileService::BreakerState QuantileService::breaker_state(
    QueryKind kind) const noexcept {
  return breakers_[static_cast<std::size_t>(kind)].state;
}

std::vector<QueryReply> QuantileService::query_batch(
    std::span<const QueryRequest> requests) {
  // One barrier for the whole batch: every reply observes the same epoch,
  // and the warm session/engine serve all of them back to back.
  (void)seal();
  std::vector<QueryReply> replies;
  replies.reserve(requests.size());
  for (const QueryRequest& request : requests) {
    replies.push_back(query(request));
  }
  return replies;
}

QueryReply QuantileService::run_quantile(const QueryRequest& request,
                                         std::uint64_t /*seed*/,
                                         const AttemptPlan& plan) {
  QueryReply reply;
  reply.kind = QueryKind::kQuantile;
  reply.phi = request.phi;
  if (plan.robust_promoted) {
    // Escalated retries route through the filtered adversarial pipeline:
    // whatever broke the plain tournament (adversarial corruption, heavy
    // loss) is exactly what the majority-filter branch is built for.
    AdversarialQuantileParams params;
    params.phi = request.phi;
    params.eps = request.eps > 0.0 ? request.eps : cfg_.approx.eps;
    params.min_served_fraction = cfg_.supervisor.min_served_fraction;
    params.max_corruption_exposure = cfg_.supervisor.max_corruption_exposure;
    params = escalated(params, plan);
    const AdversarialQuantileResult res =
        adversarial_quantile_keys(*engine_, instance_, params);
    for (std::size_t v = 0; v < res.valid.size(); ++v) {
      if (res.valid[v]) {
        reply.answer = res.outputs[v];
        break;
      }
    }
    reply.value = reply.answer.value;
    reply.rounds = res.rounds;
    reply.served = static_cast<std::uint32_t>(res.served_nodes());
    reply.transcript_hash = transcript_hash(res.outputs, res.valid);
    return reply;
  }
  ApproxQuantileParams params = cfg_.approx;
  params.phi = request.phi;
  if (request.eps > 0.0) params.eps = request.eps;
  params = escalated(params, plan);  // attempt 0: returns params unchanged
  const ApproxQuantileResult res =
      approx_quantile_keys(*engine_, instance_, params);
  for (std::size_t v = 0; v < res.valid.size(); ++v) {
    if (res.valid[v]) {
      reply.answer = res.outputs[v];
      break;
    }
  }
  reply.value = reply.answer.value;
  reply.rounds = res.rounds;
  reply.served = static_cast<std::uint32_t>(res.served_nodes());
  reply.used_exact_fallback = res.used_exact_fallback;
  reply.transcript_hash = transcript_hash(res.outputs, res.valid);
  return reply;
}

QueryReply QuantileService::run_multi_quantile(const QueryRequest& request,
                                               std::uint64_t /*seed*/,
                                               const AttemptPlan& plan) {
  MultiQuantileParams params;
  params.phis = request.phis;
  params.eps = cfg_.approx.eps;
  params.final_sample_size = cfg_.approx.final_sample_size;
  params.robust_coverage_rounds = cfg_.approx.robust_coverage_rounds;
  if (request.eps > 0.0) params.eps = request.eps;
  // Escalation mirrors escalated(ApproxQuantileParams): coarser eps, more
  // final samples, deeper robust coverage.  Attempt 0 is a no-op.
  params.eps = std::min(0.49, params.eps * plan.eps_scale);
  params.final_sample_size += 2 * plan.fanout_boost;
  params.robust_coverage_rounds += plan.fanout_boost;
  const MultiQuantileResult res =
      multi_quantile_keys(*engine_, instance_, params);
  QueryReply reply;
  reply.kind = QueryKind::kMultiQuantile;
  reply.multi_answers.reserve(res.per_phi.size());
  reply.multi_values.reserve(res.per_phi.size());
  std::vector<std::uint64_t> target_hashes;
  target_hashes.reserve(res.per_phi.size());
  std::uint32_t served_min =
      static_cast<std::uint32_t>(instance_.size());
  for (const ApproxQuantileResult& r : res.per_phi) {
    Key answer{};
    for (std::size_t v = 0; v < r.valid.size(); ++v) {
      if (r.valid[v]) {
        answer = r.outputs[v];
        break;
      }
    }
    reply.multi_answers.push_back(answer);
    reply.multi_values.push_back(answer.value);
    target_hashes.push_back(transcript_hash(r.outputs, r.valid));
    served_min = std::min(
        served_min, static_cast<std::uint32_t>(r.served_nodes()));
    reply.used_exact_fallback |= r.used_exact_fallback;
  }
  reply.rounds = res.rounds;
  reply.served = served_min;
  // FNV-chain the per-target transcript hashes (not XOR: duplicated
  // targets have identical transcripts and would cancel).
  reply.transcript_hash = transcript_hash_counts(
      {target_hashes.data(), target_hashes.size()});
  return reply;
}

QueryReply QuantileService::run_exact(const QueryRequest& request,
                                      std::uint64_t /*seed*/) {
  ExactQuantileParams params = cfg_.exact;
  params.phi = request.phi;
  const ExactQuantileResult res =
      exact_quantile_keys(*engine_, instance_, params);
  QueryReply reply;
  reply.kind = QueryKind::kExactQuantile;
  reply.phi = request.phi;
  reply.answer = res.answer;
  reply.value = res.answer.value;
  reply.rounds = res.rounds;
  std::uint32_t served = 0;
  for (const bool b : res.valid) served += b ? 1 : 0;
  reply.served = served;
  reply.transcript_hash = transcript_hash(res.outputs, res.valid);
  return reply;
}

QueryReply QuantileService::run_rank(const QueryRequest& request,
                                     std::uint64_t /*seed*/) {
  session_.indicator_le(probe_key(request.value), indicator_a_);
  const CountResult res = gossip_count(*engine_, indicator_a_);
  QueryReply reply;
  reply.kind = QueryKind::kRank;
  reply.count = res.counts[0];
  reply.fraction = static_cast<double>(reply.count) /
                   static_cast<double>(instance_.size());
  reply.rounds = res.rounds;
  reply.served = static_cast<std::uint32_t>(instance_.size());
  reply.transcript_hash =
      transcript_hash_counts({res.counts.data(), res.counts.size()});
  return reply;
}

QueryReply QuantileService::run_cdf(const QueryRequest& request,
                                    std::uint64_t /*seed*/) {
  const std::size_t points = request.cdf_points.size();
  GQ_REQUIRE(points > 0, "kCdf needs at least one probe point");
  QueryReply reply;
  reply.kind = QueryKind::kCdf;
  reply.cdf_counts.reserve(points);
  std::uint64_t hash_acc = 0;
  // Three probes share one diffusion (gossip_count3); a two-probe tail
  // duplicates its last indicator (the duplicate diffuses for free in the
  // same shared-weight run), a one-probe tail runs the plain count.
  for (std::size_t p = 0; p < points;) {
    const std::size_t left = points - p;
    if (left == 1) {
      session_.indicator_le(probe_key(request.cdf_points[p]), indicator_a_);
      const CountResult res = gossip_count(*engine_, indicator_a_);
      reply.cdf_counts.push_back(res.counts[0]);
      reply.rounds += res.rounds;
      hash_acc ^= transcript_hash_counts({res.counts.data(),
                                          res.counts.size()});
      p += 1;
      continue;
    }
    session_.indicator_le(probe_key(request.cdf_points[p]), indicator_a_);
    session_.indicator_le(probe_key(request.cdf_points[p + 1]), indicator_b_);
    const bool full = left >= 3;
    session_.indicator_le(probe_key(request.cdf_points[full ? p + 2 : p + 1]),
                          indicator_c_);
    const TripleCountResult res =
        gossip_count3(*engine_, indicator_a_, indicator_b_, indicator_c_);
    reply.cdf_counts.push_back(res.a[0]);
    reply.cdf_counts.push_back(res.b[0]);
    if (full) reply.cdf_counts.push_back(res.c[0]);
    reply.rounds += res.rounds;
    hash_acc ^= transcript_hash_counts({res.a.data(), res.a.size()});
    hash_acc ^= transcript_hash_counts({res.b.data(), res.b.size()});
    if (full) hash_acc ^= transcript_hash_counts({res.c.data(), res.c.size()});
    p += full ? 3 : 2;
  }
  const double m = static_cast<double>(instance_.size());
  reply.cdf.reserve(points);
  for (const std::uint64_t c : reply.cdf_counts) {
    reply.cdf.push_back(static_cast<double>(c) / m);
  }
  reply.served = static_cast<std::uint32_t>(instance_.size());
  reply.transcript_hash = hash_acc;
  return reply;
}

std::span<const Key> QuantileService::epoch_keys() const {
  GQ_REQUIRE(epoch_ > 0, "no epoch sealed yet");
  return {instance_.data(), instance_.size()};
}

ServiceStats QuantileService::stats() const {
  ServiceStats s;
  s.epoch = epoch_;
  s.queries = queries_;
  s.ingested = ingested_;
  s.live_nodes = live_;
  s.contributing_nodes = static_cast<std::uint32_t>(contributors_.size());
  for (const auto& stream : streams_) {
    if (stream != nullptr) {
      s.max_node_items = std::max(s.max_node_items, stream->space());
    }
  }
  s.session_table_keys = session_.table().size();
  s.session_rebuilds = session_.rebuilds();
  s.session_extends = session_.extends();
  s.session_reuse_hits = session_.reuse_hits();
  s.engine_rebuilds = engine_rebuilds_;
  s.gossip_rounds = engine_ != nullptr ? engine_->metrics().rounds : 0;
  s.retry_attempts = retry_attempts_;
  s.degraded_answers = degraded_answers_;
  s.breaker_opens = breaker_opens_;
  return s;
}

const LogHistogram& QuantileService::query_latency(QueryKind kind) const {
  return query_latency_ns_[static_cast<std::size_t>(kind)];
}

std::string QuantileService::latency_summary() const {
  std::ostringstream os;
  char buf[192];
  for (std::size_t k = 0; k < query_latency_ns_.size(); ++k) {
    const LogHistogram& h = query_latency_ns_[k];
    if (h.total() == 0) continue;
    std::snprintf(buf, sizeof(buf),
                  "query %-14s n=%-8llu p50=%.3fms p90=%.3fms p99=%.3fms "
                  "p999=%.3fms max=%.3fms\n",
                  kQueryKindNames[k],
                  static_cast<unsigned long long>(h.total()),
                  static_cast<double>(h.quantile(0.5)) / 1e6,
                  static_cast<double>(h.quantile(0.9)) / 1e6,
                  static_cast<double>(h.quantile(0.99)) / 1e6,
                  static_cast<double>(h.quantile(0.999)) / 1e6,
                  static_cast<double>(h.max()) / 1e6);
    os << buf;
  }
  return os.str();
}

std::string QuantileService::prometheus_text() const {
  const ServiceStats s = stats();
  std::ostringstream os;
  os << "# TYPE gq_service_queries_total counter\n"
     << "gq_service_queries_total " << s.queries << "\n"
     << "# TYPE gq_service_ingested_total counter\n"
     << "gq_service_ingested_total " << s.ingested << "\n"
     << "# TYPE gq_service_epoch gauge\n"
     << "gq_service_epoch " << s.epoch << "\n"
     << "# TYPE gq_service_live_nodes gauge\n"
     << "gq_service_live_nodes " << s.live_nodes << "\n"
     << "# TYPE gq_service_gossip_rounds_total counter\n"
     << "gq_service_gossip_rounds_total " << s.gossip_rounds << "\n"
     << "# TYPE gq_service_retry_attempts_total counter\n"
     << "gq_service_retry_attempts_total " << s.retry_attempts << "\n"
     << "# TYPE gq_service_degraded_answers_total counter\n"
     << "gq_service_degraded_answers_total " << s.degraded_answers << "\n"
     << "# TYPE gq_service_breaker_opens_total counter\n"
     << "gq_service_breaker_opens_total " << s.breaker_opens << "\n";
  os << "# TYPE gq_service_breaker_state gauge\n";
  for (std::size_t k = 0; k < breakers_.size(); ++k) {
    // 0 = closed, 1 = open, 2 = half-open.
    os << "gq_service_breaker_state{kind=\"" << kQueryKindNames[k] << "\"} "
       << static_cast<int>(breakers_[k].state) << "\n";
  }
  os << "# TYPE gq_service_query_seconds summary\n";
  for (std::size_t k = 0; k < query_latency_ns_.size(); ++k) {
    const LogHistogram& h = query_latency_ns_[k];
    if (h.total() == 0) continue;
    for (const double q : {0.5, 0.9, 0.99, 0.999}) {
      os << "gq_service_query_seconds{kind=\"" << kQueryKindNames[k]
         << "\",quantile=\"" << q << "\"} "
         << static_cast<double>(h.quantile(q)) / 1e9 << "\n";
    }
    os << "gq_service_query_seconds_count{kind=\"" << kQueryKindNames[k]
       << "\"} " << h.total() << "\n";
  }
  return os.str();
}

}  // namespace gq
