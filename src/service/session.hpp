// The service's persistent interned session: the bridge between sealed
// epochs and the engine's compact rank-lane kernels.
//
// Every sealed epoch produces a one-key-per-node gossip instance.  The
// session keeps that instance interned — a sorted distinct-key table plus a
// 32-bit rank lane per node (sim/key_intern.hpp) — and maintains it
// *incrementally* across epochs: keys that appeared this epoch are merged
// into the existing table (KeyInterner::extend) instead of re-sorting the
// whole instance, so a steady-traffic epoch advance costs O(m log d)
// binary searches rather than an O(m log m) sort.  Keys retired by an
// epoch stay in the table as stale-but-harmless entries (rank order is
// still key order; see key_intern.hpp); once the table outgrows the
// instance by the configured factor, the next update compacts it with one
// full re-intern.
//
// The session is what makes warm queries cheap twice over:
//   * engine hand-off — adopt_intern_session seeds the kernels' verify-
//     checked session from the table/lanes here, skipping the per-query
//     intern sort;
//   * rank/CDF indicators — "key_v <= probe" is the integer compare
//     lane[v] < count_le(probe) against one binary search, never a
//     Key-typed scan.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/key.hpp"
#include "sim/key_intern.hpp"

namespace gq {

class EpochSession {
 public:
  // Re-bases the session on a sealed epoch's instance (keys[i] belongs to
  // contributor slot i).  Chooses extend vs rebuild internally; after the
  // call, lanes()/table() encode exactly `instance`.
  void update(std::span<const Key> instance, std::uint32_t compact_factor);

  [[nodiscard]] std::span<const Key> table() const noexcept {
    return interner_.table();
  }
  [[nodiscard]] std::span<const std::uint32_t> lanes() const noexcept {
    return {lanes_.data(), lanes_.size()};
  }

  // indicator[i] = (instance key i <= probe), computed lane-wise.
  void indicator_le(const Key& probe, std::vector<bool>& indicator) const;

  // Session trajectory counters (observability; surfaced in ServiceStats).
  [[nodiscard]] std::uint64_t rebuilds() const noexcept { return rebuilds_; }
  [[nodiscard]] std::uint64_t extends() const noexcept { return extends_; }
  [[nodiscard]] std::uint64_t reuse_hits() const noexcept {
    return reuse_hits_;
  }

 private:
  KeyInterner interner_;
  std::vector<std::uint32_t> lanes_;
  std::vector<Key> added_;  // per-update scratch: keys new to the table
  bool warm_ = false;
  std::uint64_t rebuilds_ = 0;   // full intern sorts paid
  std::uint64_t extends_ = 0;    // incremental merges paid
  std::uint64_t reuse_hits_ = 0; // updates with no new distinct keys at all
};

}  // namespace gq
