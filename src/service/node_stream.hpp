// Per-node ingest state: an append-only value stream held as a bounded
// mergeable summary (sketch/summary.hpp) plus the exact stream cardinality.
//
// The summary type is a template parameter constrained by QuantileSummary,
// so alternative summaries (a CKMS/GK sketch, a plain CompactingBuffer
// hierarchy) can slot in without touching the service; the service's
// concrete instantiation is KllSketch.
#pragma once

#include <cstdint>
#include <span>
#include <utility>

#include "sim/key.hpp"
#include "sketch/summary.hpp"
#include "util/rng.hpp"

namespace gq {

template <QuantileSummary S>
class NodeStream {
 public:
  // `seed` drives the summary's internal randomness; the stream's state is
  // a pure function of (seed, ingest sequence).
  explicit NodeStream(std::size_t sketch_k, std::uint64_t seed)
      : summary_(sketch_k, seed) {}

  void ingest(double value) {
    // Ingested values are tie-broken by their position in THIS node's
    // stream, so equal values from one stream stay distinct inside the
    // summary (the cross-node distinctness the protocols need is
    // re-established by the epoch instance builder, which re-ids keys by
    // contributor slot).
    summary_.insert(Key{value, static_cast<std::uint32_t>(ingested_ &
                                                          0xffffffffu),
                        0});
    ++ingested_;
  }

  void ingest(std::span<const double> values) {
    for (const double v : values) ingest(v);
  }

  // The stream's local phi-quantile per its summary.
  [[nodiscard]] Key local_quantile(double phi) const {
    return summary_.quantile(phi);
  }

  [[nodiscard]] const S& summary() const noexcept { return summary_; }
  [[nodiscard]] std::uint64_t ingested() const noexcept { return ingested_; }
  [[nodiscard]] bool empty() const noexcept { return ingested_ == 0; }
  [[nodiscard]] std::size_t space() const noexcept { return summary_.space(); }

 private:
  S summary_;
  std::uint64_t ingested_ = 0;
};

}  // namespace gq
