// Message codecs for every payload the protocols exchange.  Each codec's
// encoded_bits() is the exact wire size; tests assert these stay within the
// (deliberately conservative) sizes the simulator's Metrics account, so the
// round/bit tables in the benches are upper bounds on real traffic.
#pragma once

#include <cstdint>

#include "sim/key.hpp"
#include "wire/bits.hpp"

namespace gq {

// Keys: 2-bit kind tag (finite / +inf / -inf), 64-bit value, ceil(lg n)-bit
// node id, and a duplication tag encoded as (iteration, node) with 8 bits
// of iteration — everything the exact algorithm ever generates, in
// O(log n) bits total.
class KeyCodec {
 public:
  explicit KeyCodec(std::uint32_t n) : n_(n), id_bits_(field_width(n)) {
    GQ_REQUIRE(n >= 2, "codec needs a network of at least two nodes");
  }

  [[nodiscard]] std::uint64_t encoded_bits() const noexcept {
    return 2 + 64 + id_bits_ + (kIterBits + id_bits_);
  }

  void encode(const Key& k, BitWriter& w) const {
    if (!k.is_finite()) {
      w.write_bits(k == Key::infinite() ? 1 : 2, 2);
      return;
    }
    w.write_bits(0, 2);
    w.write_double(k.value);
    GQ_REQUIRE(k.id < n_, "key id out of range for this network");
    w.write_bits(k.id, id_bits_);
    const std::uint64_t iter = k.tag >> 32;
    const std::uint64_t node = k.tag & 0xffffffffull;
    GQ_REQUIRE(iter < (1ull << kIterBits),
               "duplication tag iteration exceeds the wire budget");
    GQ_REQUIRE(node < n_ || k.tag == 0, "duplication tag node out of range");
    w.write_bits(iter, kIterBits);
    w.write_bits(node, id_bits_);
  }

  [[nodiscard]] Key decode(BitReader& r) const {
    const std::uint64_t kind = r.read_bits(2);
    if (kind == 1) return Key::infinite();
    if (kind == 2) return Key::neg_infinite();
    Key k;
    k.value = r.read_double();
    k.id = static_cast<std::uint32_t>(r.read_bits(id_bits_));
    const std::uint64_t iter = r.read_bits(kIterBits);
    const std::uint64_t node = r.read_bits(id_bits_);
    k.tag = (iter << 32) | node;
    return k;
  }

 private:
  static constexpr unsigned kIterBits = 8;
  std::uint32_t n_;
  unsigned id_bits_;
};

// Push-sum messages: two IEEE doubles (value mass, weight mass).
struct PushSumMessage {
  double s = 0.0;
  double w = 0.0;
};

class PushSumCodec {
 public:
  [[nodiscard]] static constexpr std::uint64_t encoded_bits() noexcept {
    return 128;
  }
  static void encode(const PushSumMessage& m, BitWriter& w) {
    w.write_double(m.s);
    w.write_double(m.w);
  }
  [[nodiscard]] static PushSumMessage decode(BitReader& r) {
    PushSumMessage m;
    m.s = r.read_double();
    m.w = r.read_double();
    return m;
  }
};

// Token messages (Algorithm 3 Step 7): a key plus a power-of-two weight,
// shipped as its exponent in 6 bits (weights never exceed 2^63).
struct TokenMessage {
  Key key;
  std::uint64_t weight = 1;
};

class TokenCodec {
 public:
  explicit TokenCodec(std::uint32_t n) : key_codec_(n) {}

  [[nodiscard]] std::uint64_t encoded_bits() const noexcept {
    return key_codec_.encoded_bits() + 6;
  }

  void encode(const TokenMessage& t, BitWriter& w) const {
    GQ_REQUIRE(t.weight >= 1 && (t.weight & (t.weight - 1)) == 0,
               "token weight must be a power of two");
    key_codec_.encode(t.key, w);
    unsigned exponent = 0;
    while ((1ull << exponent) < t.weight) ++exponent;
    w.write_bits(exponent, 6);
  }

  [[nodiscard]] TokenMessage decode(BitReader& r) const {
    TokenMessage t;
    t.key = key_codec_.decode(r);
    t.weight = 1ull << r.read_bits(6);
    return t;
  }

 private:
  KeyCodec key_codec_;
};

// Pivot-sampling messages: a 64-bit priority plus a key.
struct PriorityMessage {
  std::uint64_t priority = 0;
  Key key;
};

class PriorityCodec {
 public:
  explicit PriorityCodec(std::uint32_t n) : key_codec_(n) {}

  [[nodiscard]] std::uint64_t encoded_bits() const noexcept {
    return 64 + key_codec_.encoded_bits();
  }

  void encode(const PriorityMessage& m, BitWriter& w) const {
    w.write_bits(m.priority, 64);
    key_codec_.encode(m.key, w);
  }

  [[nodiscard]] PriorityMessage decode(BitReader& r) const {
    PriorityMessage m;
    m.priority = r.read_bits(64);
    m.key = key_codec_.decode(r);
    return m;
  }

 private:
  KeyCodec key_codec_;
};

}  // namespace gq
