// Bit-level serialization: the wire format grounding the model's
// "O(log n)-bit message" accounting in actual encodable bytes.
//
// BitWriter packs values LSB-first into a byte buffer; BitReader replays
// them.  Both are deliberately minimal: fixed-width fields only, no
// alignment, no endianness concerns beyond the in-memory layout (this is a
// simulation wire format, not a network ABI).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "util/require.hpp"

namespace gq {

class BitWriter {
 public:
  // Appends the low `bits` bits of `value` (bits in [0, 64]).
  void write_bits(std::uint64_t value, unsigned bits) {
    GQ_REQUIRE(bits <= 64, "cannot write more than 64 bits at once");
    for (unsigned i = 0; i < bits; ++i) {
      const bool bit = (value >> i) & 1u;
      const std::size_t byte = bit_count_ / 8;
      if (byte >= buf_.size()) buf_.push_back(0);
      if (bit) buf_[byte] |= static_cast<std::uint8_t>(1u << (bit_count_ % 8));
      ++bit_count_;
    }
  }

  // IEEE-754 doubles travel as their 64-bit pattern.
  void write_double(double x) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &x, sizeof(bits));
    write_bits(bits, 64);
  }

  [[nodiscard]] std::size_t bit_count() const noexcept { return bit_count_; }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return buf_;
  }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t bit_count_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint64_t read_bits(unsigned bits) {
    GQ_REQUIRE(bits <= 64, "cannot read more than 64 bits at once");
    GQ_REQUIRE(cursor_ + bits <= bytes_.size() * 8,
               "read past the end of the buffer");
    std::uint64_t value = 0;
    for (unsigned i = 0; i < bits; ++i) {
      const std::size_t pos = cursor_ + i;
      const bool bit = (bytes_[pos / 8] >> (pos % 8)) & 1u;
      if (bit) value |= (1ull << i);
    }
    cursor_ += bits;
    return value;
  }

  [[nodiscard]] double read_double() {
    const std::uint64_t bits = read_bits(64);
    double x = 0.0;
    std::memcpy(&x, &bits, sizeof(x));
    return x;
  }

  [[nodiscard]] std::size_t bits_consumed() const noexcept { return cursor_; }
  [[nodiscard]] std::size_t bits_remaining() const noexcept {
    return bytes_.size() * 8 - cursor_;
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t cursor_ = 0;
};

// Width in bits of the smallest field holding values in [0, n).
[[nodiscard]] constexpr unsigned field_width(std::uint64_t n) noexcept {
  unsigned w = 1;
  while ((1ull << w) < n) ++w;
  return w;
}

}  // namespace gq
