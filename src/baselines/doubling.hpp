// The Appendix-A doubling algorithms.
//
// Plain doubling (Lemma A.2): each node seeds a buffer with one random
// value, then every round unions its buffer with a random peer's.  Buffer
// size doubles per round, so Theta(log(log n / eps^2)) rounds build an
// Omega(log n / eps^2)-sample — but messages grow to
// Theta(log^2 n / eps^2) bits.
//
// Compaction doubling (Appendix A.1, Theorem A.6): same protocol but the
// buffer is a CompactingBuffer of capacity k = Theta((1/eps)(log log n +
// log 1/eps)); every merge that overflows compacts, doubling item weights.
// Messages shrink to O(k log n) bits at the cost of a bounded additional
// rank error (Corollary A.4).
#pragma once

#include <span>

#include "sim/key.hpp"
#include "sim/network.hpp"

namespace gq {

struct DoublingParams {
  double phi = 0.5;
  double eps = 0.1;
  // Target sample size |S| = ceil(c * ln(n) / eps^2).
  double sample_constant = 3.0;
};

struct DoublingResult {
  std::vector<Key> outputs;
  std::uint64_t rounds = 0;
  std::size_t final_buffer_size = 0;      // keys stored per node at the end
  std::uint64_t max_message_bits = 0;     // largest message shipped
};

// Plain doubling.  Memory warning: every node stores the full sample, so
// total memory is n * target keys; keep n moderate.
[[nodiscard]] DoublingResult doubling_quantile(Network& net,
                                               std::span<const double> values,
                                               const DoublingParams& params);

[[nodiscard]] DoublingResult doubling_quantile_keys(
    Network& net, std::span<const Key> keys, const DoublingParams& params);

struct CompactionParams {
  double phi = 0.5;
  double eps = 0.1;
  double sample_constant = 3.0;  // same target sample size as doubling
  // Buffer capacity multiplier: capacity = ceil(c_k / eps *
  // (log2 log2 n + log2(1/eps))), forced even and >= 8.
  double capacity_constant = 4.0;
};

[[nodiscard]] DoublingResult compaction_quantile(
    Network& net, std::span<const double> values,
    const CompactionParams& params);

[[nodiscard]] DoublingResult compaction_quantile_keys(
    Network& net, std::span<const Key> keys, const CompactionParams& params);

}  // namespace gq
