#include "baselines/sampling.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"
#include "workload/tiebreak.hpp"

namespace gq {

SamplingResult sampling_quantile_keys(Network& net, std::span<const Key> keys,
                                      const SamplingParams& params) {
  const std::uint32_t n = net.size();
  GQ_REQUIRE(keys.size() == n, "one key per node required");
  GQ_REQUIRE(params.phi >= 0.0 && params.phi <= 1.0, "phi must lie in [0,1]");
  GQ_REQUIRE(params.eps > 0.0 && params.eps < 0.5,
             "eps must lie in (0, 1/2)");

  const auto z = static_cast<std::size_t>(
      std::ceil(params.sample_constant * std::log(static_cast<double>(n)) /
                (params.eps * params.eps)));
  const std::uint64_t bits = key_bits(n);

  SamplingResult out;
  out.sample_size = z;
  std::vector<std::vector<Key>> samples(n);
  for (auto& s : samples) s.reserve(z);
  for (std::size_t r = 0; r < z; ++r) {
    net.begin_round();
    ++out.rounds;
    for (std::uint32_t v = 0; v < n; ++v) {
      if (net.node_fails(v)) {
        net.record_failed_operation();
        continue;
      }
      SplitMix64 stream = net.node_stream(v);
      samples[v].push_back(keys[net.sample_peer(v, stream)]);
      net.record_message(bits);
    }
  }

  out.outputs.resize(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    auto& s = samples[v];
    GQ_REQUIRE(!s.empty(), "a node collected no samples (all rounds failed)");
    std::sort(s.begin(), s.end());
    auto rank = static_cast<std::size_t>(
        std::ceil(params.phi * static_cast<double>(s.size())));
    rank = std::clamp<std::size_t>(rank, 1, s.size());
    out.outputs[v] = s[rank - 1];
  }
  return out;
}

SamplingResult sampling_quantile(Network& net, std::span<const double> values,
                                 const SamplingParams& params) {
  const std::vector<Key> keys = make_keys(values);
  return sampling_quantile_keys(net, keys, params);
}

}  // namespace gq
