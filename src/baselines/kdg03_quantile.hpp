// The Kempe-Dobra-Gehrke (FOCS'03) exact quantile baseline: classic
// randomized selection [Hoa61, FR75] implemented over gossip primitives.
//
// Each phase draws a uniformly random pivot among the remaining candidates
// (priority spreading), counts its exact rank with push-sum, and halves the
// candidate interval.  O(log n) phases of O(log n) rounds each =
// O(log^2 n) rounds w.h.p. — the bound Theorem 1.1 improves quadratically.
#pragma once

#include <span>

#include "core/result.hpp"
#include "sim/network.hpp"

namespace gq {

struct Kdg03Params {
  double phi = 0.5;
  std::uint32_t max_phases = 512;  // safety cap; ~log n phases expected
};

struct Kdg03Result {
  Key answer;
  std::vector<Key> outputs;  // per-node copy of the answer
  std::uint64_t rounds = 0;
  std::size_t phases = 0;
};

[[nodiscard]] Kdg03Result kdg03_exact_quantile(Network& net,
                                               std::span<const double> values,
                                               const Kdg03Params& params);

[[nodiscard]] Kdg03Result kdg03_exact_quantile_keys(
    Network& net, std::span<const Key> keys, const Kdg03Params& params);

}  // namespace gq
