// A gossip adaptation of Frugal-1U streaming quantile estimation
// (Ma-Muthukrishnan-Sandler, cited in the paper's related work): every node
// keeps one scalar estimate and nudges it by a fixed step when a sampled
// value lies above/below it, with probabilities phi / (1-phi).
//
// O(1) state and O(log n)-bit messages — but the random walk needs
// Omega(range/step + 1/eps^2) samples to settle, so it is round-expensive
// and offers no w.h.p. guarantee.  Included as the "minimal state" corner
// of the design space bench_dynamics maps.
#pragma once

#include <span>

#include "sim/network.hpp"

namespace gq {

struct FrugalParams {
  double phi = 0.5;
  // Rounds of sampling; 0 = 32 * log2(n) (heuristic: enough for the walk
  // to mix on moderate ranges).
  std::uint64_t rounds = 0;
  // Step size; 0 = (max - min) / 256 estimated from the node's first
  // samples (a deployment would configure this from domain knowledge).
  double step = 0.0;
};

struct FrugalResult {
  // Per-node scalar estimates — unlike the paper's algorithms these are
  // NOT necessarily input values.
  std::vector<double> estimates;
  std::uint64_t rounds = 0;
};

[[nodiscard]] FrugalResult frugal_quantile(Network& net,
                                           std::span<const double> values,
                                           const FrugalParams& params);

}  // namespace gq
