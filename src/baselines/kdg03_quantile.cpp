#include "baselines/kdg03_quantile.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "agg/rank_count.hpp"
#include "core/pivot.hpp"
#include "util/require.hpp"
#include "workload/tiebreak.hpp"

namespace gq {

Kdg03Result kdg03_exact_quantile_keys(Network& net, std::span<const Key> keys,
                                      const Kdg03Params& params) {
  const std::uint32_t n = net.size();
  GQ_REQUIRE(keys.size() == n, "one key per node required");
  GQ_REQUIRE(params.phi >= 0.0 && params.phi <= 1.0, "phi must lie in [0,1]");

  const auto nd = static_cast<double>(n);
  const std::uint64_t k = std::clamp<std::uint64_t>(
      static_cast<std::uint64_t>(std::ceil(params.phi * nd)), 1, n);
  const Metrics before = net.metrics();

  Kdg03Result out;
  Key lo = Key::neg_infinite();
  Key hi = Key::infinite();
  std::vector<bool> candidate(n);
  for (std::uint32_t phase = 0; phase < params.max_phases; ++phase) {
    for (std::uint32_t v = 0; v < n; ++v) {
      candidate[v] = lo < keys[v] && keys[v] < hi;
    }
    const PivotSample pv = sample_uniform_candidate(net, keys, candidate);
    if (!pv.found) {
      throw std::runtime_error("kdg03: no candidates left without a hit");
    }
    ++out.phases;
    const std::uint64_t rank = gossip_rank(net, keys, pv.pivot).counts[0];
    if (rank == k) {
      out.answer = pv.pivot;
      out.outputs.assign(n, pv.pivot);
      out.rounds = net.metrics().rounds - before.rounds;
      return out;
    }
    if (rank > k) {
      hi = pv.pivot;
    } else {
      lo = pv.pivot;
    }
  }
  throw std::runtime_error("kdg03 selection did not converge");
}

Kdg03Result kdg03_exact_quantile(Network& net, std::span<const double> values,
                                 const Kdg03Params& params) {
  const std::vector<Key> keys = make_keys(values);
  return kdg03_exact_quantile_keys(net, keys, params);
}

}  // namespace gq
