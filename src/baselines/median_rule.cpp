#include "baselines/median_rule.hpp"

#include <bit>

#include "util/require.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

const Key& median3(const Key& a, const Key& b, const Key& c) {
  if (a < b) {
    if (b < c) return b;
    return a < c ? c : a;
  }
  if (a < c) return a;
  return b < c ? c : b;
}

}  // namespace

MedianRuleResult median_rule_keys(Network& net, std::span<const Key> keys,
                                  const MedianRuleParams& params) {
  const std::uint32_t n = net.size();
  GQ_REQUIRE(keys.size() == n, "one key per node required");

  std::uint64_t iterations = params.iterations;
  if (iterations == 0) {
    iterations = 4 * static_cast<std::uint64_t>(
                         std::bit_width(static_cast<std::uint64_t>(n) - 1));
  }
  const std::uint64_t bits = key_bits(n);

  MedianRuleResult out;
  out.iterations = iterations;
  std::vector<Key> cur(keys.begin(), keys.end());
  std::vector<Key> next(n);
  std::vector<std::uint32_t> first(n, Network::kNoPeer);
  for (std::uint64_t it = 0; it < iterations; ++it) {
    // Two pulls per iteration, both reading the iteration-start snapshot.
    net.begin_round();
    ++out.rounds;
    for (std::uint32_t v = 0; v < n; ++v) {
      first[v] = Network::kNoPeer;
      if (net.node_fails(v)) {
        net.record_failed_operation();
        continue;
      }
      SplitMix64 stream = net.node_stream(v);
      first[v] = net.sample_peer(v, stream);
      net.record_message(bits);
    }
    net.begin_round();
    ++out.rounds;
    for (std::uint32_t v = 0; v < n; ++v) {
      next[v] = cur[v];
      if (first[v] == Network::kNoPeer) continue;  // lost the whole iteration
      if (net.node_fails(v)) {
        net.record_failed_operation();
        continue;
      }
      SplitMix64 stream = net.node_stream(v);
      const std::uint32_t second = net.sample_peer(v, stream);
      net.record_message(bits);
      next[v] = median3(cur[v], cur[first[v]], cur[second]);
    }
    cur.swap(next);
  }
  out.outputs = std::move(cur);
  return out;
}

MedianRuleResult median_rule(Network& net, std::span<const double> values,
                             const MedianRuleParams& params) {
  const std::vector<Key> keys = make_keys(values);
  return median_rule_keys(net, keys, params);
}

}  // namespace gq
