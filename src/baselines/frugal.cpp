#include "baselines/frugal.hpp"

#include <algorithm>
#include <bit>

#include "util/require.hpp"

namespace gq {

FrugalResult frugal_quantile(Network& net, std::span<const double> values,
                             const FrugalParams& params) {
  const std::uint32_t n = net.size();
  GQ_REQUIRE(values.size() == n, "one value per node required");
  GQ_REQUIRE(params.phi >= 0.0 && params.phi <= 1.0, "phi must lie in [0,1]");
  GQ_REQUIRE(params.step >= 0.0, "step must be non-negative");

  std::uint64_t rounds = params.rounds;
  if (rounds == 0) {
    rounds = 32 * static_cast<std::uint64_t>(
                      std::bit_width(static_cast<std::uint64_t>(n) - 1));
  }
  const std::uint64_t bits = 64;  // one value per message

  FrugalResult out;
  out.rounds = rounds;
  std::vector<double> est(values.begin(), values.end());
  std::vector<double> step(n, params.step);
  // Warm-up phase for automatic step sizing: 8 rounds of sampling to
  // estimate the value range per node.
  std::vector<double> lo(values.begin(), values.end());
  std::vector<double> hi(values.begin(), values.end());
  std::uint64_t warmup = params.step > 0.0 ? 0 : std::min<std::uint64_t>(8, rounds);
  for (std::uint64_t r = 0; r < warmup; ++r) {
    net.begin_round();
    for (std::uint32_t v = 0; v < n; ++v) {
      if (net.node_fails(v)) {
        net.record_failed_operation();
        continue;
      }
      SplitMix64 stream = net.node_stream(v);
      const double x = values[net.sample_peer(v, stream)];
      net.record_message(bits);
      lo[v] = std::min(lo[v], x);
      hi[v] = std::max(hi[v], x);
    }
  }
  if (params.step == 0.0) {
    for (std::uint32_t v = 0; v < n; ++v) {
      step[v] = std::max((hi[v] - lo[v]) / 256.0, 1e-12);
    }
  }

  for (std::uint64_t r = warmup; r < rounds; ++r) {
    net.begin_round();
    for (std::uint32_t v = 0; v < n; ++v) {
      if (net.node_fails(v)) {
        net.record_failed_operation();
        continue;
      }
      SplitMix64 stream = net.node_stream(v);
      const double x = values[net.sample_peer(v, stream)];
      net.record_message(bits);
      // Frugal-1U: move towards the sample with quantile-biased coins.
      if (x > est[v]) {
        if (rand_bernoulli(stream, params.phi)) est[v] += step[v];
      } else if (x < est[v]) {
        if (rand_bernoulli(stream, 1.0 - params.phi)) est[v] -= step[v];
      }
    }
  }
  out.estimates = std::move(est);
  return out;
}

}  // namespace gq
