#include "baselines/doubling.hpp"

#include <algorithm>
#include <cmath>

#include "sketch/compactor.hpp"
#include "util/require.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

std::size_t target_sample_size(std::uint32_t n, double eps, double c) {
  return static_cast<std::size_t>(
      std::ceil(c * std::log(static_cast<double>(n)) / (eps * eps)));
}

Key buffer_quantile(std::vector<Key>& buf, double phi) {
  GQ_REQUIRE(!buf.empty(), "quantile of an empty buffer");
  std::sort(buf.begin(), buf.end());
  auto rank = static_cast<std::size_t>(
      std::ceil(phi * static_cast<double>(buf.size())));
  rank = std::clamp<std::size_t>(rank, 1, buf.size());
  return buf[rank - 1];
}

}  // namespace

DoublingResult doubling_quantile_keys(Network& net, std::span<const Key> keys,
                                      const DoublingParams& params) {
  const std::uint32_t n = net.size();
  GQ_REQUIRE(keys.size() == n, "one key per node required");
  GQ_REQUIRE(params.phi >= 0.0 && params.phi <= 1.0, "phi must lie in [0,1]");
  GQ_REQUIRE(params.eps > 0.0 && params.eps < 0.5,
             "eps must lie in (0, 1/2)");
  GQ_REQUIRE(net.failures().never_fails(),
             "the Appendix-A doubling algorithms assume the failure-free "
             "model (the paper gives no robust variant)");

  const std::size_t target =
      target_sample_size(n, params.eps, params.sample_constant);
  const std::uint64_t kb = key_bits(n);

  DoublingResult out;
  // Seeding round: S_v(0) = { x_{t0(v)} } for a uniformly random t0(v).
  std::vector<std::vector<Key>> buf(n);
  {
    const std::vector<std::uint32_t> peers = net.pull_round(kb);
    ++out.rounds;
    for (std::uint32_t v = 0; v < n; ++v) {
      const std::uint32_t p =
          peers[v] == Network::kNoPeer ? v : peers[v];  // failed: own value
      buf[v].push_back(keys[p]);
    }
  }

  // Doubling rounds: union with a random peer's buffer.
  while (buf.front().size() < target) {
    net.begin_round();
    ++out.rounds;
    std::vector<std::vector<Key>> next = buf;
    for (std::uint32_t v = 0; v < n; ++v) {
      if (net.node_fails(v)) {
        net.record_failed_operation();
        continue;
      }
      SplitMix64 stream = net.node_stream(v);
      const std::uint32_t p = net.sample_peer(v, stream);
      const std::uint64_t bits = buf[p].size() * kb;
      net.record_message(bits);
      if (bits > out.max_message_bits) out.max_message_bits = bits;
      next[v].insert(next[v].end(), buf[p].begin(), buf[p].end());
    }
    buf = std::move(next);
  }

  out.final_buffer_size = buf.front().size();
  out.outputs.resize(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    out.outputs[v] = buffer_quantile(buf[v], params.phi);
  }
  return out;
}

DoublingResult doubling_quantile(Network& net, std::span<const double> values,
                                 const DoublingParams& params) {
  const std::vector<Key> keys = make_keys(values);
  return doubling_quantile_keys(net, keys, params);
}

DoublingResult compaction_quantile_keys(Network& net,
                                        std::span<const Key> keys,
                                        const CompactionParams& params) {
  const std::uint32_t n = net.size();
  GQ_REQUIRE(keys.size() == n, "one key per node required");
  GQ_REQUIRE(params.phi >= 0.0 && params.phi <= 1.0, "phi must lie in [0,1]");
  GQ_REQUIRE(params.eps > 0.0 && params.eps < 0.5,
             "eps must lie in (0, 1/2)");
  GQ_REQUIRE(net.failures().never_fails(),
             "the Appendix-A doubling algorithms assume the failure-free "
             "model (the paper gives no robust variant)");

  const std::size_t target =
      target_sample_size(n, params.eps, params.sample_constant);
  const double loglog =
      std::log2(std::max(2.0, std::log2(static_cast<double>(n))));
  std::size_t capacity = static_cast<std::size_t>(
      std::ceil(params.capacity_constant / params.eps *
                (loglog + std::log2(1.0 / params.eps))));
  capacity = std::max<std::size_t>(8, capacity + (capacity & 1));  // even
  const std::uint64_t kb = key_bits(n);

  DoublingResult out;
  std::vector<CompactingBuffer> buf(n, CompactingBuffer(capacity));
  {
    const std::vector<std::uint32_t> peers = net.pull_round(kb);
    ++out.rounds;
    for (std::uint32_t v = 0; v < n; ++v) {
      const std::uint32_t p =
          peers[v] == Network::kNoPeer ? v : peers[v];
      buf[v].add(keys[p]);
    }
  }

  // Represented mass doubles per round until the buffers summarize `target`
  // samples (all buffers stay in lockstep: same weight, same mass).
  while (buf.front().total_weight() < target) {
    net.begin_round();
    ++out.rounds;
    std::vector<CompactingBuffer> next = buf;
    for (std::uint32_t v = 0; v < n; ++v) {
      if (net.node_fails(v)) {
        net.record_failed_operation();
        continue;
      }
      SplitMix64 stream = net.node_stream(v);
      const std::uint32_t p = net.sample_peer(v, stream);
      const std::uint64_t bits = buf[p].size() * kb;
      net.record_message(bits);
      if (bits > out.max_message_bits) out.max_message_bits = bits;
      const bool keep_odd = rand_bernoulli(stream, 0.5);
      next[v] = CompactingBuffer::merged(buf[v], buf[p], keep_odd);
    }
    buf = std::move(next);
  }

  out.final_buffer_size = buf.front().size();
  out.outputs.resize(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    out.outputs[v] = buf[v].quantile(params.phi);
  }
  return out;
}

DoublingResult compaction_quantile(Network& net,
                                   std::span<const double> values,
                                   const CompactionParams& params) {
  const std::vector<Key> keys = make_keys(values);
  return compaction_quantile_keys(net, keys, params);
}

}  // namespace gq
