// The Doerr-Goldberg-Minder-Sauerwald-Scheideler median rule (SPAA'11),
// cited by the paper as the strongest prior gossip dynamics for the median:
// in each iteration every node samples two random values and replaces its
// own with the median of {own, sample1, sample2}.  O(log n) iterations
// converge to a +-O(sqrt(log n / n)) approximation of the MEDIAN — but the
// rule has no mechanism for general phi, no schedule to stop early at a
// requested eps, and no final amplification step.
//
// Provided as a baseline so bench_dynamics can show what the paper's
// 2-TOURNAMENT shift + scheduled 3-TOURNAMENT add on top of raw dynamics.
#pragma once

#include <span>

#include "sim/key.hpp"
#include "sim/network.hpp"

namespace gq {

struct MedianRuleParams {
  // Number of median-rule iterations (2 pull rounds each); 0 = the
  // paper-suggested c*log2(n) with c = 4.
  std::uint64_t iterations = 0;
};

struct MedianRuleResult {
  std::vector<Key> outputs;     // per-node final value
  std::uint64_t iterations = 0;
  std::uint64_t rounds = 0;
};

[[nodiscard]] MedianRuleResult median_rule(Network& net,
                                           std::span<const double> values,
                                           const MedianRuleParams& params);

[[nodiscard]] MedianRuleResult median_rule_keys(Network& net,
                                                std::span<const Key> keys,
                                                const MedianRuleParams& params);

}  // namespace gq
