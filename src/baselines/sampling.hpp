// Direct-sampling baseline (paper Section 1 / Appendix A, Lemma A.1): each
// node pulls one uniformly random value per round for Theta(log n / eps^2)
// rounds and answers with the empirical phi-quantile of its sample.
// Simple, O(log n)-bit messages, but quadratically slower in 1/eps than
// the tournament pipeline.
#pragma once

#include <span>

#include "sim/key.hpp"
#include "sim/network.hpp"

namespace gq {

struct SamplingParams {
  double phi = 0.5;
  double eps = 0.1;
  // Sample size multiplier c in |S| = ceil(c * ln(n) / eps^2).
  double sample_constant = 3.0;
};

struct SamplingResult {
  std::vector<Key> outputs;       // per-node empirical quantile
  std::uint64_t rounds = 0;       // == per-node sample size
  std::size_t sample_size = 0;
};

[[nodiscard]] SamplingResult sampling_quantile(Network& net,
                                               std::span<const double> values,
                                               const SamplingParams& params);

[[nodiscard]] SamplingResult sampling_quantile_keys(
    Network& net, std::span<const Key> keys, const SamplingParams& params);

}  // namespace gq
