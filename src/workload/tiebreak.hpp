// Conversion between application values (doubles, ties allowed) and the
// distinct Keys the protocols operate on.
#pragma once

#include <span>
#include <vector>

#include "sim/key.hpp"

namespace gq {

// Wraps each value into a Key tie-broken by node id.  The i-th key belongs
// to node i.  Resulting keys are pairwise distinct whenever ids are.
[[nodiscard]] std::vector<Key> make_keys(std::span<const double> values);

// Projects keys back to application values.
[[nodiscard]] std::vector<double> key_values(std::span<const Key> keys);

}  // namespace gq
