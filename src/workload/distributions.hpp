// Workload generators: value distributions assigned to the n nodes.
//
// The gossip protocols are comparison-based, so only the rank structure of
// the input matters; these generators cover the interesting rank structures:
// distinct permutations, continuous distributions, heavy ties, clusters and
// adversarially ordered inputs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace gq {

enum class Distribution {
  kUniformPermutation,  // a random permutation of {1..n}: distinct integers
  kUniformReal,         // i.i.d. Uniform[0,1)
  kGaussian,            // i.i.d. Normal(0,1)
  kExponential,         // i.i.d. Exp(1): skewed
  kZipf,                // i.i.d. Zipf(s=1.2) over {1..n}: heavy ties + skew
  kBimodal,             // mixture of two well-separated Gaussians
  kClustered,           // 8 tight clusters: near-ties within clusters
  kConstant,            // all values equal: the pure-tie stress case
  kDuplicateHeavy,      // values drawn from a tiny domain {0..9}
  kSortedAscending,     // v_i = i: deterministic, id-correlated assignment
};

// All distributions, for parameterized sweeps.
[[nodiscard]] const std::vector<Distribution>& all_distributions();

[[nodiscard]] std::string to_string(Distribution d);

// Generates the per-node input values for a network of size n.
[[nodiscard]] std::vector<double> generate_values(Distribution d,
                                                  std::size_t n,
                                                  std::uint64_t seed);

}  // namespace gq
