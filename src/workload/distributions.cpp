#include "workload/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace gq {
namespace {

// Standard normal via Box-Muller on our generator (std::normal_distribution
// is not reproducible across standard library implementations).
double standard_normal(Rng& rng) {
  const double u1 = std::max(rand_double(rng), 1e-300);
  const double u2 = rand_double(rng);
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

// Zipf(s) over {1..n} by inversion on the truncated zeta CDF.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s) : cdf_(n) {
    double sum = 0.0;
    for (std::size_t k = 1; k <= n; ++k) {
      sum += 1.0 / std::pow(static_cast<double>(k), s);
      cdf_[k - 1] = sum;
    }
    for (auto& c : cdf_) c /= sum;
  }

  std::size_t operator()(Rng& rng) const {
    const double u = rand_double(rng);
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin()) + 1;
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace

const std::vector<Distribution>& all_distributions() {
  static const std::vector<Distribution> kAll = {
      Distribution::kUniformPermutation, Distribution::kUniformReal,
      Distribution::kGaussian,           Distribution::kExponential,
      Distribution::kZipf,               Distribution::kBimodal,
      Distribution::kClustered,          Distribution::kConstant,
      Distribution::kDuplicateHeavy,     Distribution::kSortedAscending,
  };
  return kAll;
}

std::string to_string(Distribution d) {
  switch (d) {
    case Distribution::kUniformPermutation: return "uniform_permutation";
    case Distribution::kUniformReal: return "uniform_real";
    case Distribution::kGaussian: return "gaussian";
    case Distribution::kExponential: return "exponential";
    case Distribution::kZipf: return "zipf";
    case Distribution::kBimodal: return "bimodal";
    case Distribution::kClustered: return "clustered";
    case Distribution::kConstant: return "constant";
    case Distribution::kDuplicateHeavy: return "duplicate_heavy";
    case Distribution::kSortedAscending: return "sorted_ascending";
  }
  return "unknown";
}

std::vector<double> generate_values(Distribution d, std::size_t n,
                                    std::uint64_t seed) {
  GQ_REQUIRE(n > 0, "workload size must be positive");
  Rng rng(derive_seed(seed, static_cast<std::uint64_t>(d)));
  std::vector<double> xs(n);
  switch (d) {
    case Distribution::kUniformPermutation: {
      std::iota(xs.begin(), xs.end(), 1.0);
      // Fisher-Yates with our generator for reproducibility.
      for (std::size_t i = n - 1; i > 0; --i) {
        const auto j = static_cast<std::size_t>(rand_index(rng, i + 1));
        std::swap(xs[i], xs[j]);
      }
      break;
    }
    case Distribution::kUniformReal:
      for (auto& x : xs) x = rand_double(rng);
      break;
    case Distribution::kGaussian:
      for (auto& x : xs) x = standard_normal(rng);
      break;
    case Distribution::kExponential:
      for (auto& x : xs) {
        x = -std::log(std::max(rand_double(rng), 1e-300));
      }
      break;
    case Distribution::kZipf: {
      const ZipfSampler zipf(n, 1.2);
      for (auto& x : xs) x = static_cast<double>(zipf(rng));
      break;
    }
    case Distribution::kBimodal:
      for (auto& x : xs) {
        const double mode = rand_bernoulli(rng, 0.5) ? -10.0 : 10.0;
        x = mode + standard_normal(rng);
      }
      break;
    case Distribution::kClustered:
      for (auto& x : xs) {
        const auto cluster = static_cast<double>(rand_index(rng, 8));
        x = cluster * 100.0 + 0.01 * standard_normal(rng);
      }
      break;
    case Distribution::kConstant:
      std::fill(xs.begin(), xs.end(), 42.0);
      break;
    case Distribution::kDuplicateHeavy:
      for (auto& x : xs) x = static_cast<double>(rand_index(rng, 10));
      break;
    case Distribution::kSortedAscending:
      std::iota(xs.begin(), xs.end(), 1.0);
      break;
  }
  return xs;
}

}  // namespace gq
