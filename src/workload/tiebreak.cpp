#include "workload/tiebreak.hpp"

#include <cstdint>

#include "util/require.hpp"

namespace gq {

std::vector<Key> make_keys(std::span<const double> values) {
  GQ_REQUIRE(!values.empty(), "cannot make keys from an empty value set");
  std::vector<Key> keys;
  keys.reserve(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    keys.push_back(Key{values[i], static_cast<std::uint32_t>(i), 0});
  }
  return keys;
}

std::vector<double> key_values(std::span<const Key> keys) {
  std::vector<double> out;
  out.reserve(keys.size());
  for (const Key& k : keys) out.push_back(k.value);
  return out;
}

}  // namespace gq
