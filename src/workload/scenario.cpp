#include "workload/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace gq {

AdversarialPair make_adversarial_pair(std::size_t n, double eps,
                                      std::uint64_t seed) {
  GQ_REQUIRE(n >= 4, "adversarial pair needs n >= 4");
  GQ_REQUIRE(eps > 0.0 && eps < 0.25, "eps must be in (0, 1/4)");
  const auto b =
      static_cast<std::size_t>(std::floor(2.0 * eps * static_cast<double>(n)));
  GQ_REQUIRE(b >= 1, "eps*n too small: the distinguishing set is empty");

  // Random assignment of the value multiset to nodes (shared permutation so
  // the two scenarios differ only in the values, not the placement).
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  Rng rng(derive_seed(seed, 0xadf0));
  for (std::size_t i = n - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(rand_index(rng, i + 1));
    std::swap(perm[i], perm[j]);
  }

  AdversarialPair out;
  out.shift = b;
  out.scenario_a.resize(n);
  out.scenario_b.resize(n);
  out.informative.assign(n, false);
  for (std::size_t node = 0; node < n; ++node) {
    const std::size_t value_index = perm[node] + 1;  // 1-based value
    out.scenario_a[node] = static_cast<double>(value_index);
    out.scenario_b[node] = static_cast<double>(value_index + b);
    // S = {1,...,1+b} u {n+1,...,n+b}; under scenario_a the top part of S is
    // held by nobody, so informativeness reduces to the two value fringes
    // {1..1+b} (bottom of A) and {n-b+1..n} (whose B-images lie in the top
    // part of S).
    out.informative[node] = (value_index <= b + 1) || (value_index > n - b);
  }
  return out;
}

std::vector<double> make_sensor_field(std::size_t n, double hot_fraction,
                                      std::uint64_t seed) {
  GQ_REQUIRE(n > 0, "sensor field must be non-empty");
  GQ_REQUIRE(hot_fraction >= 0.0 && hot_fraction <= 1.0,
             "hot_fraction must be in [0,1]");
  Rng rng(derive_seed(seed, 0x5e50));
  std::vector<double> xs(n);
  for (auto& x : xs) {
    const bool hot = rand_bernoulli(rng, hot_fraction);
    const double base = hot ? 80.0 : 20.0;
    // Triangular-ish noise from the sum of two uniforms.
    const double noise = 5.0 * (rand_double(rng) + rand_double(rng) - 1.0);
    x = base + noise;
  }
  return xs;
}

std::vector<double> make_latency_trace(std::size_t n, std::uint64_t seed) {
  GQ_REQUIRE(n > 0, "latency trace must be non-empty");
  Rng rng(derive_seed(seed, 0x1a7e));
  std::vector<double> xs(n);
  for (auto& x : xs) {
    // Log-normal body: median ~10ms.
    const double u1 = std::max(rand_double(rng), 1e-300);
    const double u2 = rand_double(rng);
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
    double ms = 10.0 * std::exp(0.5 * z);
    // 2% of requests hit a Pareto(alpha=1.5) tail starting at 100ms.
    if (rand_bernoulli(rng, 0.02)) {
      const double u = std::max(rand_double(rng), 1e-12);
      ms = 100.0 * std::pow(u, -1.0 / 1.5);
    }
    x = ms;
  }
  return xs;
}

}  // namespace gq
