// Scenario builders used by experiments.
//
// The main one is the lower-bound construction from Theorem 1.3: two inputs
// that differ only on a Theta(eps*n)-sized fringe of extreme values, such
// that distinguishing them is necessary for answering any eps-approximate
// quantile query.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gq {

// The Theorem 1.3 pair of scenarios.
//   scenario_a: node values are a permutation of {1, ..., n}
//   scenario_b: node values are a permutation of {1+b, ..., n+b}, b = floor(2*eps*n)
// informative[v] is true iff v's value lies in the distinguishing set
//   S = {1,...,1+b} u {n+1,...,n+b};
// a node must (transitively) hear from S before it can answer correctly.
struct AdversarialPair {
  std::vector<double> scenario_a;
  std::vector<double> scenario_b;
  std::vector<bool> informative;  // w.r.t. scenario_a's assignment
  std::size_t shift = 0;          // b above
};

[[nodiscard]] AdversarialPair make_adversarial_pair(std::size_t n, double eps,
                                                    std::uint64_t seed);

// Sensor-field workload used by the examples and robustness benches: a field
// of temperature readings with a hot region.  hot_fraction of nodes read
// from the hot distribution.
[[nodiscard]] std::vector<double> make_sensor_field(std::size_t n,
                                                    double hot_fraction,
                                                    std::uint64_t seed);

// Latency-like workload: log-normal body with a Pareto tail; the classic
// shape of service response times for percentile monitoring.
[[nodiscard]] std::vector<double> make_latency_trace(std::size_t n,
                                                     std::uint64_t seed);

}  // namespace gq
