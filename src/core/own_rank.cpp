#include "core/own_rank.hpp"

#include <algorithm>
#include <cmath>

#include "core/approx_quantile.hpp"
#include "util/require.hpp"
#include "workload/tiebreak.hpp"

namespace gq {

OwnRankResult own_rank(Network& net, std::span<const double> values,
                       const OwnRankParams& params) {
  const std::uint32_t n = net.size();
  GQ_REQUIRE(values.size() == n, "one value per node required");
  GQ_REQUIRE(params.eps > 0.0 && params.eps < 0.5,
             "eps must lie in (0, 1/2)");

  const std::vector<Key> keys = make_keys(values);
  const double grid = params.eps / 2.0;
  const auto runs = static_cast<std::size_t>(std::ceil(1.0 / grid)) - 1;

  const Metrics before = net.metrics();
  OwnRankResult out;
  out.quantile_runs = runs;
  out.valid.assign(n, true);
  std::vector<std::size_t> below(n, 0);

  ApproxQuantileParams ap;
  ap.eps = params.eps / 4.0;
  ap.final_sample_size = params.final_sample_size;
  for (std::size_t j = 1; j <= runs; ++j) {
    ap.phi = std::min(1.0, grid * static_cast<double>(j));
    const ApproxQuantileResult r = approx_quantile_keys(net, keys, ap);
    for (std::uint32_t v = 0; v < n; ++v) {
      if (!r.valid[v]) {
        out.valid[v] = false;
        continue;
      }
      if (r.outputs[v] < keys[v]) ++below[v];
    }
  }

  out.estimates.resize(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    out.estimates[v] =
        std::min(1.0, (static_cast<double>(below[v]) + 0.5) * grid);
  }
  out.rounds = net.metrics().rounds - before.rounds;
  return out;
}

}  // namespace gq
