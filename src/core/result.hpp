// Result structs for the quantile protocols.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/key.hpp"
#include "sim/metrics.hpp"

namespace gq {

struct ApproxQuantileResult {
  // outputs[v]: the key node v settles on.  Under the failure model a node
  // can end the protocol without an answer; valid[v] marks served nodes
  // (always all-true in the failure-free model).
  std::vector<Key> outputs;
  std::vector<bool> valid;

  std::size_t phase1_iterations = 0;  // 2-TOURNAMENT iterations executed
  std::size_t phase2_iterations = 0;  // 3-TOURNAMENT iterations executed
  std::uint64_t rounds = 0;           // total gossip rounds consumed
  bool used_exact_fallback = false;   // eps below floor: exact pipeline ran

  [[nodiscard]] std::size_t served_nodes() const {
    std::size_t c = 0;
    for (bool b : valid) c += b ? 1 : 0;
    return c;
  }
};

struct ExactQuantileResult {
  Key answer;                 // the exact phi-quantile of the input
  std::vector<Key> outputs;   // per-node copy of the answer
  std::vector<bool> valid;    // nodes that learned the answer
  std::uint64_t rounds = 0;   // total gossip rounds consumed
  std::size_t iterations = 0; // bracketing iterations executed
  std::size_t endgame_phases = 0;  // selection phases after bracketing
};

struct OwnRankResult {
  // estimates[v]: node v's estimate of its own quantile rank(x_v)/n.
  std::vector<double> estimates;
  std::vector<bool> valid;
  std::uint64_t rounds = 0;
  std::size_t quantile_runs = 0;  // number of approx-quantile invocations
};

}  // namespace gq
