// Result structs and typed errors for the quantile protocols.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/key.hpp"
#include "sim/metrics.hpp"

namespace gq {

// A run of the exact pipeline (Algorithm 3) aborted: under heavy failure
// noise at small n the count-based machinery can mis-count — a pivot's
// measured rank contradicts the bracketing state, the candidate set runs
// dry, or the final verification disagrees — and the w.h.p. analysis no
// longer applies.  This is thrown instead of returning a wrong answer.
//
// The error is *recoverable*: the executor (Network or Engine) remains
// fully usable — rounds already consumed stay billed in Metrics, and the
// caller can rerun with a fresh seed, a larger n, or a lighter failure
// model.  Both executors share one copy of the pipeline control flow
// (core/exact_pipeline.hpp), so for the same (input, seed, failure model)
// they throw the same kind at the same point; tests/test_engine_robust.cpp
// pins that.  Derives from std::runtime_error so pre-existing catch sites
// keep working.
class ExactPipelineError : public std::runtime_error {
 public:
  enum class Kind {
    // The selection endgame found no remaining candidate between its
    // brackets: an exact count must have been wrong.
    kEndgameNoCandidates,
    // The selection endgame exhausted max_endgame_phases without landing
    // on rank k.
    kEndgameStalled,
    // Bracketing discarded every candidate (rank counts inconsistent).
    kBracketingEmptied,
    // The final answer's measured rank disagreed with the target on every
    // verification attempt.
    kVerificationFailed,
  };

  // Structured context captured at the throw site, so supervisor RunReports
  // and logs can say *which* run aborted *where* without parsing what().
  // Both executors fill it from the shared control flow, so the context —
  // like the kind — is part of the bit-identical differential contract.
  struct Context {
    std::uint64_t seed = 0;   // executor master seed of the aborted run
    std::uint64_t round = 0;  // round counter when the abort fired
    std::uint32_t n = 0;      // network size
    const char* phase = "";   // static phase label, e.g. "selection_endgame"

    friend bool operator==(const Context&, const Context&) = default;
  };

  ExactPipelineError(Kind kind, const char* what, const Context& context)
      : std::runtime_error(format(kind, what, context)),
        kind_(kind),
        context_(context) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] const Context& context() const noexcept { return context_; }

 private:
  static const char* kind_name(Kind kind) noexcept {
    switch (kind) {
      case Kind::kEndgameNoCandidates: return "endgame-no-candidates";
      case Kind::kEndgameStalled: return "endgame-stalled";
      case Kind::kBracketingEmptied: return "bracketing-emptied";
      case Kind::kVerificationFailed: return "verification-failed";
    }
    return "unknown";
  }

  static std::string format(Kind kind, const char* what,
                            const Context& context) {
    std::string s = "exact pipeline abort [";
    s += kind_name(kind);
    s += "] phase=";
    s += context.phase;
    s += " round=" + std::to_string(context.round);
    s += " n=" + std::to_string(context.n);
    s += " seed=" + std::to_string(context.seed);
    s += ": ";
    s += what;
    return s;
  }

  Kind kind_;
  Context context_;
};

struct ApproxQuantileResult {
  // outputs[v]: the key node v settles on.  Under the failure model a node
  // can end the protocol without an answer; valid[v] marks served nodes
  // (always all-true in the failure-free model).
  std::vector<Key> outputs;
  std::vector<bool> valid;

  std::size_t phase1_iterations = 0;  // 2-TOURNAMENT iterations executed
  std::size_t phase2_iterations = 0;  // 3-TOURNAMENT iterations executed
  std::uint64_t rounds = 0;           // total gossip rounds consumed
  bool used_exact_fallback = false;   // eps below floor: exact pipeline ran

  [[nodiscard]] std::size_t served_nodes() const {
    std::size_t c = 0;
    for (bool b : valid) c += b ? 1 : 0;
    return c;
  }
};

struct ExactQuantileResult {
  Key answer;                 // the exact phi-quantile of the input
  std::vector<Key> outputs;   // per-node copy of the answer
  std::vector<bool> valid;    // nodes that learned the answer
  std::uint64_t rounds = 0;   // total gossip rounds consumed
  std::size_t iterations = 0; // bracketing iterations executed
  std::size_t endgame_phases = 0;  // selection phases after bracketing
};

struct OwnRankResult {
  // estimates[v]: node v's estimate of its own quantile rank(x_v)/n.
  std::vector<double> estimates;
  std::vector<bool> valid;
  std::uint64_t rounds = 0;
  std::size_t quantile_runs = 0;  // number of approx-quantile invocations
};

}  // namespace gq
