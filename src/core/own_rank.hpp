// Corollary 1.5: every node estimates the quantile of ITS OWN value up to
// an additive eps.
//
// The library runs approximate quantile computations on the grid
// phi_j = j * (eps/2) with slack eps/4; node v then counts how many of its
// own outputs lie below its value.  Each output's true quantile is within
// eps/4 + (ties) of its grid point, so the count pins v's quantile to an
// eps-window.  Total cost: (2/eps - 1) * O(log log n + log 1/eps) rounds.
#pragma once

#include <span>

#include "core/params.hpp"
#include "core/result.hpp"
#include "sim/network.hpp"

namespace gq {

[[nodiscard]] OwnRankResult own_rank(Network& net,
                                     std::span<const double> values,
                                     const OwnRankParams& params);

}  // namespace gq
