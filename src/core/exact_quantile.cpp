#include "core/exact_quantile.hpp"

#include "agg/push_sum.hpp"
#include "agg/rank_count.hpp"
#include "agg/spread.hpp"
#include "core/approx_quantile.hpp"
#include "core/exact_pipeline.hpp"
#include "core/pivot.hpp"
#include "core/token_split.hpp"
#include "util/require.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

// The sequential instantiation of the shared Algorithm-3 control flow in
// core/exact_pipeline.hpp: every substrate is the Network-bound primitive.
// engine/pipelines.cpp provides the batched twin; the two must stay
// bit-identical (pinned by tests/test_engine.cpp).
struct NetworkExactOps {
  Network& net;

  [[nodiscard]] std::uint32_t size() const { return net.size(); }
  [[nodiscard]] std::uint64_t seed() const { return net.seed(); }
  [[nodiscard]] std::uint64_t round() const { return net.round(); }
  [[nodiscard]] const Metrics& metrics() const { return net.metrics(); }

  ApproxQuantileResult approx(std::span<const Key> keys,
                              const ApproxQuantileParams& params) {
    return approx_quantile_keys(net, keys, params);
  }
  SpreadResult spread_min_keys(std::span<const Key> init) {
    return spread_min(net, init);
  }
  SpreadResult spread_max_keys(std::span<const Key> init) {
    return spread_max(net, init);
  }
  CountResult count(const std::vector<bool>& indicator) {
    return gossip_count(net, indicator);
  }
  CountResult rank(std::span<const Key> keys, const Key& threshold) {
    return gossip_rank(net, keys, threshold);
  }
  TripleCountResult count3(const std::vector<bool>& a,
                           const std::vector<bool>& b,
                           const std::vector<bool>& c) {
    return gossip_count3(net, a, b, c);
  }
  PivotSample pivot(std::span<const Key> inst,
                    const std::vector<bool>& candidate) {
    return sample_uniform_candidate(net, inst, candidate);
  }
  TokenSplitResult token_split(std::span<const Key> inst,
                               std::uint64_t multiplier,
                               std::uint64_t tag_base) {
    return token_split_distribute(net, inst, multiplier, tag_base);
  }
  [[nodiscard]] std::uint64_t exact_count_rounds() const {
    return push_sum_rounds_for_exact(net);
  }
};

}  // namespace

ExactQuantileResult exact_quantile_keys(Network& net,
                                        std::span<const Key> keys,
                                        const ExactQuantileParams& params) {
  NetworkExactOps ops{net};
  return exact_detail::exact_quantile_keys_impl(ops, keys, params);
}

ExactQuantileResult exact_quantile(Network& net,
                                   std::span<const double> values,
                                   const ExactQuantileParams& params) {
  const std::vector<Key> keys = make_keys(values);
  return exact_quantile_keys(net, keys, params);
}

}  // namespace gq
