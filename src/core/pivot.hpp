// Uniform pivot sampling: agree, network-wide, on one uniformly random key
// among the candidate nodes.  The standard gossip trick: every candidate
// draws a random priority and the (priority, key) pair with the maximum
// priority is spread to all nodes in O(log n) rounds.  Used by the
// selection endgame of the exact algorithm and by the KDG03 baseline.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/key.hpp"
#include "sim/network.hpp"

namespace gq {

struct PivotSample {
  Key pivot = Key::infinite();
  std::uint64_t rounds = 0;
  bool found = false;  // false iff no candidate participated
};

// candidate[v] marks whether node v's key inst[v] competes.
[[nodiscard]] PivotSample sample_uniform_candidate(
    Network& net, std::span<const Key> inst,
    const std::vector<bool>& candidate);

}  // namespace gq
