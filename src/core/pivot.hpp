// Uniform pivot sampling: agree, network-wide, on one uniformly random key
// among the candidate nodes.  The standard gossip trick: every candidate
// draws a random priority and the (priority, key) pair with the maximum
// priority is spread to all nodes in O(log n) rounds.  Used by the
// selection endgame of the exact algorithm and by the KDG03 baseline.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/key.hpp"
#include "sim/network.hpp"

namespace gq {

struct PivotSample {
  Key pivot = Key::infinite();
  std::uint64_t rounds = 0;
  bool found = false;  // false iff no candidate participated
};

namespace pivot_detail {

// The spread payload: priority 0 marks non-candidates; ties (never expected
// from 64-bit draws) break towards the larger key.  Shared between the
// sequential protocol and the engine kernel so both spread identical pairs.
struct PriorityKey {
  std::uint64_t priority = 0;  // 0 = not a candidate
  Key key = Key::infinite();
};

struct PriorityLess {
  bool operator()(const PriorityKey& a, const PriorityKey& b) const {
    if (a.priority != b.priority) return a.priority < b.priority;
    return a.key < b.key;
  }
};

// Message size of one (priority, key) pair.
[[nodiscard]] constexpr std::uint64_t priority_key_bits(
    std::uint32_t n) noexcept {
  return 64 + key_bits(n);
}

}  // namespace pivot_detail

// candidate[v] marks whether node v's key inst[v] competes.
[[nodiscard]] PivotSample sample_uniform_candidate(
    Network& net, std::span<const Key> inst,
    const std::vector<bool>& candidate);

}  // namespace gq
