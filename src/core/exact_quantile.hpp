// Algorithm 3: exact phi-quantile computation in O(log n) rounds
// (Theorem 1.1).
//
// The algorithm tracks the target rank k (initially ceil(phi*n)) through a
// sequence of *bracketing iterations*.  Each iteration:
//   1. runs the approximate pipeline twice to obtain per-node brackets
//      around the k/n-quantile, and spreads their min and max [Step 3-4];
//   2. counts, exactly via push-sum, the ranks of both brackets and the
//      number of surviving values [Step 5];
//   3. discards every value outside [min, max] [Step 6]; and
//   4. re-inflates the instance by duplicating every surviving value into
//      m (a power of two) copies, scattered by the token process [Step 7],
//      updating k <- m * (k - R + 1) [Step 8].
// The duplicated block of answer copies grows geometrically; once it covers
// the final approximation window, a single approximate query returns the
// answer at every node [Step 10].
//
// Deviations from the paper, recorded in DESIGN.md:
//   * termination is adaptive (block coverage) instead of a fixed 25
//     iterations, whose constants only close at astronomical n;
//   * both bracket ranks are counted exactly, which makes the bracketing
//     bookkeeping deterministic rather than w.h.p.;
//   * when the duplication multiplier degenerates to 1 (small n), the
//     remaining candidates are resolved by uniform-pivot selection phases
//     (the same primitive as the KDG03 baseline) — a selection *endgame*;
//   * the final answer is verified against the original input with one
//     exact count, and the pipeline retries on mismatch (w.h.p. never).
//
// The substrates (tournaments, spreading, counting, token process) all
// tolerate the Section-5 failure model, so this entry point serves the
// robust Theorem 1.4 claim as well.
#pragma once

#include <span>

#include "core/params.hpp"
#include "core/result.hpp"
#include "sim/network.hpp"

namespace gq {

// Public entry point: `values[v]` is node v's input.
[[nodiscard]] ExactQuantileResult exact_quantile(
    Network& net, std::span<const double> values,
    const ExactQuantileParams& params);

// Key-level entry point for callers operating on tie-broken instances.
[[nodiscard]] ExactQuantileResult exact_quantile_keys(
    Network& net, std::span<const Key> keys,
    const ExactQuantileParams& params);

}  // namespace gq
