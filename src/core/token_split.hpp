// Token split-and-distribute (Algorithm 3, Step 7; robust version in
// Section 5.2).
//
// Every valued node mints one token (key, weight = multiplier) with
// multiplier a power of two.  Phase A repeatedly halves tokens: a node
// splits one weight->2 token per round and pushes one half to a random
// node; a failed push merges the halves back (Section 5.2), so the
// potential sum(w^2) shrinks geometrically in expectation regardless of the
// failure probability.  Phase B scatters: a node holding several weight-1
// tokens pushes the extras to random nodes each round until every node
// holds at most one.  Both phases finish in O(log n) rounds w.h.p. because
// the token count never exceeds n/2 (enforced by the caller's multiplier).
//
// The surviving assignment becomes the next instance: a node holding a
// token adopts the token's (value, id) under a fresh duplication tag;
// everyone else becomes valueless.
//
// Messages are billed at token_message_bits(n, multiplier): one key plus a
// weight field of bit_width(multiplier) bits (weights only halve from
// multiplier, so a flat word would overstate the traffic).
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/key.hpp"
#include "sim/network.hpp"

namespace gq {

// One in-flight duplication unit.  Shared between the sequential protocol
// and the engine's batched kernel so the two paths cannot drift.
struct Token {
  Key key;
  std::uint64_t weight = 1;
};

// A token message carries a key plus its weight.  Weights never exceed
// `multiplier` (they only halve from there), so the weight field is billed
// at bit_width(multiplier) bits rather than a flat word.
[[nodiscard]] constexpr std::uint64_t token_message_bits(
    std::uint32_t n, std::uint64_t multiplier) noexcept {
  return key_bits(n) +
         static_cast<std::uint64_t>(std::bit_width(multiplier));
}

struct TokenSplitResult {
  std::vector<Key> instance;   // new per-node instance (infinite = valueless)
  std::uint64_t rounds = 0;    // rounds consumed
  std::uint64_t token_count = 0;
};

// Duplicates every finite key in `inst` into `multiplier` copies scattered
// onto distinct nodes.  Requires multiplier to be a power of two and
// multiplier * #finite <= n/2 (so scattering terminates quickly).
// `tag_base` must leave the low 32 bits free for per-node uniqueness.
[[nodiscard]] TokenSplitResult token_split_distribute(
    Network& net, std::span<const Key> inst, std::uint64_t multiplier,
    std::uint64_t tag_base);

}  // namespace gq
