#include "core/lower_bound.hpp"

#include <algorithm>
#include <bit>

#include "util/require.hpp"

namespace gq {

InformationSpreadResult simulate_information_spread(
    Network& net, const std::vector<bool>& informative,
    std::uint64_t max_rounds) {
  const std::uint32_t n = net.size();
  GQ_REQUIRE(informative.size() == n, "one flag per node required");
  GQ_REQUIRE(std::any_of(informative.begin(), informative.end(),
                         [](bool b) { return b; }),
             "at least one node must start informed");
  if (max_rounds == 0) {
    const auto log2n = static_cast<std::uint64_t>(
        std::bit_width(static_cast<std::uint64_t>(n) - 1));
    max_rounds = 4 * log2n + 60;
  }

  std::vector<bool> informed = informative;
  InformationSpreadResult out;
  for (std::uint64_t r = 0; r < max_rounds; ++r) {
    net.begin_round();
    std::vector<bool> next = informed;
    for (std::uint32_t v = 0; v < n; ++v) {
      SplitMix64 stream = net.node_stream(v);
      // Generous model: one pull and one push per node per round.
      const std::uint32_t pull_peer = net.sample_peer(v, stream);
      const std::uint32_t push_peer = net.sample_peer(v, stream);
      if (informed[pull_peer]) next[v] = true;
      if (informed[v]) next[push_peer] = true;
      net.record_messages(2, 64);
    }
    informed = std::move(next);
    const auto count = static_cast<std::uint64_t>(
        std::count(informed.begin(), informed.end(), true));
    out.informed_counts.push_back(count);
    if (count == n) {
      out.rounds_to_all = r + 1;
      out.completed = true;
      break;
    }
  }
  return out;
}

}  // namespace gq
