// The eps-approximate phi-quantile pipeline (Theorems 1.2 and 2.1).
//
// Phase I (2-TOURNAMENT) shifts the quantiles around phi onto the quantiles
// around the median of the evolving configuration; Phase II (3-TOURNAMENT
// with slack eps/4, per Lemma 2.11) then approximates that median.  Every
// node ends up holding a value whose rank in the ORIGINAL input lies in
// [(phi-eps)n, (phi+eps)n] w.h.p., after O(log log n + log 1/eps) rounds
// with O(log n)-bit messages.
//
// For eps below eps_tournament_floor(n) the sampling-based pipeline is no
// longer reliable (Theorem 2.1 needs eps = Omega(n^-0.096)); the call
// transparently falls back to the exact algorithm, which is the paper's own
// bootstrap route for Theorem 1.2 (log 1/eps >= c log n there, so the
// O(log n) exact bound is within the advertised complexity).
//
// Under a FailureModel the robust Section-5 variants run instead, and the
// result's `valid` mask reports which nodes were served (all but ~n/2^t
// after t coverage rounds, per Theorem 1.4).
#pragma once

#include <span>

#include "core/params.hpp"
#include "core/result.hpp"
#include "sim/network.hpp"

namespace gq {

// Public entry point: `values[v]` is node v's input.
[[nodiscard]] ApproxQuantileResult approx_quantile(
    Network& net, std::span<const double> values,
    const ApproxQuantileParams& params);

// Key-level entry point used by the exact algorithm and by compositions
// that already operate on tie-broken instances.
[[nodiscard]] ApproxQuantileResult approx_quantile_keys(
    Network& net, std::span<const Key> keys,
    const ApproxQuantileParams& params);

}  // namespace gq
