// The executor-independent control flow of the approximate quantile
// pipeline (Theorems 1.2 / 2.1, plus the Section-5 robust route).
//
// Same rationale as core/exact_pipeline.hpp and core/robust_pipeline.hpp:
// the eps-floor fallback decision, the Lemma-2.11 phase2_eps choice, the
// failure-free vs robust routing, and the coverage call are all observable
// in outputs, round counts, and Metrics, so the sequential Network path and
// the parallel Engine must execute ONE copy of this logic.  The Ops
// provider supplies the executor-bound phases:
//
//   uint32_t size();
//   const Metrics& metrics();
//   bool faultless();   // no failure model AND no adversary installed
//   ExactQuantileResult exact(span<const Key>, const ExactQuantileParams&);
//   TwoTournamentOutcome   two(vector<Key>& state, phi, eps, truncate_last);
//   ThreeTournamentOutcome three(vector<Key>& state, eps, k);
//   RobustTwoTournamentOutcome   robust_two(state, good, phi, eps,
//                                           truncate_last);
//   RobustThreeTournamentOutcome robust_three(state, good, eps, k);
//   uint64_t coverage(outputs, valid, t);
//
// Instantiated by core/approx_quantile.cpp (Network) and
// engine/pipelines.cpp (Engine); bit-identity of the two is pinned by
// tests/test_engine.cpp and tests/test_engine_robust.cpp.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "analysis/theory_bounds.hpp"
#include "core/params.hpp"
#include "core/result.hpp"
#include "sim/key.hpp"
#include "sim/metrics.hpp"
#include "telemetry/telemetry.hpp"
#include "util/require.hpp"

namespace gq::approx_detail {

template <typename Ops>
ApproxQuantileResult approx_quantile_keys_impl(
    Ops& ops, std::span<const Key> keys, const ApproxQuantileParams& params) {
  const std::uint32_t n = ops.size();
  GQ_REQUIRE(keys.size() == n, "one key per node required");
  GQ_REQUIRE(params.phi >= 0.0 && params.phi <= 1.0, "phi must lie in [0,1]");
  GQ_REQUIRE(params.eps > 0.0 && params.eps < 0.5,
             "eps must lie in (0, 1/2)");

  GQ_SPAN("pipeline/approx_quantile");
  const Metrics before = ops.metrics();

  if (params.eps < eps_tournament_floor(n) && !params.force_tournament) {
    // Theorem 1.2 bootstrap: for eps below the sampling floor the exact
    // algorithm is both correct and within the advertised round bound.
    GQ_SPAN("approx/exact_fallback");
    ExactQuantileParams ep;
    ep.phi = params.phi;
    const ExactQuantileResult er = ops.exact(keys, ep);
    ApproxQuantileResult out;
    out.outputs = er.outputs;
    out.valid = er.valid;
    out.rounds = ops.metrics().rounds - before.rounds;
    out.used_exact_fallback = true;
    return out;
  }

  ApproxQuantileResult out;
  std::vector<Key> state(keys.begin(), keys.end());
  // Phase II approximates the median of the Phase-I configuration to eps/4:
  // by Lemma 2.11 every quantile in [1/2 - eps/4, 1/2 + eps/4] of that
  // configuration lies in the original [phi - eps, phi + eps] window.
  const double phase2_eps = params.eps / 4.0;

  if (ops.faultless()) {
    const auto p1 = [&] {
      GQ_SPAN("approx/two_tournament");
      return ops.two(state, params.phi, params.eps, params.truncate_last);
    }();
    const auto p2 = [&] {
      GQ_SPAN("approx/three_tournament");
      return ops.three(state, phase2_eps, params.final_sample_size);
    }();
    out.phase1_iterations = p1.iterations;
    out.phase2_iterations = p2.iterations;
    out.outputs = p2.outputs;
    out.valid.assign(n, true);
  } else {
    std::vector<bool> good(n, true);
    const auto p1 = [&] {
      GQ_SPAN("approx/robust_two_tournament");
      return ops.robust_two(state, good, params.phi, params.eps,
                            params.truncate_last);
    }();
    auto p2 = [&] {
      GQ_SPAN("approx/robust_three_tournament");
      return ops.robust_three(state, good, phase2_eps,
                              params.final_sample_size);
    }();
    out.phase1_iterations = p1.iterations;
    out.phase2_iterations = p2.iterations;
    {
      GQ_SPAN("approx/coverage");
      ops.coverage(p2.outputs, p2.valid, params.robust_coverage_rounds);
    }
    out.outputs = std::move(p2.outputs);
    out.valid = std::move(p2.valid);
  }

  out.rounds = ops.metrics().rounds - before.rounds;
  return out;
}

}  // namespace gq::approx_detail
