#include "core/multi_quantile.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/multi_pipeline.hpp"
#include "core/robust_pipeline.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

// The sequential instantiation of the shared multi-quantile control flow
// (core/multi_pipeline.hpp): per-node state is q plain Key vectors, every
// round is a for-loop over nodes with the iteration-start snapshot copied
// up front, and the per-node draw order — one shared peer pick per round,
// per-lane delta coins in lane order — is the contract the parallel Engine
// kernels reproduce bit-for-bit (tests/test_engine_multi.cpp).
class NetworkMultiOps {
 public:
  explicit NetworkMultiOps(Network& net) : net_(net) {}

  [[nodiscard]] std::uint32_t size() const { return net_.size(); }
  [[nodiscard]] const Metrics& metrics() const { return net_.metrics(); }
  [[nodiscard]] bool faultless() const { return net_.faultless(); }

  ApproxQuantileResult approx(std::span<const Key> keys,
                              const ApproxQuantileParams& params) {
    return approx_quantile_keys(net_, keys, params);
  }

  void begin(std::span<const Key> keys, std::size_t lanes) {
    n_ = net_.size();
    q_ = lanes;
    bits_ = key_bits(n_);
    state_.assign(lanes, std::vector<Key>(keys.begin(), keys.end()));
    snapshot_.resize(lanes);
    first_.resize(n_);
  }

  void two_iteration(std::span<const MultiLaneStep> steps) {
    snapshot_ = state_;
    std::uint64_t active = 0;
    for (const MultiLaneStep& st : steps) active += st.active ? 1 : 0;

    // Round A: one shared first sample per node, carrying the active lanes
    // in one message.
    net_.begin_round();
    for (std::uint32_t v = 0; v < n_; ++v) {
      SplitMix64 stream = net_.node_stream(v);
      first_[v] = net_.sample_peer(v, stream);
      net_.record_message(active * bits_);
    }

    // Round B: per-lane delta coins in lane order (delta >= 1.0 consumes
    // no draw, as in core/two_tournament.cpp), then — if any lane
    // tournaments — one shared second sample carrying those lanes.
    net_.begin_round();
    for (std::uint32_t v = 0; v < n_; ++v) {
      SplitMix64 stream = net_.node_stream(v);
      std::uint64_t mask = 0;
      for (std::size_t l = 0; l < q_; ++l) {
        if (!steps[l].active) continue;
        const bool tournament = steps[l].delta >= 1.0 ||
                                rand_bernoulli(stream, steps[l].delta);
        if (tournament) mask |= std::uint64_t{1} << l;
      }
      const auto t = static_cast<std::uint32_t>(std::popcount(mask));
      std::uint32_t second = 0;
      if (t > 0) {
        second = net_.sample_peer(v, stream);
        net_.record_message(t * bits_);
      }
      for (std::size_t l = 0; l < q_; ++l) {
        if (!steps[l].active) continue;  // finished lane keeps its value
        const Key& a = snapshot_[l][first_[v]];
        if ((mask >> l) & 1) {
          const Key& b = snapshot_[l][second];
          state_[l][v] =
              steps[l].suppress_high ? std::min(a, b) : std::max(a, b);
        } else {
          state_[l][v] = a;
        }
      }
    }
  }

  void three_iteration() {
    snapshot_ = state_;
    picks_.resize(n_);
    // Three shared pulls = three rounds, all reading the iteration-start
    // snapshot; each message carries the full q-lane vector.
    for (int pull = 0; pull < 3; ++pull) {
      net_.begin_round();
      for (std::uint32_t v = 0; v < n_; ++v) {
        SplitMix64 stream = net_.node_stream(v);
        picks_[v][static_cast<std::size_t>(pull)] =
            net_.sample_peer(v, stream);
        net_.record_message(q_ * bits_);
      }
    }
    for (std::uint32_t v = 0; v < n_; ++v) {
      for (std::size_t l = 0; l < q_; ++l) {
        state_[l][v] = robust_detail::median3(snapshot_[l][picks_[v][0]],
                                              snapshot_[l][picks_[v][1]],
                                              snapshot_[l][picks_[v][2]]);
      }
    }
  }

  void final_sample(std::uint32_t k_samples,
                    std::vector<std::vector<Key>>& outputs) {
    // K rounds of one shared draw per node; the state is immutable here,
    // so the per-lane medians fold from the recorded picks afterwards.
    std::vector<std::uint32_t> picks(static_cast<std::size_t>(n_) *
                                     k_samples);
    for (std::uint32_t j = 0; j < k_samples; ++j) {
      net_.begin_round();
      for (std::uint32_t v = 0; v < n_; ++v) {
        SplitMix64 stream = net_.node_stream(v);
        picks[static_cast<std::size_t>(v) * k_samples + j] =
            net_.sample_peer(v, stream);
        net_.record_message(q_ * bits_);
      }
    }
    outputs.assign(q_, std::vector<Key>(n_));
    std::vector<Key> samp(k_samples);
    for (std::uint32_t v = 0; v < n_; ++v) {
      const std::uint32_t* const row =
          picks.data() + static_cast<std::size_t>(v) * k_samples;
      for (std::size_t l = 0; l < q_; ++l) {
        for (std::uint32_t j = 0; j < k_samples; ++j) {
          samp[j] = state_[l][row[j]];
        }
        const auto mid = samp.begin() + samp.size() / 2;
        std::nth_element(samp.begin(), mid, samp.end());
        outputs[l][v] = *mid;
      }
    }
  }

 private:
  Network& net_;
  std::uint32_t n_ = 0;
  std::size_t q_ = 0;
  std::uint64_t bits_ = 0;
  std::vector<std::vector<Key>> state_, snapshot_;  // [lane][node]
  std::vector<std::uint32_t> first_;
  std::vector<std::array<std::uint32_t, 3>> picks_;
};

}  // namespace

MultiQuantileResult multi_quantile_keys(Network& net,
                                        std::span<const Key> keys,
                                        const MultiQuantileParams& params) {
  NetworkMultiOps ops(net);
  return multi_detail::multi_quantile_keys_impl(ops, keys, params);
}

MultiQuantileResult multi_quantile(Network& net,
                                   std::span<const double> values,
                                   const MultiQuantileParams& params) {
  const std::vector<Key> keys = make_keys(values);
  return multi_quantile_keys(net, keys, params);
}

}  // namespace gq
