#include "core/multi_quantile.hpp"

#include "util/require.hpp"
#include "workload/tiebreak.hpp"

namespace gq {

MultiQuantileResult multi_quantile(Network& net,
                                   std::span<const double> values,
                                   const MultiQuantileParams& params) {
  GQ_REQUIRE(!params.phis.empty(), "at least one quantile target required");
  for (double phi : params.phis) {
    GQ_REQUIRE(phi >= 0.0 && phi <= 1.0, "phi must lie in [0,1]");
  }
  const std::vector<Key> keys = make_keys(values);

  MultiQuantileResult out;
  out.per_phi.reserve(params.phis.size());
  ApproxQuantileParams ap;
  ap.eps = params.eps;
  ap.final_sample_size = params.final_sample_size;
  ap.robust_coverage_rounds = params.robust_coverage_rounds;
  for (const double phi : params.phis) {
    ap.phi = phi;
    out.per_phi.push_back(approx_quantile_keys(net, keys, ap));
    out.rounds += out.per_phi.back().rounds;
  }
  return out;
}

}  // namespace gq
