#include "core/three_tournament.hpp"

#include <algorithm>
#include <array>

#include "util/require.hpp"

namespace gq {
namespace {

const Key& median3(const Key& a, const Key& b, const Key& c) {
  if (a < b) {
    if (b < c) return b;
    return a < c ? c : a;
  }
  if (a < c) return a;
  return b < c ? c : b;
}

}  // namespace

ThreeTournamentOutcome three_tournament(Network& net, std::vector<Key>& state,
                                        double eps,
                                        std::uint32_t final_sample_size,
                                        const TournamentObserver& observer) {
  const std::uint32_t n = net.size();
  GQ_REQUIRE(state.size() == n, "one key per node required");
  GQ_REQUIRE(eps > 0.0 && eps < 0.5, "eps must lie in (0, 1/2)");
  GQ_REQUIRE(final_sample_size >= 1, "final sample size must be positive");
  GQ_REQUIRE(net.faultless(),
             "three_tournament is the failure-free variant; use "
             "robust_three_tournament under a failure model or adversary");
  const std::uint32_t k_samples = final_sample_size | 1u;  // force odd

  ThreeTournamentOutcome out;
  out.schedule = three_tournament_schedule(eps, n);
  const std::uint64_t bits = key_bits(n);

  std::vector<Key> snapshot(n);
  std::vector<std::array<std::uint32_t, 3>> picks(n);
  for (std::size_t iter = 0; iter < out.schedule.iterations(); ++iter) {
    snapshot = state;
    // Three pulls = three rounds; all read the iteration-start snapshot.
    for (int pull = 0; pull < 3; ++pull) {
      net.begin_round();
      for (std::uint32_t v = 0; v < n; ++v) {
        SplitMix64 stream = net.node_stream(v);
        picks[v][pull] = net.sample_peer(v, stream);
        net.record_message(bits);
      }
    }
    for (std::uint32_t v = 0; v < n; ++v) {
      state[v] = median3(snapshot[picks[v][0]], snapshot[picks[v][1]],
                         snapshot[picks[v][2]]);
    }
    ++out.iterations;
    if (observer) observer(out.iterations, state);
  }

  // Final step: every node samples K values and outputs their median.
  std::vector<std::vector<Key>> samples(n);
  for (auto& s : samples) s.reserve(k_samples);
  for (std::uint32_t j = 0; j < k_samples; ++j) {
    net.begin_round();
    for (std::uint32_t v = 0; v < n; ++v) {
      SplitMix64 stream = net.node_stream(v);
      samples[v].push_back(state[net.sample_peer(v, stream)]);
      net.record_message(bits);
    }
  }
  out.outputs.resize(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    auto& s = samples[v];
    const auto mid = s.begin() + s.size() / 2;
    std::nth_element(s.begin(), mid, s.end());
    out.outputs[v] = *mid;
  }
  return out;
}

}  // namespace gq
