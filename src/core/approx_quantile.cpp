#include "core/approx_quantile.hpp"

#include <algorithm>

#include "analysis/theory_bounds.hpp"
#include "core/exact_quantile.hpp"
#include "core/robust.hpp"
#include "core/three_tournament.hpp"
#include "core/two_tournament.hpp"
#include "util/require.hpp"
#include "workload/tiebreak.hpp"

namespace gq {

ApproxQuantileResult approx_quantile_keys(Network& net,
                                          std::span<const Key> keys,
                                          const ApproxQuantileParams& params) {
  const std::uint32_t n = net.size();
  GQ_REQUIRE(keys.size() == n, "one key per node required");
  GQ_REQUIRE(params.phi >= 0.0 && params.phi <= 1.0, "phi must lie in [0,1]");
  GQ_REQUIRE(params.eps > 0.0 && params.eps < 0.5,
             "eps must lie in (0, 1/2)");

  const Metrics before = net.metrics();

  if (params.eps < eps_tournament_floor(n) && !params.force_tournament) {
    // Theorem 1.2 bootstrap: for eps below the sampling floor the exact
    // algorithm is both correct and within the advertised round bound.
    ExactQuantileParams ep;
    ep.phi = params.phi;
    const ExactQuantileResult er = exact_quantile_keys(net, keys, ep);
    ApproxQuantileResult out;
    out.outputs = er.outputs;
    out.valid = er.valid;
    out.rounds = net.metrics().rounds - before.rounds;
    out.used_exact_fallback = true;
    return out;
  }

  ApproxQuantileResult out;
  std::vector<Key> state(keys.begin(), keys.end());
  // Phase II approximates the median of the Phase-I configuration to eps/4:
  // by Lemma 2.11 every quantile in [1/2 - eps/4, 1/2 + eps/4] of that
  // configuration lies in the original [phi - eps, phi + eps] window.
  const double phase2_eps = params.eps / 4.0;

  if (net.failures().never_fails()) {
    const TwoTournamentOutcome p1 =
        two_tournament(net, state, params.phi, params.eps,
                       params.truncate_last);
    const ThreeTournamentOutcome p2 = three_tournament(
        net, state, phase2_eps, params.final_sample_size);
    out.phase1_iterations = p1.iterations;
    out.phase2_iterations = p2.iterations;
    out.outputs = p2.outputs;
    out.valid.assign(n, true);
  } else {
    std::vector<bool> good(n, true);
    const RobustTwoTournamentOutcome p1 = robust_two_tournament(
        net, state, good, params.phi, params.eps, params.truncate_last);
    RobustThreeTournamentOutcome p2 = robust_three_tournament(
        net, state, good, phase2_eps, params.final_sample_size);
    out.phase1_iterations = p1.iterations;
    out.phase2_iterations = p2.iterations;
    robust_coverage(net, p2.outputs, p2.valid,
                    params.robust_coverage_rounds);
    out.outputs = std::move(p2.outputs);
    out.valid = std::move(p2.valid);
  }

  out.rounds = net.metrics().rounds - before.rounds;
  return out;
}

ApproxQuantileResult approx_quantile(Network& net,
                                     std::span<const double> values,
                                     const ApproxQuantileParams& params) {
  const std::vector<Key> keys = make_keys(values);
  return approx_quantile_keys(net, keys, params);
}

}  // namespace gq
