#include "core/approx_quantile.hpp"

#include "core/approx_pipeline.hpp"
#include "core/exact_quantile.hpp"
#include "core/robust.hpp"
#include "core/three_tournament.hpp"
#include "core/two_tournament.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

// The sequential instantiation of the shared approximate-pipeline control
// flow in core/approx_pipeline.hpp; the engine twin lives in
// engine/pipelines.cpp (bit-identity pinned by tests/test_engine.cpp and
// tests/test_engine_robust.cpp).
struct NetworkApproxOps {
  Network& net;

  [[nodiscard]] std::uint32_t size() const { return net.size(); }
  [[nodiscard]] const Metrics& metrics() const { return net.metrics(); }
  [[nodiscard]] bool faultless() const { return net.faultless(); }

  ExactQuantileResult exact(std::span<const Key> keys,
                            const ExactQuantileParams& params) {
    return exact_quantile_keys(net, keys, params);
  }
  TwoTournamentOutcome two(std::vector<Key>& state, double phi, double eps,
                           bool truncate_last) {
    return two_tournament(net, state, phi, eps, truncate_last);
  }
  ThreeTournamentOutcome three(std::vector<Key>& state, double eps,
                               std::uint32_t final_sample_size) {
    return three_tournament(net, state, eps, final_sample_size);
  }
  RobustTwoTournamentOutcome robust_two(std::vector<Key>& state,
                                        std::vector<bool>& good, double phi,
                                        double eps, bool truncate_last) {
    return robust_two_tournament(net, state, good, phi, eps, truncate_last);
  }
  RobustThreeTournamentOutcome robust_three(std::vector<Key>& state,
                                            std::vector<bool>& good,
                                            double eps,
                                            std::uint32_t final_sample_size) {
    return robust_three_tournament(net, state, good, eps, final_sample_size);
  }
  std::uint64_t coverage(std::vector<Key>& outputs, std::vector<bool>& valid,
                         std::uint32_t t) {
    return robust_coverage(net, outputs, valid, t);
  }
};

}  // namespace

ApproxQuantileResult approx_quantile_keys(Network& net,
                                          std::span<const Key> keys,
                                          const ApproxQuantileParams& params) {
  NetworkApproxOps ops{net};
  return approx_detail::approx_quantile_keys_impl(ops, keys, params);
}

ApproxQuantileResult approx_quantile(Network& net,
                                     std::span<const double> values,
                                     const ApproxQuantileParams& params) {
  const std::vector<Key> keys = make_keys(values);
  return approx_quantile_keys(net, keys, params);
}

}  // namespace gq
