#include "core/pivot.hpp"

#include "agg/spread.hpp"
#include "util/require.hpp"

namespace gq {

using pivot_detail::PriorityKey;
using pivot_detail::PriorityLess;

PivotSample sample_uniform_candidate(Network& net, std::span<const Key> inst,
                                     const std::vector<bool>& candidate) {
  const std::uint32_t n = net.size();
  GQ_REQUIRE(inst.size() == n && candidate.size() == n,
             "one key and one candidate flag per node required");

  // One local round in which every candidate draws its priority; failed
  // nodes sit this pivot out, which keeps the choice uniform over the
  // participating candidates.
  net.begin_round();
  std::vector<PriorityKey> pairs(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    if (!candidate[v]) continue;
    if (net.node_fails(v)) {
      net.record_failed_operation();
      continue;
    }
    SplitMix64 stream = net.node_stream(v);
    pairs[v] = PriorityKey{stream() | 1ull, inst[v]};
  }

  const GenericSpreadResult<PriorityKey> spread = spread_best(
      net, std::span<const PriorityKey>(pairs), PriorityLess{},
      pivot_detail::priority_key_bits(n));

  PivotSample out;
  out.rounds = 1 + spread.rounds;
  const PriorityKey& winner = spread.values.front();
  if (winner.priority != 0 && spread.converged) {
    out.found = true;
    out.pivot = winner.key;
  }
  return out;
}

}  // namespace gq
