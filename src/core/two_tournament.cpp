#include "core/two_tournament.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace gq {

std::pair<TournamentSide, double> tournament_side(double phi, double eps) {
  const double h0 = std::clamp(1.0 - (phi + eps), 0.0, 1.0);
  const double l0 = std::clamp(phi - eps, 0.0, 1.0);
  if (h0 >= l0) return {TournamentSide::kSuppressHigh, h0};
  return {TournamentSide::kSuppressLow, l0};
}

TwoTournamentOutcome two_tournament(Network& net, std::vector<Key>& state,
                                    double phi, double eps,
                                    bool truncate_last,
                                    const TournamentObserver& observer) {
  const std::uint32_t n = net.size();
  GQ_REQUIRE(state.size() == n, "one key per node required");
  GQ_REQUIRE(phi >= 0.0 && phi <= 1.0, "phi must lie in [0,1]");
  GQ_REQUIRE(eps > 0.0 && eps < 0.5, "eps must lie in (0, 1/2)");
  GQ_REQUIRE(net.faultless(),
             "two_tournament is the failure-free variant; use "
             "robust_two_tournament under a failure model or adversary");

  TwoTournamentOutcome out;
  const auto [side, start] = tournament_side(phi, eps);
  out.side = side;
  out.schedule = two_tournament_schedule(start, eps);
  const bool suppress_high = side == TournamentSide::kSuppressHigh;
  const std::uint64_t bits = key_bits(n);

  std::vector<Key> snapshot(n);
  for (std::size_t iter = 0; iter < out.schedule.iterations(); ++iter) {
    const double delta =
        truncate_last ? out.schedule.delta[iter] : 1.0;
    snapshot = state;

    // Round 1: every node pulls its first sample.
    net.begin_round();
    std::vector<std::uint32_t> first(n);
    for (std::uint32_t v = 0; v < n; ++v) {
      SplitMix64 stream = net.node_stream(v);
      first[v] = net.sample_peer(v, stream);
      net.record_message(bits);
    }

    // Round 2: the delta coin and, if it lands, the second sample.
    net.begin_round();
    for (std::uint32_t v = 0; v < n; ++v) {
      SplitMix64 stream = net.node_stream(v);
      const bool tournament =
          delta >= 1.0 || rand_bernoulli(stream, delta);
      if (tournament) {
        const std::uint32_t second = net.sample_peer(v, stream);
        net.record_message(bits);
        const Key& a = snapshot[first[v]];
        const Key& b = snapshot[second];
        state[v] = suppress_high ? std::min(a, b) : std::max(a, b);
      } else {
        state[v] = snapshot[first[v]];
      }
    }

    ++out.iterations;
    if (observer) observer(out.iterations, state);
  }
  return out;
}

}  // namespace gq
