// The Theorem 1.3 information-spreading process.
//
// In the lower-bound argument only the nodes holding a value from the
// distinguishing set S can tell the two adversarial scenarios apart; a node
// can answer an eps-approximate quantile query only after (transitively)
// hearing from S.  This module simulates the most GENEROUS spreading of
// that knowledge — every node both pushes and pulls every round, messages
// unbounded — so the measured rounds-to-inform-everyone is a certified
// lower bound on any gossip algorithm's round count for the instance.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/network.hpp"

namespace gq {

struct InformationSpreadResult {
  // informed_counts[r] = number of informed nodes after round r+1.
  std::vector<std::uint64_t> informed_counts;
  std::uint64_t rounds_to_all = 0;  // rounds until every node is informed
  bool completed = false;
};

// `informative[v]` marks the nodes initially holding a value from S.
[[nodiscard]] InformationSpreadResult simulate_information_spread(
    Network& net, const std::vector<bool>& informative,
    std::uint64_t max_rounds = 0);

}  // namespace gq
