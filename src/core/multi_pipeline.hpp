// The executor-independent control flow of the shared-schedule
// multi-quantile pipeline (Corollary 1.5: all q targets in one gossip run).
//
// Same rationale as core/approx_pipeline.hpp: the dedupe, the lane
// schedules, the per-iteration activity/coin decisions, the shared Phase-2
// schedule, and the fallback routing are all observable in outputs, round
// counts, and Metrics, so the sequential Network path and the parallel
// Engine must execute ONE copy of this logic.
//
// ## The shared schedule
//
// Each unique target phi_l becomes a *lane*: per-node state is a q-lane
// vector instead of a single key, and every gossip round is shared — one
// peer draw serves all q lanes, and a round's message carries the sender's
// whole lane vector (billed as lanes x key_bits(n)).
//
// Phase 1 (2-TOURNAMENT, Algorithm 1) runs each lane's own schedule —
// (side_l, start_l) = tournament_side(phi_l, eps), schedule_l =
// two_tournament_schedule(start_l, eps) — superimposed over
// max_l iterations(schedule_l) shared iterations of two rounds each:
//
//   * Round A: every node draws ONE first sample (same draw as the
//     single-target kernel) and sends its vector: one message of
//     (#active lanes) x key_bits(n) bits.
//   * Round B: every node flips each *active* lane's delta coin in lane
//     order (delta >= 1.0 short-circuits without consuming a draw, exactly
//     as in core/two_tournament.cpp), then — if any lane tournaments —
//     draws ONE shared second sample and sends one message of
//     (#tournament lanes) x key_bits(n) bits.  Commits are per-lane against
//     the iteration-start snapshot: tournament lanes take min/max by their
//     side, non-tournament active lanes adopt the first sample, lanes whose
//     own schedule has ended keep their value.
//
// Phase 2 (3-TOURNAMENT, Algorithm 2) needs no per-lane schedule at all:
// three_tournament_schedule(eps/4, n) depends only on (eps, n), so every
// lane runs the same iterations off the same three shared pulls per
// iteration (one draw per node per round, messages of q x key_bits(n)),
// committing median-of-three per lane; the final K sampling rounds share
// their draws the same way, with a per-lane nth_element median.
//
// Consequences, pinned by tests/test_multi_quantile.cpp:
//   * q = 1 is bit-identical to the single-target approx_quantile pipeline
//     (same draws, same rounds, same Metrics).
//   * q targets cost max-of-schedules Phase-1 iterations instead of
//     sum-of-schedules, and exactly one Phase 2 — for p50/p90/p99/p999 at
//     eps = 0.1 that is ~1.2x a single run's rounds, against ~4x for four
//     independent runs.  Bits scale with q only where lanes are live.
//
// Routing: the shared schedule is the failure-free tournament path.  When
// eps sits below eps_tournament_floor(n) (exact-fallback territory), a
// failure model or adversary is installed (robust kernels own per-node
// good-flag dynamics that are per-lane-divergent), or the unique-target
// count exceeds kMaxSharedLanes, each unique target pays its own
// approx_quantile run — still deduped, so duplicated phis never cost extra
// rounds on either route.
//
// The Ops provider supplies the executor-bound phases:
//
//   uint32_t size();
//   const Metrics& metrics();
//   bool faultless();   // no failure model AND no adversary installed
//   ApproxQuantileResult approx(span<const Key>, const ApproxQuantileParams&);
//   void begin(span<const Key> keys, size_t lanes);  // broadcast to lanes
//   void two_iteration(span<const MultiLaneStep> steps);
//   void three_iteration();
//   void final_sample(uint32_t k_samples, vector<vector<Key>>& outputs);
//
// Instantiated by core/multi_quantile.cpp (Network) and
// engine/pipelines.cpp (Engine); bit-identity of the two is pinned by
// tests/test_engine_multi.cpp at 1/2/8 threads.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "analysis/recurrences.hpp"
#include "analysis/theory_bounds.hpp"
#include "core/multi_quantile.hpp"
#include "core/params.hpp"
#include "core/result.hpp"
#include "core/two_tournament.hpp"
#include "sim/key.hpp"
#include "sim/metrics.hpp"
#include "telemetry/telemetry.hpp"
#include "util/require.hpp"

namespace gq {

// Lane cap of the shared schedule: per-node tournament flags travel as a
// uint64_t bitmask through the engine kernel, and beyond ~64 lanes the
// q x key_bits messages stop being meaningfully cheaper than more runs.
inline constexpr std::size_t kMaxSharedLanes = 64;

// One lane's instructions for one shared Phase-1 iteration.
struct MultiLaneStep {
  bool active = false;        // lane still inside its own schedule
  bool suppress_high = true;  // lane's tournament side
  double delta = 1.0;         // lane's coin this iteration (>= 1.0: no coin)
};

namespace multi_detail {

struct MultiLaneSpec {
  bool suppress_high = true;
  TwoTournamentSchedule schedule;
};

template <typename Ops>
MultiQuantileResult multi_quantile_keys_impl(
    Ops& ops, std::span<const Key> keys, const MultiQuantileParams& params) {
  const std::uint32_t n = ops.size();
  GQ_REQUIRE(keys.size() == n, "one key per node required");
  GQ_REQUIRE(!params.phis.empty(), "at least one quantile target required");
  for (const double phi : params.phis) {
    // NaN and +/-inf compare false here, so non-finite targets are
    // rejected by the same check (pinned by tests/test_multi_quantile.cpp).
    GQ_REQUIRE(phi >= 0.0 && phi <= 1.0, "phi must lie in [0,1]");
  }
  GQ_REQUIRE(params.eps > 0.0 && params.eps < 0.5,
             "eps must lie in (0, 1/2)");
  GQ_REQUIRE(params.final_sample_size >= 1,
             "final sample size must be positive");

  GQ_SPAN("pipeline/multi_quantile");
  const Metrics before = ops.metrics();

  // Stable first-appearance dedupe: duplicated targets share one lane (one
  // run on the fallback route), so they cost nothing extra; `slot` maps
  // each caller position back to its unique lane.  Dedupe happens before
  // any randomness so a duplicated target list leaves the transcript of
  // its deduped equivalent untouched.
  std::vector<double> unique;
  std::vector<std::size_t> slot(params.phis.size());
  for (std::size_t i = 0; i < params.phis.size(); ++i) {
    std::size_t u = 0;
    while (u < unique.size() && unique[u] != params.phis[i]) ++u;
    if (u == unique.size()) unique.push_back(params.phis[i]);
    slot[i] = u;
  }

  MultiQuantileResult out;
  out.unique_targets = unique.size();
  std::vector<ApproxQuantileResult> per_unique(unique.size());

  const bool shared = ops.faultless() &&
                      !(params.eps < eps_tournament_floor(n)) &&
                      unique.size() <= kMaxSharedLanes;
  if (!shared) {
    // Deduped independent runs; the approx route supplies the exact
    // fallback and the robust failure-model branch per target.
    ApproxQuantileParams ap;
    ap.eps = params.eps;
    ap.final_sample_size = params.final_sample_size;
    ap.robust_coverage_rounds = params.robust_coverage_rounds;
    for (std::size_t u = 0; u < unique.size(); ++u) {
      ap.phi = unique[u];
      per_unique[u] = ops.approx(keys, ap);
    }
  } else {
    std::vector<MultiLaneSpec> lanes(unique.size());
    std::size_t phase1_max = 0;
    for (std::size_t u = 0; u < unique.size(); ++u) {
      const auto [side, start] = tournament_side(unique[u], params.eps);
      lanes[u].suppress_high = side == TournamentSide::kSuppressHigh;
      lanes[u].schedule = two_tournament_schedule(start, params.eps);
      phase1_max = std::max(phase1_max, lanes[u].schedule.iterations());
    }
    // Lemma 2.11 as in the single-target pipeline: Phase 2 approximates
    // the median of each lane's Phase-1 configuration to eps/4, and its
    // schedule depends only on (eps, n) — identical for every lane.
    const double phase2_eps = params.eps / 4.0;
    const ThreeTournamentSchedule phase2 =
        three_tournament_schedule(phase2_eps, n);
    const std::uint32_t k_samples = params.final_sample_size | 1u;

    ops.begin(keys, lanes.size());
    {
      GQ_SPAN("multi/two_tournament");
      std::vector<MultiLaneStep> steps(lanes.size());
      for (std::size_t iter = 0; iter < phase1_max; ++iter) {
        for (std::size_t u = 0; u < lanes.size(); ++u) {
          steps[u].active = iter < lanes[u].schedule.iterations();
          steps[u].suppress_high = lanes[u].suppress_high;
          steps[u].delta =
              steps[u].active ? lanes[u].schedule.delta[iter] : 1.0;
        }
        ops.two_iteration(steps);
      }
    }
    std::vector<std::vector<Key>> outputs;
    {
      GQ_SPAN("multi/three_tournament");
      for (std::size_t iter = 0; iter < phase2.iterations(); ++iter) {
        ops.three_iteration();
      }
      ops.final_sample(k_samples, outputs);
    }
    for (std::size_t u = 0; u < unique.size(); ++u) {
      per_unique[u].outputs = std::move(outputs[u]);
      per_unique[u].valid.assign(n, true);
      per_unique[u].phase1_iterations = lanes[u].schedule.iterations();
      per_unique[u].phase2_iterations = phase2.iterations();
    }
  }

  out.metrics = ops.metrics().since(before);
  out.rounds = out.metrics.rounds;
  out.shared_schedule = shared;
  if (shared) {
    // Every target's answer cost the whole shared run.
    for (ApproxQuantileResult& r : per_unique) r.rounds = out.rounds;
  }
  out.per_phi.resize(params.phis.size());
  for (std::size_t i = 0; i < params.phis.size(); ++i) {
    out.per_phi[i] = per_unique[slot[i]];
  }
  return out;
}

}  // namespace multi_detail
}  // namespace gq
