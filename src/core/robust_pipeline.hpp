// The executor-independent control flow of the Section-5.1 robust
// tournaments (Theorem 1.4).
//
// Like Algorithm 3 before it (core/exact_pipeline.hpp), the robust variants
// historically lived as Network-bound functions; porting them to the
// parallel engine would have duplicated the schedule bookkeeping whose every
// branch is observable in round counts and Metrics — a bit-identity hazard.
// The control flow — pull fan-out sizing, tournament schedules, the
// delta-truncation, the robust final sampling step, the coverage loop with
// its early exit — is shared here, templated over an `Ops` provider that
// executes the per-phase gossip mechanics:
//
//   * core/robust.cpp      — Ops over the sequential Network (per-round
//     node loops, exactly the pre-refactor mechanics);
//   * engine/kernels.cpp   — Ops over the parallel Engine (fused fan-out
//     pull kernels on engine-pooled ping-pong state).
//
// Bit-identity of the two paths then reduces to bit-identity of each phase
// kernel, which tests/test_engine_robust.cpp pins at 1/2/8 threads.
//
// The tournament Ops concept (duck-typed; see NetworkRobustOps /
// EngineRobustOps):
//   uint32_t size();
//   double   max_failure_probability();
//   // One robust 2-TOURNAMENT iteration: `pulls` fan-out pull rounds
//   // reading the iteration-start state/good snapshot, then the delta-coin
//   // round committing min/max of the first two good samples; updates
//   // state and good in place (nodes short of two good pulls turn bad).
//   void two_iteration(uint32_t pulls, double delta, bool suppress_high);
//   // One robust 3-TOURNAMENT iteration: `pulls` fan-out pull rounds, then
//   // the in-place median-of-three commit (no extra round — the commit
//   // draws no randomness).
//   void three_iteration(uint32_t pulls);
//   // The robust final step: `final_pulls` rounds collecting k good
//   // samples per node; good nodes that gathered all k output the median.
//   void final_median_sample(uint32_t final_pulls, uint32_t k,
//                            std::vector<Key>& outputs,
//                            std::vector<bool>& valid);
//
// The coverage Ops concept (see NetworkCoverageOps / EngineCoverageOps):
//   bool all_served();
//   void coverage_round();  // unserved nodes pull; adopt any served answer
//
// A note on the ROADMAP's plan for this port: it speculated the fan-out
// counts would be CombiningScatter's first user, but the fan-out pulls are
// pull-shaped — every puller folds its own good-pull count and samples from
// the immutable round-start snapshot, touching no other node's slots — so
// the batched kernels parallelise with per-node output slots exactly like
// the failure-free tournament kernels, and no scatter is involved.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "analysis/recurrences.hpp"
#include "analysis/theory_bounds.hpp"
#include "core/three_tournament.hpp"
#include "core/two_tournament.hpp"
#include "sim/key.hpp"
#include "telemetry/telemetry.hpp"
#include "util/require.hpp"

namespace gq {

struct RobustTwoTournamentOutcome {
  std::size_t iterations = 0;
  TournamentSide side = TournamentSide::kSuppressHigh;
  std::uint32_t pulls_per_iteration = 0;
};

struct RobustThreeTournamentOutcome {
  std::size_t iterations = 0;
  std::uint32_t pulls_per_iteration = 0;
  std::vector<Key> outputs;      // per-node answer (meaningful iff valid)
  std::vector<bool> valid;       // nodes that produced an output
};

namespace robust_detail {

// The commit rules are templated over the ordered state representation:
// the sequential Network ops run them on Key, the engine kernels on the
// 32-bit interned ranks of sim/key_intern.hpp.  Rank order is key order by
// construction, so one copy of each rule serves both — a tie-break tweak
// cannot diverge the bit-identity twins.
template <typename T>
inline const T& median3(const T& a, const T& b, const T& c) {
  if (a < b) {
    if (b < c) return b;
    return a < c ? c : a;
  }
  if (a < c) return a;
  return b < c ? c : b;
}

// Commit rule of one good node in a robust 2-TOURNAMENT iteration: the
// tournament (when the delta coin lands) takes min/max of the first two
// good samples; otherwise the node adopts the first sample unchanged.
template <typename T>
inline T two_tournament_commit(const T& s0, const T& s1, bool tournament,
                               bool suppress_high) {
  if (!tournament) return s0;
  return suppress_high ? std::min(s0, s1) : std::max(s0, s1);
}

// Robust Algorithm 1 (see core/robust.hpp for the model).
template <typename Ops>
RobustTwoTournamentOutcome robust_two_tournament_impl(Ops& ops, double phi,
                                                      double eps,
                                                      bool truncate_last) {
  GQ_REQUIRE(phi >= 0.0 && phi <= 1.0, "phi must lie in [0,1]");
  GQ_REQUIRE(eps > 0.0 && eps < 0.5, "eps must lie in (0, 1/2)");

  RobustTwoTournamentOutcome out;
  const double mu = ops.max_failure_probability();
  out.pulls_per_iteration = robust_pull_count(mu, 4.0);
  const auto [side, start] = tournament_side(phi, eps);
  out.side = side;
  const bool suppress_high = side == TournamentSide::kSuppressHigh;
  const TwoTournamentSchedule schedule = two_tournament_schedule(start, eps);

  for (std::size_t iter = 0; iter < schedule.iterations(); ++iter) {
    GQ_SPAN("robust/two_iteration");
    const double delta = truncate_last ? schedule.delta[iter] : 1.0;
    ops.two_iteration(out.pulls_per_iteration, delta, suppress_high);
    ++out.iterations;
  }
  return out;
}

// Robust Algorithm 2, including the robust final sampling step.
template <typename Ops>
RobustThreeTournamentOutcome robust_three_tournament_impl(
    Ops& ops, double eps, std::uint32_t final_sample_size) {
  GQ_REQUIRE(eps > 0.0 && eps < 0.5, "eps must lie in (0, 1/2)");

  RobustThreeTournamentOutcome out;
  const double mu = ops.max_failure_probability();
  out.pulls_per_iteration = robust_pull_count(mu, 6.0);
  const ThreeTournamentSchedule schedule =
      three_tournament_schedule(eps, ops.size());
  const std::uint32_t k_samples = (final_sample_size | 1u);

  for (std::size_t iter = 0; iter < schedule.iterations(); ++iter) {
    GQ_SPAN("robust/three_iteration");
    ops.three_iteration(out.pulls_per_iteration);
    ++out.iterations;
  }

  // Robust final step: collect K good pulls out of Theta(K/(1-mu) log ...)
  // attempts and output their median.
  GQ_SPAN("robust/final_median_sample");
  const std::uint32_t final_pulls =
      robust_pull_count(mu, 2.0 * static_cast<double>(k_samples));
  ops.final_median_sample(final_pulls, k_samples, out.outputs, out.valid);
  return out;
}

// Coverage tail (Theorem 1.4's caveat): for `t` rounds every unserved node
// pulls and adopts the output of any served node it reaches.  Returns the
// rounds consumed.
template <typename Ops>
std::uint64_t robust_coverage_impl(Ops& ops, std::uint32_t t) {
  GQ_SPAN("robust/coverage");
  std::uint64_t rounds = 0;
  for (std::uint32_t r = 0; r < t; ++r) {
    // Early exit once everyone is served keeps reported costs honest: a
    // deployed node would simply stop asking.
    if (ops.all_served()) break;
    ops.coverage_round();
    ++rounds;
  }
  return rounds;
}

}  // namespace robust_detail
}  // namespace gq
