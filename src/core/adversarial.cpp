// Network instantiation of the adversarially-robust pipelines: the
// sequential reference transcript the Engine overloads are differentially
// pinned against (tests/test_adversary.cpp).
#include "core/adversarial.hpp"

#include <cstdint>

#include "sim/metrics.hpp"
#include "workload/tiebreak.hpp"

namespace gq {
namespace {

struct NetworkAdversarialOps {
  Network& net;

  [[nodiscard]] std::uint32_t size() const { return net.size(); }
  [[nodiscard]] std::uint64_t seed() const { return net.seed(); }
  [[nodiscard]] const FailureModel& failures() const {
    return net.failures();
  }
  [[nodiscard]] AdversaryStrategy* adversary() const {
    return net.adversary();
  }
  [[nodiscard]] const Metrics& metrics() const { return net.metrics(); }
  [[nodiscard]] std::uint64_t round() const { return net.round(); }

  void advance_rounds(std::uint32_t k) {
    for (std::uint32_t i = 0; i < k; ++i) (void)net.begin_round();
  }

  // Sequential per-node fold: one local accumulator, folded into the run
  // accounting afterwards — the same fragments the engine shards produce,
  // merged in the same (node) order.
  template <typename Fn>
  void for_each_node(Fn&& fn) {
    Metrics local;
    for (std::uint32_t v = 0; v < net.size(); ++v) fn(v, local);
    net.merge_metrics(local);
  }

  AdversarialQuantileResult quantile(std::span<const Key> keys,
                                     const AdversarialQuantileParams& params) {
    return adversarial_quantile_keys(net, keys, params);
  }
};

}  // namespace

AdversarialQuantileResult adversarial_quantile_keys(
    Network& net, std::span<const Key> keys,
    const AdversarialQuantileParams& params) {
  NetworkAdversarialOps ops{net};
  return adversary_detail::adversarial_quantile_impl(ops, keys, params);
}

AdversarialQuantileResult adversarial_quantile(
    Network& net, std::span<const double> values,
    const AdversarialQuantileParams& params) {
  const auto keys = make_keys(values);
  return adversarial_quantile_keys(net, keys, params);
}

AdversarialMeanResult adversarial_mean(Network& net,
                                       std::span<const double> values,
                                       const AdversarialMeanParams& params) {
  const auto keys = make_keys(values);
  NetworkAdversarialOps ops{net};
  return adversary_detail::adversarial_mean_impl(ops, values, keys, params);
}

}  // namespace gq
