// The executor-independent control flow of Algorithm 3 (exact quantile).
//
// exact_quantile historically lived as one Network-bound function; porting
// it to the parallel engine would have meant duplicating ~250 lines of
// bracketing bookkeeping whose every branch is observable in round counts
// and Metrics — a bit-identity hazard.  Instead the pipeline is templated
// over an `Ops` provider supplying the gossip substrates, and both
// executors instantiate the SAME control flow:
//
//   * core/exact_quantile.cpp  — Ops over the sequential Network
//     (agg/spread, agg/rank_count, core/pivot, core/token_split);
//   * engine/pipelines.cpp     — Ops over the parallel Engine's batched
//     kernels (scatter-based push-sum, token split, spreads).
//
// Bit-identity of the two paths then reduces to bit-identity of each
// primitive, which tests/test_engine.cpp pins kernel by kernel.
//
// The Ops concept (duck-typed; see NetworkExactOps / EngineExactOps):
//   uint32_t  size();
//   uint64_t  seed();                // diagnostic context for typed aborts
//   uint64_t  round();               //   "  (stream-relative round counter)
//   const Metrics& metrics();
//   ApproxQuantileResult approx(span<const Key>, const ApproxQuantileParams&);
//   SpreadResult spread_min_keys(span<const Key>);
//   SpreadResult spread_max_keys(span<const Key>);
//   CountResult  count(const vector<bool>&);
//   CountResult  rank(span<const Key>, const Key&);
//   TripleCountResult count3(const vector<bool>&, ..., ...);
//   PivotSample  pivot(span<const Key>, const vector<bool>&);
//   TokenSplitResult token_split(span<const Key>, uint64_t m, uint64_t tag);
//   uint64_t exact_count_rounds();   // cost-model input
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

#include "agg/rank_count.hpp"
#include "agg/spread.hpp"
#include "analysis/theory_bounds.hpp"
#include "core/params.hpp"
#include "core/pivot.hpp"
#include "core/result.hpp"
#include "core/token_split.hpp"
#include "sim/key.hpp"
#include "sim/metrics.hpp"
#include "telemetry/telemetry.hpp"
#include "util/require.hpp"

namespace gq::exact_detail {

// Structured throw-site context for ExactPipelineError: which run (seed, n)
// aborted, where (phase label), and when.  The round is the executor's
// stream-relative counter (reset by reset_stream), not lifetime Metrics
// rounds, so warm service attempts abort with the same context as a cold
// run — the context is part of the differential contract.
template <typename Ops>
ExactPipelineError::Context abort_context(Ops& ops, const char* phase) {
  ExactPipelineError::Context context;
  context.seed = ops.seed();
  context.round = ops.round();
  context.n = ops.size();
  context.phase = phase;
  return context;
}

struct PipelineOutcome {
  Key answer = Key::infinite();
  std::vector<Key> outputs;
  std::vector<bool> valid;
  std::size_t iterations = 0;
  std::size_t endgame_phases = 0;
};

// Broadcasts the smallest finite key among `contributions` to every node.
template <typename Ops>
Key broadcast_min_finite(Ops& ops, std::vector<Key> contributions,
                         std::vector<Key>& outputs) {
  const SpreadResult sr = ops.spread_min_keys(contributions);
  GQ_REQUIRE(sr.converged && sr.values.front().is_finite(),
             "answer broadcast failed to converge on a finite key");
  outputs = sr.values;
  return sr.values.front();
}

// Uniform-pivot selection phases (shared mechanics with the KDG03
// baseline): find the key of rank k within `inst` and broadcast it.
template <typename Ops>
PipelineOutcome selection_endgame(Ops& ops, std::vector<Key>& inst,
                                  std::uint64_t k,
                                  const ExactQuantileParams& params,
                                  std::size_t iterations_so_far) {
  GQ_SPAN("exact/selection_endgame");
  const std::uint32_t n = ops.size();
  PipelineOutcome out;
  out.iterations = iterations_so_far;

  Key lo_e = Key::neg_infinite();
  Key hi_e = Key::infinite();
  std::vector<bool> candidate(n);
  for (std::uint32_t phase = 0; phase < params.max_endgame_phases; ++phase) {
    GQ_SPAN("exact/endgame_phase");
    for (std::uint32_t v = 0; v < n; ++v) {
      candidate[v] =
          inst[v].is_finite() && lo_e < inst[v] && inst[v] < hi_e;
    }
    const PivotSample pv = ops.pivot(inst, candidate);
    if (!pv.found) {
      throw ExactPipelineError(
          ExactPipelineError::Kind::kEndgameNoCandidates,
          "selection endgame ran out of candidates (count inconsistency)",
          abort_context(ops, "selection_endgame"));
    }
    ++out.endgame_phases;
    const std::uint64_t rank = ops.rank(inst, pv.pivot).counts[0];
    if (rank == k) {
      out.answer = pv.pivot;
      out.outputs.assign(n, pv.pivot);
      out.valid.assign(n, true);
      return out;
    }
    if (rank > k) {
      hi_e = pv.pivot;
    } else {
      lo_e = pv.pivot;
    }
  }
  throw ExactPipelineError(ExactPipelineError::Kind::kEndgameStalled,
                           "selection endgame did not converge",
                           abort_context(ops, "selection_endgame"));
}

// Predicted round costs used by ExactStrategy::kAuto.  These only steer the
// strategy choice; all reported costs are measured, not predicted.
struct CostModel {
  double per_endgame_phase;  // pivot spread + exact count
  double per_iteration;      // 2 approx runs + 2 spreads + triple count + tokens

  static CostModel build(std::uint32_t n, std::uint64_t exact_count_rounds,
                         double slack) {
    const auto nd = static_cast<double>(n);
    const double log2n = std::log2(nd);
    const double count_rounds = static_cast<double>(exact_count_rounds);
    const double spread_rounds = 2.0 * log2n + 10.0;
    const double approx_rounds =
        3.0 * (phase1_iteration_bound(slack) +
               phase2_iteration_bound(slack / 4.0, n)) +
        20.0;
    CostModel m{};
    m.per_endgame_phase = 1.0 + spread_rounds + count_rounds;
    m.per_iteration = 2.0 * approx_rounds + 2.0 * spread_rounds +
                      count_rounds + log2n + 10.0;
    return m;
  }
};

template <typename Ops>
PipelineOutcome run_pipeline(Ops& ops, std::span<const Key> keys,
                             const ExactQuantileParams& params) {
  GQ_SPAN("exact/run_pipeline");
  const std::uint32_t n = ops.size();
  const auto nd = static_cast<double>(n);

  // Target rank among the original keys.
  std::uint64_t k = std::clamp<std::uint64_t>(
      static_cast<std::uint64_t>(std::ceil(params.phi * nd)), 1, n);

  // Per-iteration slack (see ExactQuantileParams::slack).
  const double s = params.slack > 0.0
                       ? params.slack
                       : eps_tournament_floor(n);
  GQ_REQUIRE(s > 0.0 && s < 0.5, "bracketing slack must lie in (0, 1/2)");
  // The answer block must cover the final run's rank window [k-3sn, k-sn].
  const std::uint64_t block_target =
      static_cast<std::uint64_t>(std::ceil(3.0 * s * nd)) + 1;

  std::vector<Key> inst(keys.begin(), keys.end());
  std::uint64_t block = 1;  // ranks (k-block, k] of inst all hold the answer
  PipelineOutcome out;

  ApproxQuantileParams inner;
  inner.eps = s;
  // The brackets take the min/max over ALL nodes' outputs, so a single
  // tail outlier inflates the window.  K = 31 drives the per-node outlier
  // probability below 1/poly(n) (Lemma 2.17 amplification).
  inner.final_sample_size = 31;

  while (true) {
    if (block >= k) {
      // The answer block covers every rank <= k, so the smallest surviving
      // key is an answer copy; one min-broadcast finishes (this is also the
      // phi ~ 0 fast path, where k0 = 1 makes the input minimum the answer).
      std::vector<Key> contributions = inst;
      out.answer =
          broadcast_min_finite(ops, std::move(contributions), out.outputs);
      out.valid.assign(n, true);
      return out;
    }
    if (block >= block_target) {
      // Step 10: one approximate query lands every node inside the answer
      // block; broadcast the smallest output to serve stragglers.
      inner.phi = std::clamp(static_cast<double>(k) / nd - 2.0 * s, 0.0, 1.0);
      ApproxQuantileResult fin = ops.approx(inst, inner);
      for (std::uint32_t v = 0; v < n; ++v) {
        if (!fin.valid[v]) fin.outputs[v] = Key::infinite();
      }
      out.answer = broadcast_min_finite(ops, std::move(fin.outputs),
                                        out.outputs);
      out.valid.assign(n, true);
      return out;
    }
    if (out.iterations >= params.max_iterations) {
      return selection_endgame(ops, inst, k, params, out.iterations);
    }
    ++out.iterations;
    GQ_SPAN("exact/iteration");

    // Steps 3-4: bracket the k/n-quantile from both sides and spread the
    // extremes.
    inner.phi = std::clamp(static_cast<double>(k) / nd - s, 0.0, 1.0);
    ApproxQuantileResult r_lo = ops.approx(inst, inner);
    inner.phi = std::clamp(static_cast<double>(k) / nd + s, 0.0, 1.0);
    ApproxQuantileResult r_hi = ops.approx(inst, inner);

    for (std::uint32_t v = 0; v < n; ++v) {
      if (!r_lo.valid[v]) r_lo.outputs[v] = Key::infinite();
      if (!r_hi.valid[v]) r_hi.outputs[v] = Key::neg_infinite();
    }
    const SpreadResult s_lo = ops.spread_min_keys(r_lo.outputs);
    const SpreadResult s_hi = ops.spread_max_keys(r_hi.outputs);
    const Key lo = s_lo.values.front();
    const Key hi = s_hi.values.front();
    // A bracket can degenerate when an inner run misses its w.h.p. window
    // (e.g. the upper run lands on a valueless node's +inf key).  A
    // one-sided miss is tolerated by dropping that side's filter below;
    // a two-sided or crossed miss makes the iteration useless.
    const bool lo_ok = lo.is_finite();
    const bool hi_ok = hi.is_finite();
    if ((!lo_ok && !hi_ok) || (lo_ok && hi_ok && hi < lo)) {
      if (params.strategy == ExactStrategy::kPreferDuplication) {
        continue;  // re-bracket with fresh randomness
      }
      return selection_endgame(ops, inst, k, params, out.iterations);
    }

    // Step 5: exact counts — A = rank(lo), B = rank(hi), F = #valued — in
    // one diffusion.
    std::vector<bool> ind_a(n), ind_b(n), ind_c(n);
    for (std::uint32_t v = 0; v < n; ++v) {
      ind_a[v] = inst[v] <= lo;
      ind_b[v] = inst[v] <= hi;
      ind_c[v] = inst[v].is_finite();
    }
    const TripleCountResult cnt = ops.count3(ind_a, ind_b, ind_c);
    const std::uint64_t rank_lo = cnt.a.front();
    const std::uint64_t rank_hi = cnt.b.front();
    const std::uint64_t finite_cnt = cnt.c.front();

    // Exactness of the counts makes these guards sound: a bracket is used
    // only if it provably does not cut the answer away.
    const bool use_lo = lo_ok && rank_lo >= 1 && rank_lo <= k;
    const bool use_hi = hi_ok && rank_hi >= k;
    // Diagnostic trace for development and experiment debugging.
    if (std::getenv("GQ_EXACT_TRACE") != nullptr) {
      std::fprintf(stderr,
                   "[exact] iter=%zu k=%llu block=%llu/%llu A=%llu B=%llu "
                   "F=%llu use_lo=%d use_hi=%d\n",
                   out.iterations, static_cast<unsigned long long>(k),
                   static_cast<unsigned long long>(block),
                   static_cast<unsigned long long>(block_target),
                   static_cast<unsigned long long>(rank_lo),
                   static_cast<unsigned long long>(rank_hi),
                   static_cast<unsigned long long>(finite_cnt),
                   use_lo ? 1 : 0, use_hi ? 1 : 0);
    }
    if (!use_lo && !use_hi) {
      if (params.strategy == ExactStrategy::kPreferDuplication) {
        continue;  // re-bracket with fresh randomness
      }
      return selection_endgame(ops, inst, k, params, out.iterations);
    }

    // Step 6: discard values outside [lo, hi].
    for (std::uint32_t v = 0; v < n; ++v) {
      if ((use_lo && inst[v] < lo) || (use_hi && hi < inst[v])) {
        inst[v] = Key::infinite();
      }
    }
    const std::uint64_t removed_below = use_lo ? rank_lo - 1 : 0;
    k -= removed_below;
    block = std::min(block, k);
    const std::uint64_t survivors =
        (use_hi ? rank_hi : finite_cnt) - removed_below;
    if (survivors == 0) {
      throw ExactPipelineError(ExactPipelineError::Kind::kBracketingEmptied,
                               "bracketing removed every candidate",
                               abort_context(ops, "bracketing"));
    }
    if (block >= k) continue;  // finish via the min-broadcast fast path

    // Steps 7-8: duplication.  The paper targets n^0.99 total tokens via
    // m = smallest power of two exceeding (n^0.99/2)/survivors; we take the
    // LARGEST power of two fitting the same target (bounded by 4n/5 so
    // scattering keeps a constant fraction of empty nodes), which dominates
    // the paper's choice whenever it fits and maximizes block growth.
    const double token_target = std::min(std::pow(nd, 0.99), 0.8 * nd);
    std::uint64_t m = 1;
    while (static_cast<double>(2 * m) * static_cast<double>(survivors) <=
           token_target) {
      m *= 2;
    }

    bool go_endgame = false;
    switch (params.strategy) {
      case ExactStrategy::kPreferEndgame:
        go_endgame = true;
        break;
      case ExactStrategy::kPreferDuplication:
        // A degenerate multiplier usually means an outlier widened the
        // window; re-bracketing with fresh randomness shrinks it again, so
        // keep iterating (max_iterations still bounds the loop).
        go_endgame = false;
        break;
      case ExactStrategy::kAuto: {
        if (m < 2) {
          go_endgame = block < block_target;
        } else {
          // Compare predicted costs of finishing by duplication vs by
          // selection phases; both finish, this only picks the cheaper.
          // The duplication route terminates when the block reaches either
          // block_target or k itself (the min-broadcast fast path).
          const CostModel cost =
              CostModel::build(n, ops.exact_count_rounds(), s);
          const double goal = static_cast<double>(
              std::min<std::uint64_t>(block_target, k));
          const double dup_iters = std::max(
              1.0, std::ceil(std::log(goal / static_cast<double>(block)) /
                             std::log(static_cast<double>(m))));
          // Uniform pivots shave ~log2(4/3) candidates per phase; 1.6x
          // log2 matches the measured phase counts.
          const double endgame_phases =
              1.6 * std::log2(std::max(2.0, static_cast<double>(survivors))) +
              4.0;
          go_endgame = endgame_phases * cost.per_endgame_phase <
                       dup_iters * cost.per_iteration;
        }
        break;
      }
    }
    if (go_endgame) {
      return selection_endgame(ops, inst, k, params, out.iterations);
    }
    if (m >= 2) {
      GQ_SPAN("exact/token_split");
      const TokenSplitResult ts = ops.token_split(
          inst, m, static_cast<std::uint64_t>(out.iterations) << 32);
      inst = ts.instance;
      k *= m;
      block *= m;
    }
    // m == 1 with block >= block_target falls through to the final run.
  }
}

// The full entry point: pipeline, verification against the original input,
// and the w.h.p.-never retry loop.
template <typename Ops>
ExactQuantileResult exact_quantile_keys_impl(
    Ops& ops, std::span<const Key> keys, const ExactQuantileParams& params) {
  const std::uint32_t n = ops.size();
  GQ_REQUIRE(keys.size() == n, "one key per node required");
  GQ_REQUIRE(params.phi >= 0.0 && params.phi <= 1.0, "phi must lie in [0,1]");

  GQ_SPAN("pipeline/exact_quantile");
  const auto nd = static_cast<double>(n);
  const std::uint64_t k0 = std::clamp<std::uint64_t>(
      static_cast<std::uint64_t>(std::ceil(params.phi * nd)), 1, n);
  const Metrics before = ops.metrics();

  constexpr int kMaxAttempts = 3;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    const PipelineOutcome pipe = run_pipeline(ops, keys, params);

    // Verification: the answer's rank among the ORIGINAL keys must be
    // exactly k0.  The probe's maximal tag matches every duplication copy
    // of the answer's (value, id).
    GQ_SPAN("exact/verification");
    const Key probe{pipe.answer.value, pipe.answer.id,
                    std::numeric_limits<std::uint64_t>::max()};
    std::vector<bool> indicator(n);
    for (std::uint32_t v = 0; v < n; ++v) indicator[v] = keys[v] <= probe;
    const std::uint64_t measured = ops.count(indicator).counts.front();
    if (measured != k0) continue;  // retry with fresh randomness

    ExactQuantileResult out;
    out.answer = Key{pipe.answer.value, pipe.answer.id, 0};
    out.outputs.assign(n, out.answer);
    out.valid = pipe.valid;
    out.iterations = pipe.iterations;
    out.endgame_phases = pipe.endgame_phases;
    out.rounds = ops.metrics().rounds - before.rounds;
    return out;
  }
  throw ExactPipelineError(
      ExactPipelineError::Kind::kVerificationFailed,
      "exact_quantile failed verification after repeated attempts",
      abort_context(ops, "verification"));
}

}  // namespace gq::exact_detail
