#include "core/token_split.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "util/require.hpp"

namespace gq {

TokenSplitResult token_split_distribute(Network& net,
                                        std::span<const Key> inst,
                                        std::uint64_t multiplier,
                                        std::uint64_t tag_base) {
  const std::uint32_t n = net.size();
  GQ_REQUIRE(inst.size() == n, "one key per node required");
  GQ_REQUIRE(multiplier >= 1 && std::has_single_bit(multiplier),
             "multiplier must be a power of two");

  std::uint64_t finite = 0;
  for (const Key& k : inst) finite += k.is_finite() ? 1 : 0;
  GQ_REQUIRE(finite >= 1, "token split needs at least one valued node");
  GQ_REQUIRE(multiplier * finite <= 4ull * n / 5 + 1,
             "token count must leave >= n/5 nodes free for scattering");

  std::vector<std::vector<Token>> held(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    if (inst[v].is_finite()) held[v].push_back(Token{inst[v], multiplier});
  }

  TokenSplitResult out;
  out.token_count = multiplier * finite;
  const std::uint64_t bits = token_message_bits(n, multiplier);
  const auto log2n = static_cast<std::uint64_t>(
      std::bit_width(static_cast<std::uint64_t>(n)));
  const std::uint64_t round_cap = 64 * log2n + 512;

  std::vector<std::vector<Token>> incoming(n);

  // Phase A: halve weights.  Each round a node splits at most one of its
  // weight>1 tokens; the pushed half travels to a uniform node.  A failed
  // operation leaves the token whole (the Section-5.2 merge-back).
  while (true) {
    bool any_heavy = false;
    for (const auto& ts : held) {
      for (const Token& t : ts) {
        if (t.weight > 1) {
          any_heavy = true;
          break;
        }
      }
      if (any_heavy) break;
    }
    if (!any_heavy) break;
    if (out.rounds > round_cap) {
      throw std::runtime_error("token splitting did not converge");
    }

    net.begin_round();
    ++out.rounds;
    for (auto& in : incoming) in.clear();
    for (std::uint32_t v = 0; v < n; ++v) {
      auto heavy = std::find_if(held[v].begin(), held[v].end(),
                                [](const Token& t) { return t.weight > 1; });
      if (heavy == held[v].end()) continue;
      if (net.node_fails(v)) {
        net.record_failed_operation();
        continue;
      }
      SplitMix64 stream = net.node_stream(v);
      const std::uint32_t dest = net.sample_peer(v, stream);
      heavy->weight /= 2;
      incoming[dest].push_back(Token{heavy->key, heavy->weight});
      net.record_message(bits);
    }
    for (std::uint32_t v = 0; v < n; ++v) {
      held[v].insert(held[v].end(), incoming[v].begin(), incoming[v].end());
    }
  }

  // Phase B: scatter weight-1 tokens until every node holds at most one.
  while (true) {
    bool any_crowded = false;
    for (const auto& ts : held) {
      if (ts.size() > 1) {
        any_crowded = true;
        break;
      }
    }
    if (!any_crowded) break;
    if (out.rounds > 4 * round_cap) {
      throw std::runtime_error("token scattering did not converge");
    }

    net.begin_round();
    ++out.rounds;
    for (auto& in : incoming) in.clear();
    for (std::uint32_t v = 0; v < n; ++v) {
      if (held[v].size() < 2) continue;
      if (net.node_fails(v)) {
        net.record_failed_operation();
        continue;
      }
      SplitMix64 stream = net.node_stream(v);
      const std::uint32_t dest = net.sample_peer(v, stream);
      incoming[dest].push_back(held[v].back());
      held[v].pop_back();
      net.record_message(bits);
    }
    for (std::uint32_t v = 0; v < n; ++v) {
      held[v].insert(held[v].end(), incoming[v].begin(), incoming[v].end());
    }
  }

  out.instance.assign(n, Key::infinite());
  for (std::uint32_t v = 0; v < n; ++v) {
    if (held[v].empty()) continue;
    const Token& t = held[v].front();
    out.instance[v] = Key{t.key.value, t.key.id, tag_base + v};
  }
  return out;
}

}  // namespace gq
