#include "core/robust.hpp"

#include <algorithm>
#include <array>

#include "analysis/recurrences.hpp"
#include "analysis/theory_bounds.hpp"
#include "util/require.hpp"

namespace gq {
namespace {

const Key& median3(const Key& a, const Key& b, const Key& c) {
  if (a < b) {
    if (b < c) return b;
    return a < c ? c : a;
  }
  if (a < c) return a;
  return b < c ? c : b;
}

// One robust iteration: `pulls` rounds in which every node attempts one
// pull; good_samples[v] collects up to `needed` values pulled from
// currently-good nodes (reading the iteration-start snapshot).
// Returns, per node, the number of good pulls collected (capped at needed).
std::vector<std::uint32_t> collect_good_pulls(
    Network& net, std::span<const Key> snapshot,
    const std::vector<bool>& good, std::uint32_t pulls, std::uint32_t needed,
    std::vector<std::vector<Key>>& good_samples) {
  const std::uint32_t n = net.size();
  const std::uint64_t bits = key_bits(n);
  for (auto& s : good_samples) s.clear();
  std::vector<std::uint32_t> count(n, 0);
  for (std::uint32_t r = 0; r < pulls; ++r) {
    net.begin_round();
    for (std::uint32_t v = 0; v < n; ++v) {
      if (net.node_fails(v)) {
        net.record_failed_operation();
        continue;
      }
      SplitMix64 stream = net.node_stream(v);
      const std::uint32_t p = net.sample_peer(v, stream);
      net.record_message(bits);
      if (good[p] && count[v] < needed) {
        good_samples[v].push_back(snapshot[p]);
        ++count[v];
      }
    }
  }
  return count;
}

}  // namespace

RobustTwoTournamentOutcome robust_two_tournament(Network& net,
                                                 std::vector<Key>& state,
                                                 std::vector<bool>& good,
                                                 double phi, double eps,
                                                 bool truncate_last) {
  const std::uint32_t n = net.size();
  GQ_REQUIRE(state.size() == n && good.size() == n,
             "state and good flags must have one entry per node");
  GQ_REQUIRE(phi >= 0.0 && phi <= 1.0, "phi must lie in [0,1]");
  GQ_REQUIRE(eps > 0.0 && eps < 0.5, "eps must lie in (0, 1/2)");

  RobustTwoTournamentOutcome out;
  const double mu = net.failures().max_probability();
  out.pulls_per_iteration = robust_pull_count(mu, 4.0);
  const auto [side, start] = tournament_side(phi, eps);
  out.side = side;
  const bool suppress_high = side == TournamentSide::kSuppressHigh;
  const TwoTournamentSchedule schedule = two_tournament_schedule(start, eps);

  std::vector<Key> snapshot(n);
  std::vector<bool> next_good(n);
  std::vector<std::vector<Key>> samples(n);
  for (std::size_t iter = 0; iter < schedule.iterations(); ++iter) {
    const double delta = truncate_last ? schedule.delta[iter] : 1.0;
    snapshot = state;
    const std::vector<std::uint32_t> got =
        collect_good_pulls(net, snapshot, good, out.pulls_per_iteration,
                           /*needed=*/2, samples);
    // The delta coin is drawn once per node per iteration; use a dedicated
    // round so its randomness is independent of the pulls.
    net.begin_round();
    for (std::uint32_t v = 0; v < n; ++v) {
      if (!good[v] || got[v] < 2) {
        next_good[v] = false;
        continue;
      }
      next_good[v] = true;
      SplitMix64 stream = net.node_stream(v);
      const bool tournament = delta >= 1.0 || rand_bernoulli(stream, delta);
      if (tournament) {
        const Key& a = samples[v][0];
        const Key& b = samples[v][1];
        state[v] = suppress_high ? std::min(a, b) : std::max(a, b);
      } else {
        state[v] = samples[v][0];
      }
    }
    good = next_good;
    ++out.iterations;
  }
  return out;
}

RobustThreeTournamentOutcome robust_three_tournament(
    Network& net, std::vector<Key>& state, std::vector<bool>& good,
    double eps, std::uint32_t final_sample_size) {
  const std::uint32_t n = net.size();
  GQ_REQUIRE(state.size() == n && good.size() == n,
             "state and good flags must have one entry per node");
  GQ_REQUIRE(eps > 0.0 && eps < 0.5, "eps must lie in (0, 1/2)");

  RobustThreeTournamentOutcome out;
  const double mu = net.failures().max_probability();
  out.pulls_per_iteration = robust_pull_count(mu, 6.0);
  const ThreeTournamentSchedule schedule = three_tournament_schedule(eps, n);
  const std::uint32_t k_samples = (final_sample_size | 1u);

  std::vector<Key> snapshot(n);
  std::vector<bool> next_good(n);
  std::vector<std::vector<Key>> samples(n);
  for (std::size_t iter = 0; iter < schedule.iterations(); ++iter) {
    snapshot = state;
    const std::vector<std::uint32_t> got =
        collect_good_pulls(net, snapshot, good, out.pulls_per_iteration,
                           /*needed=*/3, samples);
    for (std::uint32_t v = 0; v < n; ++v) {
      if (!good[v] || got[v] < 3) {
        next_good[v] = false;
        continue;
      }
      next_good[v] = true;
      state[v] = median3(samples[v][0], samples[v][1], samples[v][2]);
    }
    good = next_good;
    ++out.iterations;
  }

  // Robust final step: collect K good pulls out of Theta(K/(1-mu) log ...)
  // attempts and output their median.
  const std::uint32_t final_pulls =
      robust_pull_count(mu, 2.0 * static_cast<double>(k_samples));
  snapshot = state;
  const std::vector<std::uint32_t> got = collect_good_pulls(
      net, snapshot, good, final_pulls, k_samples, samples);
  out.outputs.assign(n, Key::infinite());
  out.valid.assign(n, false);
  for (std::uint32_t v = 0; v < n; ++v) {
    if (!good[v] || got[v] < k_samples) continue;
    auto& s = samples[v];
    const auto mid = s.begin() + s.size() / 2;
    std::nth_element(s.begin(), mid, s.end());
    out.outputs[v] = *mid;
    out.valid[v] = true;
  }
  return out;
}

std::uint64_t robust_coverage(Network& net, std::vector<Key>& outputs,
                              std::vector<bool>& valid, std::uint32_t t) {
  const std::uint32_t n = net.size();
  GQ_REQUIRE(outputs.size() == n && valid.size() == n,
             "outputs and valid flags must have one entry per node");
  const std::uint64_t bits = key_bits(n);
  std::uint64_t rounds = 0;
  for (std::uint32_t r = 0; r < t; ++r) {
    // Early exit once everyone is served keeps reported costs honest: a
    // deployed node would simply stop asking.
    if (std::all_of(valid.begin(), valid.end(), [](bool b) { return b; })) {
      break;
    }
    net.begin_round();
    ++rounds;
    std::vector<bool> was_valid = valid;
    std::vector<Key> prev = outputs;
    for (std::uint32_t v = 0; v < n; ++v) {
      if (was_valid[v]) continue;
      if (net.node_fails(v)) {
        net.record_failed_operation();
        continue;
      }
      SplitMix64 stream = net.node_stream(v);
      const std::uint32_t p = net.sample_peer(v, stream);
      net.record_message(bits);
      if (was_valid[p]) {
        outputs[v] = prev[p];
        valid[v] = true;
      }
    }
  }
  return rounds;
}

}  // namespace gq
