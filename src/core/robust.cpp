#include "core/robust.hpp"

#include <algorithm>

#include "core/robust_pipeline.hpp"
#include "util/require.hpp"

namespace gq {
namespace {

// The sequential instantiation of the shared robust control flow in
// core/robust_pipeline.hpp: per-round node loops over the Network
// primitives.  engine/kernels.cpp provides the batched twin; the two must
// stay bit-identical (pinned by tests/test_engine_robust.cpp).
struct NetworkRobustOps {
  Network& net;
  std::vector<Key>& state;
  std::vector<bool>& good;

  // Iteration-local working state, sized once per call.
  std::vector<Key> snapshot;
  std::vector<bool> next_good;
  std::vector<std::vector<Key>> samples;
  std::vector<std::uint32_t> got;

  NetworkRobustOps(Network& n, std::vector<Key>& s, std::vector<bool>& g)
      : net(n), state(s), good(g), snapshot(n.size()),
        next_good(n.size()), samples(n.size()) {}

  [[nodiscard]] std::uint32_t size() const { return net.size(); }
  [[nodiscard]] double max_failure_probability() const {
    return net.failures().max_probability();
  }

  // `pulls` rounds in which every node attempts one pull; samples[v]
  // collects up to `needed` values pulled from currently-good nodes
  // (reading the iteration-start snapshot); got[v] is the number of good
  // pulls collected (capped at needed).
  void collect_good_pulls(std::uint32_t pulls, std::uint32_t needed) {
    const std::uint32_t n = net.size();
    const std::uint64_t bits = key_bits(n);
    for (auto& s : samples) s.clear();
    got.assign(n, 0);
    for (std::uint32_t r = 0; r < pulls; ++r) {
      net.begin_round();
      for (std::uint32_t v = 0; v < n; ++v) {
        if (net.node_fails(v)) {
          net.record_failed_operation();
          continue;
        }
        SplitMix64 stream = net.node_stream(v);
        const std::uint32_t p = net.sample_peer(v, stream);
        net.record_message(bits);
        if (good[p] && got[v] < needed) {
          samples[v].push_back(snapshot[p]);
          ++got[v];
        }
      }
    }
  }

  void two_iteration(std::uint32_t pulls, double delta, bool suppress_high) {
    const std::uint32_t n = net.size();
    snapshot = state;
    collect_good_pulls(pulls, /*needed=*/2);
    // The delta coin is drawn once per node per iteration; use a dedicated
    // round so its randomness is independent of the pulls.
    net.begin_round();
    for (std::uint32_t v = 0; v < n; ++v) {
      if (!good[v] || got[v] < 2) {
        next_good[v] = false;
        continue;
      }
      next_good[v] = true;
      SplitMix64 stream = net.node_stream(v);
      const bool tournament = delta >= 1.0 || rand_bernoulli(stream, delta);
      state[v] = robust_detail::two_tournament_commit(
          samples[v][0], samples[v][1], tournament, suppress_high);
    }
    good = next_good;
  }

  void three_iteration(std::uint32_t pulls) {
    const std::uint32_t n = net.size();
    snapshot = state;
    collect_good_pulls(pulls, /*needed=*/3);
    for (std::uint32_t v = 0; v < n; ++v) {
      if (!good[v] || got[v] < 3) {
        next_good[v] = false;
        continue;
      }
      next_good[v] = true;
      state[v] = robust_detail::median3(samples[v][0], samples[v][1],
                                        samples[v][2]);
    }
    good = next_good;
  }

  void final_median_sample(std::uint32_t final_pulls, std::uint32_t k,
                           std::vector<Key>& outputs,
                           std::vector<bool>& valid) {
    const std::uint32_t n = net.size();
    snapshot = state;
    collect_good_pulls(final_pulls, k);
    outputs.assign(n, Key::infinite());
    valid.assign(n, false);
    for (std::uint32_t v = 0; v < n; ++v) {
      if (!good[v] || got[v] < k) continue;
      auto& s = samples[v];
      const auto mid = s.begin() + s.size() / 2;
      std::nth_element(s.begin(), mid, s.end());
      outputs[v] = *mid;
      valid[v] = true;
    }
  }
};

struct NetworkCoverageOps {
  Network& net;
  std::vector<Key>& outputs;
  std::vector<bool>& valid;

  [[nodiscard]] bool all_served() const {
    return std::all_of(valid.begin(), valid.end(), [](bool b) { return b; });
  }

  void coverage_round() {
    const std::uint32_t n = net.size();
    const std::uint64_t bits = key_bits(n);
    net.begin_round();
    std::vector<bool> was_valid = valid;
    std::vector<Key> prev = outputs;
    for (std::uint32_t v = 0; v < n; ++v) {
      if (was_valid[v]) continue;
      if (net.node_fails(v)) {
        net.record_failed_operation();
        continue;
      }
      SplitMix64 stream = net.node_stream(v);
      const std::uint32_t p = net.sample_peer(v, stream);
      net.record_message(bits);
      if (was_valid[p]) {
        outputs[v] = prev[p];
        valid[v] = true;
      }
    }
  }
};

}  // namespace

RobustTwoTournamentOutcome robust_two_tournament(Network& net,
                                                 std::vector<Key>& state,
                                                 std::vector<bool>& good,
                                                 double phi, double eps,
                                                 bool truncate_last) {
  GQ_REQUIRE(state.size() == net.size() && good.size() == net.size(),
             "state and good flags must have one entry per node");
  NetworkRobustOps ops(net, state, good);
  return robust_detail::robust_two_tournament_impl(ops, phi, eps,
                                                   truncate_last);
}

RobustThreeTournamentOutcome robust_three_tournament(
    Network& net, std::vector<Key>& state, std::vector<bool>& good,
    double eps, std::uint32_t final_sample_size) {
  GQ_REQUIRE(state.size() == net.size() && good.size() == net.size(),
             "state and good flags must have one entry per node");
  NetworkRobustOps ops(net, state, good);
  return robust_detail::robust_three_tournament_impl(ops, eps,
                                                     final_sample_size);
}

std::uint64_t robust_coverage(Network& net, std::vector<Key>& outputs,
                              std::vector<bool>& valid, std::uint32_t t) {
  GQ_REQUIRE(outputs.size() == net.size() && valid.size() == net.size(),
             "outputs and valid flags must have one entry per node");
  NetworkCoverageOps ops{net, outputs, valid};
  return robust_detail::robust_coverage_impl(ops, t);
}

}  // namespace gq
