// Algorithm 1: 2-TOURNAMENT — Phase I of the approximate quantile pipeline.
//
// Shifts the quantiles around the target phi to the quantiles around the
// median: if the mass above phi+eps dominates, every node repeatedly
// replaces its value with the MINIMUM of two uniformly sampled values
// (suppressing the high side, whose fraction squares each iteration:
// h_{i+1} = h_i^2); the symmetric case uses the maximum.  The final
// iteration performs the tournament only with probability delta per node so
// the expected surviving tail lands exactly on T = 1/2 - eps (Lemma 2.4).
//
// Each iteration costs two gossip rounds (two pulls).  Both pulls observe
// the configuration at the start of the iteration, matching the process the
// paper analyzes.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "analysis/recurrences.hpp"
#include "sim/key.hpp"
#include "sim/network.hpp"

namespace gq {

// Which side the tournament suppresses.
enum class TournamentSide {
  kSuppressHigh,  // take min of two samples (mass above phi dominates)
  kSuppressLow,   // take max of two samples
};

// Observation hook for experiments: called with the state after every
// iteration (iteration index is 1-based).
using TournamentObserver =
    std::function<void(std::size_t iteration, std::span<const Key> state)>;

struct TwoTournamentOutcome {
  std::size_t iterations = 0;
  TournamentSide side = TournamentSide::kSuppressHigh;
  TwoTournamentSchedule schedule;  // the analytic schedule that was executed
};

// Runs Algorithm 1 in place on `state` (one key per node) in the
// failure-free model.  `truncate_last=false` replaces the delta-truncated
// final iteration with a full tournament (ablation A1).
TwoTournamentOutcome two_tournament(Network& net, std::vector<Key>& state,
                                    double phi, double eps,
                                    bool truncate_last = true,
                                    const TournamentObserver& observer = {});

// The side and initial tail fraction Algorithm 1 uses for a given target.
[[nodiscard]] std::pair<TournamentSide, double> tournament_side(double phi,
                                                                double eps);

}  // namespace gq
