// Section 5.1: failure-robust tournament variants.
//
// Under the failure model every node pulls k = Theta(1/(1-mu) log 1/(1-mu))
// times per iteration instead of 2 (resp. 3).  A pull is *good* if the
// puller's operation succeeded and the contacted node was good at the end of
// the previous iteration.  A node stays good if it collected enough good
// pulls, in which case it runs the tournament on the first of them;
// otherwise it turns (permanently) bad.  Lemma 5.2 shows a constant fraction
// of nodes stays good throughout, and conditioned on being good, pulls are
// uniform over the good set — so the failure-free analysis carries over with
// n replaced by the good-node count.
//
// After the final step, nodes without an output pull for t extra rounds and
// adopt any answer they see: all but ~n/2^t nodes end up served
// (Theorem 1.4's caveat, which the paper shows is unavoidable).
//
// These are the sequential entry points; the schedule-level control flow is
// shared with the parallel engine via core/robust_pipeline.hpp (which also
// defines the outcome structs), and engine/kernels.hpp declares the
// bit-identical Engine& overloads.
#pragma once

#include <cstddef>
#include <vector>

#include "core/robust_pipeline.hpp"
#include "sim/key.hpp"
#include "sim/network.hpp"

namespace gq {

// Robust Algorithm 1.  `good` is the per-node good flag, carried across
// phases (pass all-true initially); bad nodes keep a stale value and are
// never counted as good peers again.
RobustTwoTournamentOutcome robust_two_tournament(Network& net,
                                                 std::vector<Key>& state,
                                                 std::vector<bool>& good,
                                                 double phi, double eps,
                                                 bool truncate_last = true);

// Robust Algorithm 2, including the robust final sampling step.
RobustThreeTournamentOutcome robust_three_tournament(
    Network& net, std::vector<Key>& state, std::vector<bool>& good,
    double eps, std::uint32_t final_sample_size = 15);

// Coverage tail: for `t` rounds every unserved node pulls and adopts the
// output of any served node it reaches.  Returns rounds consumed.
std::uint64_t robust_coverage(Network& net, std::vector<Key>& outputs,
                              std::vector<bool>& valid, std::uint32_t t);

}  // namespace gq
