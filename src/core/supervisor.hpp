// Deterministic run supervision: bounded retries with reseeding and
// parameter escalation around any gossip pipeline run.
//
// A pipeline run can fail three ways: it throws a typed ExactPipelineError
// (count machinery contradicted itself), it completes but served too little
// of the network / absorbed too much adversarial pressure (QualityReport
// below threshold), or it blew its round deadline.  Production cannot stop
// there — the supervisor wraps the run in a bounded attempt budget:
//
//   * attempt 0 runs with the caller's base seed and untouched parameters,
//     so a supervised run that succeeds first try is TRANSCRIPT-IDENTICAL
//     to the bare pipeline (the zero-fault invisibility contract);
//   * attempt a > 0 reseeds deterministically via
//     streams::attempt_seed(base_seed, a) — fresh randomness, reproducible
//     from the base seed alone — and escalates parameters (coarser eps,
//     larger filter/fan-out groups, robust-branch promotion) according to
//     the policy;
//   * every attempt's outcome lands in a typed RunReport, which is part of
//     the bit-identical differential contract: Network and Engine
//     supervising the same run produce equal reports.
//
// Everything here is executor-independent; the attempt callback owns the
// executor (Network and Engine both expose reset_stream, so the provided
// wrappers below work on either).  The service layer (service/) builds its
// graceful-degradation path on supervise() directly.
#pragma once

#include <cstdint>
#include <exception>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/adversarial_pipeline.hpp"
#include "core/params.hpp"
#include "core/result.hpp"
#include "sim/streams.hpp"
#include "telemetry/telemetry.hpp"
#include "util/require.hpp"

namespace gq {

enum class AttemptStatus : std::uint8_t {
  kOk,                     // verdict met every threshold
  kQualityBelowThreshold,  // served too little or exposure too high
  kPipelineError,          // the run threw (typed abort or GQ_REQUIRE)
  kDeadlineExceeded,       // rounds consumed exceeded policy.max_rounds
};

[[nodiscard]] constexpr const char* to_string(AttemptStatus status) noexcept {
  switch (status) {
    case AttemptStatus::kOk: return "ok";
    case AttemptStatus::kQualityBelowThreshold: return "quality";
    case AttemptStatus::kPipelineError: return "error";
    case AttemptStatus::kDeadlineExceeded: return "deadline";
  }
  return "unknown";
}

struct SupervisorPolicy {
  // Total attempt budget, first try included (1 = no retries).
  std::uint32_t max_attempts = 3;

  // Per-attempt round deadline; 0 = unlimited.  Checked against the rounds
  // the attempt actually consumed (post-hoc — gossip rounds are cheap and
  // bounded per block, so there is no mid-run preemption to stay
  // deterministic).
  std::uint64_t max_rounds = 0;

  // Acceptance thresholds an attempt's verdict must meet.
  double min_served_fraction = 0.5;
  double max_corruption_exposure = 1.0;

  // Escalation: attempt a runs with eps scaled by eps_growth^a and filter /
  // fan-out sizes boosted by fanout_step * a (capped at the pipeline
  // maxima).
  double eps_growth = 1.5;
  std::uint32_t fanout_step = 2;

  // Attempts >= this threshold promote to the robust (filtered adversarial)
  // branch where the caller supports it (see AttemptPlan::robust_promoted).
  // The default promotes every retry; 0 would promote attempt 0 and is only
  // for callers that accept losing zero-fault transcript invisibility.
  std::uint32_t promote_robust_after = 1;

  friend bool operator==(const SupervisorPolicy&,
                         const SupervisorPolicy&) = default;
};

// The deterministic knobs of one attempt, derived from (policy, base_seed,
// attempt) alone — both executors derive the identical plan.
struct AttemptPlan {
  std::uint32_t attempt = 0;
  std::uint64_t seed = 0;
  double eps_scale = 1.0;
  std::uint32_t fanout_boost = 0;
  bool robust_promoted = false;

  friend bool operator==(const AttemptPlan&, const AttemptPlan&) = default;
};

[[nodiscard]] inline AttemptPlan plan_attempt(const SupervisorPolicy& policy,
                                              std::uint64_t base_seed,
                                              std::uint32_t attempt) {
  AttemptPlan plan;
  plan.attempt = attempt;
  plan.seed = streams::attempt_seed(base_seed, attempt);
  for (std::uint32_t i = 0; i < attempt; ++i) {
    plan.eps_scale *= policy.eps_growth;
  }
  plan.fanout_boost = policy.fanout_step * attempt;
  plan.robust_promoted = attempt >= policy.promote_robust_after;
  return plan;
}

// What the attempt callback reports back for judgement.
struct AttemptVerdict {
  double served_fraction = 1.0;
  double corruption_exposure = 0.0;
  std::uint64_t rounds = 0;
};

// One attempt's outcome as recorded in the RunReport.
struct AttemptRecord {
  std::uint32_t attempt = 0;
  std::uint64_t seed = 0;
  AttemptStatus status = AttemptStatus::kOk;
  double served_fraction = 0.0;
  double corruption_exposure = 0.0;
  std::uint64_t rounds = 0;

  // Error details, meaningful iff status == kPipelineError; typed_error
  // marks whether error_kind carries an ExactPipelineError::Kind.
  bool typed_error = false;
  ExactPipelineError::Kind error_kind =
      ExactPipelineError::Kind::kEndgameNoCandidates;
  std::string error_what;

  friend bool operator==(const AttemptRecord&, const AttemptRecord&) = default;
};

struct RunReport {
  bool ok = false;  // some attempt succeeded
  std::vector<AttemptRecord> attempts;

  [[nodiscard]] std::uint32_t retries() const noexcept {
    return attempts.empty()
               ? 0
               : static_cast<std::uint32_t>(attempts.size()) - 1;
  }
  [[nodiscard]] std::uint64_t total_rounds() const noexcept {
    std::uint64_t total = 0;
    for (const AttemptRecord& a : attempts) total += a.rounds;
    return total;
  }

  friend bool operator==(const RunReport&, const RunReport&) = default;
};

template <typename Result>
struct SupervisedRun {
  std::optional<Result> result;  // engaged iff report.ok
  RunReport report;
};

// The supervision loop.  `run(plan)` executes one attempt and returns
// std::pair<Result, AttemptVerdict>; throwing is a failed attempt, not a
// supervisor crash — ExactPipelineError keeps its typed kind in the record,
// anything else (e.g. a GQ_REQUIRE'd convergence failure under extreme
// faults) is recorded by message.  Stops at the first accepted attempt or
// when the budget is exhausted; the caller decides what exhaustion means
// (the service serves a degraded sketch answer, tests assert).
template <typename Result, typename RunFn>
SupervisedRun<Result> supervise(const SupervisorPolicy& policy,
                                std::uint64_t base_seed, RunFn&& run) {
  GQ_REQUIRE(policy.max_attempts >= 1,
             "supervisor needs at least one attempt");
  SupervisedRun<Result> out;
  for (std::uint32_t attempt = 0; attempt < policy.max_attempts; ++attempt) {
    const AttemptPlan plan = plan_attempt(policy, base_seed, attempt);
    AttemptRecord record;
    record.attempt = attempt;
    record.seed = plan.seed;
    {
      GQ_SPAN("supervisor/attempt");
      try {
        auto [result, verdict] = run(plan);
        record.served_fraction = verdict.served_fraction;
        record.corruption_exposure = verdict.corruption_exposure;
        record.rounds = verdict.rounds;
        if (policy.max_rounds != 0 && verdict.rounds > policy.max_rounds) {
          record.status = AttemptStatus::kDeadlineExceeded;
        } else if (verdict.served_fraction < policy.min_served_fraction ||
                   verdict.corruption_exposure >
                       policy.max_corruption_exposure) {
          record.status = AttemptStatus::kQualityBelowThreshold;
        } else {
          record.status = AttemptStatus::kOk;
          out.result.emplace(std::move(result));
        }
      } catch (const ExactPipelineError& error) {
        record.status = AttemptStatus::kPipelineError;
        record.typed_error = true;
        record.error_kind = error.kind();
        record.error_what = error.what();
      } catch (const std::exception& error) {
        record.status = AttemptStatus::kPipelineError;
        record.error_what = error.what();
      }
    }
    out.report.attempts.push_back(std::move(record));
    if (out.result.has_value()) {
      out.report.ok = true;
      break;
    }
  }
  return out;
}

// Escalated parameter sets for attempt `plan`: coarser eps (clamped below
// the pipelines' 1/2 ceiling), larger filter groups / final sampling
// (clamped at the compile-time caps).  Attempt 0 returns the params
// unchanged.
[[nodiscard]] inline AdversarialQuantileParams escalated(
    AdversarialQuantileParams params, const AttemptPlan& plan) {
  params.eps = std::min(0.49, params.eps * plan.eps_scale);
  params.filter_group = std::min(adversary_detail::kMaxFilterGroup,
                                 params.filter_group + plan.fanout_boost);
  params.final_sample_size =
      std::min(adversary_detail::kMaxFinalSamples,
               params.final_sample_size + 2 * plan.fanout_boost);
  return params;
}

[[nodiscard]] inline ApproxQuantileParams escalated(ApproxQuantileParams params,
                                                    const AttemptPlan& plan) {
  params.eps = std::min(0.49, params.eps * plan.eps_scale);
  params.final_sample_size += 2 * plan.fanout_boost;
  params.robust_coverage_rounds += plan.fanout_boost;
  return params;
}

// ---- executor instantiations ---------------------------------------------
//
// Both Network and Engine expose reset_stream(seed), so one template covers
// the two; the pipeline entry points resolve by argument-dependent lookup
// (core/adversarial.hpp for Network, engine/pipelines.hpp for Engine —
// include the one matching your executor).  Each attempt rebases the
// executor onto the plan seed, so attempt 0 on a fresh executor is the
// bare pipeline run, bit for bit.

template <typename Executor>
SupervisedRun<AdversarialQuantileResult> supervised_adversarial_quantile_keys(
    Executor& executor, std::span<const Key> keys,
    const AdversarialQuantileParams& params, const SupervisorPolicy& policy) {
  return supervise<AdversarialQuantileResult>(
      policy, executor.seed(), [&](const AttemptPlan& plan) {
        executor.reset_stream(plan.seed);
        AdversarialQuantileResult result =
            adversarial_quantile_keys(executor, keys, escalated(params, plan));
        AttemptVerdict verdict;
        verdict.served_fraction = result.quality.served_fraction;
        verdict.corruption_exposure = result.quality.corruption_exposure;
        verdict.rounds = result.rounds;
        return std::pair(std::move(result), verdict);
      });
}

template <typename Executor>
SupervisedRun<ExactQuantileResult> supervised_exact_quantile_keys(
    Executor& executor, std::span<const Key> keys,
    const ExactQuantileParams& params, const SupervisorPolicy& policy) {
  const auto n = static_cast<double>(executor.size());
  return supervise<ExactQuantileResult>(
      policy, executor.seed(), [&](const AttemptPlan& plan) {
        executor.reset_stream(plan.seed);
        ExactQuantileResult result =
            exact_quantile_keys(executor, keys, params);
        AttemptVerdict verdict;
        std::size_t served = 0;
        for (bool b : result.valid) served += b ? 1 : 0;
        verdict.served_fraction = static_cast<double>(served) / n;
        verdict.rounds = result.rounds;
        return std::pair(std::move(result), verdict);
      });
}

}  // namespace gq
