// Executor-independent control flow of the adversarially-robust quantile
// and mean protocols (arXiv 2502.15320, Haeupler-Kaufmann-Ravi).
//
// The Section-5 robust tournaments survive an *oblivious* failure model by
// oversampling: fan out enough pulls that two good ones arrive w.h.p.  An
// adaptive adversary breaks that reasoning — it can watch the state and
// concentrate its budget on exactly the informative messages.  The follow-up
// paper's counter is *filtering*: replace every single sample with the
// median of a small group of samples of the same peer distribution, so a
// budget-bounded adversary must corrupt a majority of a group to move one
// filtered sample, and the per-round budget B only lets it move O(B/g)
// groups per round block.  The protocols here implement that discipline:
//
//   * adversarial_quantile — the 2-TOURNAMENT / 3-TOURNAMENT pipeline of
//     the base paper, with every tournament sample replaced by a filtered
//     (median-of-g) sample and a majority-filtered final step.
//   * adversarial_mean — two adversarial_quantile runs pin per-node clip
//     bounds (an IQR-padded interval); a sampling phase then averages
//     clip-bounded samples, so corrupt payloads have bounded influence.
//
// Both pipelines *degrade gracefully*: instead of a bare answer they return
// a typed QualityReport (served fraction, fault tallies, estimated
// corruption exposure) computed from the Metrics deltas, so callers can see
// how much adversarial pressure the run absorbed.
//
// Shared-control-flow pattern (core/exact_pipeline.hpp precedent): ONE
// template drives both executors through a duck-typed Ops provider —
// core/adversarial.cpp instantiates it over the sequential Network,
// engine/adversarial_kernels.cpp over the parallel Engine.  The per-node
// fold (fault application, delay mailbox, group filtering, commit rules)
// lives here as plain functions both Ops call, so the two paths cannot
// drift: bit-identity at 1/2/8 threads is pinned by tests/test_adversary.cpp.
//
// The Ops concept:
//   uint32_t size();
//   uint64_t seed();
//   const FailureModel& failures();
//   AdversaryStrategy* adversary();      // nullptr when none installed
//   const Metrics& metrics();
//   uint64_t round();                    // current round counter
//   void advance_rounds(uint32_t k);     // k x begin_round()
//   template <typename Fn> void for_each_node(Fn&& fn);
//       // runs fn(v, Metrics& local) for every node v; `local` fragments
//       // are folded into the executor Metrics deterministically (Network:
//       // one accumulator; Engine: shard accumulators merged in shard
//       // order).  fn must write only node-v slots.
//   AdversarialQuantileResult quantile(span<const Key>,
//                                      const AdversarialQuantileParams&);
//       // re-entry for the mean pipeline's clip-bound sub-runs
//
// Unlike the interned robust kernels (engine/kernels.cpp), the engine Ops
// run on plain pooled Key buffers: corrupt payloads are arbitrary values
// the intern table has never seen, so a rank-lane representation cannot
// hold them.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "analysis/recurrences.hpp"
#include "core/robust_pipeline.hpp"  // robust_detail::median3
#include "core/two_tournament.hpp"   // tournament_side, TournamentSide
#include "sim/adversary.hpp"
#include "sim/key.hpp"
#include "sim/metrics.hpp"
#include "sim/streams.hpp"
#include "telemetry/telemetry.hpp"
#include "util/require.hpp"

namespace gq {

// How much adversarial pressure a pipeline run absorbed, and whether it
// still served enough of the network.  Computed from Metrics deltas, so it
// is part of the bit-identical transcript (differential tests compare it).
struct QualityReport {
  double served_fraction = 1.0;        // valid nodes / n
  std::uint64_t messages_total = 0;    // messages billed during the run
  std::uint64_t messages_dropped = 0;  // destroyed by the adversary
  std::uint64_t messages_corrupted = 0;
  std::uint64_t messages_delayed = 0;
  std::uint64_t failed_operations = 0;  // oblivious-model losses
  // (dropped + corrupted + delayed) / total: the fraction of traffic the
  // adversary touched.  An upper bound on its influence — filtering keeps
  // the *effective* influence far lower.
  double corruption_exposure = 0.0;

  // The thresholds this run was judged against, copied from the params so
  // the single acceptance predicate below travels with the report.
  double min_served_fraction = 0.0;
  double max_corruption_exposure = 1.0;

  // THE acceptance predicate: enough of the network served AND the
  // adversary touched an acceptable fraction of traffic.  Callers (service
  // supervisor, tests, examples) must use this instead of re-deriving
  // their own thresholds.
  [[nodiscard]] bool ok() const noexcept {
    return served_fraction >= min_served_fraction &&
           corruption_exposure <= max_corruption_exposure;
  }

  friend bool operator==(const QualityReport&, const QualityReport&) = default;
};

struct AdversarialQuantileParams {
  double phi = 0.5;  // target quantile in [0,1]
  double eps = 0.1;  // approximation slack in (0,1/2)

  // g: every tournament sample becomes the median of a group of g pulls.
  // The adversary must corrupt a majority of a group to move one filtered
  // sample.  Forced odd; must stay <= kMaxFilterGroup.
  std::uint32_t filter_group = 3;

  // K in the final step: number of *filtered* samples collected before
  // emitting their median; a node is served iff a majority of its K groups
  // produced a sample.  Forced odd; must stay <= kMaxFinalSamples.
  std::uint32_t final_sample_size = 9;

  // Delta-truncation of the last 2-TOURNAMENT iteration (Lemma 2.4 of the
  // base paper; unchanged by filtering).
  bool truncate_last = true;

  // Acceptance thresholds recorded into QualityReport (see ok()): minimum
  // served fraction, and maximum fraction of traffic the adversary may
  // have touched.
  double min_served_fraction = 0.5;
  double max_corruption_exposure = 1.0;
};

struct AdversarialQuantileResult {
  std::vector<Key> outputs;  // per-node answer (meaningful iff valid)
  std::vector<bool> valid;   // served nodes
  std::size_t phase1_iterations = 0;
  std::size_t phase2_iterations = 0;
  std::uint64_t rounds = 0;
  QualityReport quality;

  [[nodiscard]] std::size_t served_nodes() const {
    return static_cast<std::size_t>(
        std::count(valid.begin(), valid.end(), true));
  }
};

struct AdversarialMeanParams {
  // Clip bounds come from two adversarial quantile runs at these targets;
  // the clip interval is [q_lo - pad, q_hi + pad] with pad = q_hi - q_lo
  // (an IQR-padded interval for the defaults).
  double clip_lo_phi = 0.25;
  double clip_hi_phi = 0.75;
  double quantile_eps = 0.15;
  std::uint32_t filter_group = 3;      // g of the quantile sub-runs
  std::uint32_t final_sample_size = 9;  // K of the quantile sub-runs

  // Sampling phase: rounds of clip-bounded value pulls averaged per node.
  // Must stay <= kMaxMeanRounds.
  std::uint32_t mean_sample_rounds = 48;

  double min_served_fraction = 0.5;
  double max_corruption_exposure = 1.0;
};

struct AdversarialMeanResult {
  std::vector<double> estimates;  // per-node mean estimate (iff valid)
  std::vector<bool> valid;
  std::uint64_t rounds = 0;
  QualityReport quality;

  [[nodiscard]] std::size_t served_nodes() const {
    return static_cast<std::size_t>(
        std::count(valid.begin(), valid.end(), true));
  }
};

namespace adversary_detail {

// Compile-time caps sizing the per-node stack scratch of the fold below.
// GQ_REQUIREd against the params at pipeline entry.
inline constexpr std::uint32_t kMaxFilterGroup = 9;
inline constexpr std::uint32_t kMaxFinalSamples = 31;
inline constexpr std::uint32_t kMaxMeanRounds = 512;
// Largest fused pull block: the final step's K groups of g pulls each.
inline constexpr std::uint32_t kMaxBlockPulls =
    std::max(kMaxFinalSamples * kMaxFilterGroup, kMaxMeanRounds);
// Per-group arrival capacity: a group of g rounds can additionally receive
// deliveries delayed into it; 2g covers every case the strategies generate,
// and overflow beyond it is dropped deterministically (shared code, so both
// executors drop identically).
inline constexpr std::uint32_t kGroupCapacity = 2 * kMaxFilterGroup;

template <typename T>
struct PendingDelivery {
  std::uint32_t arrival;  // block-relative round it arrives in
  T payload;
};

// True iff `node` is down (FaultKind::kCrash) in `round`.  Shared by the
// fold below and the serving decisions, so "excluded from served sets while
// down" means the same thing on both executors.
inline bool node_down(const AdversaryStrategy* adversary, std::uint32_t node,
                      std::uint64_t round) {
  return adversary != nullptr &&
         adversary->fault(node, round).kind == FaultKind::kCrash;
}

// The per-node fold of one fused pull block under message faults — the ONE
// copy of fault semantics both executors execute.  For each of `pulls`
// rounds (block-relative j, absolute base + j):
//   1. the node's lifecycle is consulted: while down (kCrash) it sends and
//      receives nothing — pending deliveries addressed to it are lost, its
//      own pull is skipped, and nothing is billed (adversary_crashed);
//      kRecover tallies a recovery event and otherwise behaves as kNone;
//   2. pending deliveries whose arrival round is j are handed to
//      deliver(j, payload) in insertion order;
//   3. the node's own pull flips the oblivious failure coin (a failed
//      operation loses the round and bills nothing);
//   4. otherwise the peer is drawn (the block's only stream draw); a down
//      peer has no state to pull, so the message never exists
//      (adversary_crash_dropped); otherwise payload_of(j, peer) produces
//      the payload, the message is billed as sent, and the adversary's
//      fault(v, round) is applied: kDrop destroys it, kCorrupt replaces
//      the payload with inject(fault.value), kDelay re-enqueues it for
//      round j + delay (destroyed if the block ends first — counted as
//      delayed either way).
// Returns the number of messages sent (caller bills bits); fault tallies
// land in `local`.
template <typename T, typename PayloadFn, typename InjectFn,
          typename DeliverFn>
inline std::uint64_t walk_faulted_pulls(
    std::uint64_t seed, std::uint64_t base, std::uint32_t pulls,
    std::uint32_t v, std::uint32_t n, const FailureModel& failures,
    const AdversaryStrategy* adversary, PayloadFn&& payload_of,
    InjectFn&& inject, DeliverFn&& deliver, Metrics& local) {
  GQ_ASSERT(pulls <= kMaxBlockPulls);
  std::array<PendingDelivery<T>, kMaxBlockPulls> pending;
  std::uint32_t pending_count = 0;
  std::uint64_t sent = 0;
  for (std::uint32_t j = 0; j < pulls; ++j) {
    Fault self{};
    if (adversary != nullptr) self = adversary->fault(v, base + j);
    if (self.kind == FaultKind::kCrash) {
      ++local.adversary_crashed;
      continue;  // down: pending arrivals this round are lost with the node
    }
    if (self.kind == FaultKind::kRecover) {
      ++local.adversary_recovered;
      self = Fault{};
    }
    for (std::uint32_t i = 0; i < pending_count; ++i) {
      if (pending[i].arrival == j) deliver(j, pending[i].payload);
    }
    if (streams::node_fails(seed, base + j, v, failures)) {
      ++local.failed_operations;
      continue;
    }
    SplitMix64 stream = streams::node_stream(seed, base + j, v);
    const std::uint32_t peer = streams::sample_peer(v, n, stream);
    if (node_down(adversary, peer, base + j)) {
      ++local.adversary_crash_dropped;
      continue;  // nobody home: the pulled message never exists
    }
    T payload = payload_of(j, peer);
    ++sent;
    switch (self.kind) {
      case FaultKind::kDrop:
        ++local.adversary_dropped;
        continue;
      case FaultKind::kCorrupt:
        ++local.adversary_corrupted;
        payload = inject(self.value);
        break;
      case FaultKind::kDelay:
        ++local.adversary_delayed;
        if (pending_count < pending.size()) {
          pending[pending_count++] =
              PendingDelivery<T>{j + self.delay, payload};
        }
        continue;
      case FaultKind::kNone:
      case FaultKind::kCrash:    // handled above; unreachable
      case FaultKind::kRecover:  // rewritten to kNone above
        break;
    }
    deliver(j, payload);
  }
  return sent;
}

// Arrivals of a block bucketed into `groups` groups of `group_rounds`
// rounds each; filtered_sample(i) is the median of group i's arrivals.
template <typename T>
struct GroupCollector {
  std::array<T, kMaxFinalSamples * kGroupCapacity> buffer;
  std::array<std::uint8_t, kMaxFinalSamples> counts{};
  std::uint32_t groups = 0;
  std::uint32_t group_rounds = 0;

  GroupCollector(std::uint32_t groups_in, std::uint32_t group_rounds_in)
      : groups(groups_in), group_rounds(group_rounds_in) {
    GQ_ASSERT(groups <= kMaxFinalSamples);
  }

  void deliver(std::uint32_t round_in_block, const T& payload) {
    const std::uint32_t group = round_in_block / group_rounds;
    if (group >= groups) return;  // delayed past the block's last group
    auto& count = counts[group];
    if (count < kGroupCapacity) {
      buffer[group * kGroupCapacity + count] = payload;
      ++count;
    }
  }

  // Median of group i's arrivals (lower median for even counts); present
  // iff the group received anything at all.
  [[nodiscard]] bool filtered_sample(std::uint32_t group, T& out) const {
    const std::uint8_t count = counts[group];
    if (count == 0) return false;
    std::array<T, kGroupCapacity> sorted;
    std::copy_n(buffer.begin() + group * kGroupCapacity, count,
                sorted.begin());
    std::sort(sorted.begin(), sorted.begin() + count);
    out = sorted[(count - 1u) / 2u];
    return true;
  }
};

// Publishes the upcoming block to the adversary.  Called on the
// orchestrating thread at identical points by both executors (it is part of
// this shared control flow), which is what keeps adaptive strategies'
// target choices — and therefore transcripts — bit-identical.
template <typename Ops>
inline void observe_block(Ops& ops, std::uint64_t first_round,
                          std::uint32_t rounds, std::span<const Key> keys,
                          std::span<const double> values) {
  AdversaryStrategy* adversary = ops.adversary();
  if (adversary == nullptr) return;
  RoundWindow window;
  window.first_round = first_round;
  window.rounds = rounds;
  window.n = ops.size();
  window.seed = ops.seed();
  window.keys = keys;
  window.values = values;
  adversary->observe(window);
}

inline QualityReport make_quality(const Metrics& delta, std::uint64_t served,
                                  std::uint32_t n, double min_served_fraction,
                                  double max_corruption_exposure) {
  QualityReport quality;
  quality.served_fraction =
      static_cast<double>(served) / static_cast<double>(n);
  quality.messages_total = delta.messages;
  quality.messages_dropped = delta.adversary_dropped;
  quality.messages_corrupted = delta.adversary_corrupted;
  quality.messages_delayed = delta.adversary_delayed;
  quality.failed_operations = delta.failed_operations;
  const std::uint64_t touched = delta.adversary_dropped +
                                delta.adversary_corrupted +
                                delta.adversary_delayed;
  quality.corruption_exposure =
      delta.messages > 0
          ? static_cast<double>(touched) / static_cast<double>(delta.messages)
          : 0.0;
  quality.min_served_fraction = min_served_fraction;
  quality.max_corruption_exposure = max_corruption_exposure;
  return quality;
}

// One filtered 2-TOURNAMENT iteration: 2g fan-out pull rounds bucketed into
// two filter groups, then the delta-coin commit round.  Nodes whose two
// groups both produced a filtered sample run the tournament commit; anyone
// short keeps their value (the filtered analogue of "turning bad" — with no
// good flags, keeping the value is the conservative commit).
template <typename Ops>
inline void filtered_two_iteration(Ops& ops, std::vector<Key>& state,
                                   std::vector<Key>& next, std::uint32_t g,
                                   double delta, bool suppress_high) {
  GQ_SPAN("adversarial/filtered_two");
  const std::uint32_t n = ops.size();
  const std::uint32_t pulls = 2 * g;
  const std::uint64_t base = ops.round() + 1;
  const std::uint64_t commit_round = base + pulls;
  observe_block(ops, base, pulls + 1, state, {});
  ops.advance_rounds(pulls + 1);
  const std::uint64_t bits = key_bits(n);
  const Key* snapshot = state.data();
  const FailureModel& failures = ops.failures();
  const AdversaryStrategy* adversary = ops.adversary();
  const std::uint64_t seed = ops.seed();
  ops.for_each_node([&](std::uint32_t v, Metrics& local) {
    GroupCollector<Key> groups(2, g);
    const std::uint64_t sent = walk_faulted_pulls<Key>(
        seed, base, pulls, v, n, failures, adversary,
        [&](std::uint32_t, std::uint32_t peer) { return snapshot[peer]; },
        [&](double injected) {
          return Key{injected, n, 0};
        },
        [&](std::uint32_t j, const Key& payload) {
          groups.deliver(j, payload);
        },
        local);
    local.record_messages(sent, bits);
    Key f0, f1;
    if (groups.filtered_sample(0, f0) && groups.filtered_sample(1, f1)) {
      SplitMix64 coin = streams::node_stream(seed, commit_round, v);
      const bool tournament = delta >= 1.0 || rand_bernoulli(coin, delta);
      next[v] = robust_detail::two_tournament_commit(f0, f1, tournament,
                                                     suppress_high);
    } else {
      next[v] = state[v];
    }
  });
  state.swap(next);
}

// One filtered 3-TOURNAMENT iteration: 3g pull rounds in three groups; the
// median-of-three commit draws no randomness, so there is no commit round.
template <typename Ops>
inline void filtered_three_iteration(Ops& ops, std::vector<Key>& state,
                                     std::vector<Key>& next, std::uint32_t g) {
  GQ_SPAN("adversarial/filtered_three");
  const std::uint32_t n = ops.size();
  const std::uint32_t pulls = 3 * g;
  const std::uint64_t base = ops.round() + 1;
  observe_block(ops, base, pulls, state, {});
  ops.advance_rounds(pulls);
  const std::uint64_t bits = key_bits(n);
  const Key* snapshot = state.data();
  const FailureModel& failures = ops.failures();
  const AdversaryStrategy* adversary = ops.adversary();
  const std::uint64_t seed = ops.seed();
  ops.for_each_node([&](std::uint32_t v, Metrics& local) {
    GroupCollector<Key> groups(3, g);
    const std::uint64_t sent = walk_faulted_pulls<Key>(
        seed, base, pulls, v, n, failures, adversary,
        [&](std::uint32_t, std::uint32_t peer) { return snapshot[peer]; },
        [&](double injected) {
          return Key{injected, n, 0};
        },
        [&](std::uint32_t j, const Key& payload) {
          groups.deliver(j, payload);
        },
        local);
    local.record_messages(sent, bits);
    Key f0, f1, f2;
    if (groups.filtered_sample(0, f0) && groups.filtered_sample(1, f1) &&
        groups.filtered_sample(2, f2)) {
      next[v] = robust_detail::median3(f0, f1, f2);
    } else {
      next[v] = state[v];
    }
  });
  state.swap(next);
}

// Final step: K groups of g pulls each; a node is served iff a majority of
// its groups produced a filtered sample, and outputs their median.
template <typename Ops>
inline void final_filtered_median(Ops& ops, std::vector<Key>& state,
                                  std::uint32_t g, std::uint32_t k_samples,
                                  std::vector<Key>& outputs,
                                  std::vector<bool>& valid) {
  GQ_SPAN("adversarial/final_filtered");
  const std::uint32_t n = ops.size();
  const std::uint32_t pulls = k_samples * g;
  const std::uint64_t base = ops.round() + 1;
  observe_block(ops, base, pulls, state, {});
  ops.advance_rounds(pulls);
  const std::uint64_t bits = key_bits(n);
  const Key* snapshot = state.data();
  const FailureModel& failures = ops.failures();
  const AdversaryStrategy* adversary = ops.adversary();
  const std::uint64_t seed = ops.seed();
  outputs.assign(n, Key{});
  // Parallel sections write a byte per node, never vector<bool> bits —
  // adjacent bits share words across shard boundaries (same staging
  // discipline as engine/kernels.cpp).
  std::vector<std::uint8_t> valid8(n, 0);
  ops.for_each_node([&](std::uint32_t v, Metrics& local) {
    GroupCollector<Key> groups(k_samples, g);
    const std::uint64_t sent = walk_faulted_pulls<Key>(
        seed, base, pulls, v, n, failures, adversary,
        [&](std::uint32_t, std::uint32_t peer) { return snapshot[peer]; },
        [&](double injected) {
          return Key{injected, n, 0};
        },
        [&](std::uint32_t j, const Key& payload) {
          groups.deliver(j, payload);
        },
        local);
    local.record_messages(sent, bits);
    std::array<Key, kMaxFinalSamples> filtered;
    std::uint32_t collected = 0;
    for (std::uint32_t i = 0; i < k_samples; ++i) {
      Key sample;
      if (groups.filtered_sample(i, sample)) filtered[collected++] = sample;
    }
    // A node still down at the end of the block is excluded from the served
    // set regardless of what it collected before crashing (it cannot emit an
    // answer); shared code, so both executors exclude identically.
    const bool down_at_end = node_down(adversary, v, base + pulls - 1);
    if (!down_at_end && collected >= k_samples / 2 + 1) {
      std::sort(filtered.begin(), filtered.begin() + collected);
      outputs[v] = filtered[(collected - 1u) / 2u];
      valid8[v] = 1;
    } else {
      outputs[v] = state[v];
    }
  });
  valid.assign(n, false);
  for (std::uint32_t v = 0; v < n; ++v) valid[v] = valid8[v] != 0;
}

template <typename Ops>
AdversarialQuantileResult adversarial_quantile_impl(
    Ops& ops, std::span<const Key> keys,
    const AdversarialQuantileParams& params) {
  GQ_SPAN("pipeline/adversarial_quantile");
  const std::uint32_t n = ops.size();
  GQ_REQUIRE(keys.size() == n, "one key per node required");
  GQ_REQUIRE(params.phi >= 0.0 && params.phi <= 1.0,
             "phi must lie in [0,1]");
  GQ_REQUIRE(params.eps > 0.0 && params.eps < 0.5,
             "eps must lie in (0, 1/2)");
  GQ_REQUIRE(params.filter_group >= 1 &&
                 params.filter_group <= kMaxFilterGroup,
             "filter group size out of range");
  GQ_REQUIRE(params.final_sample_size >= 1 &&
                 params.final_sample_size <= kMaxFinalSamples,
             "final sample size out of range");
  const std::uint32_t g = params.filter_group | 1u;   // force odd
  const std::uint32_t k = params.final_sample_size | 1u;

  const Metrics before = ops.metrics();
  AdversarialQuantileResult result;
  std::vector<Key> state(keys.begin(), keys.end());
  std::vector<Key> next(state.size());

  // Phase I: filtered 2-TOURNAMENT at (phi, eps) — shifts the target
  // quantile window to the median, exactly as in the base pipeline.
  const auto [side, start] = tournament_side(params.phi, params.eps);
  const bool suppress_high = side == TournamentSide::kSuppressHigh;
  const TwoTournamentSchedule schedule =
      two_tournament_schedule(start, params.eps);
  for (std::size_t iter = 0; iter < schedule.iterations(); ++iter) {
    const double delta = params.truncate_last ? schedule.delta[iter] : 1.0;
    filtered_two_iteration(ops, state, next, g, delta, suppress_high);
    ++result.phase1_iterations;
  }

  // Phase II: filtered 3-TOURNAMENT at eps/4 (Lemma 2.11's composition).
  const ThreeTournamentSchedule schedule3 =
      three_tournament_schedule(params.eps / 4.0, n);
  for (std::size_t iter = 0; iter < schedule3.iterations(); ++iter) {
    filtered_three_iteration(ops, state, next, g);
    ++result.phase2_iterations;
  }

  final_filtered_median(ops, state, g, k, result.outputs, result.valid);

  const Metrics delta = ops.metrics().since(before);
  result.rounds = delta.rounds;
  result.quality = make_quality(delta, result.served_nodes(), n,
                                params.min_served_fraction,
                                params.max_corruption_exposure);
  return result;
}

template <typename Ops>
AdversarialMeanResult adversarial_mean_impl(Ops& ops,
                                            std::span<const double> values,
                                            std::span<const Key> keys,
                                            const AdversarialMeanParams&
                                                params) {
  GQ_SPAN("pipeline/adversarial_mean");
  const std::uint32_t n = ops.size();
  GQ_REQUIRE(values.size() == n && keys.size() == n,
             "one value per node required");
  GQ_REQUIRE(params.clip_lo_phi < params.clip_hi_phi,
             "clip quantiles must be ordered");
  GQ_REQUIRE(params.mean_sample_rounds >= 1 &&
                 params.mean_sample_rounds <= kMaxMeanRounds,
             "mean sample rounds out of range");

  const Metrics before = ops.metrics();
  AdversarialMeanResult result;

  // Clip bounds from two adversarial quantile sub-runs.  Every node ends up
  // with its own [lo, hi] interval; nodes either sub-run failed to serve
  // cannot bound corrupt payloads and are reported unserved.
  AdversarialQuantileParams qp;
  qp.eps = params.quantile_eps;
  qp.filter_group = params.filter_group;
  qp.final_sample_size = params.final_sample_size;
  qp.min_served_fraction = params.min_served_fraction;
  qp.phi = params.clip_lo_phi;
  const AdversarialQuantileResult q_lo = [&] {
    GQ_SPAN("adversarial/clip_bounds");
    return ops.quantile(keys, qp);
  }();
  qp.phi = params.clip_hi_phi;
  const AdversarialQuantileResult q_hi = [&] {
    GQ_SPAN("adversarial/clip_bounds");
    return ops.quantile(keys, qp);
  }();

  std::vector<double> clip_lo(n), clip_hi(n);
  std::vector<bool> clip_ok(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    clip_ok[v] = q_lo.valid[v] && q_hi.valid[v];
    const double a = q_lo.outputs[v].value;
    const double b = q_hi.outputs[v].value;
    const double lo = std::min(a, b);
    const double hi = std::max(a, b);
    const double pad = hi - lo;
    clip_lo[v] = lo - pad;
    clip_hi[v] = hi + pad;
  }

  // Sampling phase: R rounds of clip-bounded pulls of the IMMUTABLE input
  // values, averaged per node in round order (fixed FP summation order is
  // part of the bit-identity contract).
  const std::uint32_t rounds = params.mean_sample_rounds;
  const std::uint64_t base = ops.round() + 1;
  {
    GQ_SPAN("adversarial/mean_samples");
    observe_block(ops, base, rounds, {}, values);
    ops.advance_rounds(rounds);
  }
  result.estimates.assign(n, 0.0);
  std::vector<std::uint8_t> valid8(n, 0);
  const double* value_data = values.data();
  const FailureModel& failures = ops.failures();
  const AdversaryStrategy* adversary = ops.adversary();
  const std::uint64_t seed = ops.seed();
  const std::uint32_t min_count = std::max(1u, rounds / 2);
  double* estimate_data = result.estimates.data();
  ops.for_each_node([&](std::uint32_t v, Metrics& local) {
    double sum = 0.0;
    std::uint32_t count = 0;
    const double lo = clip_lo[v];
    const double hi = clip_hi[v];
    const std::uint64_t sent = walk_faulted_pulls<double>(
        seed, base, rounds, v, n, failures, adversary,
        [&](std::uint32_t, std::uint32_t peer) { return value_data[peer]; },
        [&](double injected) { return injected; },
        [&](std::uint32_t, double payload) {
          sum += std::clamp(payload, lo, hi);
          ++count;
        },
        local);
    // A mean sample is one value word; bill it at the 64-bit payload size
    // rather than the tagged key size.
    local.record_messages(sent, 64);
    // Same serving rule as the quantile's final step: down at the end of
    // the sampling block means unserved.
    const bool down_at_end = node_down(adversary, v, base + rounds - 1);
    if (!down_at_end && clip_ok[v] && count >= min_count) {
      estimate_data[v] = sum / static_cast<double>(count);
      valid8[v] = 1;
    }
  });
  result.valid.assign(n, false);
  for (std::uint32_t v = 0; v < n; ++v) result.valid[v] = valid8[v] != 0;

  const Metrics delta = ops.metrics().since(before);
  result.rounds = delta.rounds;
  result.quality = make_quality(delta, result.served_nodes(), n,
                                params.min_served_fraction,
                                params.max_corruption_exposure);
  return result;
}

}  // namespace adversary_detail
}  // namespace gq
