// Parameter structs for the quantile protocols.
#pragma once

#include <cstdint>

namespace gq {

struct ApproxQuantileParams {
  double phi = 0.5;  // target quantile in [0,1]
  double eps = 0.1;  // approximation slack in (0,1)

  // K in Algorithm 2's final step: number of values sampled before emitting
  // the median.  Forced odd; Lemma 2.17 needs only O(1).
  std::uint32_t final_sample_size = 15;

  // The delta-truncation of the last 2-TOURNAMENT iteration (Lemma 2.4).
  // Disabling it (ablation A1) overshoots the target tail fraction by up to
  // eps and degrades accuracy.
  bool truncate_last = true;

  // Run the tournament pipeline even when eps is below
  // eps_tournament_floor(n) instead of falling back to the exact algorithm.
  // Used by ablation benches to demonstrate *why* the floor exists.
  bool force_tournament = false;

  // Extra coverage rounds under the failure model: after the tournaments,
  // nodes without an output pull until they find one; all but ~n/2^t nodes
  // are served after t rounds (Theorem 1.4).
  std::uint32_t robust_coverage_rounds = 12;
};

// How the exact algorithm finishes once bracketing has crushed the
// candidate set (see DESIGN.md "Deviations"):
//   * kAuto compares the predicted round cost of the paper's duplication
//     route against the selection endgame and picks the cheaper one — at
//     practical n the duplication multiplier m is 1-4 (the paper's
//     m >= n^0.04/4 only exceeds 2 beyond n ~ 2^75), so the endgame often
//     wins; asymptotically duplication always wins.
//   * kPreferDuplication forces the paper's Step-7 route whenever m >= 2.
//   * kPreferEndgame switches to selection phases after the first filter.
enum class ExactStrategy { kAuto, kPreferDuplication, kPreferEndgame };

struct ExactQuantileParams {
  double phi = 0.5;  // target quantile in [0,1]

  // Per-iteration bracketing slack for the inner approximate runs.
  // 0 = automatic: eps_tournament_floor(n), the tightest slack at which
  // the tournament pipeline stays reliable.  (The paper's n^-0.05/2
  // exceeds that floor for every practically simulable n — they cross
  // only near n ~ 10^2 — so auto mode is simply the floor; the knob
  // exists for bench_ablation_exact.)
  double slack = 0.0;

  ExactStrategy strategy = ExactStrategy::kAuto;

  // Safety cap on bracketing iterations (the paper uses a fixed 25; we
  // terminate adaptively once the duplicated answer block covers the final
  // approximation window, see DESIGN.md).
  std::uint32_t max_iterations = 64;

  // Cap on selection-endgame phases (only reached for pathological inputs).
  std::uint32_t max_endgame_phases = 256;
};

struct OwnRankParams {
  double eps = 0.125;  // additive quantile accuracy for every node

  // Knobs forwarded to the underlying approximate quantile runs.
  std::uint32_t final_sample_size = 15;
};

}  // namespace gq
