// Batch quantile queries: several phi targets over the same input, the
// building block behind Corollary 1.5 and the common "p50/p95/p99" use.
//
// All unique targets ride ONE shared tournament schedule — per-node state
// is a q-lane vector, every peer draw serves all lanes, and messages carry
// the whole vector — so q targets cost roughly one pipeline's rounds
// instead of q (see core/multi_pipeline.hpp for the protocol and the
// routing rules that fall back to deduped independent runs).  Duplicated
// targets are deduped before dispatch and mapped back to the caller's
// order, so they never cost extra rounds or bits.
#pragma once

#include <span>
#include <vector>

#include "core/approx_quantile.hpp"
#include "core/params.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"

namespace gq {

struct MultiQuantileParams {
  std::vector<double> phis;  // targets, each in [0,1]
  double eps = 0.1;
  std::uint32_t final_sample_size = 15;
  std::uint32_t robust_coverage_rounds = 12;
};

struct MultiQuantileResult {
  std::vector<ApproxQuantileResult> per_phi;  // aligned with params.phis
  std::uint64_t rounds = 0;                   // total across the whole batch

  // Full cost of the batch (messages, bits, per-size counts — not just
  // rounds), so shared-vs-independent comparisons bill honest bytes.
  Metrics metrics;

  // True when the batch ran as one shared-schedule tournament; false when
  // it routed through deduped independent runs (exact fallback, failure
  // model/adversary, or more than kMaxSharedLanes unique targets).
  bool shared_schedule = false;

  // Unique targets after dedupe (the number of lanes or runs paid for).
  std::size_t unique_targets = 0;

  // Convenience: node v's output value for target i.
  [[nodiscard]] double value(std::size_t i, std::uint32_t node) const {
    return per_phi.at(i).outputs.at(node).value;
  }
};

[[nodiscard]] MultiQuantileResult multi_quantile(
    Network& net, std::span<const double> values,
    const MultiQuantileParams& params);
[[nodiscard]] MultiQuantileResult multi_quantile_keys(
    Network& net, std::span<const Key> keys,
    const MultiQuantileParams& params);

}  // namespace gq
