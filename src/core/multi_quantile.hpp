// Batch quantile queries: several phi targets over the same input, the
// building block behind Corollary 1.5 and the common "p50/p95/p99" use.
//
// Runs are composed sequentially (the model sends one message per node per
// round), so rounds add up; the result records per-target outputs plus the
// aggregate cost.
#pragma once

#include <span>
#include <vector>

#include "core/approx_quantile.hpp"
#include "core/params.hpp"
#include "sim/network.hpp"

namespace gq {

struct MultiQuantileParams {
  std::vector<double> phis;  // targets, each in [0,1]
  double eps = 0.1;
  std::uint32_t final_sample_size = 15;
  std::uint32_t robust_coverage_rounds = 12;
};

struct MultiQuantileResult {
  std::vector<ApproxQuantileResult> per_phi;  // aligned with params.phis
  std::uint64_t rounds = 0;                   // total across all targets

  // Convenience: node v's output value for target i.
  [[nodiscard]] double value(std::size_t i, std::uint32_t node) const {
    return per_phi.at(i).outputs.at(node).value;
  }
};

[[nodiscard]] MultiQuantileResult multi_quantile(
    Network& net, std::span<const double> values,
    const MultiQuantileParams& params);

}  // namespace gq
