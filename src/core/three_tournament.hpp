// Algorithm 2: 3-TOURNAMENT — Phase II of the approximate quantile pipeline.
//
// Every node repeatedly replaces its value with the MEDIAN of three
// uniformly sampled values.  Both tail fractions follow the map
// l_{i+1} = 3 l_i^2 - 2 l_i^3: they grow towards the median for the first
// O(log 1/eps) iterations, then collapse doubly exponentially until fewer
// than ~n^(2/3) nodes hold a value outside the eps-window around the
// median (Lemmas 2.12-2.16).  A final step samples K = O(1) values and
// outputs their median, which lands inside the window w.h.p. (Lemma 2.17).
//
// Each iteration costs three gossip rounds; the final step costs K rounds.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "analysis/recurrences.hpp"
#include "core/two_tournament.hpp"  // TournamentObserver
#include "sim/key.hpp"
#include "sim/network.hpp"

namespace gq {

struct ThreeTournamentOutcome {
  std::size_t iterations = 0;
  std::vector<Key> outputs;        // per-node final answer (median of K)
  ThreeTournamentSchedule schedule;
};

// Runs Algorithm 2 on `state` (modified in place) in the failure-free
// model; returns per-node outputs whose quantile lies in [1/2-eps, 1/2+eps]
// w.h.p.  `final_sample_size` is forced odd.
ThreeTournamentOutcome three_tournament(
    Network& net, std::vector<Key>& state, double eps,
    std::uint32_t final_sample_size = 15,
    const TournamentObserver& observer = {});

}  // namespace gq
