// The adversarially-robust quantile and mean pipelines (arXiv 2502.15320)
// on the sequential Network executor.
//
// Unlike the Section-5 robust variants — which assume an *oblivious*
// failure model and oversample accordingly — these pipelines survive an
// adaptive, budget-bounded adversary (sim/adversary.hpp) by filtering:
// every tournament sample is the median of a group of pulls, so moving one
// sample costs the adversary a majority of a group.  Install a strategy
// with Network::set_adversary before calling; with none installed the
// pipelines run the same schedule fault-free (budget-0 transcripts are
// pinned identical to that in tests/test_adversary.cpp).
//
// Both pipelines degrade gracefully: the result carries a QualityReport
// (served fraction, fault tallies, corruption exposure) instead of failing
// silently.  Control flow is shared with the Engine overloads
// (engine/pipelines.hpp) via core/adversarial_pipeline.hpp, so the two
// executors stay bit-identical at every thread count.
#pragma once

#include <span>

#include "core/adversarial_pipeline.hpp"
#include "sim/network.hpp"

namespace gq {

// Public entry point: `values[v]` is node v's input.
[[nodiscard]] AdversarialQuantileResult adversarial_quantile(
    Network& net, std::span<const double> values,
    const AdversarialQuantileParams& params = {});

// Key-level entry point for callers already holding tie-broken instances.
[[nodiscard]] AdversarialQuantileResult adversarial_quantile_keys(
    Network& net, std::span<const Key> keys,
    const AdversarialQuantileParams& params = {});

// Clip-bounded adversarially-robust mean estimation.
[[nodiscard]] AdversarialMeanResult adversarial_mean(
    Network& net, std::span<const double> values,
    const AdversarialMeanParams& params = {});

}  // namespace gq
