// Deterministic parallel push/scatter for the sharded engine.
//
// The engine's pull kernels parallelise trivially: every node writes only
// its own slots.  A *push* pattern — many senders delivering payloads to
// arbitrary destinations in the same round — cannot, because two senders may
// target the same node and the order in which their payloads are applied is
// observable (floating-point folds, token list append order).  This is the
// pattern behind Algorithm 3's token split (Step 7) and push-sum counting,
// and it is what kept the full quantile pipelines off the engine.
//
// Scatter makes the pattern deterministic in two phases:
//
//   1. Send.  Each engine shard appends (destination, payload) records into
//      its own mailbox row — no sharing, no locks.  Within a row, records
//      sit in the order the shard's node loop emitted them, i.e. ascending
//      sender id.
//   2. Deliver.  Destinations are partitioned into contiguous ranges, fixed
//      by (n, shard_size) alone.  Each partition task folds the records
//      addressed to it by walking the mailbox rows in shard order.  Row
//      order is ascending sender shard and rows are internally ascending,
//      so every destination observes its payloads in ascending sender
//      order — exactly the order the sequential Network loop (for v = 0..n)
//      produces.  The fold result is therefore bit-identical at any thread
//      count and any shard size.
//
// Mailboxes live in the engine's ScatterArena (engine/arena.hpp): a Scatter
// checks the rows x partitions box table out for its lifetime and returns
// it, so mailbox capacity persists across rounds, pipeline stages, and
// payload types — steady-state rounds allocate nothing.  Records are
// memcpy-framed into the byte boxes, which is why payloads must be
// trivially copyable (they model wire messages; all of ours are).
//
// CombiningScatter is the counter-payload variant: payloads whose fold is
// exactly associative and commutative (integer counters, bitmasks) may be
// merged before delivery, shrinking mailboxes when a sender emits bursts to
// one destination.  Because combining changes fold grouping, it must never
// be used with floating-point payloads — that is Scatter's job.
#pragma once

#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "engine/arena.hpp"
#include "engine/engine.hpp"
#include "util/require.hpp"

namespace gq {

// Mailbox geometry shared by both scatter variants.  Rows are the engine's
// node shards (the send-side write granularity); destination partitions are
// contiguous node ranges sized from the same shard layout, capped so the
// row x partition table stays small.  All boundaries are pure functions of
// (n, shard_size) — never of the thread count.
struct ScatterLayout {
  std::uint32_t n = 0;
  std::uint32_t shard_size = 0;   // sender row granularity
  std::size_t rows = 0;           // number of sender shards
  std::uint32_t partition_shift = 0;  // destination partition width: 2^shift
  std::size_t partitions = 0;

  // Partition-count cap: keeps rows * partitions mailboxes cheap even for
  // very fine shard sizes, and keeps each box's record run long enough to
  // stream well (more, smaller boxes fragment the delivery read path).
  static constexpr std::size_t kMaxPartitions = 64;
  // Minimum partition width (2^12 = 4096 destinations): below this a
  // partition's accumulator slice is so small that per-box and per-task
  // overheads dominate, so tiny instances collapse into fewer partitions.
  static constexpr std::uint32_t kMinPartitionShift = 12;

  [[nodiscard]] static ScatterLayout for_engine(const Engine& engine);
  // The geometry is a pure function of (n, shard_size); this factory is
  // the engine-free entry point (layout boundary tests use it).
  [[nodiscard]] static ScatterLayout for_geometry(std::uint32_t n,
                                                  std::uint32_t shard_size,
                                                  std::size_t rows);

  [[nodiscard]] std::size_t row_of(std::uint32_t sender) const noexcept {
    return sender / shard_size;
  }
  // Partition widths are powers of two, so the per-message destination
  // lookup is a shift — send() sits on the hottest per-message path in the
  // whole engine and a runtime division here is measurable.  (Partition
  // shape is internal geometry: the per-destination fold order depends only
  // on row order, so this never affects results.)
  [[nodiscard]] std::size_t partition_of(std::uint32_t dest) const noexcept {
    return static_cast<std::size_t>(static_cast<std::uint64_t>(dest) >>
                                    partition_shift);
  }
  // Destination range [first, last) of one partition.
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> partition_range(
      std::size_t p) const noexcept {
    const auto first = static_cast<std::uint64_t>(p) << partition_shift;
    const auto last = first + (std::uint64_t{1} << partition_shift);
    return {static_cast<std::uint32_t>(first),
            last < n ? static_cast<std::uint32_t>(last) : n};
  }
};

namespace scatter_detail {

// The arena-backed mailbox table both scatter variants sit on: checkout,
// record framing, and the row-major delivery walk.  Records are framed
// into the byte slabs with placement-new (write) and laundered pointers
// (read): every record offset is a multiple of sizeof(Record) from a
// max-aligned slab base, so access is always aligned, and avoiding a
// bounce through a stack temporary keeps the per-message cost at parity
// with a typed vector while letting the slabs be reused across payload
// types.
template <typename Record>
class Mailboxes {
 public:
  static_assert(std::is_trivially_copyable_v<Record> &&
                    std::is_trivially_destructible_v<Record>,
                "scatter payloads model wire messages and must be "
                "trivially copyable");
  static_assert(alignof(Record) <= alignof(std::max_align_t));

  Mailboxes(Engine& engine, const ScatterLayout& layout)
      : layout_(layout), arena_(&engine.scatter_arena()) {
    const std::size_t count = layout_.rows * layout_.partitions;
    boxes_ = arena_->acquire(count);
    if (boxes_ == nullptr) {
      // The arena is checked out by an enclosing collective; nest with
      // private mailboxes instead (pre-arena behaviour).
      arena_ = nullptr;
      own_.resize(count);
      boxes_ = own_.data();
    }
  }
  ~Mailboxes() {
    if (arena_ != nullptr) arena_->release();
  }

  Mailboxes(const Mailboxes&) = delete;
  Mailboxes& operator=(const Mailboxes&) = delete;

  void clear_all() {
    const std::size_t count = layout_.rows * layout_.partitions;
    for (std::size_t i = 0; i < count; ++i) boxes_[i].used = 0;
  }

  [[nodiscard]] ScatterArena::Box& box(std::size_t row, std::size_t p) {
    return boxes_[row * layout_.partitions + p];
  }

  // Base of one sender row's boxes; hoists the row lookup out of
  // per-message sends (the whole row belongs to one shard task).
  [[nodiscard]] ScatterArena::Box* row_base(std::size_t row) {
    return boxes_ + row * layout_.partitions;
  }

  void append(ScatterArena::Box& b, const Record& record) {
    if (b.used + sizeof(Record) > b.bytes.size()) {
      if (arena_ != nullptr) {
        arena_->grow(b, b.used + sizeof(Record));
      } else {
        b.bytes.resize(
            ScatterArena::next_capacity(b, b.used + sizeof(Record)));
      }
    }
    ::new (static_cast<void*>(b.bytes.data() + b.used)) Record(record);
    b.used += sizeof(Record);
  }

  [[nodiscard]] static const Record* records(const ScatterArena::Box& b) {
    return std::launder(reinterpret_cast<const Record*>(b.bytes.data()));
  }
  [[nodiscard]] static Record* records(ScatterArena::Box& b) {
    return std::launder(reinterpret_cast<Record*>(b.bytes.data()));
  }
  [[nodiscard]] static std::size_t count(const ScatterArena::Box& b) {
    return b.used / sizeof(Record);
  }

  // Applies fn(record) to every record addressed to partition p, mailbox
  // rows in shard order — i.e. ascending sender order per destination.
  // The plain walk is the touch-variant with a no-op hint (which the
  // compiler deletes), so there is exactly ONE copy of the record
  // iteration order.
  template <typename Fn>
  void for_each_in_partition(std::size_t p, Fn&& fn) {
    for_each_in_partition(p, std::forward<Fn>(fn), [](const Record&) {});
  }

  // Like the plain walk, but calls touch(record) kLookahead records ahead
  // of fn(record).  The record stream itself is sequential (the hardware
  // prefetcher handles it); what stalls the fold is the random-indexed
  // per-destination accumulator line, whose address only the caller can
  // compute — touch is where it issues the software prefetch.  Purely a
  // timing hint: fn still runs over every record in the same order.
  template <typename Fn, typename Touch>
  void for_each_in_partition(std::size_t p, Fn&& fn, Touch&& touch) {
    constexpr std::size_t kLookahead = 8;
    for (std::size_t row = 0; row < layout_.rows; ++row) {
      const ScatterArena::Box& b = box(row, p);
      const Record* r = records(b);
      const std::size_t m = count(b);
      const std::size_t head = std::min(kLookahead, m);
      for (std::size_t i = 0; i < head; ++i) touch(r[i]);
      for (std::size_t i = 0; i < m; ++i) {
        if (i + kLookahead < m) touch(r[i + kLookahead]);
        fn(r[i]);
      }
    }
  }

 private:
  ScatterLayout layout_;
  ScatterArena* arena_;  // null when nested: own_ backs the boxes instead
  ScatterArena::Box* boxes_;
  std::vector<ScatterArena::Box> own_;
};

}  // namespace scatter_detail

// Order-preserving scatter: deliver() applies payloads to each destination
// in ascending sender order.  Use for floating-point folds and for payloads
// whose arrival order is observable (e.g. token lists).
template <typename Payload>
class Scatter {
 public:
  explicit Scatter(Engine& engine)
      : layout_(ScatterLayout::for_engine(engine)), boxes_(engine, layout_) {}

  [[nodiscard]] const ScatterLayout& layout() const noexcept {
    return layout_;
  }

  // Clears every mailbox, keeping capacity for the next round.
  void begin_round() { boxes_.clear_all(); }

  // Queues one payload.  Must be called from the engine shard that owns
  // `sender` (each row is written by exactly one task); senders within a
  // shard must send in ascending node order, which every node-loop kernel
  // does naturally.
  void send(std::uint32_t sender, std::uint32_t dest, Payload payload) {
    boxes_.append(boxes_.box(layout_.row_of(sender), layout_.partition_of(dest)),
                  Record{dest, std::move(payload)});
  }

  // Per-shard send handle: resolves the mailbox row once per shard task
  // instead of once per message (the row division is real cost at a
  // million sends per round).  Same ordering contract as send().
  class Sender {
   public:
    void send(std::uint32_t dest, Payload payload) {
      scatter_->boxes_.append(row_[scatter_->layout_.partition_of(dest)],
                              Record{dest, std::move(payload)});
    }

   private:
    friend class Scatter;
    Sender(Scatter* scatter, ScatterArena::Box* row)
        : scatter_(scatter), row_(row) {}
    Scatter* scatter_;
    ScatterArena::Box* row_;
  };

  // The handle for the shard whose node range starts at `shard_begin`.
  [[nodiscard]] Sender sender_for(std::uint32_t shard_begin) {
    return Sender(this, boxes_.row_base(layout_.row_of(shard_begin)));
  }

  // Applies fold(dest, payload) for every queued record, partitions in
  // parallel, per-destination in ascending sender order.  fold must write
  // only destination-indexed state (destinations of distinct partitions are
  // disjoint by construction).  Every deliver flavour forwards into the
  // full deliver_prefetch form (no-op stages compile away), so the
  // delivery walk exists exactly once.
  template <typename Fold>
  void deliver(Engine& engine, Fold&& fold) {
    deliver_prefetch(engine, std::forward<Fold>(fold),
                     [](std::uint32_t) {});
  }

  // Like deliver, but runs prologue(first, last) over the partition's
  // destination range before folding — the idiomatic place to zero
  // per-destination accumulators while the range is cache-resident.
  template <typename Prologue, typename Fold>
  void deliver(Engine& engine, Prologue&& prologue, Fold&& fold) {
    deliver_prefetch(engine, std::forward<Prologue>(prologue),
                     std::forward<Fold>(fold),
                     [](std::uint32_t, std::uint32_t) {},
                     [](std::uint32_t) {});
  }

  // Full-round form: prologue(first, last), the fold, then
  // epilogue(first, last) over the same range — so a collective can zero
  // its accumulators, fold the incoming payloads, and commit them to the
  // per-node state in one parallel section while the partition is
  // cache-resident, instead of paying a separate whole-array pass.
  // Identical fold order, so results stay bit-identical.
  template <typename Prologue, typename Fold, typename Epilogue>
  void deliver(Engine& engine, Prologue&& prologue, Fold&& fold,
               Epilogue&& epilogue) {
    deliver_prefetch(engine, std::forward<Prologue>(prologue),
                     std::forward<Fold>(fold),
                     std::forward<Epilogue>(epilogue), [](std::uint32_t) {});
  }

  // deliver() with a destination prefetch hint: touch(dest) is called a few
  // records ahead of fold(dest, payload), so the fold's random-indexed
  // accumulator line is already in flight when the record is applied.  The
  // hint must have no observable effect (issue prefetches, nothing else);
  // fold order and results are exactly those of deliver().
  template <typename Fold, typename Touch>
  void deliver_prefetch(Engine& engine, Fold&& fold, Touch&& touch) {
    deliver_prefetch(engine, [](std::uint32_t, std::uint32_t) {},
                     std::forward<Fold>(fold),
                     [](std::uint32_t, std::uint32_t) {},
                     std::forward<Touch>(touch));
  }

  template <typename Prologue, typename Fold, typename Epilogue,
            typename Touch>
  void deliver_prefetch(Engine& engine, Prologue&& prologue, Fold&& fold,
                        Epilogue&& epilogue, Touch&& touch) {
    GQ_SPAN("engine/scatter_deliver");
    engine.pool().run(layout_.partitions, [&](std::size_t p) {
      const auto [first, last] = layout_.partition_range(p);
      prologue(first, last);
      boxes_.for_each_in_partition(
          p, [&](const Record& r) { fold(r.dest, r.payload); },
          [&](const Record& r) { touch(r.dest); });
      epilogue(first, last);
    });
  }

 private:
  struct Record {
    std::uint32_t dest;
    Payload payload;
  };

  ScatterLayout layout_;
  scatter_detail::Mailboxes<Record> boxes_;
};

// Scatter for counter-style payloads: `combine` must be exactly associative
// and commutative (integer sums, max, bit-or), because consecutive sends
// from one shard to the same destination are merged in the mailbox and the
// delivery fold makes no ordering promise beyond determinism.  Under that
// contract the delivered totals are bit-identical at any thread count and
// shard size, with mailboxes no larger than the number of distinct
// (sender burst, destination) pairs.
template <typename Payload, typename Combine>
class CombiningScatter {
 public:
  explicit CombiningScatter(Engine& engine, Combine combine = Combine{})
      : layout_(ScatterLayout::for_engine(engine)),
        combine_(std::move(combine)),
        boxes_(engine, layout_) {}

  [[nodiscard]] const ScatterLayout& layout() const noexcept {
    return layout_;
  }

  void begin_round() { boxes_.clear_all(); }

  void send(std::uint32_t sender, std::uint32_t dest, const Payload& payload) {
    auto& b = boxes_.box(layout_.row_of(sender), layout_.partition_of(dest));
    const std::size_t m = Boxes::count(b);
    if (m > 0) {
      Record& last = Boxes::records(b)[m - 1];
      if (last.dest == dest) {
        combine_(last.payload, payload);
        return;
      }
    }
    boxes_.append(b, Record{dest, payload});
  }

  // Applies fold(dest, payload) for every (possibly pre-combined) record.
  template <typename Fold>
  void deliver(Engine& engine, Fold&& fold) {
    GQ_SPAN("engine/scatter_deliver_combining");
    engine.pool().run(layout_.partitions, [&](std::size_t p) {
      boxes_.for_each_in_partition(
          p, [&](const Record& r) { fold(r.dest, r.payload); });
    });
  }

 private:
  struct Record {
    std::uint32_t dest;
    Payload payload;
  };
  using Boxes = scatter_detail::Mailboxes<Record>;

  ScatterLayout layout_;
  Combine combine_;
  Boxes boxes_;
};

}  // namespace gq
