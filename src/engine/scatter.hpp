// Deterministic parallel push/scatter for the sharded engine.
//
// The engine's pull kernels parallelise trivially: every node writes only
// its own slots.  A *push* pattern — many senders delivering payloads to
// arbitrary destinations in the same round — cannot, because two senders may
// target the same node and the order in which their payloads are applied is
// observable (floating-point folds, token list append order).  This is the
// pattern behind Algorithm 3's token split (Step 7) and push-sum counting,
// and it is what kept the full quantile pipelines off the engine.
//
// Scatter makes the pattern deterministic in two phases:
//
//   1. Send.  Each engine shard appends (destination, payload) records into
//      its own mailbox row — no sharing, no locks.  Within a row, records
//      sit in the order the shard's node loop emitted them, i.e. ascending
//      sender id.
//   2. Deliver.  Destinations are partitioned into contiguous ranges, fixed
//      by (n, shard_size) alone.  Each partition task folds the records
//      addressed to it by walking the mailbox rows in shard order.  Row
//      order is ascending sender shard and rows are internally ascending,
//      so every destination observes its payloads in ascending sender
//      order — exactly the order the sequential Network loop (for v = 0..n)
//      produces.  The fold result is therefore bit-identical at any thread
//      count and any shard size.
//
// CombiningScatter is the counter-payload variant: payloads whose fold is
// exactly associative and commutative (integer counters, bitmasks) may be
// merged before delivery, shrinking mailboxes when a sender emits bursts to
// one destination.  Because combining changes fold grouping, it must never
// be used with floating-point payloads — that is Scatter's job.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "engine/engine.hpp"
#include "util/require.hpp"

namespace gq {

// Mailbox geometry shared by both scatter variants.  Rows are the engine's
// node shards (the send-side write granularity); destination partitions are
// contiguous node ranges sized from the same shard layout, capped so the
// row x partition table stays small.  All boundaries are pure functions of
// (n, shard_size) — never of the thread count.
struct ScatterLayout {
  std::uint32_t n = 0;
  std::uint32_t shard_size = 0;      // sender row granularity
  std::size_t rows = 0;              // number of sender shards
  std::uint32_t partition_size = 0;  // destination partition width
  std::size_t partitions = 0;

  // Delivery parallelism cap: keeps rows * partitions mailboxes cheap even
  // for very fine shard sizes.
  static constexpr std::size_t kMaxPartitions = 64;

  [[nodiscard]] static ScatterLayout for_engine(const Engine& engine);

  [[nodiscard]] std::size_t row_of(std::uint32_t sender) const noexcept {
    return sender / shard_size;
  }
  [[nodiscard]] std::size_t partition_of(std::uint32_t dest) const noexcept {
    return dest / partition_size;
  }
  // Destination range [first, last) of one partition.
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> partition_range(
      std::size_t p) const noexcept {
    const auto first = static_cast<std::uint32_t>(p * partition_size);
    const auto last = static_cast<std::uint64_t>(first) + partition_size;
    return {first, last < n ? static_cast<std::uint32_t>(last) : n};
  }
};

// Order-preserving scatter: deliver() applies payloads to each destination
// in ascending sender order.  Use for floating-point folds and for payloads
// whose arrival order is observable (e.g. token lists).
template <typename Payload>
class Scatter {
 public:
  explicit Scatter(const Engine& engine)
      : layout_(ScatterLayout::for_engine(engine)),
        boxes_(layout_.rows * layout_.partitions) {}

  [[nodiscard]] const ScatterLayout& layout() const noexcept {
    return layout_;
  }

  // Clears every mailbox, keeping capacity for the next round.
  void begin_round() {
    for (auto& b : boxes_) b.clear();
  }

  // Queues one payload.  Must be called from the engine shard that owns
  // `sender` (each row is written by exactly one task); senders within a
  // shard must send in ascending node order, which every node-loop kernel
  // does naturally.
  void send(std::uint32_t sender, std::uint32_t dest, Payload payload) {
    box(layout_.row_of(sender), layout_.partition_of(dest))
        .push_back(Record{dest, std::move(payload)});
  }

  // Applies fold(dest, payload) for every queued record, partitions in
  // parallel, per-destination in ascending sender order.  fold must write
  // only destination-indexed state (destinations of distinct partitions are
  // disjoint by construction).
  template <typename Fold>
  void deliver(Engine& engine, Fold&& fold) {
    engine.pool().run(layout_.partitions, [&](std::size_t p) {
      for (std::size_t row = 0; row < layout_.rows; ++row) {
        for (const Record& r : box(row, p)) fold(r.dest, r.payload);
      }
    });
  }

  // Like deliver, but runs prologue(first, last) over the partition's
  // destination range before folding — the idiomatic place to zero
  // per-destination accumulators while the range is cache-resident.
  template <typename Prologue, typename Fold>
  void deliver(Engine& engine, Prologue&& prologue, Fold&& fold) {
    engine.pool().run(layout_.partitions, [&](std::size_t p) {
      const auto [first, last] = layout_.partition_range(p);
      prologue(first, last);
      for (std::size_t row = 0; row < layout_.rows; ++row) {
        for (const Record& r : box(row, p)) fold(r.dest, r.payload);
      }
    });
  }

 private:
  struct Record {
    std::uint32_t dest;
    Payload payload;
  };

  std::vector<Record>& box(std::size_t row, std::size_t p) {
    return boxes_[row * layout_.partitions + p];
  }

  ScatterLayout layout_;
  std::vector<std::vector<Record>> boxes_;
};

// Scatter for counter-style payloads: `combine` must be exactly associative
// and commutative (integer sums, max, bit-or), because consecutive sends
// from one shard to the same destination are merged in the mailbox and the
// delivery fold makes no ordering promise beyond determinism.  Under that
// contract the delivered totals are bit-identical at any thread count and
// shard size, with mailboxes no larger than the number of distinct
// (sender burst, destination) pairs.
template <typename Payload, typename Combine>
class CombiningScatter {
 public:
  explicit CombiningScatter(const Engine& engine, Combine combine = Combine{})
      : layout_(ScatterLayout::for_engine(engine)),
        combine_(std::move(combine)),
        boxes_(layout_.rows * layout_.partitions) {}

  [[nodiscard]] const ScatterLayout& layout() const noexcept {
    return layout_;
  }

  void begin_round() {
    for (auto& b : boxes_) b.clear();
  }

  void send(std::uint32_t sender, std::uint32_t dest, const Payload& payload) {
    auto& b = box(layout_.row_of(sender), layout_.partition_of(dest));
    if (!b.empty() && b.back().dest == dest) {
      combine_(b.back().payload, payload);
      return;
    }
    b.push_back(Record{dest, payload});
  }

  // Applies fold(dest, payload) for every (possibly pre-combined) record.
  template <typename Fold>
  void deliver(Engine& engine, Fold&& fold) {
    engine.pool().run(layout_.partitions, [&](std::size_t p) {
      for (std::size_t row = 0; row < layout_.rows; ++row) {
        for (const Record& r : box(row, p)) fold(r.dest, r.payload);
      }
    });
  }

 private:
  struct Record {
    std::uint32_t dest;
    Payload payload;
  };

  std::vector<Record>& box(std::size_t row, std::size_t p) {
    return boxes_[row * layout_.partitions + p];
  }

  ScatterLayout layout_;
  Combine combine_;
  std::vector<std::vector<Record>> boxes_;
};

}  // namespace gq
