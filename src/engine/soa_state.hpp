// Struct-of-arrays storage for per-node Key state.
//
// The batched kernels keep node state as three contiguous arrays (value,
// id, tag) instead of an array of Key structs: round kernels then stream
// through memory linearly, the three fields stay cache-resident
// independently, and no padding is moved.  get()/set() convert at the
// boundary; a Key is three registers, so the conversion compiles away.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/key.hpp"

namespace gq {

struct SoAKeys {
  std::vector<double> value;
  std::vector<std::uint32_t> id;
  std::vector<std::uint64_t> tag;

  SoAKeys() = default;
  explicit SoAKeys(std::size_t n) { resize(n); }

  void resize(std::size_t n) {
    value.resize(n);
    id.resize(n);
    tag.resize(n);
  }

  [[nodiscard]] std::size_t size() const noexcept { return value.size(); }

  [[nodiscard]] Key get(std::size_t i) const noexcept {
    return Key{value[i], id[i], tag[i]};
  }

  void set(std::size_t i, const Key& k) noexcept {
    value[i] = k.value;
    id[i] = k.id;
    tag[i] = k.tag;
  }

  // Copies the slice [begin, end) of `from` into this (same indices).
  // Kernels use this to fuse snapshotting into the first round of an
  // iteration: each shard copies its own slice, and the section barrier
  // guarantees the snapshot is complete before any cross-shard read.
  void copy_slice(const SoAKeys& from, std::size_t begin, std::size_t end) {
    std::copy(from.value.begin() + begin, from.value.begin() + end,
              value.begin() + begin);
    std::copy(from.id.begin() + begin, from.id.begin() + end,
              id.begin() + begin);
    std::copy(from.tag.begin() + begin, from.tag.begin() + end,
              tag.begin() + begin);
  }

  [[nodiscard]] static SoAKeys from_keys(std::span<const Key> keys) {
    SoAKeys s(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) s.set(i, keys[i]);
    return s;
  }

  void to_keys(std::span<Key> out) const {
    for (std::size_t i = 0; i < size(); ++i) out[i] = get(i);
  }
};

}  // namespace gq
