#include "engine/scatter.hpp"

#include <bit>

namespace gq {

ScatterLayout ScatterLayout::for_engine(const Engine& engine) {
  return for_geometry(engine.size(), engine.config().shard_size,
                      engine.num_shards());
}

ScatterLayout ScatterLayout::for_geometry(std::uint32_t n,
                                          std::uint32_t shard_size,
                                          std::size_t rows) {
  ScatterLayout layout;
  layout.n = n;
  layout.shard_size = shard_size;
  layout.rows = rows;
  // Partition boundaries depend on (n, shard_size) only — the thread count
  // must stay a pure performance knob.  Widths are powers of two so the
  // per-message partition lookup is a shift (see partition_of), at least
  // kMinPartitionShift so per-destination accumulator slices stay
  // cache-resident while a partition drains, and large enough to cap the
  // partition count — which bounds the mailbox table at
  // rows * kMaxPartitions boxes.  64-bit arithmetic throughout: n close to
  // UINT32_MAX must not wrap.
  const std::uint64_t cap_width =
      (static_cast<std::uint64_t>(layout.n) + kMaxPartitions - 1) /
      kMaxPartitions;
  const std::uint32_t cap_shift =
      cap_width <= 1 ? 0
                     : static_cast<std::uint32_t>(std::bit_width(cap_width - 1));
  layout.partition_shift = std::max(kMinPartitionShift, cap_shift);
  const std::uint64_t pow2_width = std::uint64_t{1} << layout.partition_shift;
  // Trim so every delivery task owns a non-empty destination range.
  layout.partitions = static_cast<std::size_t>(
      (static_cast<std::uint64_t>(layout.n) + pow2_width - 1) >>
      layout.partition_shift);
  return layout;
}

}  // namespace gq
