#include "engine/scatter.hpp"

namespace gq {

ScatterLayout ScatterLayout::for_engine(const Engine& engine) {
  ScatterLayout layout;
  layout.n = engine.size();
  layout.shard_size = engine.config().shard_size;
  layout.rows = engine.num_shards();
  // Partition boundaries depend on (n, shard_size) only — the thread count
  // must stay a pure performance knob.  Capping the partition count bounds
  // the mailbox table at rows * kMaxPartitions vectors.
  layout.partitions = layout.rows < kMaxPartitions ? layout.rows
                                                   : kMaxPartitions;
  const std::uint64_t width =
      (static_cast<std::uint64_t>(layout.n) + layout.partitions - 1) /
      layout.partitions;
  layout.partition_size = static_cast<std::uint32_t>(width);
  GQ_REQUIRE(layout.partition_size > 0, "scatter partition width must be positive");
  // Rounding can leave trailing empty partitions; trim so every delivery
  // task owns a non-empty destination range.
  layout.partitions =
      (layout.n + layout.partition_size - 1) / layout.partition_size;
  return layout;
}

}  // namespace gq
