#include "engine/thread_pool.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "util/require.hpp"

namespace gq {

namespace {

// The cores this process may actually run on, in id order.  Pinning must
// cycle over THIS set, not 0..hardware_concurrency-1: under taskset or a
// cgroup cpuset the allowed ids need not start at 0 or be contiguous, and
// pinning to a forbidden core is rejected outright.  Returns empty where
// the platform offers no affinity API.
std::vector<unsigned> allowed_cpus() {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) != 0) return {};
  std::vector<unsigned> cpus;
  for (unsigned c = 0; c < CPU_SETSIZE; ++c) {
    if (CPU_ISSET(c, &set)) cpus.push_back(c);
  }
  return cpus;
#else
  return {};
#endif
}

// Pins `worker` (the i-th spawned worker, i >= 1 counting the caller as 0)
// to one allowed core.  Workers cycle over cpus[1..] so the first allowed
// core stays with the unpinned calling thread whenever there is room —
// wrapping a pinned worker onto the caller's core would serialize dispatch
// against that worker's shard work.  Best-effort by design: a failure must
// degrade to the unpinned status quo, never to a dead engine.
bool pin_worker_thread(std::thread& worker, unsigned index,
                       const std::vector<unsigned>& cpus) {
#if defined(__linux__)
  if (cpus.empty()) return false;
  const unsigned core =
      cpus.size() > 1 ? cpus[1 + (index - 1) % (cpus.size() - 1)] : cpus[0];
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core, &set);
  return pthread_setaffinity_np(worker.native_handle(), sizeof(set), &set) ==
         0;
#else
  (void)worker;
  (void)index;
  (void)cpus;
  return false;
#endif
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads, bool pin_workers)
    : threads_(threads != 0
                   ? threads
                   : std::max(1u, std::thread::hardware_concurrency())),
      telemetry_pool_(threads_) {
  workers_.reserve(threads_ - 1);
  for (unsigned i = 1; i < threads_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
  if (pin_workers && !workers_.empty()) {
    const std::vector<unsigned> cpus = allowed_cpus();
    bool all_pinned = true;
    for (unsigned i = 0; i < workers_.size(); ++i) {
      all_pinned &= pin_worker_thread(workers_[i], i + 1, cpus);
    }
    if (!all_pinned) {
      std::fprintf(stderr,
                   "gq::ThreadPool: pin_workers requested but thread "
                   "affinity is unsupported or was rejected for some "
                   "workers; placement may be partial or unpinned\n");
    }
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_raw(std::size_t num_tasks, RawTask task, void* ctx) {
  if (num_tasks == 0) return;
  if (workers_.empty()) {
    // Single-threaded pools execute inline; a throwing task propagates
    // directly, exactly like the sequential loop it replaces.  The whole
    // batch is one "chunk" of worker 0 for utilization purposes.
    const std::uint64_t t0 =
        telemetry::enabled() ? telemetry::now_ns() : 0;
    for (std::size_t i = 0; i < num_tasks; ++i) task(ctx, i);
    if (t0 != 0) {
      telemetry::WorkerCounters& c = telemetry_pool_.counters()[0];
      c.busy_ns.fetch_add(telemetry::now_ns() - t0,
                          std::memory_order_relaxed);
      c.chunks.fetch_add(1, std::memory_order_relaxed);
      c.batches.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  GQ_REQUIRE(num_tasks < (std::uint64_t{1} << kIndexBits),
             "batch too large for the packed claim word");

  // Chunk so each thread claims ~4 chunks per batch: coarse enough that the
  // claim word is touched O(threads) times, fine enough that an uneven task
  // mix still load-balances across the pool.
  const std::size_t chunk =
      std::max<std::size_t>(1, num_tasks / (std::size_t{threads_} * 4));
  std::uint64_t generation;
  {
    std::lock_guard lock(mutex_);
    generation = ++generation_;
    batch_ = Batch{task, ctx, num_tasks, chunk, generation};
    completed_.store(0, std::memory_order_relaxed);
    batch_error_ = nullptr;
    // Opening the claim word for this epoch retires every stale claim
    // attempt at once: a worker still holding last batch's descriptor can
    // no longer pass the epoch check, so nothing waits on worker exits.
    claim_.store(pack(generation, 0), std::memory_order_release);
  }
  work_cv_.notify_all();

  drain(batch_, 0);  // the calling thread participates in its own batch

  std::exception_ptr error;
  {
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [&] {
      return completed_.load(std::memory_order_acquire) == num_tasks;
    });
    error = std::exchange(batch_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::drain(const Batch& batch, unsigned worker) {
  const std::uint64_t epoch_tag = pack(batch.generation, 0);
  std::uint64_t cur = claim_.load(std::memory_order_relaxed);
  // Per-drain telemetry accumulators: counters are touched once per drain,
  // not once per chunk, so the enabled cost stays off the claim hot path.
  const bool telemetry_on = telemetry::enabled();
  std::uint64_t busy_ns = 0;
  std::uint64_t chunks_claimed = 0;
  for (;;) {
    // One claim per chunk.  The epoch tag fences stale drainers: if a new
    // batch has been published, the tag mismatch ends this drain before it
    // can touch the new batch's indices.  (A false match would need the
    // 32-bit epoch to wrap all the way around within one compare-exchange
    // attempt — billions of run() calls while this thread sits between two
    // instructions — which we accept the way seqlocks accept ABA.)
    if ((cur & ~kIndexMask) != epoch_tag) break;
    const std::size_t begin = static_cast<std::size_t>(cur & kIndexMask);
    if (begin >= batch.num_tasks) break;
    const std::size_t end = std::min(begin + batch.chunk, batch.num_tasks);
    if (!claim_.compare_exchange_weak(cur, pack(batch.generation, end),
                                      std::memory_order_relaxed,
                                      std::memory_order_relaxed)) {
      continue;  // lost the race; cur was reloaded
    }
    const std::uint64_t t0 = telemetry_on ? telemetry::now_ns() : 0;
    for (std::size_t i = begin; i < end; ++i) {
      try {
        batch.task(batch.ctx, i);
      } catch (...) {
        // A throwing task must not kill a worker thread or break the
        // barrier; remember the first exception for run() to rethrow and
        // keep draining.
        std::lock_guard lock(mutex_);
        if (!batch_error_) batch_error_ = std::current_exception();
      }
    }
    if (telemetry_on) {
      busy_ns += telemetry::now_ns() - t0;
      ++chunks_claimed;
    }
    const std::size_t done = end - begin;
    if (completed_.fetch_add(done, std::memory_order_acq_rel) + done ==
        batch.num_tasks) {
      // Final chunk of the batch: one wakeup for the caller.  The empty
      // critical section serializes with the caller's predicate check so
      // the notify cannot slip between its check and its sleep.
      { std::lock_guard lock(mutex_); }
      done_cv_.notify_one();
      break;
    }
    cur = claim_.load(std::memory_order_relaxed);
  }
  if (chunks_claimed != 0) {
    telemetry::WorkerCounters& c = telemetry_pool_.counters()[worker];
    c.busy_ns.fetch_add(busy_ns, std::memory_order_relaxed);
    c.chunks.fetch_add(chunks_claimed, std::memory_order_relaxed);
    c.batches.fetch_add(1, std::memory_order_relaxed);
  }
}

void ThreadPool::worker_loop(unsigned worker) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    Batch batch;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock,
                    [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
      batch = batch_;  // copied under the lock: never torn
    }
    drain(batch, worker);
  }
}

}  // namespace gq
