#include "engine/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace gq {

ThreadPool::ThreadPool(unsigned threads)
    : threads_(threads != 0
                   ? threads
                   : std::max(1u, std::thread::hardware_concurrency())) {
  workers_.reserve(threads_ - 1);
  for (unsigned i = 1; i < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run(std::size_t num_tasks,
                     const std::function<void(std::size_t)>& task) {
  if (num_tasks == 0) return;
  if (workers_.empty()) {
    for (std::size_t i = 0; i < num_tasks; ++i) task(i);
    return;
  }
  {
    std::lock_guard lock(mutex_);
    task_ = &task;
    num_tasks_ = num_tasks;
    next_task_ = 0;
    completed_ = 0;
    batch_error_ = nullptr;
    ++generation_;
  }
  work_cv_.notify_all();
  drain_batch();  // the calling thread participates in its own batch
  std::exception_ptr error;
  {
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [&] { return completed_ == num_tasks_; });
    task_ = nullptr;  // workers that wake late see "no batch" and re-sleep
    error = std::exchange(batch_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::drain_batch() {
  for (;;) {
    std::size_t index;
    const std::function<void(std::size_t)>* task;
    {
      std::lock_guard lock(mutex_);
      if (task_ == nullptr || next_task_ >= num_tasks_) return;
      index = next_task_++;
      task = task_;
    }
    try {
      (*task)(index);
    } catch (...) {
      // A throwing task must not kill a worker thread or break the
      // barrier; remember the first exception for run() to rethrow, count
      // the index as done, and keep draining.
      std::lock_guard lock(mutex_);
      if (!batch_error_) batch_error_ = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      if (++completed_ == num_tasks_) done_cv_.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock,
                    [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
    }
    drain_batch();
  }
}

}  // namespace gq
