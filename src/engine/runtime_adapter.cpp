#include "engine/runtime_adapter.hpp"

#include <atomic>
#include <vector>

#include "sim/key.hpp"
#include "util/require.hpp"

namespace gq {

RuntimeResult run_protocols(Engine& engine,
                            std::span<std::unique_ptr<NodeProtocol>> nodes,
                            std::uint64_t max_rounds,
                            std::uint64_t bits_per_message) {
  const std::uint32_t n = engine.size();
  GQ_REQUIRE(nodes.size() == n, "one protocol instance per node required");
  for (const auto& p : nodes) {
    GQ_REQUIRE(p != nullptr, "protocol instances must not be null");
  }

  RuntimeResult out;
  std::vector<Key> payloads(n);

  // AND-reduction over all nodes; a relaxed store suffices because the
  // result (true iff no shard saw an unfinished node) is order-independent.
  const auto all_finished = [&] {
    std::atomic<bool> all{true};
    engine.parallel_shards(
        [&](std::uint32_t begin, std::uint32_t end, Metrics&) {
          for (std::uint32_t v = begin; v < end; ++v) {
            if (!nodes[v]->finished()) {
              all.store(false, std::memory_order_relaxed);
              return;
            }
          }
        });
    return all.load(std::memory_order_relaxed);
  };

  for (std::uint64_t r = 0; r < max_rounds; ++r) {
    if (all_finished()) {
      out.all_finished = true;
      return out;
    }
    const std::uint64_t round = engine.begin_round();
    ++out.rounds;
    // Round-start snapshot of every node's exposed payload.  Its own
    // parallel section: deliveries below read payloads cross-shard, so the
    // snapshot must be complete (barrier) before any pull lands.
    engine.parallel_shards(
        [&](std::uint32_t begin, std::uint32_t end, Metrics&) {
          for (std::uint32_t v = begin; v < end; ++v) {
            payloads[v] = nodes[v]->exposed();
          }
        });
    engine.parallel_shards(
        [&](std::uint32_t begin, std::uint32_t end, Metrics& local) {
          std::uint64_t sent = 0;
          for (std::uint32_t v = begin; v < end; ++v) {
            if (!nodes[v]->wants_pull(round)) continue;
            if (engine.node_fails(v)) {
              ++local.failed_operations;
              continue;
            }
            SplitMix64 stream = engine.node_stream(v);
            const std::uint32_t peer = engine.sample_peer(v, stream);
            ++sent;
            nodes[v]->deliver(round, payloads[peer]);
          }
          local.record_messages(sent, bits_per_message);
        });
    engine.parallel_shards(
        [&](std::uint32_t begin, std::uint32_t end, Metrics&) {
          for (std::uint32_t v = begin; v < end; ++v) {
            nodes[v]->finish_round(round);
          }
        });
  }
  out.all_finished = all_finished();
  return out;
}

}  // namespace gq
