// Adapter: drives existing NodeProtocol instances on the parallel Engine.
//
// run_protocols(Engine&, ...) is a drop-in replacement for the sequential
// run_protocols(Network&, ...) in runtime/protocol.hpp: same round
// structure (round-start payload snapshot, pulls delivered with the
// network's randomness and failure model, finish_round at the boundary),
// same RuntimeResult, and — per the engine's determinism contract —
// bit-identical final protocol states and Metrics at every thread count.
//
// Parallel safety comes from the protocol boundary itself: deliver() and
// finish_round() mutate only the receiving node's instance, exposed() is
// read once into an immutable snapshot before any delivery, and each node
// lives in exactly one shard.  Protocols whose methods touch shared state
// outside their own instance are outside the contract (none in this
// repository do).
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "engine/engine.hpp"
#include "runtime/protocol.hpp"

namespace gq {

// Drives one protocol instance per node until all report finished() or
// `max_rounds` elapse, sharded over the engine's thread pool.
RuntimeResult run_protocols(Engine& engine,
                            std::span<std::unique_ptr<NodeProtocol>> nodes,
                            std::uint64_t max_rounds,
                            std::uint64_t bits_per_message);

}  // namespace gq
