#include "engine/kernels.hpp"

#include <algorithm>
#include <array>
#include <span>
#include <utility>
#include <vector>

#include "sim/streams.hpp"
#include "util/require.hpp"

namespace gq {
namespace {

// Engine-pooled working state for the batched kernels (Engine::scratch):
// two ping-pong key buffers plus the per-round peer picks.  Ping-pong
// replaces the per-iteration snapshot copy — commits read buffer A and
// write buffer B, so A *is* the iteration-start snapshot for free — and
// the AoS Key layout keeps each random peer read to one cache line where
// the previous struct-of-arrays layout touched three.
struct KernelScratch {
  std::vector<Key> a, b;
  std::vector<std::uint32_t> picks0, picks1, picks2;

  void ensure(std::uint32_t n) {
    if (a.size() < n) {
      a.resize(n);
      b.resize(n);
      picks0.resize(n);
      picks1.resize(n);
      picks2.resize(n);
    }
  }
};

const Key& median3(const Key& a, const Key& b, const Key& c) {
  if (a < b) {
    if (b < c) return b;
    return a < c ? c : a;
  }
  if (a < c) return a;
  return b < c ? c : b;
}

// Sharded copy between the caller's key vector and the pooled ping-pong
// buffers (each kernel copies in on entry and out on exit).
void copy_keys(Engine& engine, std::span<const Key> from, std::span<Key> to) {
  engine.parallel_shards(
      [&](std::uint32_t begin, std::uint32_t end, Metrics&) {
        for (std::uint32_t v = begin; v < end; ++v) to[v] = from[v];
      });
}

}  // namespace

RuntimeResult median_dynamics(Engine& engine, std::vector<Key>& state,
                              std::uint64_t iterations,
                              std::uint64_t max_rounds,
                              std::uint64_t bits_per_message) {
  const std::uint32_t n = engine.size();
  GQ_REQUIRE(state.size() == n, "one key per node required");

  RuntimeResult out;
  if (iterations == 0) {
    out.all_finished = true;
    return out;
  }
  auto& scratch = engine.scratch<KernelScratch>();
  scratch.ensure(n);
  std::span<Key> cur(scratch.a.data(), n);
  std::span<Key> next(scratch.b.data(), n);
  const std::span<std::uint32_t> first(scratch.picks0.data(), n);
  const std::span<std::uint32_t> second(scratch.picks1.data(), n);
  copy_keys(engine, state, cur);

  std::uint64_t completed = 0;
  while (completed < iterations && out.rounds < max_rounds) {
    // First round of the iteration: the first sample.  `cur` is immutable
    // until the commit, so it doubles as the iteration-start snapshot.
    engine.begin_round();
    ++out.rounds;
    engine.parallel_shards(
        [&](std::uint32_t begin, std::uint32_t end, Metrics& local) {
          std::uint64_t sent = 0;
          for (std::uint32_t v = begin; v < end; ++v) {
            if (engine.node_fails(v)) {
              ++local.failed_operations;
              first[v] = Engine::kNoPeer;
              continue;
            }
            SplitMix64 stream = engine.node_stream(v);
            first[v] = engine.sample_peer(v, stream);
            ++sent;
          }
          local.record_messages(sent, bits_per_message);
        });
    if (out.rounds >= max_rounds) break;  // half iteration: never committed

    // Second round: the second sample, with the commit fused in — it reads
    // only the immutable `cur` and writes only `next`.  A failed pull on
    // either round forfeits the iteration's update, as in the protocol.
    engine.begin_round();
    ++out.rounds;
    engine.parallel_shards(
        [&](std::uint32_t begin, std::uint32_t end, Metrics& local) {
          std::uint64_t sent = 0;
          for (std::uint32_t v = begin; v < end; ++v) {
            if (engine.node_fails(v)) {
              ++local.failed_operations;
              second[v] = Engine::kNoPeer;
              continue;
            }
            SplitMix64 stream = engine.node_stream(v);
            second[v] = engine.sample_peer(v, stream);
            ++sent;
          }
          local.record_messages(sent, bits_per_message);
          for (std::uint32_t v = begin; v < end; ++v) {
            if (first[v] == Engine::kNoPeer || second[v] == Engine::kNoPeer) {
              next[v] = cur[v];
              continue;
            }
            const Key& a = cur[first[v]];
            const Key& b = cur[second[v]];
            next[v] = median3(a, b, cur[v]);
          }
        });
    std::swap(cur, next);
    ++completed;
  }
  out.all_finished = completed >= iterations;
  copy_keys(engine, cur, state);
  return out;
}

TwoTournamentOutcome two_tournament(Engine& engine, std::vector<Key>& state,
                                    double phi, double eps,
                                    bool truncate_last) {
  const std::uint32_t n = engine.size();
  GQ_REQUIRE(state.size() == n, "one key per node required");
  GQ_REQUIRE(phi >= 0.0 && phi <= 1.0, "phi must lie in [0,1]");
  GQ_REQUIRE(eps > 0.0 && eps < 0.5, "eps must lie in (0, 1/2)");
  GQ_REQUIRE(engine.failures().never_fails(),
             "two_tournament is the failure-free variant; use "
             "robust_two_tournament under a failure model");

  TwoTournamentOutcome out;
  const auto [side, start] = tournament_side(phi, eps);
  out.side = side;
  out.schedule = two_tournament_schedule(start, eps);
  const bool suppress_high = side == TournamentSide::kSuppressHigh;
  const std::uint64_t bits = key_bits(n);

  auto& scratch = engine.scratch<KernelScratch>();
  scratch.ensure(n);
  std::span<Key> cur(scratch.a.data(), n);
  std::span<Key> next(scratch.b.data(), n);
  const std::span<std::uint32_t> first(scratch.picks0.data(), n);
  copy_keys(engine, state, cur);

  for (std::size_t iter = 0; iter < out.schedule.iterations(); ++iter) {
    const double delta = truncate_last ? out.schedule.delta[iter] : 1.0;

    // Round 1: every node pulls its first sample; `cur` is the iteration
    // snapshot and stays immutable until the commit writes `next`.
    engine.begin_round();
    engine.parallel_shards(
        [&](std::uint32_t begin, std::uint32_t end, Metrics& local) {
          for (std::uint32_t v = begin; v < end; ++v) {
            SplitMix64 stream = engine.node_stream(v);
            first[v] = engine.sample_peer(v, stream);
          }
          local.record_messages(end - begin, bits);
        });

    // Round 2: the delta coin and, if it lands, the second sample; the
    // tournament commit reads the immutable `cur` only.
    engine.begin_round();
    engine.parallel_shards(
        [&](std::uint32_t begin, std::uint32_t end, Metrics& local) {
          std::uint64_t sent = 0;
          for (std::uint32_t v = begin; v < end; ++v) {
            SplitMix64 stream = engine.node_stream(v);
            const bool tournament =
                delta >= 1.0 || rand_bernoulli(stream, delta);
            if (tournament) {
              const std::uint32_t second = engine.sample_peer(v, stream);
              ++sent;
              const Key& a = cur[first[v]];
              const Key& b = cur[second];
              next[v] = suppress_high ? std::min(a, b) : std::max(a, b);
            } else {
              next[v] = cur[first[v]];
            }
          }
          local.record_messages(sent, bits);
        });
    std::swap(cur, next);

    ++out.iterations;
  }
  copy_keys(engine, cur, state);
  return out;
}

ThreeTournamentOutcome three_tournament(Engine& engine,
                                        std::vector<Key>& state, double eps,
                                        std::uint32_t final_sample_size) {
  const std::uint32_t n = engine.size();
  GQ_REQUIRE(state.size() == n, "one key per node required");
  GQ_REQUIRE(eps > 0.0 && eps < 0.5, "eps must lie in (0, 1/2)");
  GQ_REQUIRE(final_sample_size >= 1, "final sample size must be positive");
  GQ_REQUIRE(engine.failures().never_fails(),
             "three_tournament is the failure-free variant; use "
             "robust_three_tournament under a failure model");
  const std::uint32_t k_samples = final_sample_size | 1u;  // force odd

  ThreeTournamentOutcome out;
  out.schedule = three_tournament_schedule(eps, n);
  const std::uint64_t bits = key_bits(n);

  auto& scratch = engine.scratch<KernelScratch>();
  scratch.ensure(n);
  std::span<Key> cur(scratch.a.data(), n);
  std::span<Key> next(scratch.b.data(), n);
  const std::array<std::span<std::uint32_t>, 3> picks = {
      std::span<std::uint32_t>(scratch.picks0.data(), n),
      std::span<std::uint32_t>(scratch.picks1.data(), n),
      std::span<std::uint32_t>(scratch.picks2.data(), n)};
  copy_keys(engine, state, cur);

  for (std::size_t iter = 0; iter < out.schedule.iterations(); ++iter) {
    // Three pulls = three rounds, all reading the iteration-start state
    // (`cur` is immutable until the commit, which writes `next`).
    for (int pull = 0; pull < 3; ++pull) {
      engine.begin_round();
      engine.parallel_shards(
          [&](std::uint32_t begin, std::uint32_t end, Metrics& local) {
            const auto& out_picks = picks[static_cast<std::size_t>(pull)];
            for (std::uint32_t v = begin; v < end; ++v) {
              SplitMix64 stream = engine.node_stream(v);
              out_picks[v] = engine.sample_peer(v, stream);
            }
            local.record_messages(end - begin, bits);
            // Fuse the median commit into the last pull round: it reads
            // only the immutable `cur` and the node's own pick slots.
            if (pull == 2) {
              for (std::uint32_t v = begin; v < end; ++v) {
                next[v] = median3(cur[picks[0][v]], cur[picks[1][v]],
                                  cur[picks[2][v]]);
              }
            }
          });
    }
    std::swap(cur, next);
    ++out.iterations;
  }

  // Final step: every node samples K values and outputs their median.  The
  // tournament state is immutable during these rounds, so the K sampling
  // rounds fuse into one parallel section: the round counter advances K
  // times up front, and each node derives the per-round streams directly —
  // the same (seed, round, v) derivation the per-round kernel would use,
  // so draws and Metrics are bit-identical while the K-pass sample matrix
  // (n x K keys — 360 MB at n = 10^6) disappears entirely.
  const std::uint64_t first_sample_round = engine.round() + 1;
  for (std::uint32_t j = 0; j < k_samples; ++j) engine.begin_round();
  out.outputs.resize(n);
  engine.parallel_shards(
      [&](std::uint32_t begin, std::uint32_t end, Metrics& local) {
        std::vector<Key> samp(k_samples);
        for (std::uint32_t v = begin; v < end; ++v) {
          for (std::uint32_t j = 0; j < k_samples; ++j) {
            SplitMix64 stream = streams::node_stream(
                engine.seed(), first_sample_round + j, v);
            samp[j] = cur[engine.sample_peer(v, stream)];
          }
          const auto mid = samp.begin() + k_samples / 2;
          std::nth_element(samp.begin(), mid, samp.end());
          out.outputs[v] = *mid;
        }
        local.record_messages(
            static_cast<std::uint64_t>(k_samples) * (end - begin), bits);
      });
  copy_keys(engine, cur, state);
  return out;
}

}  // namespace gq
